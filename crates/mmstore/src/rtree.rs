//! A persistent pointer-based R-Tree inside a [`Segment`] — the second
//! of the paper's §1 structures ("B-Trees, R-Trees and graph data
//! structures can be implemented as efficiently and effectively in this
//! environment").
//!
//! Guttman's classic design: every node holds up to `M` entries, each a
//! bounding rectangle plus either a child pointer (internal) or a user
//! value (leaf). Child pointers are **absolute addresses** into the
//! mapped segment; under exact positioning a spatial index built in one
//! session answers window queries in the next with no load step.
//! Splits use the quadratic seed-picking heuristic; subtree choice
//! minimizes area enlargement.
//!
//! Node layout (`NODE_SIZE` bytes):
//!
//! ```text
//! [0..2)  n_entries: u16     [2..4) is_leaf: u16    [4..8) padding
//! then M entries of 24 bytes: min_x,min_y,max_x,max_y (i32 each) + payload u64
//! ```

use mmjoin_env::{EnvError, Result};

use crate::arena::Placement;
use crate::segment::{Segment, HEADER_SIZE};

/// Maximum entries per node.
const M: usize = 8;
/// Minimum fill after a split.
const MIN_FILL: usize = M / 2;
const ENTRY_SIZE: u64 = 24;
const NODE_SIZE: u64 = 8 + (M as u64) * ENTRY_SIZE;

/// An axis-aligned rectangle with inclusive integer coordinates.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Rect {
    /// Lower-left x.
    pub min_x: i32,
    /// Lower-left y.
    pub min_y: i32,
    /// Upper-right x (≥ `min_x`).
    pub max_x: i32,
    /// Upper-right y (≥ `min_y`).
    pub max_y: i32,
}

impl Rect {
    /// A point rectangle.
    pub fn point(x: i32, y: i32) -> Rect {
        Rect {
            min_x: x,
            min_y: y,
            max_x: x,
            max_y: y,
        }
    }

    /// A validated rectangle.
    pub fn new(min_x: i32, min_y: i32, max_x: i32, max_y: i32) -> Result<Rect> {
        if max_x < min_x || max_y < min_y {
            return Err(EnvError::InvalidConfig(format!(
                "degenerate rectangle [{min_x},{min_y}]..[{max_x},{max_y}]"
            )));
        }
        Ok(Rect {
            min_x,
            min_y,
            max_x,
            max_y,
        })
    }

    /// True if the two rectangles share any point.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// Smallest rectangle covering both.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// Area as a wide integer (avoids overflow on i32 extents).
    pub fn area(&self) -> i64 {
        (self.max_x as i64 - self.min_x as i64 + 1) * (self.max_y as i64 - self.min_y as i64 + 1)
    }

    /// Area growth needed to also cover `other`.
    pub fn enlargement(&self, other: &Rect) -> i64 {
        self.union(other).area() - self.area()
    }
}

/// A persistent spatial index mapping rectangles to `u64` payloads.
pub struct PersistentRTree<'s> {
    seg: &'s mut Segment,
}

impl<'s> PersistentRTree<'s> {
    /// Adopt (or initialize) the segment's root as an R-Tree.
    pub fn new(seg: &'s mut Segment) -> Result<Self> {
        if seg.placement() == Placement::Relocated {
            return Err(EnvError::InvalidConfig(
                "segment is relocated; call PersistentRTree::relocate first".into(),
            ));
        }
        let mut t = PersistentRTree { seg };
        if t.seg.root() == 0 {
            let root = t.alloc_node(true)?;
            t.seg.set_root(root);
        }
        Ok(t)
    }

    // ---- raw node access ---------------------------------------------

    fn data_idx(node: u64, off: u64) -> usize {
        (node + off - HEADER_SIZE) as usize
    }

    fn read_u16(&self, node: u64, off: u64) -> u16 {
        let i = Self::data_idx(node, off);
        u16::from_le_bytes(self.seg.data()[i..i + 2].try_into().expect("2"))
    }

    fn write_u16(&mut self, node: u64, off: u64, v: u16) {
        let i = Self::data_idx(node, off);
        self.seg.data_mut()[i..i + 2].copy_from_slice(&v.to_le_bytes());
    }

    fn n_entries(&self, node: u64) -> usize {
        self.read_u16(node, 0) as usize
    }

    fn set_n_entries(&mut self, node: u64, n: usize) {
        self.write_u16(node, 0, n as u16);
    }

    fn is_leaf(&self, node: u64) -> bool {
        self.read_u16(node, 2) == 1
    }

    fn entry_off(node: u64, i: usize) -> u64 {
        node + 8 + (i as u64) * ENTRY_SIZE
    }

    fn rect(&self, node: u64, i: usize) -> Rect {
        let base = (Self::entry_off(node, i) - HEADER_SIZE) as usize;
        let d = self.seg.data();
        let f =
            |k: usize| i32::from_le_bytes(d[base + 4 * k..base + 4 * k + 4].try_into().expect("4"));
        Rect {
            min_x: f(0),
            min_y: f(1),
            max_x: f(2),
            max_y: f(3),
        }
    }

    fn payload(&self, node: u64, i: usize) -> u64 {
        let base = (Self::entry_off(node, i) - HEADER_SIZE) as usize + 16;
        u64::from_le_bytes(self.seg.data()[base..base + 8].try_into().expect("8"))
    }

    fn set_entry(&mut self, node: u64, i: usize, rect: Rect, payload: u64) {
        let base = (Self::entry_off(node, i) - HEADER_SIZE) as usize;
        let d = self.seg.data_mut();
        d[base..base + 4].copy_from_slice(&rect.min_x.to_le_bytes());
        d[base + 4..base + 8].copy_from_slice(&rect.min_y.to_le_bytes());
        d[base + 8..base + 12].copy_from_slice(&rect.max_x.to_le_bytes());
        d[base + 12..base + 16].copy_from_slice(&rect.max_y.to_le_bytes());
        d[base + 16..base + 24].copy_from_slice(&payload.to_le_bytes());
    }

    fn child(&self, node: u64, i: usize) -> u64 {
        let addr = self.payload(node, i) as usize;
        self.seg.offset_of(addr).expect("child inside segment")
    }

    fn alloc_node(&mut self, leaf: bool) -> Result<u64> {
        let off = self.seg.alloc(NODE_SIZE, 8)?;
        let i = (off - HEADER_SIZE) as usize;
        self.seg.data_mut()[i..i + NODE_SIZE as usize].fill(0);
        self.write_u16(off, 2, leaf as u16);
        Ok(off)
    }

    /// Bounding rectangle of a whole node.
    fn node_mbr(&self, node: u64) -> Rect {
        let n = self.n_entries(node);
        debug_assert!(n > 0);
        let mut r = self.rect(node, 0);
        for i in 1..n {
            r = r.union(&self.rect(node, i));
        }
        r
    }

    // ---- operations ---------------------------------------------------

    /// Insert one rectangle with its payload.
    pub fn insert(&mut self, rect: Rect, payload: u64) -> Result<()> {
        if let Some((left, right)) = self.insert_rec(self.seg.root(), rect, payload)? {
            // Root split: grow the tree by one level.
            let new_root = self.alloc_node(false)?;
            let lm = self.node_mbr(left);
            let rm = self.node_mbr(right);
            let la = self.seg.addr_of(left) as u64;
            let ra = self.seg.addr_of(right) as u64;
            self.set_entry(new_root, 0, lm, la);
            self.set_entry(new_root, 1, rm, ra);
            self.set_n_entries(new_root, 2);
            self.seg.set_root(new_root);
        }
        Ok(())
    }

    /// Recursive insert; returns `Some((left, right))` when `node`
    /// split.
    fn insert_rec(&mut self, node: u64, rect: Rect, payload: u64) -> Result<Option<(u64, u64)>> {
        if self.is_leaf(node) {
            return self.add_entry(node, rect, payload);
        }
        // Choose the child needing least enlargement (ties: least area).
        let n = self.n_entries(node);
        let mut best = 0;
        let mut best_growth = i64::MAX;
        let mut best_area = i64::MAX;
        for i in 0..n {
            let r = self.rect(node, i);
            let growth = r.enlargement(&rect);
            if growth < best_growth || (growth == best_growth && r.area() < best_area) {
                best = i;
                best_growth = growth;
                best_area = r.area();
            }
        }
        let chosen = self.child(node, best);
        let split = self.insert_rec(chosen, rect, payload)?;
        match split {
            None => {
                // Tighten the chosen entry's rectangle.
                let mbr = self.node_mbr(chosen);
                let addr = self.seg.addr_of(chosen) as u64;
                self.set_entry(node, best, mbr, addr);
                Ok(None)
            }
            Some((left, right)) => {
                // Replace the chosen entry with `left`, add `right`.
                let lm = self.node_mbr(left);
                let la = self.seg.addr_of(left) as u64;
                self.set_entry(node, best, lm, la);
                let rm = self.node_mbr(right);
                let ra = self.seg.addr_of(right) as u64;
                self.add_entry(node, rm, ra)
            }
        }
    }

    /// Add an entry to `node`; split with the quadratic heuristic when
    /// full. The payload is a user value for leaves and a child address
    /// for internal nodes — both opaque 8-byte entries here.
    fn add_entry(&mut self, node: u64, rect: Rect, payload: u64) -> Result<Option<(u64, u64)>> {
        let n = self.n_entries(node);
        if n < M {
            self.set_entry(node, n, rect, payload);
            self.set_n_entries(node, n + 1);
            return Ok(None);
        }
        // Gather M + 1 entries.
        let mut entries: Vec<(Rect, u64)> = (0..n)
            .map(|i| (self.rect(node, i), self.payload(node, i)))
            .collect();
        entries.push((rect, payload));

        // Quadratic seeds: the pair whose union wastes the most area.
        let (mut s1, mut s2, mut worst) = (0usize, 1usize, i64::MIN);
        for i in 0..entries.len() {
            for j in i + 1..entries.len() {
                let waste = entries[i].0.union(&entries[j].0).area()
                    - entries[i].0.area()
                    - entries[j].0.area();
                if waste > worst {
                    (s1, s2, worst) = (i, j, waste);
                }
            }
        }
        let leaf = self.is_leaf(node);
        let right = self.alloc_node(leaf)?;
        let mut left_set = vec![entries[s1]];
        let mut right_set = vec![entries[s2]];
        let mut left_mbr = entries[s1].0;
        let mut right_mbr = entries[s2].0;
        for (i, e) in entries.iter().enumerate() {
            if i == s1 || i == s2 {
                continue;
            }
            let remaining = entries.len() - i;
            // Force min fill when one side is running out of candidates.
            if left_set.len() + remaining <= MIN_FILL {
                left_set.push(*e);
                left_mbr = left_mbr.union(&e.0);
                continue;
            }
            if right_set.len() + remaining <= MIN_FILL {
                right_set.push(*e);
                right_mbr = right_mbr.union(&e.0);
                continue;
            }
            if left_mbr.enlargement(&e.0) <= right_mbr.enlargement(&e.0) {
                left_set.push(*e);
                left_mbr = left_mbr.union(&e.0);
            } else {
                right_set.push(*e);
                right_mbr = right_mbr.union(&e.0);
            }
        }
        for (i, (r, p)) in left_set.iter().enumerate() {
            self.set_entry(node, i, *r, *p);
        }
        self.set_n_entries(node, left_set.len());
        for (i, (r, p)) in right_set.iter().enumerate() {
            self.set_entry(right, i, *r, *p);
        }
        self.set_n_entries(right, right_set.len());
        Ok(Some((node, right)))
    }

    /// Payloads of every stored rectangle intersecting `window`.
    pub fn search(&self, window: &Rect) -> Vec<u64> {
        let mut out = Vec::new();
        let mut stack = vec![self.seg.root()];
        while let Some(node) = stack.pop() {
            let n = self.n_entries(node);
            let leaf = self.is_leaf(node);
            for i in 0..n {
                if self.rect(node, i).intersects(window) {
                    if leaf {
                        out.push(self.payload(node, i));
                    } else {
                        stack.push(self.child(node, i));
                    }
                }
            }
        }
        out
    }

    /// Total stored rectangles.
    pub fn len(&self) -> usize {
        let mut count = 0;
        let mut stack = vec![self.seg.root()];
        while let Some(node) = stack.pop() {
            let n = self.n_entries(node);
            if self.is_leaf(node) {
                count += n;
            } else {
                for i in 0..n {
                    stack.push(self.child(node, i));
                }
            }
        }
        count
    }

    /// True if no rectangles are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Patch child pointers after a relocated open. Returns the number
    /// rewritten.
    pub fn relocate(seg: &mut Segment) -> Result<usize> {
        let delta = seg.relocation_delta();
        if delta == 0 {
            seg.commit_relocation();
            return Ok(0);
        }
        let mut fixed = 0;
        let root = seg.root();
        if root != 0 {
            let mut stack = vec![root];
            while let Some(node) = stack.pop() {
                let base = (node - HEADER_SIZE) as usize;
                let n =
                    u16::from_le_bytes(seg.data()[base..base + 2].try_into().expect("2")) as usize;
                let leaf =
                    u16::from_le_bytes(seg.data()[base + 2..base + 4].try_into().expect("2")) == 1;
                if leaf {
                    continue;
                }
                for i in 0..n {
                    let pi = base + 8 + i * ENTRY_SIZE as usize + 16;
                    let stored = u64::from_le_bytes(seg.data()[pi..pi + 8].try_into().expect("8"));
                    let patched = (stored as i64 + delta as i64) as u64;
                    seg.data_mut()[pi..pi + 8].copy_from_slice(&patched.to_le_bytes());
                    fixed += 1;
                    let child = seg.offset_of(patched as usize).ok_or_else(|| {
                        EnvError::InvalidConfig(
                            "R-Tree child escapes segment during relocation".into(),
                        )
                    })?;
                    stack.push(child);
                }
            }
        }
        seg.commit_relocation();
        Ok(fixed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::SegmentArena;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mmjoin-rtree-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn rect_geometry() {
        let a = Rect::new(0, 0, 10, 10).unwrap();
        let b = Rect::new(5, 5, 15, 15).unwrap();
        let c = Rect::new(11, 11, 12, 12).unwrap();
        assert!(a.intersects(&b) && b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(b.intersects(&c));
        assert_eq!(a.union(&c), Rect::new(0, 0, 12, 12).unwrap());
        assert_eq!(a.area(), 121);
        assert_eq!(a.enlargement(&a), 0);
        assert!(a.enlargement(&c) > 0);
        assert!(Rect::new(5, 5, 4, 5).is_err());
        assert_eq!(Rect::point(3, 4).area(), 1);
    }

    #[test]
    fn insert_and_window_query() {
        let arena = SegmentArena::reserve(0, 1 << 24).unwrap();
        let path = tmp("q.seg");
        let mut seg = Segment::create(&arena, &path, 1 << 20).unwrap();
        let mut t = PersistentRTree::new(&mut seg).unwrap();
        assert!(t.is_empty());
        // A 20×20 grid of points, payload = y·100 + x.
        for x in 0..20 {
            for y in 0..20 {
                t.insert(Rect::point(x, y), (y * 100 + x) as u64).unwrap();
            }
        }
        assert_eq!(t.len(), 400);
        let mut hits = t.search(&Rect::new(3, 4, 5, 6).unwrap());
        hits.sort_unstable();
        let mut expect: Vec<u64> = (3..=5)
            .flat_map(|x| (4..=6).map(move |y| (y * 100 + x) as u64))
            .collect();
        expect.sort_unstable();
        assert_eq!(hits, expect);
        // A window outside the grid finds nothing.
        assert!(t.search(&Rect::new(50, 50, 60, 60).unwrap()).is_empty());
        drop(seg);
        Segment::delete(&path).unwrap();
    }

    #[test]
    fn persists_and_relocates() {
        let path = tmp("persist.seg");
        {
            let arena = SegmentArena::reserve(0, 1 << 24).unwrap();
            let mut seg = Segment::create(&arena, &path, 1 << 20).unwrap();
            let mut t = PersistentRTree::new(&mut seg).unwrap();
            for i in 0..500i32 {
                t.insert(Rect::new(i, i, i + 10, i + 10).unwrap(), i as u64)
                    .unwrap();
            }
            seg.flush().unwrap();
        }
        {
            let arena = SegmentArena::reserve(0, 1 << 24).unwrap();
            let mut seg = Segment::open(&arena, &path).unwrap();
            if seg.placement() == Placement::Relocated {
                assert!(PersistentRTree::new(&mut seg).is_err());
                let fixed = PersistentRTree::relocate(&mut seg).unwrap();
                assert!(fixed > 0);
            }
            let t = PersistentRTree::new(&mut seg).unwrap();
            assert_eq!(t.len(), 500);
            let hits = t.search(&Rect::new(100, 100, 101, 101).unwrap());
            // Rectangles i..i+10 covering (100,100): i in 90..=100, plus
            // those covering (101,101): i in 91..=101 → union 90..=101.
            assert_eq!(hits.len(), 12);
        }
        Segment::delete(&path).unwrap();
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]

        /// Window queries must agree exactly with a brute-force scan.
        #[test]
        fn search_matches_brute_force(
            rects in proptest::collection::vec((0i32..1000, 0i32..1000, 0i32..50, 0i32..50), 1..300),
            window in (0i32..1000, 0i32..1000, 0i32..300, 0i32..300),
        ) {
            let arena = SegmentArena::reserve(0, 1 << 24).unwrap();
            let path = tmp(&format!("prop-{}.seg", rects.len()));
            let _ = std::fs::remove_file(&path);
            let mut seg = Segment::create(&arena, &path, 1 << 21).unwrap();
            let mut t = PersistentRTree::new(&mut seg).unwrap();
            let stored: Vec<Rect> = rects
                .iter()
                .map(|&(x, y, w, h)| Rect::new(x, y, x + w, y + h).unwrap())
                .collect();
            for (i, r) in stored.iter().enumerate() {
                t.insert(*r, i as u64).unwrap();
            }
            let win = Rect::new(window.0, window.1, window.0 + window.2, window.1 + window.3).unwrap();
            let mut got = t.search(&win);
            got.sort_unstable();
            let mut expect: Vec<u64> = stored
                .iter()
                .enumerate()
                .filter(|(_, r)| r.intersects(&win))
                .map(|(i, _)| i as u64)
                .collect();
            expect.sort_unstable();
            proptest::prop_assert_eq!(got, expect);
            proptest::prop_assert_eq!(t.len(), stored.len());
            drop(seg);
            Segment::delete(&path).unwrap();
        }
    }
}
