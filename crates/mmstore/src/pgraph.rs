//! A persistent pointer-based directed graph inside a [`Segment`] —
//! completing the paper's §1 list ("B-Trees, R-Trees and graph data
//! structures"). Graphs are the structure where pointer swizzling hurts
//! most: every traversal step chases a stored pointer, so any per-
//! pointer fix-up cost is paid on the hot path. Exact positioning makes
//! a stored adjacency structure directly traversable after reopen.
//!
//! Layout: classic adjacency lists with absolute addresses.
//!
//! ```text
//! node: [0..8) payload u64   [8..16) first-edge address (0 = none)
//! edge: [0..8) target node address   [8..16) next-edge address
//! ```
//!
//! A directory node list (singly linked through a third pointer in the
//! node record) makes whole-graph walks and relocation possible without
//! external metadata.

use mmjoin_env::{EnvError, Result};

use crate::arena::Placement;
use crate::segment::{Segment, HEADER_SIZE};

const NODE_SIZE: u64 = 24; // payload, first_edge, next_node
const EDGE_SIZE: u64 = 16; // target, next_edge

/// Handle to a node: its segment offset.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct NodeRef(pub u64);

/// A persistent directed graph of `u64`-payload nodes.
pub struct PersistentGraph<'s> {
    seg: &'s mut Segment,
}

impl<'s> PersistentGraph<'s> {
    /// Adopt (or initialize) the segment's root as a graph (the root
    /// slot holds the head of the node directory list).
    pub fn new(seg: &'s mut Segment) -> Result<Self> {
        if seg.placement() == Placement::Relocated {
            return Err(EnvError::InvalidConfig(
                "segment is relocated; call PersistentGraph::relocate first".into(),
            ));
        }
        Ok(PersistentGraph { seg })
    }

    fn read_u64(&self, off: u64) -> u64 {
        let i = (off - HEADER_SIZE) as usize;
        u64::from_le_bytes(self.seg.data()[i..i + 8].try_into().expect("8"))
    }

    fn write_u64(&mut self, off: u64, v: u64) {
        let i = (off - HEADER_SIZE) as usize;
        self.seg.data_mut()[i..i + 8].copy_from_slice(&v.to_le_bytes());
    }

    fn addr(&self, off: u64) -> u64 {
        self.seg.addr_of(off) as u64
    }

    fn off_of_addr(&self, addr: u64) -> Option<u64> {
        if addr == 0 {
            None
        } else {
            self.seg.offset_of(addr as usize)
        }
    }

    /// Add a node carrying `payload`.
    pub fn add_node(&mut self, payload: u64) -> Result<NodeRef> {
        let off = self.seg.alloc(NODE_SIZE, 8)?;
        let head = self.seg.root();
        let head_addr = if head == 0 { 0 } else { self.addr(head) };
        self.write_u64(off, payload);
        self.write_u64(off + 8, 0); // no edges yet
        self.write_u64(off + 16, head_addr); // directory link
        self.seg.set_root(off);
        Ok(NodeRef(off))
    }

    /// Add a directed edge `from → to` (duplicates allowed, as in a
    /// multigraph).
    pub fn add_edge(&mut self, from: NodeRef, to: NodeRef) -> Result<()> {
        let edge = self.seg.alloc(EDGE_SIZE, 8)?;
        let first = self.read_u64(from.0 + 8);
        self.write_u64(edge, self.addr(to.0));
        self.write_u64(edge + 8, first);
        let edge_addr = self.addr(edge);
        self.write_u64(from.0 + 8, edge_addr);
        Ok(())
    }

    /// A node's payload.
    pub fn payload(&self, node: NodeRef) -> u64 {
        self.read_u64(node.0)
    }

    /// Out-neighbors of `node`, most recently added first.
    pub fn neighbors(&self, node: NodeRef) -> Vec<NodeRef> {
        let mut out = Vec::new();
        let mut edge_addr = self.read_u64(node.0 + 8);
        while let Some(edge) = self.off_of_addr(edge_addr) {
            let target = self.read_u64(edge);
            if let Some(t) = self.off_of_addr(target) {
                out.push(NodeRef(t));
            }
            edge_addr = self.read_u64(edge + 8);
        }
        out
    }

    /// Every node, most recently added first.
    pub fn nodes(&self) -> Vec<NodeRef> {
        let mut out = Vec::new();
        let mut off = self.seg.root();
        while off != 0 {
            out.push(NodeRef(off));
            let next = self.read_u64(off + 16);
            off = self.off_of_addr(next).unwrap_or(0);
            if next == 0 {
                break;
            }
        }
        out
    }

    /// Nodes reachable from `start` (including it), breadth-first.
    pub fn reachable(&self, start: NodeRef) -> Vec<NodeRef> {
        let mut seen = std::collections::HashSet::new();
        let mut queue = std::collections::VecDeque::new();
        let mut out = Vec::new();
        seen.insert(start);
        queue.push_back(start);
        while let Some(n) = queue.pop_front() {
            out.push(n);
            for m in self.neighbors(n) {
                if seen.insert(m) {
                    queue.push_back(m);
                }
            }
        }
        out
    }

    /// Patch every stored address (directory links, edge heads, edge
    /// targets, edge nexts) after a relocated open.
    pub fn relocate(seg: &mut Segment) -> Result<usize> {
        let delta = seg.relocation_delta();
        if delta == 0 {
            seg.commit_relocation();
            return Ok(0);
        }
        let patch = |seg: &mut Segment, off: u64| -> Result<u64> {
            let i = (off - HEADER_SIZE) as usize;
            let stored = u64::from_le_bytes(seg.data()[i..i + 8].try_into().expect("8"));
            if stored == 0 {
                return Ok(0);
            }
            let patched = (stored as i64 + delta as i64) as u64;
            seg.offset_of(patched as usize).ok_or_else(|| {
                EnvError::InvalidConfig("graph pointer escapes segment during relocation".into())
            })?;
            seg.data_mut()[i..i + 8].copy_from_slice(&patched.to_le_bytes());
            Ok(patched)
        };
        let mut fixed = 0;
        let mut node = seg.root();
        while node != 0 {
            // Edge list: head pointer then each edge's target and next.
            let mut edge_addr = patch(seg, node + 8)?;
            if edge_addr != 0 {
                fixed += 1;
            }
            while edge_addr != 0 {
                let edge = seg
                    .offset_of(edge_addr as usize)
                    .expect("validated by patch");
                patch(seg, edge)?; // target
                fixed += 1;
                let next = patch(seg, edge + 8)?;
                if next != 0 {
                    fixed += 1;
                }
                edge_addr = next;
            }
            // Directory link.
            let next_node = patch(seg, node + 16)?;
            if next_node != 0 {
                fixed += 1;
            }
            node = if next_node == 0 {
                0
            } else {
                seg.offset_of(next_node as usize).expect("validated")
            };
        }
        seg.commit_relocation();
        Ok(fixed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::SegmentArena;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mmjoin-pgraph-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn build_and_traverse() {
        let arena = SegmentArena::reserve(0, 1 << 24).unwrap();
        let path = tmp("bfs.seg");
        let mut seg = Segment::create(&arena, &path, 1 << 18).unwrap();
        let mut g = PersistentGraph::new(&mut seg).unwrap();
        let a = g.add_node(1).unwrap();
        let b = g.add_node(2).unwrap();
        let c = g.add_node(3).unwrap();
        let d = g.add_node(4).unwrap();
        g.add_edge(a, b).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(b, d).unwrap();
        g.add_edge(d, a).unwrap(); // cycle
        assert_eq!(g.nodes().len(), 4);
        assert_eq!(g.neighbors(a).len(), 2);
        let reach: Vec<u64> = g.reachable(a).iter().map(|&n| g.payload(n)).collect();
        assert_eq!(reach.len(), 4, "cycle must not loop forever");
        assert!(reach.contains(&4));
        // c has no out-edges; only itself reachable.
        assert_eq!(g.reachable(c).len(), 1);
        drop(seg);
        Segment::delete(&path).unwrap();
    }

    #[test]
    fn survives_reopen_and_relocation() {
        let path = tmp("reloc.seg");
        {
            let arena = SegmentArena::reserve(0, 1 << 24).unwrap();
            let mut seg = Segment::create(&arena, &path, 1 << 20).unwrap();
            let mut g = PersistentGraph::new(&mut seg).unwrap();
            // A chain 0 → 1 → … → 99.
            let nodes: Vec<NodeRef> = (0..100).map(|i| g.add_node(i).unwrap()).collect();
            for w in nodes.windows(2) {
                g.add_edge(w[0], w[1]).unwrap();
            }
            seg.flush().unwrap();
        }
        {
            let arena = SegmentArena::reserve(0, 1 << 24).unwrap();
            let mut seg = Segment::open(&arena, &path).unwrap();
            if seg.placement() == Placement::Relocated {
                assert!(PersistentGraph::new(&mut seg).is_err());
                let fixed = PersistentGraph::relocate(&mut seg).unwrap();
                assert!(fixed > 0);
            }
            let g = PersistentGraph::new(&mut seg).unwrap();
            let nodes = g.nodes();
            assert_eq!(nodes.len(), 100);
            // The directory is most-recent-first: head is payload 99,
            // which starts the chain's tail; payload 0's node reaches
            // all 100.
            let first = *nodes.last().expect("non-empty");
            assert_eq!(g.payload(first), 0);
            assert_eq!(g.reachable(first).len(), 100);
        }
        Segment::delete(&path).unwrap();
    }

    #[test]
    fn empty_graph_behaves() {
        let arena = SegmentArena::reserve(0, 1 << 24).unwrap();
        let path = tmp("empty.seg");
        let mut seg = Segment::create(&arena, &path, 4096).unwrap();
        let g = PersistentGraph::new(&mut seg).unwrap();
        assert!(g.nodes().is_empty());
        drop(seg);
        Segment::delete(&path).unwrap();
    }
}
