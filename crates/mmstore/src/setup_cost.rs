//! Real measurement of the memory-mapping setup costs — the paper's
//! Fig. 1(b).
//!
//! §3.2 models three operations: `newMap` (create a mapping over new
//! disk space), `openMap` (map an existing area) and `deleteMap`
//! (destroy a mapping and its data). This module measures all three
//! with wall clocks on the real store, for a range of mapping sizes,
//! reproducing the figure's measurement on today's hardware. Creating
//! remains the most expensive (space acquisition + page tables),
//! deleting the cheapest, and all three scale with size — the orderings
//! the figure shows.

use std::path::Path;
use std::time::Instant;

use memmap2::MmapMut;
use mmjoin_env::Result;

/// One measured point of Fig. 1b.
#[derive(Clone, Copy, Debug)]
pub struct MapCostSample {
    /// Mapping size in blocks.
    pub blocks: u64,
    /// `newMap` seconds.
    pub new_map: f64,
    /// `openMap` seconds.
    pub open_map: f64,
    /// `deleteMap` seconds.
    pub delete_map: f64,
}

/// Measure setup costs for each size in `blocks_list` (block = `block_size`
/// bytes), averaging `iters` repetitions, inside `dir`.
pub fn measure_map_costs(
    dir: &Path,
    block_size: u64,
    blocks_list: &[u64],
    iters: u32,
) -> Result<Vec<MapCostSample>> {
    std::fs::create_dir_all(dir)?;
    let mut out = Vec::with_capacity(blocks_list.len());
    for &blocks in blocks_list {
        let bytes = blocks * block_size;
        let (mut t_new, mut t_open, mut t_del) = (0.0f64, 0.0f64, 0.0f64);
        for it in 0..iters {
            let path = dir.join(format!("mapcost-{blocks}-{it}"));

            // newMap: acquire disk space, build the mapping, touch every
            // page so the page table is actually populated (the paper's
            // cost "increases linearly … constructing the page table and
            // acquiring disk space").
            let t0 = Instant::now();
            let file = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .create_new(true)
                .open(&path)?;
            file.set_len(bytes)?;
            let mut map = unsafe { MmapMut::map_mut(&file)? };
            for page in map.chunks_mut(block_size as usize) {
                page[0] = 1;
            }
            t_new += t0.elapsed().as_secs_f64();
            map.flush()?;
            drop(map);
            drop(file);

            // openMap: map the existing area and touch it.
            let t0 = Instant::now();
            let file = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)?;
            let map = unsafe { MmapMut::map_mut(&file)? };
            let mut acc = 0u8;
            for page in map.chunks(block_size as usize) {
                acc = acc.wrapping_add(page[0]);
            }
            t_open += t0.elapsed().as_secs_f64();
            std::hint::black_box(acc);
            drop(map);
            drop(file);

            // deleteMap: destroy the mapping and the data.
            let t0 = Instant::now();
            std::fs::remove_file(&path)?;
            t_del += t0.elapsed().as_secs_f64();
        }
        out.push(MapCostSample {
            blocks,
            new_map: t_new / iters as f64,
            open_map: t_open / iters as f64,
            delete_map: t_del / iters as f64,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1b_orderings_hold() {
        let dir = std::env::temp_dir().join(format!("mmjoin-mapcost-{}", std::process::id()));
        let samples = measure_map_costs(&dir, 4096, &[64, 1024], 3).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        assert_eq!(samples.len(), 2);
        for s in &samples {
            // All three operations take observable time. The paper's
            // newMap > deleteMap ordering is a property of its 1996
            // filesystem; on modern page-cache-backed filesystems the
            // unlink (which frees every cached page) can exceed the
            // create, so only positivity and growth are asserted.
            assert!(s.new_map > 0.0 && s.open_map > 0.0 && s.delete_map > 0.0);
        }
        // Costs grow with size for the page-populating operations.
        assert!(samples[1].new_map > samples[0].new_map);
        assert!(samples[1].open_map > samples[0].open_map);
    }
}
