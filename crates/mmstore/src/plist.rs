//! A persistent pointer-based linked list inside a [`Segment`] — the
//! smallest interesting demonstration of the exact-positioning claim.
//!
//! Nodes store **raw absolute addresses** as their `next` links, exactly
//! as a C++ structure built in a µDatabase segment would (paper §2.1).
//! When the segment is exactly positioned on reopen, the list is
//! immediately traversable with zero pointer work; when it is relocated,
//! [`PersistentList::relocate`] walks the nodes once and patches the
//! links — making the cost the paper's design avoids explicit and
//! measurable.
//!
//! Node layout: `[0..8) next-address (absolute, 0 = end) [8..16) value`.

use mmjoin_env::{EnvError, Result};

use crate::arena::Placement;
use crate::segment::Segment;

const NODE_SIZE: u64 = 16;

/// A singly-linked list of `u64` values rooted in a segment's header.
pub struct PersistentList<'s> {
    seg: &'s mut Segment,
}

impl<'s> PersistentList<'s> {
    /// Adopt the segment's root as a list head. The segment must be
    /// exactly positioned (relocate first otherwise).
    pub fn new(seg: &'s mut Segment) -> Result<Self> {
        if seg.placement() == Placement::Relocated {
            return Err(EnvError::InvalidConfig(
                "segment is relocated; call PersistentList::relocate first".into(),
            ));
        }
        Ok(PersistentList { seg })
    }

    fn read_u64(&self, offset: u64) -> u64 {
        let data = self.seg.data();
        let i = (offset - crate::segment::HEADER_SIZE) as usize;
        u64::from_le_bytes(data[i..i + 8].try_into().expect("8 bytes"))
    }

    fn write_u64(&mut self, offset: u64, v: u64) {
        let i = (offset - crate::segment::HEADER_SIZE) as usize;
        self.seg.data_mut()[i..i + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Push a value at the head.
    pub fn push(&mut self, value: u64) -> Result<()> {
        let node_off = self.seg.alloc(NODE_SIZE, 8)?;
        let head_addr = if self.seg.root() == 0 {
            0
        } else {
            self.seg.addr_of(self.seg.root()) as u64
        };
        self.write_u64(node_off, head_addr);
        self.write_u64(node_off + 8, value);
        self.seg.set_root(node_off);
        Ok(())
    }

    /// Iterate values head-to-tail by chasing stored absolute pointers.
    pub fn values(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut off = self.seg.root();
        while off != 0 {
            out.push(self.read_u64(off + 8));
            let next_addr = self.read_u64(off) as usize;
            // 0 sentinel or foreign pointer ends the walk.
            off = self.seg.offset_of(next_addr).unwrap_or_default();
            if next_addr == 0 {
                break;
            }
        }
        out
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.values().len()
    }

    /// True if the list has no nodes.
    pub fn is_empty(&self) -> bool {
        self.seg.root() == 0
    }

    /// Patch every stored `next` pointer after a relocated open, then
    /// commit the new base. Returns the number of pointers rewritten.
    pub fn relocate(seg: &mut Segment) -> Result<usize> {
        let delta = seg.relocation_delta();
        if delta == 0 {
            seg.commit_relocation();
            return Ok(0);
        }
        let mut fixed = 0;
        let mut off = seg.root();
        while off != 0 {
            let i = (off - crate::segment::HEADER_SIZE) as usize;
            let stored = u64::from_le_bytes(seg.data()[i..i + 8].try_into().expect("8"));
            if stored == 0 {
                break;
            }
            let patched = (stored as i64 + delta as i64) as u64;
            seg.data_mut()[i..i + 8].copy_from_slice(&patched.to_le_bytes());
            fixed += 1;
            off = match seg.offset_of(patched as usize) {
                Some(o) => o,
                None => {
                    return Err(EnvError::InvalidConfig(
                        "list pointer escapes segment during relocation".into(),
                    ))
                }
            };
        }
        seg.commit_relocation();
        Ok(fixed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::SegmentArena;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mmjoin-plist-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn push_and_walk() {
        let arena = SegmentArena::reserve(0, 1 << 24).unwrap();
        let path = tmp("walk.seg");
        let mut seg = Segment::create(&arena, &path, 1 << 16).unwrap();
        {
            let mut list = PersistentList::new(&mut seg).unwrap();
            for v in [10, 20, 30] {
                list.push(v).unwrap();
            }
            assert_eq!(list.values(), vec![30, 20, 10]);
            assert_eq!(list.len(), 3);
            assert!(!list.is_empty());
        }
        drop(seg);
        Segment::delete(&path).unwrap();
    }

    #[test]
    fn survives_reopen_with_relocation() {
        let path = tmp("reloc.seg");
        {
            let arena = SegmentArena::reserve(0, 1 << 24).unwrap();
            let mut seg = Segment::create(&arena, &path, 1 << 16).unwrap();
            let mut list = PersistentList::new(&mut seg).unwrap();
            for v in 0..100 {
                list.push(v).unwrap();
            }
            seg.flush().unwrap();
        }
        {
            // Fresh arena at a different base: relocation required.
            let arena = SegmentArena::reserve(0, 1 << 24).unwrap();
            let mut seg = Segment::open(&arena, &path).unwrap();
            if seg.placement() == Placement::Relocated {
                assert!(PersistentList::new(&mut seg).is_err());
                let fixed = PersistentList::relocate(&mut seg).unwrap();
                // 100 nodes but the last stores the 0 sentinel.
                assert_eq!(fixed, 99);
            }
            let list = PersistentList::new(&mut seg).unwrap();
            let vals = list.values();
            assert_eq!(vals.len(), 100);
            assert_eq!(vals[0], 99);
            assert_eq!(vals[99], 0);
        }
        Segment::delete(&path).unwrap();
    }

    #[test]
    fn empty_list_is_empty() {
        let arena = SegmentArena::reserve(0, 1 << 24).unwrap();
        let path = tmp("empty.seg");
        let mut seg = Segment::create(&arena, &path, 4096).unwrap();
        let list = PersistentList::new(&mut seg).unwrap();
        assert!(list.is_empty());
        assert_eq!(list.values(), Vec::<u64>::new());
        drop(seg);
        Segment::delete(&path).unwrap();
    }
}
