//! The reserved virtual-address arena that stands in for hardware
//! segmentation.
//!
//! µDatabase's exact-positioning design (paper §2.1) gives every
//! persistent segment its own address space so that stored pointers
//! never need swizzling. Stock hardware has no segmentation, so — like
//! µDatabase — we mimic it with `mmap`: one large `PROT_NONE`
//! reservation at a *fixed, well-known* virtual address, inside which
//! segments are mapped at their recorded offsets with `MAP_FIXED`.
//! Because the arena base is part of the store's format, a pointer
//! stored in a segment in one process session is valid in the next.
//!
//! If the fixed base is unavailable (address already taken), the arena
//! falls back to a kernel-chosen base; segments opened there report
//! [`Placement::Relocated`] and their pointers must be adjusted — the
//! very cost the paper's design exists to avoid, surfaced explicitly.

use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};

use mmjoin_env::{EnvError, Result};

/// Default fixed base for the arena: high in the address space, clear of
/// typical heap/stack/library placement on 64-bit Linux.
pub const DEFAULT_ARENA_BASE: usize = 0x6000_0000_0000;

/// Default reservation: 64 GiB of address space (not memory).
pub const DEFAULT_ARENA_SIZE: usize = 64 << 30;

/// Whether a segment landed at its recorded address.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Placement {
    /// Mapped exactly where its pointers expect — zero fix-up.
    ExactlyPositioned,
    /// Mapped elsewhere; stored pointers need relocation before use.
    Relocated,
}

/// A reserved region of virtual address space carved into segment slots.
pub struct SegmentArena {
    base: usize,
    size: usize,
    next: AtomicUsize,
    /// True if the arena got its preferred fixed base.
    at_fixed_base: bool,
}

// SAFETY: the arena only hands out disjoint address ranges; the raw
// region pointer is never aliased mutably by the arena itself.
unsafe impl Send for SegmentArena {}
unsafe impl Sync for SegmentArena {}

impl SegmentArena {
    /// Reserve the default arena (fixed base, falling back if taken).
    pub fn reserve_default() -> Result<Self> {
        Self::reserve(DEFAULT_ARENA_BASE, DEFAULT_ARENA_SIZE)
    }

    /// Reserve `size` bytes of address space, preferring `preferred_base`
    /// (pass 0 for "kernel-chosen base, no exact positioning").
    pub fn reserve(preferred_base: usize, size: usize) -> Result<Self> {
        let page = page_size();
        if !preferred_base.is_multiple_of(page) || size == 0 {
            return Err(EnvError::InvalidConfig(
                "arena base must be page-aligned and size non-zero".into(),
            ));
        }
        if preferred_base == 0 {
            // No preference: never map at the null page (a privileged
            // process with mmap_min_addr = 0 would otherwise get it).
            return Self::reserve_anywhere(size);
        }
        // Try the fixed base first: exact positioning requires it.
        // SAFETY: MAP_FIXED_NOREPLACE never clobbers existing mappings;
        // a PROT_NONE, NORESERVE reservation commits no memory.
        let fixed = unsafe {
            libc::mmap(
                preferred_base as *mut libc::c_void,
                size,
                libc::PROT_NONE,
                libc::MAP_PRIVATE
                    | libc::MAP_ANONYMOUS
                    | libc::MAP_NORESERVE
                    | libc::MAP_FIXED_NOREPLACE,
                -1,
                0,
            )
        };
        if fixed != libc::MAP_FAILED {
            return Ok(SegmentArena {
                base: fixed as usize,
                size,
                next: AtomicUsize::new(0),
                at_fixed_base: fixed as usize == preferred_base,
            });
        }
        Self::reserve_anywhere(size)
    }

    /// Reserve at a kernel-chosen base: segments opened here that record
    /// a different base will report `Relocated`.
    fn reserve_anywhere(size: usize) -> Result<Self> {
        // SAFETY: kernel-chosen placement of a PROT_NONE reservation.
        let any = unsafe {
            libc::mmap(
                std::ptr::null_mut(),
                size,
                libc::PROT_NONE,
                libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_NORESERVE,
                -1,
                0,
            )
        };
        if any == libc::MAP_FAILED {
            return Err(EnvError::Io(io::Error::last_os_error()));
        }
        Ok(SegmentArena {
            base: any as usize,
            size,
            next: AtomicUsize::new(0),
            at_fixed_base: false,
        })
    }

    /// Arena base address.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Reserved bytes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// True if the preferred fixed base was obtained, i.e. recorded
    /// segment addresses will be honored.
    pub fn at_fixed_base(&self) -> bool {
        self.at_fixed_base
    }

    /// Claim a page-aligned slot of `bytes` bytes; returns its absolute
    /// address. Slots are never reused within a session (address-space
    /// bump allocation — 64-bit address space is the resource µDatabase
    /// spends to avoid pointer swizzling).
    pub fn claim(&self, bytes: usize) -> Result<usize> {
        let page = page_size();
        let len = bytes.div_ceil(page) * page;
        let mut cur = self.next.load(Ordering::Relaxed);
        loop {
            let end = cur
                .checked_add(len)
                .ok_or_else(|| EnvError::InvalidConfig("arena slot overflow".into()))?;
            if end > self.size {
                return Err(EnvError::InvalidConfig(format!(
                    "arena exhausted: need {len} bytes, {} remain",
                    self.size - cur
                )));
            }
            match self
                .next
                .compare_exchange(cur, end, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return Ok(self.base + cur),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Claim a slot at a specific absolute address (used when reopening
    /// a segment that records its base). Fails if the address is outside
    /// the arena or below the bump pointer... i.e. potentially occupied.
    pub fn claim_at(&self, addr: usize, bytes: usize) -> Result<usize> {
        let page = page_size();
        let len = bytes.div_ceil(page) * page;
        if !addr.is_multiple_of(page) {
            return Err(EnvError::InvalidConfig("unaligned segment base".into()));
        }
        // A corrupted header can record an absurd base; the sum must not
        // wrap (debug builds would otherwise panic on overflow).
        let end = addr.checked_add(len).ok_or_else(|| {
            EnvError::InvalidConfig(format!("segment range {addr:#x}+{len} overflows"))
        })?;
        if addr < self.base || end > self.base + self.size {
            return Err(EnvError::InvalidConfig(format!(
                "recorded base {addr:#x} outside arena [{:#x}, {:#x})",
                self.base,
                self.base + self.size
            )));
        }
        let off = addr - self.base;
        // Advance the bump pointer past this slot if needed, so future
        // claims never collide with it.
        let mut cur = self.next.load(Ordering::Relaxed);
        loop {
            if off < cur {
                return Err(EnvError::InvalidConfig(format!(
                    "recorded base {addr:#x} overlaps already-claimed space"
                )));
            }
            match self
                .next
                .compare_exchange(cur, off + len, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return Ok(addr),
                Err(actual) => cur = actual,
            }
        }
    }
}

impl Drop for SegmentArena {
    fn drop(&mut self) {
        // SAFETY: unmapping our own reservation.
        unsafe {
            libc::munmap(self.base as *mut libc::c_void, self.size);
        }
    }
}

/// System page size.
pub fn page_size() -> usize {
    // SAFETY: sysconf is always safe to call.
    unsafe { libc::sysconf(libc::_SC_PAGESIZE) as usize }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_claim_slots() {
        let arena = SegmentArena::reserve(0, 1 << 20)
            .unwrap_or_else(|_| SegmentArena::reserve_default().expect("default arena"));
        let a = arena.claim(1000).unwrap();
        let b = arena.claim(1000).unwrap();
        assert_ne!(a, b);
        assert_eq!(a % page_size(), 0);
        assert_eq!(b % page_size(), 0);
        assert!(b >= a + page_size());
    }

    #[test]
    fn arena_exhaustion_reported() {
        let arena = SegmentArena::reserve(0, 2 * page_size()).unwrap();
        arena.claim(page_size()).unwrap();
        arena.claim(page_size()).unwrap();
        assert!(arena.claim(1).is_err());
    }

    #[test]
    fn claim_at_rejects_overlap_and_outside() {
        let arena = SegmentArena::reserve(0, 64 * page_size()).unwrap();
        let a = arena.claim(page_size()).unwrap();
        // Reclaiming the same address must fail (overlap).
        assert!(arena.claim_at(a, page_size()).is_err());
        // Outside the arena must fail.
        assert!(arena.claim_at(arena.base() + arena.size(), 1).is_err());
        // A fresh address past the bump pointer succeeds.
        let ahead = arena.base() + 10 * page_size();
        let got = arena.claim_at(ahead, page_size()).unwrap();
        assert_eq!(got, ahead);
        // And ordinary claims continue past it.
        let next = arena.claim(page_size()).unwrap();
        assert!(next >= ahead + page_size());
    }

    #[test]
    fn fixed_base_is_attempted() {
        // The default base is usually free in a test process; if we got
        // it, segments will be exactly positioned.
        let arena = SegmentArena::reserve_default().unwrap();
        if arena.at_fixed_base() {
            assert_eq!(arena.base(), DEFAULT_ARENA_BASE);
        }
        // Either way the arena works.
        assert!(arena.claim(4096).is_ok());
    }
}
