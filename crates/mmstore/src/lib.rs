//! # mmjoin-mmstore — a real memory-mapped single-level store
//!
//! The µDatabase-style substrate of the reproduction (paper §2.1):
//!
//! * [`arena`]/[`segment`]: persistent segments mapped at recorded fixed
//!   virtual addresses inside a reserved arena, so intra-segment raw
//!   pointers survive process restarts with **zero** swizzling — the
//!   "exact positioning of data" approach, with explicit detection and
//!   repair when exact positioning fails;
//! * [`plist`]/[`btree`]/[`rtree`]/[`pgraph`]: pointer-based persistent
//!   structures (a linked list, a B-Tree, an R-Tree and a directed
//!   graph — the full §1 list) demonstrating — and testing — that
//!   claim, the way the paper's reference \[11\] built them in
//!   µDatabase;
//! * [`mod@env`]: [`env::MmapEnv`], the [`mmjoin_env::Env`] implementation
//!   over real `mmap`-ed files with real `Sproc` threads — the
//!   functional-validation twin of the simulator;
//! * [`setup_cost`]: wall-clock measurement of `newMap`/`openMap`/
//!   `deleteMap` versus mapping size (Fig. 1b).

pub mod arena;
pub mod btree;
pub mod env;
pub mod pgraph;
pub mod plist;
pub mod rtree;
pub mod segment;
pub mod setup_cost;

pub use arena::{page_size, Placement, SegmentArena, DEFAULT_ARENA_BASE, DEFAULT_ARENA_SIZE};
pub use btree::PersistentBTree;
pub use env::{MmapEnv, MmapEnvConfig, MmapFile};
pub use pgraph::{NodeRef, PersistentGraph};
pub use plist::PersistentList;
pub use rtree::{PersistentRTree, Rect};
pub use segment::{Segment, HEADER_SIZE};
pub use setup_cost::{measure_map_costs, MapCostSample};
