//! A persistent pointer-based B-Tree inside a [`Segment`].
//!
//! The paper opens by leaning on Buhr, Goel & Wai \[11\]: "data
//! structures such as B-Trees, R-Trees and graph data structures can be
//! implemented as efficiently and effectively in this environment as in
//! a traditional environment using explicit I/O." This module is that
//! claim made concrete: a B-Tree whose child links are **raw absolute
//! addresses** into the mapped segment. With exact positioning, a tree
//! built in one process session is searched in the next with zero
//! deserialization and zero pointer fix-up; if the segment had to be
//! relocated, [`PersistentBTree::relocate`] patches every child link in
//! one pass.
//!
//! Node layout (`NODE_SIZE` bytes, 8-aligned):
//!
//! ```text
//! [0..2)   n_keys: u16
//! [2..4)   is_leaf: u16 (1 = leaf)
//! [4..8)   padding
//! [8..8+16·8)              keys[16]
//! [8+128..8+128+17·8)      leaf: values[16] (+1 slot unused)
//!                          internal: child addresses[17]
//! ```

use mmjoin_env::{EnvError, Result};

use crate::arena::Placement;
use crate::segment::{Segment, HEADER_SIZE};

/// Maximum keys per node.
const ORDER: usize = 16;
/// Minimum keys in a non-root node after a split.
const MIN_KEYS: usize = ORDER / 2;
/// Bytes per node.
const NODE_SIZE: u64 = 8 + (ORDER as u64) * 8 + (ORDER as u64 + 1) * 8;

const OFF_NKEYS: u64 = 0;
const OFF_LEAF: u64 = 2;
const OFF_KEYS: u64 = 8;
const OFF_VALS: u64 = 8 + (ORDER as u64) * 8;

/// A `u64 → u64` B-Tree rooted in a segment's root slot.
pub struct PersistentBTree<'s> {
    seg: &'s mut Segment,
}

impl<'s> PersistentBTree<'s> {
    /// Adopt (or initialize) the segment's root as a B-Tree. The
    /// segment must be exactly positioned.
    pub fn new(seg: &'s mut Segment) -> Result<Self> {
        if seg.placement() == Placement::Relocated {
            return Err(EnvError::InvalidConfig(
                "segment is relocated; call PersistentBTree::relocate first".into(),
            ));
        }
        let mut t = PersistentBTree { seg };
        if t.seg.root() == 0 {
            let root = t.alloc_node(true)?;
            t.seg.set_root(root);
        }
        Ok(t)
    }

    // ---- raw node field access -------------------------------------

    fn read_u16(&self, node: u64, off: u64) -> u16 {
        let i = (node + off - HEADER_SIZE) as usize;
        u16::from_le_bytes(self.seg.data()[i..i + 2].try_into().expect("2 bytes"))
    }

    fn write_u16(&mut self, node: u64, off: u64, v: u16) {
        let i = (node + off - HEADER_SIZE) as usize;
        self.seg.data_mut()[i..i + 2].copy_from_slice(&v.to_le_bytes());
    }

    fn read_u64(&self, node: u64, off: u64) -> u64 {
        let i = (node + off - HEADER_SIZE) as usize;
        u64::from_le_bytes(self.seg.data()[i..i + 8].try_into().expect("8 bytes"))
    }

    fn write_u64(&mut self, node: u64, off: u64, v: u64) {
        let i = (node + off - HEADER_SIZE) as usize;
        self.seg.data_mut()[i..i + 8].copy_from_slice(&v.to_le_bytes());
    }

    fn n_keys(&self, node: u64) -> usize {
        self.read_u16(node, OFF_NKEYS) as usize
    }

    fn set_n_keys(&mut self, node: u64, n: usize) {
        self.write_u16(node, OFF_NKEYS, n as u16);
    }

    fn is_leaf(&self, node: u64) -> bool {
        self.read_u16(node, OFF_LEAF) == 1
    }

    fn key(&self, node: u64, i: usize) -> u64 {
        self.read_u64(node, OFF_KEYS + (i as u64) * 8)
    }

    fn set_key(&mut self, node: u64, i: usize, k: u64) {
        self.write_u64(node, OFF_KEYS + (i as u64) * 8, k);
    }

    fn val(&self, node: u64, i: usize) -> u64 {
        self.read_u64(node, OFF_VALS + (i as u64) * 8)
    }

    fn set_val(&mut self, node: u64, i: usize, v: u64) {
        self.write_u64(node, OFF_VALS + (i as u64) * 8, v);
    }

    /// Child `i` as a segment offset (stored as an absolute address —
    /// the exact-positioning payoff).
    fn child(&self, node: u64, i: usize) -> u64 {
        let addr = self.read_u64(node, OFF_VALS + (i as u64) * 8) as usize;
        self.seg
            .offset_of(addr)
            .expect("child pointer inside segment")
    }

    fn set_child(&mut self, node: u64, i: usize, child_off: u64) {
        let addr = self.seg.addr_of(child_off) as u64;
        self.write_u64(node, OFF_VALS + (i as u64) * 8, addr);
    }

    fn alloc_node(&mut self, leaf: bool) -> Result<u64> {
        let off = self.seg.alloc(NODE_SIZE, 8)?;
        let i = (off - HEADER_SIZE) as usize;
        self.seg.data_mut()[i..i + NODE_SIZE as usize].fill(0);
        self.write_u16(off, OFF_LEAF, leaf as u16);
        Ok(off)
    }

    // ---- operations --------------------------------------------------

    /// Look up `key`.
    pub fn get(&self, key: u64) -> Option<u64> {
        let mut node = self.seg.root();
        loop {
            let n = self.n_keys(node);
            // Position of the first key ≥ `key`.
            let mut i = 0;
            while i < n && self.key(node, i) < key {
                i += 1;
            }
            if i < n && self.key(node, i) == key && self.is_leaf(node) {
                return Some(self.val(node, i));
            }
            if self.is_leaf(node) {
                return None;
            }
            // Internal nodes route only; equal keys descend right.
            if i < n && self.key(node, i) == key {
                i += 1;
            }
            node = self.child(node, i);
        }
    }

    /// Insert or overwrite.
    pub fn insert(&mut self, key: u64, value: u64) -> Result<()> {
        let root = self.seg.root();
        if self.n_keys(root) == ORDER {
            // Preemptive root split.
            let new_root = self.alloc_node(false)?;
            self.set_child(new_root, 0, root);
            self.split_child(new_root, 0)?;
            self.seg.set_root(new_root);
        }
        self.insert_nonfull(self.seg.root(), key, value)
    }

    fn insert_nonfull(&mut self, mut node: u64, key: u64, value: u64) -> Result<()> {
        loop {
            let n = self.n_keys(node);
            if self.is_leaf(node) {
                let mut i = 0;
                while i < n && self.key(node, i) < key {
                    i += 1;
                }
                if i < n && self.key(node, i) == key {
                    self.set_val(node, i, value); // overwrite
                    return Ok(());
                }
                // Shift right and insert.
                for j in (i..n).rev() {
                    let (k, v) = (self.key(node, j), self.val(node, j));
                    self.set_key(node, j + 1, k);
                    self.set_val(node, j + 1, v);
                }
                self.set_key(node, i, key);
                self.set_val(node, i, value);
                self.set_n_keys(node, n + 1);
                return Ok(());
            }
            let mut i = 0;
            while i < n && self.key(node, i) < key {
                i += 1;
            }
            if i < n && self.key(node, i) == key {
                i += 1;
            }
            let mut target = self.child(node, i);
            if self.n_keys(target) == ORDER {
                self.split_child(node, i)?;
                // The separator moved up; re-route. Equal keys descend
                // right (the separator itself now lives in the right
                // leaf).
                if key >= self.key(node, i) {
                    target = self.child(node, i + 1);
                }
            }
            node = target;
        }
    }

    /// Split the full child `i` of `parent`.
    ///
    /// Internal nodes split B-tree style: the median key is hoisted out
    /// entirely. Leaves split B⁺-tree style: the separator key *moves to
    /// the right leaf* (and is copied up as a router), so its value
    /// stays reachable under the "equal keys descend right" routing
    /// rule.
    fn split_child(&mut self, parent: u64, i: usize) -> Result<()> {
        let full = self.child(parent, i);
        let leaf = self.is_leaf(full);
        let right = self.alloc_node(leaf)?;
        let separator = self.key(full, MIN_KEYS);

        let from = if leaf { MIN_KEYS } else { MIN_KEYS + 1 };
        let moved = ORDER - from;
        for j in 0..moved {
            let k = self.key(full, from + j);
            self.set_key(right, j, k);
        }
        if leaf {
            for j in 0..moved {
                let v = self.read_u64(full, OFF_VALS + ((from + j) as u64) * 8);
                self.write_u64(right, OFF_VALS + (j as u64) * 8, v);
            }
        } else {
            // Children from..=ORDER move (one more than the keys).
            for j in 0..=moved {
                let v = self.read_u64(full, OFF_VALS + ((from + j) as u64) * 8);
                self.write_u64(right, OFF_VALS + (j as u64) * 8, v);
            }
        }
        self.set_n_keys(right, moved);
        self.set_n_keys(full, MIN_KEYS);

        // Shift the parent's keys/children right of slot i.
        let pn = self.n_keys(parent);
        for j in (i..pn).rev() {
            let k = self.key(parent, j);
            self.set_key(parent, j + 1, k);
        }
        for j in ((i + 1)..=pn).rev() {
            let c = self.read_u64(parent, OFF_VALS + (j as u64) * 8);
            self.write_u64(parent, OFF_VALS + ((j + 1) as u64) * 8, c);
        }
        self.set_key(parent, i, separator);
        self.set_child(parent, i + 1, right);
        self.set_n_keys(parent, pn + 1);
        Ok(())
    }

    /// All `(key, value)` pairs in ascending key order.
    pub fn iter_all(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        self.walk(self.seg.root(), &mut out);
        out
    }

    fn walk(&self, node: u64, out: &mut Vec<(u64, u64)>) {
        let n = self.n_keys(node);
        if self.is_leaf(node) {
            for i in 0..n {
                out.push((self.key(node, i), self.val(node, i)));
            }
            return;
        }
        for i in 0..n {
            self.walk(self.child(node, i), out);
        }
        self.walk(self.child(node, n), out);
    }

    /// Number of stored pairs.
    pub fn len(&self) -> usize {
        self.iter_all().len()
    }

    /// True if no pairs are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Patch every child pointer after a relocated open, then rebind
    /// the segment base. Returns the number of pointers rewritten.
    pub fn relocate(seg: &mut Segment) -> Result<usize> {
        let delta = seg.relocation_delta();
        if delta == 0 {
            seg.commit_relocation();
            return Ok(0);
        }
        let root = seg.root();
        let mut fixed = 0;
        if root != 0 {
            let mut stack = vec![root];
            while let Some(node) = stack.pop() {
                let base = (node - HEADER_SIZE) as usize;
                let hdr = &seg.data()[base..base + 4];
                let n = u16::from_le_bytes(hdr[0..2].try_into().expect("2")) as usize;
                let leaf = u16::from_le_bytes(hdr[2..4].try_into().expect("2")) == 1;
                if leaf {
                    continue;
                }
                for i in 0..=n {
                    let ci = base + (OFF_VALS + (i as u64) * 8) as usize;
                    let stored = u64::from_le_bytes(seg.data()[ci..ci + 8].try_into().expect("8"));
                    let patched = (stored as i64 + delta as i64) as u64;
                    seg.data_mut()[ci..ci + 8].copy_from_slice(&patched.to_le_bytes());
                    fixed += 1;
                    let child_off = seg.offset_of(patched as usize).ok_or_else(|| {
                        EnvError::InvalidConfig(
                            "child pointer escapes segment during relocation".into(),
                        )
                    })?;
                    stack.push(child_off);
                }
            }
        }
        seg.commit_relocation();
        Ok(fixed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::SegmentArena;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mmjoin-btree-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn insert_and_get_small() {
        let arena = SegmentArena::reserve(0, 1 << 24).unwrap();
        let path = tmp("small.seg");
        let mut seg = Segment::create(&arena, &path, 1 << 18).unwrap();
        let mut t = PersistentBTree::new(&mut seg).unwrap();
        assert!(t.is_empty());
        for k in [5u64, 1, 9, 3, 7] {
            t.insert(k, k * 10).unwrap();
        }
        for k in [5u64, 1, 9, 3, 7] {
            assert_eq!(t.get(k), Some(k * 10));
        }
        assert_eq!(t.get(2), None);
        assert_eq!(
            t.iter_all(),
            vec![(1, 10), (3, 30), (5, 50), (7, 70), (9, 90)]
        );
        drop(seg);
        Segment::delete(&path).unwrap();
    }

    #[test]
    fn overwrite_updates_value() {
        let arena = SegmentArena::reserve(0, 1 << 24).unwrap();
        let path = tmp("over.seg");
        let mut seg = Segment::create(&arena, &path, 1 << 18).unwrap();
        let mut t = PersistentBTree::new(&mut seg).unwrap();
        t.insert(42, 1).unwrap();
        t.insert(42, 2).unwrap();
        assert_eq!(t.get(42), Some(2));
        assert_eq!(t.len(), 1);
        drop(seg);
        Segment::delete(&path).unwrap();
    }

    #[test]
    fn thousands_of_inserts_stay_sorted() {
        let arena = SegmentArena::reserve(0, 1 << 26).unwrap();
        let path = tmp("big.seg");
        let mut seg = Segment::create(&arena, &path, 1 << 22).unwrap();
        let mut t = PersistentBTree::new(&mut seg).unwrap();
        let n = 5_000u64;
        // Insert in a scrambled order.
        for i in 0..n {
            let k = (i * 2_654_435_761) % 1_000_003;
            t.insert(k, k ^ 0xABCD).unwrap();
        }
        let all = t.iter_all();
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "sorted unique");
        for &(k, v) in &all {
            assert_eq!(v, k ^ 0xABCD);
            assert_eq!(t.get(k), Some(v));
        }
        drop(seg);
        Segment::delete(&path).unwrap();
    }

    #[test]
    fn tree_persists_across_sessions_with_exact_positioning() {
        let path = tmp("persist.seg");
        {
            let arena = SegmentArena::reserve_default().unwrap();
            if !arena.at_fixed_base() {
                return;
            }
            let mut seg = Segment::create(&arena, &path, 1 << 20).unwrap();
            let mut t = PersistentBTree::new(&mut seg).unwrap();
            for k in 0..2_000u64 {
                t.insert(k * 7 % 5_001, k).unwrap();
            }
            seg.flush().unwrap();
        }
        {
            let arena = SegmentArena::reserve_default().unwrap();
            assert!(arena.at_fixed_base());
            let mut seg = Segment::open(&arena, &path).unwrap();
            assert_eq!(seg.placement(), Placement::ExactlyPositioned);
            // Zero pointer work: search immediately.
            let t = PersistentBTree::new(&mut seg).unwrap();
            assert_eq!(t.get(7), Some(1));
            assert!(t.len() > 1_900);
        }
        Segment::delete(&path).unwrap();
    }

    #[test]
    fn relocation_repairs_child_pointers() {
        let path = tmp("reloc.seg");
        {
            let arena = SegmentArena::reserve(0, 1 << 26).unwrap();
            let mut seg = Segment::create(&arena, &path, 1 << 20).unwrap();
            let mut t = PersistentBTree::new(&mut seg).unwrap();
            for k in 0..1_000u64 {
                t.insert(k, k + 1).unwrap();
            }
            seg.flush().unwrap();
        }
        {
            let arena = SegmentArena::reserve(0, 1 << 26).unwrap();
            let mut seg = Segment::open(&arena, &path).unwrap();
            if seg.placement() == Placement::Relocated {
                assert!(PersistentBTree::new(&mut seg).is_err());
                let fixed = PersistentBTree::relocate(&mut seg).unwrap();
                assert!(fixed > 0, "a thousand keys need internal nodes");
            }
            let t = PersistentBTree::new(&mut seg).unwrap();
            for k in [0u64, 1, 500, 999] {
                assert_eq!(t.get(k), Some(k + 1));
            }
            assert_eq!(t.len(), 1_000);
        }
        Segment::delete(&path).unwrap();
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        #[test]
        fn matches_std_btreemap(ops in proptest::collection::vec((0u64..500, 0u64..1_000_000), 1..400)) {
            let arena = SegmentArena::reserve(0, 1 << 26).unwrap();
            let path = tmp(&format!("prop-{:x}.seg", ops.len() * 31 + ops.first().map(|o| o.0 as usize).unwrap_or(0)));
            let mut seg = Segment::create(&arena, &path, 1 << 21).unwrap();
            let mut t = PersistentBTree::new(&mut seg).unwrap();
            let mut reference = std::collections::BTreeMap::new();
            for (k, v) in ops {
                t.insert(k, v).unwrap();
                reference.insert(k, v);
            }
            let got = t.iter_all();
            let expect: Vec<(u64, u64)> = reference.into_iter().collect();
            proptest::prop_assert_eq!(got, expect);
            drop(seg);
            Segment::delete(&path).unwrap();
        }
    }
}
