//! `MmapEnv`: the real memory-mapped environment.
//!
//! Files live in per-disk directories under a root path and are mapped
//! read/write with `mmap`; reads and writes are plain memory accesses —
//! the operating system's paging does the I/O, exactly as in the
//! paper's µDatabase test bed. Each `S` partition is served by a real
//! `Sproc` OS thread behind a channel, mirroring the shared-buffer
//! protocol.
//!
//! Cost-declaration hooks ([`mmjoin_env::Env::cpu`] etc.) only count
//! events here — the costs are physically incurred. Clocks are wall
//! time.
//!
//! # Safety
//!
//! File contents are accessed through `memmap2::MmapRaw`. Two invariants
//! make the raw accesses sound:
//!
//! 1. every access is bounds-checked against the mapping length;
//! 2. concurrent writers never overlap byte ranges — guaranteed by the
//!    join algorithms' chunk/slot reservation discipline (each writer
//!    owns the slots it reserved), the same discipline any shared-mmap
//!    program needs.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};
use memmap2::MmapRaw;
use mmjoin_env::trace::{null_sink, MapOp, TraceEvent, TraceSink};
use mmjoin_env::{
    CpuOp, DiskId, Env, EnvError, EnvStats, FileOps, MoveKind, ProcId, ProcStats, Result, SCatalog,
    SPtr,
};
use parking_lot::{Mutex, RwLock};

/// Configuration of a real memory-mapped environment.
#[derive(Clone, Debug)]
pub struct MmapEnvConfig {
    /// Directory holding one `disk<j>` subdirectory per modelled disk.
    pub root: PathBuf,
    /// `D`.
    pub num_disks: u32,
    /// Page size reported to the algorithms (buffer sizing); the OS page
    /// size governs actual faulting.
    pub page_size: u64,
}

struct MappedFile {
    name: String,
    path: PathBuf,
    map: MmapRaw,
    len: u64,
    disk: DiskId,
    // Keep the file open for the mapping's lifetime.
    _file: std::fs::File,
}

impl MappedFile {
    fn check(&self, offset: u64, len: u64) -> Result<()> {
        if offset.checked_add(len).is_none_or(|end| end > self.len) {
            return Err(EnvError::OutOfBounds {
                file: self.name.clone(),
                offset,
                len,
                size: self.len,
            });
        }
        Ok(())
    }

    fn read(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.check(offset, buf.len() as u64)?;
        // SAFETY: bounds checked; see module invariants.
        unsafe {
            std::ptr::copy_nonoverlapping(
                self.map.as_ptr().add(offset as usize),
                buf.as_mut_ptr(),
                buf.len(),
            );
        }
        Ok(())
    }

    fn write(&self, offset: u64, buf: &[u8]) -> Result<()> {
        self.check(offset, buf.len() as u64)?;
        // SAFETY: bounds checked; writers never overlap (module
        // invariant 2).
        unsafe {
            std::ptr::copy_nonoverlapping(
                buf.as_ptr(),
                self.map.as_mut_ptr().add(offset as usize),
                buf.len(),
            );
        }
        Ok(())
    }
}

struct SRequest {
    ptrs: Vec<SPtr>,
    reply: Sender<Vec<u8>>,
}

struct SService {
    senders: Vec<Sender<SRequest>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    part_bytes: u64,
    s_obj_size: u32,
}

struct Inner {
    cfg: MmapEnvConfig,
    files: RwLock<HashMap<String, Arc<MappedFile>>>,
    procs: Vec<Mutex<ProcStats>>,
    origin: Mutex<Instant>,
    s_service: Mutex<Option<SService>>,
    sink: RwLock<Arc<dyn TraceSink>>,
}

/// The real memory-mapped environment (cheap to clone).
#[derive(Clone)]
pub struct MmapEnv {
    inner: Arc<Inner>,
}

/// Handle to one mapped file.
#[derive(Clone)]
pub struct MmapFile {
    file: Arc<MappedFile>,
}

impl MmapEnv {
    /// Create the environment, laying out per-disk directories.
    pub fn new(cfg: MmapEnvConfig) -> Result<Self> {
        if cfg.num_disks == 0 {
            return Err(EnvError::InvalidConfig("num_disks must be > 0".into()));
        }
        for j in 0..cfg.num_disks {
            std::fs::create_dir_all(cfg.root.join(format!("disk{j}")))?;
        }
        let procs = (0..ProcId::slots(cfg.num_disks))
            .map(|_| Mutex::new(ProcStats::default()))
            .collect();
        Ok(MmapEnv {
            inner: Arc::new(Inner {
                cfg,
                files: RwLock::new(HashMap::new()),
                procs,
                origin: Mutex::new(Instant::now()),
                s_service: Mutex::new(None),
                sink: RwLock::new(null_sink()),
            }),
        })
    }

    /// Open the environment over an existing root, adopting every file
    /// found in the per-disk directories into the live file table — the
    /// recovery-on-open path. A plain [`MmapEnv::new`] only knows about
    /// files created through it; after a crash, the files of the previous
    /// process are still on disk but invisible to `open_file`/
    /// `list_files`/`delete_file`. `recover` re-maps them so journal
    /// replay can enumerate, reopen, and garbage-collect them.
    ///
    /// Returns the environment plus the adopted file names (sorted).
    /// File lengths are taken from filesystem metadata; a file created
    /// with zero logical bytes reports its one-page on-disk minimum.
    pub fn recover(cfg: MmapEnvConfig) -> Result<(Self, Vec<String>)> {
        let env = MmapEnv::new(cfg)?;
        let mut adopted = Vec::new();
        for j in 0..env.inner.cfg.num_disks {
            let disk = DiskId(j);
            let dir = env.inner.cfg.root.join(format!("disk{j}"));
            for entry in std::fs::read_dir(&dir)? {
                let entry = entry?;
                if !entry.file_type()?.is_file() {
                    continue;
                }
                let name = entry.file_name().to_string_lossy().into_owned();
                let path = entry.path();
                let file = std::fs::OpenOptions::new()
                    .read(true)
                    .write(true)
                    .open(&path)?;
                let len = file.metadata()?.len();
                let map = MmapRaw::map_raw(&file)?;
                let mapped = Arc::new(MappedFile {
                    name: name.clone(),
                    path,
                    map,
                    len,
                    disk,
                    _file: file,
                });
                // First adoption wins if the same name somehow exists on
                // two disks (the workspace naming convention prevents
                // this; duplicates would be orphans either way).
                env.inner
                    .files
                    .write()
                    .entry(name.clone())
                    .or_insert(mapped);
                adopted.push(name);
            }
        }
        adopted.sort();
        Ok((env, adopted))
    }

    fn path_of(&self, name: &str, disk: DiskId) -> PathBuf {
        self.inner
            .cfg
            .root
            .join(format!("disk{}", disk.0))
            .join(name)
    }

    fn bump_map_ops(&self, proc: ProcId) {
        self.inner.procs[proc.0 as usize].lock().map_ops += 1;
    }

    /// Install a structured trace sink (`mmjoin_env::trace`). Map
    /// setup/teardown events from this environment and pass events from
    /// the join algorithms flow to it, stamped with wall seconds since
    /// the environment's origin. Event payloads match `SimEnv`'s
    /// byte-for-byte, so cross-environment sequences compare equal.
    pub fn set_trace_sink(&self, sink: Arc<dyn TraceSink>) {
        *self.inner.sink.write() = sink;
    }
}

impl FileOps for MmapFile {
    fn len(&self) -> u64 {
        self.file.len
    }

    fn read_at(&self, _proc: ProcId, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.file.read(offset, buf)
    }

    fn write_at(&self, _proc: ProcId, offset: u64, buf: &[u8]) -> Result<()> {
        self.file.write(offset, buf)
    }

    fn sync(&self, _proc: ProcId) -> Result<()> {
        // `msync(MS_SYNC)` over the whole mapping: on return, every
        // prior write through this handle is durable — the primitive the
        // journal's flush-before-commit ordering contract builds on.
        self.file.map.flush()?;
        Ok(())
    }
}

impl Env for MmapEnv {
    type File = MmapFile;

    fn page_size(&self) -> u64 {
        self.inner.cfg.page_size
    }

    fn num_disks(&self) -> u32 {
        self.inner.cfg.num_disks
    }

    fn create_file(
        &self,
        proc: ProcId,
        name: &str,
        disk: DiskId,
        bytes: u64,
    ) -> Result<Self::File> {
        if disk.0 >= self.inner.cfg.num_disks {
            return Err(EnvError::InvalidConfig(format!("no such disk {disk}")));
        }
        {
            let files = self.inner.files.read();
            if files.contains_key(name) {
                return Err(EnvError::AlreadyExists(name.into()));
            }
        }
        let path = self.path_of(name, disk);
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        // Map at least one page so empty files still map.
        file.set_len(bytes.max(1))?;
        let map = MmapRaw::map_raw(&file)?;
        let mapped = Arc::new(MappedFile {
            name: name.to_string(),
            path,
            map,
            len: bytes,
            disk,
            _file: file,
        });
        self.inner
            .files
            .write()
            .insert(name.to_string(), mapped.clone());
        self.bump_map_ops(proc);
        self.trace(
            proc,
            TraceEvent::MapSetup {
                proc: proc.0,
                op: MapOp::New,
                name: name.to_string(),
                disk: disk.0,
                bytes,
            },
        );
        Ok(MmapFile { file: mapped })
    }

    fn open_file(&self, proc: ProcId, name: &str) -> Result<Self::File> {
        let file = self
            .inner
            .files
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| EnvError::NotFound(name.into()))?;
        self.bump_map_ops(proc);
        self.trace(
            proc,
            TraceEvent::MapSetup {
                proc: proc.0,
                op: MapOp::Open,
                name: name.to_string(),
                disk: file.disk.0,
                bytes: file.len,
            },
        );
        Ok(MmapFile { file })
    }

    fn delete_file(&self, proc: ProcId, name: &str) -> Result<()> {
        let file = self
            .inner
            .files
            .write()
            .remove(name)
            .ok_or_else(|| EnvError::NotFound(name.into()))?;
        std::fs::remove_file(&file.path)?;
        self.bump_map_ops(proc);
        self.trace(
            proc,
            TraceEvent::MapTeardown {
                proc: proc.0,
                name: name.to_string(),
                disk: file.disk.0,
            },
        );
        Ok(())
    }

    fn list_files(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.files.read().keys().cloned().collect();
        names.sort();
        names
    }

    fn cpu(&self, proc: ProcId, op: CpuOp, count: u64) {
        self.inner.procs[proc.0 as usize].lock().cpu_ops[op.index()] += count;
    }

    fn move_bytes(&self, proc: ProcId, kind: MoveKind, bytes: u64) {
        self.inner.procs[proc.0 as usize].lock().move_bytes[kind.index()] += bytes;
    }

    fn context_switches(&self, proc: ProcId, count: u64) {
        self.inner.procs[proc.0 as usize].lock().ctx_switches += count;
    }

    fn register_s(&self, catalog: SCatalog) -> Result<()> {
        if catalog.num_parts() != self.inner.cfg.num_disks {
            return Err(EnvError::BadSRequest(format!(
                "catalog has {} partitions, environment has {} disks",
                catalog.num_parts(),
                self.inner.cfg.num_disks
            )));
        }
        let mut senders = Vec::new();
        let mut handles = Vec::new();
        for (j, name) in catalog.part_files.iter().enumerate() {
            let file = self
                .inner
                .files
                .read()
                .get(name)
                .cloned()
                .ok_or_else(|| EnvError::NotFound(name.clone()))?;
            let (tx, rx): (Sender<SRequest>, Receiver<SRequest>) = unbounded();
            let part_bytes = catalog.part_bytes;
            let obj = catalog.s_obj_size as u64;
            let handle = std::thread::Builder::new()
                .name(format!("sproc{j}"))
                .spawn(move || {
                    // The Sproc loop: receive a batch of pointers, copy
                    // the referenced objects into the reply buffer (the
                    // "shared memory" of the protocol), send it back.
                    while let Ok(req) = rx.recv() {
                        let mut out = Vec::with_capacity(req.ptrs.len() * obj as usize);
                        let mut ok = true;
                        for ptr in &req.ptrs {
                            let off = ptr.offset(part_bytes);
                            let start = out.len();
                            out.resize(start + obj as usize, 0);
                            if file.read(off, &mut out[start..]).is_err() {
                                ok = false;
                                break;
                            }
                        }
                        if !ok {
                            out.clear();
                        }
                        let _ = req.reply.send(out);
                    }
                })
                .map_err(|e| EnvError::Io(std::io::Error::other(e)))?;
            senders.push(tx);
            handles.push(handle);
        }
        *self.inner.s_service.lock() = Some(SService {
            senders,
            handles,
            part_bytes: catalog.part_bytes,
            s_obj_size: catalog.s_obj_size,
        });
        Ok(())
    }

    fn s_fetch_batch(
        &self,
        proc: ProcId,
        spart: u32,
        ptrs: &[SPtr],
        req_bytes_each: u64,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        if ptrs.is_empty() {
            return Ok(());
        }
        let (tx, part_bytes, obj) = {
            let guard = self.inner.s_service.lock();
            let s = guard
                .as_ref()
                .ok_or_else(|| EnvError::BadSRequest("no S catalog registered".into()))?;
            let tx = s
                .senders
                .get(spart as usize)
                .ok_or_else(|| EnvError::BadSRequest(format!("no S partition {spart}")))?
                .clone();
            (tx, s.part_bytes, s.s_obj_size as usize)
        };
        for ptr in ptrs {
            if ptr.partition(part_bytes) != spart {
                return Err(EnvError::BadSRequest(format!(
                    "{ptr} is not in partition {spart}"
                )));
            }
        }
        let (reply_tx, reply_rx) = unbounded();
        tx.send(SRequest {
            ptrs: ptrs.to_vec(),
            reply: reply_tx,
        })
        .map_err(|_| EnvError::BadSRequest("Sproc service stopped".into()))?;
        let data = reply_rx
            .recv()
            .map_err(|_| EnvError::BadSRequest("Sproc service stopped".into()))?;
        if data.len() != ptrs.len() * obj {
            return Err(EnvError::BadSRequest(
                "Sproc reported an out-of-range pointer".into(),
            ));
        }
        out.extend_from_slice(&data);
        let mut ps = self.inner.procs[proc.0 as usize].lock();
        ps.ctx_switches += 2;
        ps.s_batches += 1;
        ps.s_objects += ptrs.len() as u64;
        ps.move_bytes[MoveKind::PS.index()] += ptrs.len() as u64 * (req_bytes_each + obj as u64);
        Ok(())
    }

    fn shutdown_s(&self) {
        if let Some(s) = self.inner.s_service.lock().take() {
            drop(s.senders);
            for h in s.handles {
                let _ = h.join();
            }
        }
    }

    fn preload(&self, name: &str, offset: u64, data: &[u8]) -> Result<()> {
        let file = self
            .inner
            .files
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| EnvError::NotFound(name.into()))?;
        file.write(offset, data)
    }

    fn reset_stats(&self) {
        for p in &self.inner.procs {
            *p.lock() = ProcStats::default();
        }
        *self.inner.origin.lock() = Instant::now();
    }

    fn now(&self, _proc: ProcId) -> f64 {
        self.inner.origin.lock().elapsed().as_secs_f64()
    }

    fn stats(&self) -> EnvStats {
        let elapsed = self.inner.origin.lock().elapsed().as_secs_f64();
        EnvStats {
            procs: self
                .inner
                .procs
                .iter()
                .map(|p| {
                    let mut st = p.lock().clone();
                    // Wall clock is global in the real environment.
                    st.clock = elapsed;
                    st
                })
                .collect(),
        }
    }

    fn trace_sink(&self) -> Arc<dyn TraceSink> {
        self.inner.sink.read().clone()
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        if let Some(s) = self.s_service.lock().take() {
            drop(s.senders);
            for h in s.handles {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(disks: u32) -> (MmapEnv, PathBuf) {
        let root = std::env::temp_dir().join(format!(
            "mmjoin-env-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let e = MmapEnv::new(MmapEnvConfig {
            root: root.clone(),
            num_disks: disks,
            page_size: 4096,
        })
        .unwrap();
        (e, root)
    }

    const P: ProcId = ProcId(0);

    #[test]
    fn file_lifecycle_and_roundtrip() {
        let (e, root) = env(2);
        let f = e.create_file(P, "t", DiskId(1), 10_000).unwrap();
        f.write_at(P, 5000, b"persistent").unwrap();
        let mut buf = [0u8; 10];
        f.read_at(P, 5000, &mut buf).unwrap();
        assert_eq!(&buf, b"persistent");
        assert!(matches!(
            e.create_file(P, "t", DiskId(0), 1),
            Err(EnvError::AlreadyExists(_))
        ));
        // Data actually lands in the disk directory's file.
        assert!(root.join("disk1").join("t").exists());
        e.delete_file(P, "t").unwrap();
        assert!(!root.join("disk1").join("t").exists());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn bounds_are_enforced() {
        let (e, root) = env(1);
        let f = e.create_file(P, "t", DiskId(0), 100).unwrap();
        let mut b = [0u8; 16];
        assert!(f.read_at(P, 90, &mut b).is_err());
        assert!(f.write_at(P, u64::MAX, &[0]).is_err());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn sproc_threads_serve_fetches() {
        let (e, root) = env(2);
        let part_bytes = 4096u64;
        for j in 0..2u32 {
            let name = format!("S_{j}");
            e.create_file(P, &name, DiskId(j), part_bytes).unwrap();
            let mut data = vec![0u8; part_bytes as usize];
            for (i, c) in data.chunks_mut(64).enumerate() {
                c[0] = j as u8;
                c[1] = i as u8;
            }
            e.preload(&name, 0, &data).unwrap();
        }
        e.register_s(SCatalog {
            part_files: vec!["S_0".into(), "S_1".into()],
            part_bytes,
            s_obj_size: 64,
        })
        .unwrap();
        let ptrs = vec![SPtr::new(1, 128, part_bytes), SPtr::new(1, 0, part_bytes)];
        let mut out = Vec::new();
        e.s_fetch_batch(P, 1, &ptrs, 72, &mut out).unwrap();
        assert_eq!(out.len(), 128);
        assert_eq!((out[0], out[1]), (1, 2));
        assert_eq!((out[64], out[65]), (1, 0));
        let st = e.stats();
        assert_eq!(st.procs[0].s_objects, 2);
        assert_eq!(st.procs[0].ctx_switches, 2);
        // Cross-partition pointer rejected.
        assert!(e
            .s_fetch_batch(P, 1, &[SPtr::new(0, 0, part_bytes)], 72, &mut out)
            .is_err());
        e.shutdown_s();
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn persistence_across_env_instances() {
        let (e, root) = env(1);
        let f = e.create_file(P, "keep", DiskId(0), 4096).unwrap();
        f.write_at(P, 0, b"survives").unwrap();
        f.sync(P).unwrap();
        drop(f);
        drop(e);
        // A new environment over the same root can remap the file by
        // reading it from disk (open path goes through the file table,
        // so re-create the mapping manually).
        let raw = std::fs::read(root.join("disk0").join("keep")).unwrap();
        assert_eq!(&raw[0..8], b"survives");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn recover_adopts_existing_files() {
        let (e, root) = env(2);
        let f = e.create_file(P, "R_0", DiskId(0), 4096).unwrap();
        f.write_at(P, 0, b"pass0 data").unwrap();
        f.sync(P).unwrap();
        e.create_file(P, "RS_1", DiskId(1), 4096).unwrap();
        drop(f);
        // Simulate a crash: the process's file table dies with it.
        drop(e);
        let (e2, adopted) = MmapEnv::recover(MmapEnvConfig {
            root: root.clone(),
            num_disks: 2,
            page_size: 4096,
        })
        .unwrap();
        // Sorted byte-wise: 'S' < '_', so RS_1 precedes R_0.
        assert_eq!(adopted, vec!["RS_1".to_string(), "R_0".to_string()]);
        assert_eq!(e2.list_files(), adopted);
        // Adopted files are readable through the normal open path...
        let f = e2.open_file(P, "R_0").unwrap();
        let mut buf = [0u8; 10];
        f.read_at(P, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"pass0 data");
        drop(f);
        // ...and deletable, so orphan GC can reclaim them.
        e2.delete_file(P, "RS_1").unwrap();
        assert!(!root.join("disk1").join("RS_1").exists());
        // A fresh (non-recovering) env still starts blind, as before.
        drop(e2);
        let e3 = MmapEnv::new(MmapEnvConfig {
            root: root.clone(),
            num_disks: 2,
            page_size: 4096,
        })
        .unwrap();
        assert!(e3.list_files().is_empty());
        drop(e3);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn wall_clock_advances_and_resets() {
        let (e, root) = env(1);
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(e.now(P) >= 0.004);
        e.reset_stats();
        assert!(e.now(P) < 0.004);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
