//! Persistent, exactly-positioned memory-mapped segments.
//!
//! A segment is one file mapped read/write at a *recorded* virtual
//! address inside the [`SegmentArena`]. Data structures built inside a
//! segment may store raw absolute pointers to other locations in the
//! same segment; because reopening maps the file at the same address,
//! those pointers are valid in every session with **zero** relocation or
//! swizzling work — the performance argument at the heart of the
//! paper's §2.1. The segment header records everything needed to
//! re-establish the mapping, plus a bump pointer for the persistent
//! allocator and the offset of the user's root object.
//!
//! # Safety model
//!
//! All `unsafe` in this module upholds three invariants, stated here
//! once:
//!
//! 1. **Mapping validity** — `ptr..ptr+len` is a live `MAP_SHARED`
//!    mapping from [`Segment::create`]/[`Segment::open`] until `Drop`;
//!    no other code unmaps it.
//! 2. **Exclusive carving** — the arena hands each segment a disjoint
//!    address range, so distinct segments never alias.
//! 3. **Borrow discipline** — raw memory is only exposed through `&self`
//!    /`&mut self` methods returning slices borrowed from the segment,
//!    so Rust's borrow checker governs aliasing *within* a segment.

use std::fs::{File, OpenOptions};
use std::io::Read;
use std::path::{Path, PathBuf};

use mmjoin_env::{EnvError, Result};

use crate::arena::{page_size, Placement, SegmentArena};

const MAGIC: u64 = 0x6D6D_6A6F_696E_5347; // "mmjoinSG"
const VERSION: u32 = 1;

/// Byte size of the segment header (one page keeps user data
/// page-aligned).
pub const HEADER_SIZE: u64 = 4096;

// Header field offsets.
const OFF_MAGIC: usize = 0;
const OFF_VERSION: usize = 8;
const OFF_TOTAL: usize = 16;
const OFF_BASE: usize = 24;
const OFF_ROOT: usize = 32;
const OFF_ALLOC: usize = 40;
const OFF_SHARED: usize = 48;

/// A mapped persistent segment.
pub struct Segment {
    ptr: *mut u8,
    len: usize,
    file: File,
    path: PathBuf,
    placement: Placement,
}

// SAFETY: the mapping is plain shared memory; `Segment`'s API enforces
// Rust borrow rules for access, and concurrent use from several threads
// is governed by those same borrows (`&mut` methods require exclusive
// access).
unsafe impl Send for Segment {}
unsafe impl Sync for Segment {}

impl Segment {
    /// Create a new segment of `bytes` usable data bytes (plus the
    /// header page) backed by `path`.
    pub fn create(arena: &SegmentArena, path: &Path, bytes: u64) -> Result<Segment> {
        let total = (HEADER_SIZE + bytes).div_ceil(page_size() as u64) * page_size() as u64;
        let addr = arena.claim(total as usize)?;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(path)?;
        file.set_len(total)?;
        let ptr = map_fixed(&file, addr, total as usize)?;
        let mut seg = Segment {
            ptr,
            len: total as usize,
            file,
            path: path.to_path_buf(),
            placement: Placement::ExactlyPositioned,
        };
        seg.write_header_u64(OFF_MAGIC, MAGIC);
        seg.write_header_u64(OFF_VERSION, VERSION as u64);
        seg.write_header_u64(OFF_TOTAL, total);
        seg.write_header_u64(OFF_BASE, addr as u64);
        seg.write_header_u64(OFF_ROOT, 0);
        seg.write_header_u64(OFF_ALLOC, HEADER_SIZE);
        seg.write_header_u64(OFF_SHARED, total);
        Ok(seg)
    }

    /// Reopen an existing segment, mapping it at its recorded base if
    /// possible. Check [`Segment::placement`]: if `Relocated`, stored
    /// absolute pointers must be adjusted by
    /// [`Segment::relocation_delta`] before use.
    ///
    /// Corrupted or truncated files — short headers, bad magic, a
    /// recorded size larger than the backing file, allocator or
    /// shared-split pointers outside the segment — are reported as
    /// recoverable [`EnvError`]s, never panics: recovery code probes
    /// crash leftovers with this function.
    pub fn open(arena: &SegmentArena, path: &Path) -> Result<Segment> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let file_len = file.metadata()?.len();
        let mut header = [0u8; 64];
        file.read_exact(&mut header).map_err(|e| {
            EnvError::InvalidConfig(format!(
                "{}: truncated segment header ({file_len} bytes): {e}",
                path.display()
            ))
        })?;
        let get = |off: usize| -> Result<u64> {
            let bytes = header
                .get(off..off + 8)
                .and_then(|s| <[u8; 8]>::try_from(s).ok())
                .ok_or_else(|| {
                    EnvError::InvalidConfig(format!("segment header field at {off} out of range"))
                })?;
            Ok(u64::from_le_bytes(bytes))
        };
        if get(OFF_MAGIC)? != MAGIC {
            return Err(EnvError::InvalidConfig(format!(
                "{} is not a segment file",
                path.display()
            )));
        }
        if get(OFF_VERSION)? != VERSION as u64 {
            return Err(EnvError::InvalidConfig(format!(
                "segment version {} unsupported",
                get(OFF_VERSION)?
            )));
        }
        let total = get(OFF_TOTAL)?;
        if total < HEADER_SIZE || total > file_len {
            return Err(EnvError::InvalidConfig(format!(
                "{}: corrupt segment size {total} (file is {file_len} bytes, header is \
                 {HEADER_SIZE})",
                path.display()
            )));
        }
        let alloc = get(OFF_ALLOC)?;
        if alloc < HEADER_SIZE || alloc > total {
            return Err(EnvError::InvalidConfig(format!(
                "{}: corrupt allocator pointer {alloc} outside [{HEADER_SIZE}, {total}]",
                path.display()
            )));
        }
        let shared = get(OFF_SHARED)?;
        if shared < HEADER_SIZE || shared > total {
            return Err(EnvError::InvalidConfig(format!(
                "{}: corrupt shared split {shared} outside [{HEADER_SIZE}, {total}]",
                path.display()
            )));
        }
        let recorded = get(OFF_BASE)? as usize;
        let (addr, placement) = match arena.claim_at(recorded, total as usize) {
            Ok(a) => (a, Placement::ExactlyPositioned),
            Err(_) => (arena.claim(total as usize)?, Placement::Relocated),
        };
        let ptr = map_fixed(&file, addr, total as usize)?;
        Ok(Segment {
            ptr,
            len: total as usize,
            file,
            path: path.to_path_buf(),
            placement,
        })
    }

    /// Destroy a segment's backing file.
    pub fn delete(path: &Path) -> Result<()> {
        std::fs::remove_file(path)?;
        Ok(())
    }

    /// Where this mapping landed relative to its recorded base.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Base address of the mapping in this session.
    pub fn base(&self) -> usize {
        self.ptr as usize
    }

    /// The base address recorded in the header (where intra-segment
    /// pointers believe they live).
    pub fn recorded_base(&self) -> usize {
        self.read_header_u64(OFF_BASE) as usize
    }

    /// `current_base − recorded_base`: add this to every stored absolute
    /// pointer after a relocated open. Zero when exactly positioned.
    pub fn relocation_delta(&self) -> isize {
        self.base() as isize - self.recorded_base() as isize
    }

    /// Rebind the header's recorded base to the current mapping (done
    /// after the caller has finished relocating stored pointers).
    pub fn commit_relocation(&mut self) {
        let base = self.base() as u64;
        self.write_header_u64(OFF_BASE, base);
        self.placement = Placement::ExactlyPositioned;
    }

    /// Usable data bytes (excludes the header page).
    pub fn data_len(&self) -> u64 {
        self.len as u64 - HEADER_SIZE
    }

    /// Backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn read_header_u64(&self, off: usize) -> u64 {
        // SAFETY: invariant 1; header offsets are within the first page.
        unsafe { std::ptr::read_unaligned(self.ptr.add(off) as *const u64) }
    }

    fn write_header_u64(&mut self, off: usize, v: u64) {
        // SAFETY: invariant 1 and `&mut self`.
        unsafe { std::ptr::write_unaligned(self.ptr.add(off) as *mut u64, v) }
    }

    /// Offset of the root object (0 = unset).
    pub fn root(&self) -> u64 {
        self.read_header_u64(OFF_ROOT)
    }

    /// Record the root object's offset.
    pub fn set_root(&mut self, offset: u64) {
        self.write_header_u64(OFF_ROOT, offset);
    }

    /// Read-only view of the data region.
    pub fn data(&self) -> &[u8] {
        // SAFETY: invariants 1–3.
        unsafe {
            std::slice::from_raw_parts(self.ptr.add(HEADER_SIZE as usize), self.data_len() as usize)
        }
    }

    /// Mutable view of the data region.
    pub fn data_mut(&mut self) -> &mut [u8] {
        // SAFETY: invariants 1–3; `&mut self` gives exclusivity.
        unsafe {
            std::slice::from_raw_parts_mut(
                self.ptr.add(HEADER_SIZE as usize),
                self.data_len() as usize,
            )
        }
    }

    /// Translate a segment offset to an absolute address in this
    /// session (offset 0 = start of header page).
    pub fn addr_of(&self, offset: u64) -> usize {
        debug_assert!(offset < self.len as u64);
        self.base() + offset as usize
    }

    /// Translate an absolute address back to a segment offset, if it
    /// lies inside this segment.
    pub fn offset_of(&self, addr: usize) -> Option<u64> {
        if addr >= self.base() && addr < self.base() + self.len {
            Some((addr - self.base()) as u64)
        } else {
            None
        }
    }

    /// Allocate `bytes` (aligned to `align`) from the segment's
    /// persistent bump allocator; returns the segment offset.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> Result<u64> {
        debug_assert!(align.is_power_of_two());
        let cur = self.read_header_u64(OFF_ALLOC);
        let start = cur.div_ceil(align) * align;
        let end = start
            .checked_add(bytes)
            .ok_or_else(|| EnvError::InvalidConfig("allocation size overflow".into()))?;
        if end > self.len as u64 {
            return Err(EnvError::InvalidConfig(format!(
                "segment full: need {bytes}, {} remain",
                self.len as u64 - cur
            )));
        }
        self.write_header_u64(OFF_ALLOC, end);
        Ok(start)
    }

    /// Bytes currently allocated (including header).
    pub fn allocated(&self) -> u64 {
        self.read_header_u64(OFF_ALLOC)
    }

    /// Divide the segment's address space into a private portion
    /// (everything below `offset`) and a shared portion (`offset`
    /// onward), the paper's §2.1 design: "our segments have an address
    /// space that is divided into private and shared portions" so data
    /// can be transferred between segments without an inter-segment
    /// copy instruction. The split is recorded in the header.
    pub fn set_shared_split(&mut self, offset: u64) -> Result<()> {
        if offset < HEADER_SIZE || offset > self.len as u64 {
            return Err(EnvError::InvalidConfig(format!(
                "shared split {offset} outside segment [{HEADER_SIZE}, {}]",
                self.len
            )));
        }
        self.write_header_u64(OFF_SHARED, offset);
        Ok(())
    }

    /// Offset where the shared portion begins (defaults to the segment
    /// end: everything private).
    pub fn shared_split(&self) -> u64 {
        self.read_header_u64(OFF_SHARED)
    }

    /// True if `offset` lies in the shared portion — i.e. another
    /// process's segment may legitimately read/write it through the
    /// shared-buffer protocol.
    pub fn is_shared(&self, offset: u64) -> bool {
        offset >= self.shared_split() && offset < self.len as u64
    }

    /// View of the shared portion.
    pub fn shared(&self) -> &[u8] {
        let split = self.shared_split() as usize;
        // SAFETY: invariants 1–3; split is header-validated.
        unsafe { std::slice::from_raw_parts(self.ptr.add(split), self.len - split) }
    }

    /// Mutable view of the shared portion.
    pub fn shared_mut(&mut self) -> &mut [u8] {
        let split = self.shared_split() as usize;
        // SAFETY: invariants 1–3 and `&mut self`.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(split), self.len - split) }
    }

    /// Synchronously flush the segment to its file (`msync`).
    pub fn flush(&self) -> Result<()> {
        // SAFETY: invariant 1.
        let rc = unsafe { libc::msync(self.ptr as *mut libc::c_void, self.len, libc::MS_SYNC) };
        if rc != 0 {
            return Err(EnvError::Io(std::io::Error::last_os_error()));
        }
        Ok(())
    }
}

impl Drop for Segment {
    fn drop(&mut self) {
        // SAFETY: unmapping our own mapping (invariant 1 ends here). The
        // address range deliberately stays claimed in the arena so no
        // other segment reuses it this session.
        unsafe {
            libc::munmap(self.ptr as *mut libc::c_void, self.len);
            // Re-reserve the hole so the arena's invariant (everything
            // below the bump pointer is ours) still holds.
            libc::mmap(
                self.ptr as *mut libc::c_void,
                self.len,
                libc::PROT_NONE,
                libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_NORESERVE | libc::MAP_FIXED,
                -1,
                0,
            );
        }
        let _ = &self.file;
    }
}

fn map_fixed(file: &File, addr: usize, len: usize) -> Result<*mut u8> {
    use std::os::unix::io::AsRawFd;
    // SAFETY: `addr..addr+len` was claimed from the arena (a PROT_NONE
    // reservation we own), so MAP_FIXED replaces only our own
    // reservation; the fd is open and at least `len` long.
    let p = unsafe {
        libc::mmap(
            addr as *mut libc::c_void,
            len,
            libc::PROT_READ | libc::PROT_WRITE,
            libc::MAP_SHARED | libc::MAP_FIXED,
            file.as_raw_fd(),
            0,
        )
    };
    if p == libc::MAP_FAILED {
        return Err(EnvError::Io(std::io::Error::last_os_error()));
    }
    Ok(p as *mut u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "mmjoin-seg-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn create_write_reopen_read() {
        let dir = tmpdir();
        let arena = SegmentArena::reserve(0, 1 << 30).unwrap();
        let path = dir.join("a.seg");
        let recorded;
        {
            let mut seg = Segment::create(&arena, &path, 100_000).unwrap();
            recorded = seg.base();
            seg.data_mut()[0..5].copy_from_slice(b"hello");
            seg.set_root(HEADER_SIZE);
            seg.flush().unwrap();
        }
        {
            let seg = Segment::open(&arena, &path).unwrap();
            // Same arena, slot still claimed → relocated within this
            // session is expected (claim_at sees overlap)… unless the
            // recorded base is past the bump pointer. Either way, data
            // must be intact.
            assert_eq!(&seg.data()[0..5], b"hello");
            assert_eq!(seg.root(), HEADER_SIZE);
            let _ = recorded;
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn exact_positioning_across_arenas() {
        // Simulates two process sessions: a fresh arena at the same
        // fixed base re-maps the segment at its recorded address.
        let dir = tmpdir();
        let path = dir.join("b.seg");
        let base_first;
        {
            let arena = SegmentArena::reserve_default().unwrap();
            if !arena.at_fixed_base() {
                // Address taken in this test process; nothing to assert.
                return;
            }
            let mut seg = Segment::create(&arena, &path, 4096).unwrap();
            base_first = seg.base();
            // Store an absolute self-referential pointer.
            let addr = seg.addr_of(HEADER_SIZE + 64) as u64;
            seg.data_mut()[0..8].copy_from_slice(&addr.to_le_bytes());
            seg.flush().unwrap();
        }
        {
            let arena = SegmentArena::reserve_default().unwrap();
            assert!(arena.at_fixed_base());
            let seg = Segment::open(&arena, &path).unwrap();
            assert_eq!(seg.placement(), Placement::ExactlyPositioned);
            assert_eq!(seg.base(), base_first);
            let stored = u64::from_le_bytes(seg.data()[0..8].try_into().unwrap()) as usize;
            // The stored pointer is directly usable: it points back into
            // the mapping.
            assert_eq!(stored, seg.addr_of(HEADER_SIZE + 64));
            assert_eq!(seg.relocation_delta(), 0);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn relocation_is_detected_and_fixable() {
        let dir = tmpdir();
        let path = dir.join("c.seg");
        {
            let arena = SegmentArena::reserve(0, 1 << 24).unwrap();
            let mut seg = Segment::create(&arena, &path, 4096).unwrap();
            let addr = seg.addr_of(HEADER_SIZE) as u64;
            seg.data_mut()[0..8].copy_from_slice(&addr.to_le_bytes());
            seg.flush().unwrap();
        }
        {
            // A different arena base (kernel-chosen) forces relocation.
            let arena = SegmentArena::reserve(0, 1 << 24).unwrap();
            let mut seg = Segment::open(&arena, &path).unwrap();
            if seg.placement() == Placement::ExactlyPositioned {
                // Astronomically unlikely, but placement would be fine.
                return;
            }
            let delta = seg.relocation_delta();
            let stored = u64::from_le_bytes(seg.data()[0..8].try_into().unwrap());
            let fixed = (stored as i64 + delta as i64) as u64;
            assert_eq!(fixed as usize, seg.addr_of(HEADER_SIZE));
            // Commit: write fixed pointers and rebind the base.
            seg.data_mut()[0..8].copy_from_slice(&fixed.to_le_bytes());
            seg.commit_relocation();
            assert_eq!(seg.placement(), Placement::ExactlyPositioned);
            assert_eq!(seg.relocation_delta(), 0);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn allocator_persists_across_opens() {
        let dir = tmpdir();
        let arena = SegmentArena::reserve(0, 1 << 26).unwrap();
        let path = dir.join("d.seg");
        let (a, b);
        {
            let mut seg = Segment::create(&arena, &path, 64 * 1024).unwrap();
            a = seg.alloc(100, 8).unwrap();
            b = seg.alloc(100, 64).unwrap();
            assert_eq!(a % 8, 0);
            assert_eq!(b % 64, 0);
            assert!(b >= a + 100);
            seg.flush().unwrap();
        }
        {
            let mut seg = Segment::open(&arena, &path).unwrap();
            let c = seg.alloc(8, 8).unwrap();
            assert!(c >= b + 100, "allocator state persisted");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_full_and_bad_magic() {
        let dir = tmpdir();
        let arena = SegmentArena::reserve(0, 1 << 24).unwrap();
        let path = dir.join("e.seg");
        let mut seg = Segment::create(&arena, &path, 4096).unwrap();
        assert!(seg.alloc(1 << 20, 8).is_err());
        drop(seg);
        // A non-segment file is rejected.
        let junk = dir.join("junk");
        std::fs::write(&junk, vec![0u8; 8192]).unwrap();
        assert!(Segment::open(&arena, &junk).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shared_split_partitions_the_segment() {
        let dir = tmpdir();
        let arena = SegmentArena::reserve(0, 1 << 24).unwrap();
        let path = dir.join("split.seg");
        let mut seg = Segment::create(&arena, &path, 8192).unwrap();
        // Default: everything private.
        assert_eq!(seg.shared().len(), 0);
        assert!(!seg.is_shared(HEADER_SIZE));
        // Carve the last page as the shared transfer area.
        let total = HEADER_SIZE + 8192;
        let split = total - 4096;
        seg.set_shared_split(split).unwrap();
        assert!(seg.is_shared(split));
        assert!(!seg.is_shared(split - 1));
        seg.shared_mut()[0..5].copy_from_slice(b"xfers");
        assert_eq!(&seg.shared()[0..5], b"xfers");
        // The split persists in the header across reopen.
        drop(seg);
        let seg = Segment::open(&arena, &path).unwrap();
        assert_eq!(seg.shared_split(), split);
        assert_eq!(&seg.shared()[0..5], b"xfers");
        // Out-of-range splits rejected.
        drop(seg);
        let mut seg = Segment::open(&arena, &path).unwrap();
        assert!(seg.set_shared_split(0).is_err());
        assert!(seg.set_shared_split(u64::MAX).is_err());
        drop(seg);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_and_truncated_segments_error_instead_of_panicking() {
        let dir = tmpdir();
        let arena = SegmentArena::reserve(0, 1 << 24).unwrap();

        // A file shorter than the header.
        let short = dir.join("short.seg");
        std::fs::write(&short, b"tiny").unwrap();
        let err = Segment::open(&arena, &short).err().unwrap();
        assert!(err.to_string().contains("truncated"), "{err}");

        // Helper: create a valid segment, then smash one header field.
        let corrupt = |name: &str, off: usize, val: u64| -> PathBuf {
            let path = dir.join(name);
            let seg = Segment::create(&arena, &path, 4096).unwrap();
            seg.flush().unwrap();
            drop(seg);
            let mut bytes = std::fs::read(&path).unwrap();
            bytes[off..off + 8].copy_from_slice(&val.to_le_bytes());
            std::fs::write(&path, &bytes).unwrap();
            path
        };

        // Recorded total larger than the backing file: mapping it would
        // SIGBUS on access, so open must refuse.
        let big = corrupt("big.seg", OFF_TOTAL, 1 << 40);
        let err = Segment::open(&arena, &big).err().unwrap();
        assert!(err.to_string().contains("corrupt segment size"), "{err}");

        // Total below the header page: data_len would underflow.
        let small = corrupt("small.seg", OFF_TOTAL, 64);
        assert!(Segment::open(&arena, &small).is_err());

        // Allocator pointer outside the segment: alloc would underflow.
        let alloc = corrupt("alloc.seg", OFF_ALLOC, u64::MAX);
        let err = Segment::open(&arena, &alloc).err().unwrap();
        assert!(err.to_string().contains("allocator pointer"), "{err}");

        // Shared split outside the segment.
        let split = corrupt("split.seg2", OFF_SHARED, u64::MAX);
        let err = Segment::open(&arena, &split).err().unwrap();
        assert!(err.to_string().contains("shared split"), "{err}");

        // An absurd recorded base must relocate (or error), not panic.
        let based = corrupt("base.seg", OFF_BASE, u64::MAX - 4095);
        let seg = Segment::open(&arena, &based).unwrap();
        assert_eq!(seg.placement(), Placement::Relocated);
        drop(seg);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_new_refuses_existing_file() {
        let dir = tmpdir();
        let arena = SegmentArena::reserve(0, 1 << 24).unwrap();
        let path = dir.join("f.seg");
        let _seg = Segment::create(&arena, &path, 4096).unwrap();
        assert!(Segment::create(&arena, &path, 4096).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
