//! Criterion microbenchmarks for the building blocks: heaps, model
//! evaluation, pager, disk model, range hash, and a small end-to-end
//! simulated join per algorithm.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use mmjoin::{join, Algo, ExecMode, JoinSpec};
use mmjoin_bench::{calibrated_machine, paper_workload, sim_env, PAGE};
use mmjoin_env::SPtr;
use mmjoin_mmstore::{MmapEnv, MmapEnvConfig};
use mmjoin_model::{predict, Algorithm, JoinInputs};
use mmjoin_relstore::build;
use mmjoin_vmsim::{ContentionMode, Disk, DiskParams, PageKey, Pager, Policy};

fn bench_heapsort(c: &mut Criterion) {
    let entries: Vec<(SPtr, u32)> = (0..8192u64)
        .map(|i| (SPtr(i.wrapping_mul(0x9E3779B97F4A7C15)), i as u32))
        .collect();
    c.bench_function("heapsort_8k_pointers", |b| {
        b.iter_batched(
            || entries.clone(),
            |mut e| {
                let ops = mmjoin::pheap::heapsort(&mut e);
                black_box((e, ops));
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_model(c: &mut Criterion) {
    let m = calibrated_machine();
    let w = JoinInputs {
        r_objects: 102_400,
        s_objects: 102_400,
        r_size: 128,
        s_size: 128,
        sptr_size: 8,
        d: 4,
        skew: 1.0,
        m_rproc: 64 * PAGE,
        m_sproc: 64 * PAGE,
        g_buffer: PAGE,
    };
    for alg in Algorithm::ALL {
        c.bench_function(&format!("model_predict_{}", alg.name()), |b| {
            b.iter(|| black_box(predict(alg, m, &w).total()))
        });
    }
    c.bench_function("ylru_eval", |b| {
        b.iter(|| {
            black_box(mmjoin_model::ylru(
                25_600.0, 800.0, 25_600.0, 64.0, 19_200.0,
            ))
        })
    });
    c.bench_function("urn_cdf_k24_n1000", |b| {
        b.iter(|| black_box(mmjoin_model::urn::prob_empty_at_most(24, 1000, 12)))
    });
}

fn bench_pager(c: &mut Criterion) {
    c.bench_function("pager_lru_touch_seq", |b| {
        b.iter_batched(
            || Pager::new(256, Policy::Lru),
            |mut p| {
                for i in 0..4096u64 {
                    black_box(p.touch(
                        PageKey {
                            file: 0,
                            page: i % 512,
                        },
                        i % 3 == 0,
                    ));
                }
                p
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_disk(c: &mut Criterion) {
    c.bench_function("disk_random_reads", |b| {
        b.iter_batched(
            || Disk::new(DiskParams::waterloo96()),
            |mut d| {
                let mut acc = 0.0;
                for i in 0..1024u64 {
                    acc += d.read((i.wrapping_mul(7919)) % 100_000);
                }
                black_box(acc)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_join_small(c: &mut Criterion) {
    let mut w = paper_workload(2, 5);
    w.rel.r_objects = 4_000;
    w.rel.s_objects = 4_000;
    for alg in [Algo::NestedLoops, Algo::SortMerge, Algo::Grace] {
        c.bench_function(&format!("sim_join_4k_{}", alg.name()), |b| {
            b.iter(|| {
                let env = sim_env(2, 32, Policy::Lru, ContentionMode::Independent);
                let rels = build(&env, &w).expect("workload");
                let spec = JoinSpec::new(32 * PAGE, 32 * PAGE).with_mode(ExecMode::Sequential);
                black_box(join(&env, &rels, alg, &spec).expect("join"))
            })
        });
    }
}

/// The `modern` group: faithful vs cache-conscious kernels per
/// algorithm on the real memory-mapped store, same workload and store
/// layout, so the reported ratio is the tentpole's claimed speedup.
fn bench_modern(c: &mut Criterion) {
    let mut w = paper_workload(2, 7);
    w.rel.r_size = 64;
    w.rel.s_size = 64;
    w.rel.r_objects = 20_000;
    w.rel.s_objects = 20_000;
    let mut group = c.benchmark_group("modern");
    for alg in [
        Algo::NestedLoops,
        Algo::SortMerge,
        Algo::Grace,
        Algo::HybridHash,
    ] {
        for (label, mode) in [
            ("faithful", ExecMode::Threaded),
            ("modern", ExecMode::Modern),
        ] {
            let root = std::env::temp_dir().join(format!(
                "mmjoin-microbench-{}-{}-{label}",
                std::process::id(),
                alg.name()
            ));
            let _ = std::fs::remove_dir_all(&root);
            let env = MmapEnv::new(MmapEnvConfig {
                root: root.clone(),
                num_disks: w.rel.d,
                page_size: PAGE,
            })
            .expect("mmap env");
            let rels = build(&env, &w).expect("workload");
            let mut rep = 0u64;
            group.bench_function(format!("mmap_join_20k_{}_{label}", alg.name()), |b| {
                b.iter(|| {
                    // A fresh tag per repetition keeps the faithful
                    // runners' temp-file names disjoint across iters.
                    rep += 1;
                    let spec = JoinSpec::new(256 * PAGE, 256 * PAGE)
                        .with_mode(mode)
                        .with_tag(&format!("r{rep}"));
                    black_box(join(&env, &rels, alg, &spec).expect("join"))
                })
            });
            let _ = std::fs::remove_dir_all(&root);
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Keep the whole suite under a couple of minutes: these are
    // smoke-level microbenches, not publication numbers.
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_heapsort, bench_model, bench_pager, bench_disk, bench_join_small, bench_modern
}
criterion_main!(benches);
