//! # mmjoin-bench — the experiment harness
//!
//! One binary per figure of the paper (see DESIGN.md §5), plus the
//! extension experiments. This library holds the shared machinery: the
//! calibrated machine (dtt curves measured from the simulated disk by
//! the paper's own band procedure), the §8 validation workload, the
//! model-vs-experiment sweep runner, and plain-text table/plot
//! rendering.

use std::sync::OnceLock;

use mmjoin::{inputs_for, join, verify, Algo, ExecMode, JoinSpec};
use mmjoin_env::machine::MachineParams;
use mmjoin_model::predict;
use mmjoin_relstore::{build, PointerDist, RelConfig, Relations, WorkloadSpec};
use mmjoin_vmsim::{calibrated_params, ContentionMode, DiskParams, Policy, SimConfig, SimEnv};

/// Page size used throughout the experiments (the paper's 4 KB).
pub const PAGE: u64 = 4096;

pub mod load;

/// The machine every experiment runs on: Waterloo-96-like CPU constants
/// with `dttr`/`dttw` curves **measured from the simulated disk** using
/// the paper's banding procedure — the same coupling the paper had
/// between its model and its Fujitsu drives.
pub fn calibrated_machine() -> &'static MachineParams {
    static MACHINE: OnceLock<MachineParams> = OnceLock::new();
    MACHINE.get_or_init(|| {
        calibrated_params(&DiskParams::waterloo96())
            .expect("calibration of the default disk cannot fail")
    })
}

/// The §8 validation workload: |R| = |S| = 102 400 × 128-byte objects
/// over `d` disks, uniform pointers.
pub fn paper_workload(d: u32, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        rel: RelConfig {
            r_size: 128,
            s_size: 128,
            d,
            r_objects: 102_400,
            s_objects: 102_400,
        },
        dist: PointerDist::Uniform,
        seed,
        prefix: String::new(),
    }
}

/// Total bytes of `R` for a workload (the denominator of the Fig. 5
/// x-axis `M_Rproc_i / |R|`).
pub fn r_bytes(spec: &WorkloadSpec) -> u64 {
    spec.rel.r_objects * spec.rel.r_size as u64
}

/// A fresh simulated machine for one sweep point.
pub fn sim_env(d: u32, pages: usize, policy: Policy, contention: ContentionMode) -> SimEnv {
    let mut cfg = SimConfig::waterloo96(d);
    cfg.machine = calibrated_machine().clone();
    cfg.rproc_pages = pages;
    cfg.sproc_pages = pages;
    cfg.policy = policy;
    cfg.contention = contention;
    SimEnv::new(cfg).expect("valid experiment config")
}

/// One model-vs-experiment measurement.
#[derive(Clone, Debug)]
pub struct Fig5Row {
    /// `M_Rproc_i / |R|`.
    pub frac: f64,
    /// Memory budget in pages.
    pub pages: u64,
    /// Model-predicted Time/Rproc (seconds).
    pub model: f64,
    /// Simulated (execution-driven) Time/Rproc.
    pub sim: f64,
    /// Read faults across all processes.
    pub faults_read: u64,
    /// Write-backs across all processes.
    pub faults_write: u64,
    /// Free-form annotation (merge plan, K, …).
    pub note: String,
}

/// Run the model and the execution-driven simulator for `alg` at each
/// memory fraction, on the §8 workload.
pub fn fig5_sweep(
    alg: Algo,
    fracs: &[f64],
    workload: &WorkloadSpec,
    annotate: impl Fn(&Relations, &JoinSpec) -> String,
) -> Vec<Fig5Row> {
    let machine = calibrated_machine();
    let total_r = r_bytes(workload);
    fracs
        .iter()
        .map(|&frac| {
            let pages = (((frac * total_r as f64) as u64) / PAGE).max(4);
            let env = sim_env(
                workload.rel.d,
                pages as usize,
                Policy::Lru,
                ContentionMode::Independent,
            );
            let rels = build(&env, workload).expect("workload builds");
            let spec = JoinSpec::new(pages * PAGE, pages * PAGE).with_mode(ExecMode::Sequential);
            let out = join(&env, &rels, alg, &spec).expect("join runs");
            verify(&out, &rels).expect("join result matches oracle");
            let model = alg
                .modelled()
                .map(|a| predict(a, machine, &inputs_for(&rels, &spec)).total())
                .unwrap_or(f64::NAN);
            Fig5Row {
                frac,
                pages,
                model,
                sim: out.elapsed,
                faults_read: out.stats.total_read_faults(),
                faults_write: out.stats.total_write_backs(),
                note: annotate(&rels, &spec),
            }
        })
        .collect()
}

/// Render a model-vs-experiment table in the shape of one Fig. 5 panel.
pub fn render_fig5(title: &str, rows: &[Fig5Row]) -> String {
    let mut s = String::new();
    s.push_str(&format!("{title}\n"));
    s.push_str(&format!(
        "{:>8} {:>7} {:>12} {:>12} {:>8} {:>9} {:>9}  {}\n",
        "M/|R|", "pages", "Model (s)", "Experim (s)", "err%", "faults-r", "faults-w", "notes"
    ));
    for r in rows {
        let err = if r.model.is_nan() {
            "-".to_string()
        } else {
            format!("{:+.1}", (r.model - r.sim) / r.sim * 100.0)
        };
        s.push_str(&format!(
            "{:>8.3} {:>7} {:>12.1} {:>12.1} {:>8} {:>9} {:>9}  {}\n",
            r.frac, r.pages, r.model, r.sim, err, r.faults_read, r.faults_write, r.note
        ));
    }
    s.push_str(&ascii_plot(rows));
    s
}

/// The same rows as a JSON array, for machine consumption alongside the
/// text table.
pub fn fig5_json(rows: &[Fig5Row]) -> String {
    let mut s = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        // The model is NaN for the unmodelled naive baseline; JSON has
        // no NaN, so emit null.
        let model = if r.model.is_finite() {
            format!("{:.6}", r.model)
        } else {
            "null".to_string()
        };
        s.push_str(&format!(
            concat!(
                "{{\"frac\":{:.6},\"pages\":{},\"model_seconds\":{model},",
                "\"sim_seconds\":{:.6},\"read_faults\":{},\"write_backs\":{},",
                "\"note\":\"{}\"}}"
            ),
            r.frac,
            r.pages,
            r.sim,
            r.faults_read,
            r.faults_write,
            json_escape(&r.note),
            model = model,
        ));
    }
    s.push(']');
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Honour the experiment binaries' `--json` flag: when present on the
/// command line, write `json` to `results/<name>.json` and announce it.
pub fn maybe_write_json(name: &str, json: &str) {
    if !std::env::args().any(|a| a == "--json") {
        return;
    }
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match std::fs::write(&path, json) {
        Ok(()) => println!("json written to {}", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

/// A small ASCII rendering of the two series (model `o`, experiment
/// `x`), time on the y axis — enough to eyeball the curve shapes
/// against the printed figure.
pub fn ascii_plot(rows: &[Fig5Row]) -> String {
    if rows.len() < 2 {
        return String::new();
    }
    let height = 12usize;
    let finite: Vec<f64> = rows
        .iter()
        .flat_map(|r| [r.model, r.sim])
        .filter(|v| v.is_finite())
        .collect();
    let max = finite.iter().copied().fold(0.0f64, f64::max);
    let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
    if !(max.is_finite() && min.is_finite()) || max <= min {
        return String::new();
    }
    let level =
        |v: f64| -> usize { (((v - min) / (max - min)) * (height - 1) as f64).round() as usize };
    let mut grid = vec![vec![b' '; rows.len() * 4 + 2]; height];
    for (c, r) in rows.iter().enumerate() {
        if r.model.is_finite() {
            grid[height - 1 - level(r.model)][c * 4 + 1] = b'o';
        }
        grid[height - 1 - level(r.sim)][c * 4 + 3] = b'x';
    }
    let mut s = String::new();
    s.push_str(&format!("  {max:>8.0}s + (o = model, x = experiment)\n"));
    for line in grid {
        s.push_str("           |");
        s.push_str(std::str::from_utf8(&line).expect("ascii"));
        s.push('\n');
    }
    s.push_str(&format!(
        "  {min:>8.0}s +{}\n            ",
        "-".repeat(rows.len() * 4 + 2)
    ));
    for r in rows {
        s.push_str(&format!("{:<4.3}", r.frac));
    }
    s.push('\n');
    s
}

/// Run one join on a fresh sim machine; returns `(elapsed, read-faults,
/// write-backs)`. Used by the extension experiments.
pub fn one_sim_join(
    alg: Algo,
    workload: &WorkloadSpec,
    pages: usize,
    policy: Policy,
    contention: ContentionMode,
    mode: ExecMode,
    sync_phases: bool,
) -> (f64, u64, u64) {
    let env = sim_env(workload.rel.d, pages, policy, contention);
    let rels = build(&env, workload).expect("workload builds");
    let mut spec = JoinSpec::new(pages as u64 * PAGE, pages as u64 * PAGE).with_mode(mode);
    spec.sync_phases = sync_phases;
    let out = join(&env, &rels, alg, &spec).expect("join runs");
    verify(&out, &rels).expect("join result matches oracle");
    (
        out.elapsed,
        out.stats.total_read_faults(),
        out.stats.total_write_backs(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_machine_is_monotone() {
        let m = calibrated_machine();
        assert!(m.dttr.eval(12_800.0) > m.dttr.eval(1.0));
        assert!(m.dttw.eval(12_800.0) < m.dttr.eval(12_800.0));
    }

    #[test]
    fn ascii_plot_handles_degenerate_series() {
        // Single row: nothing to plot.
        let one = vec![Fig5Row {
            frac: 0.1,
            pages: 10,
            model: 5.0,
            sim: 5.0,
            faults_read: 0,
            faults_write: 0,
            note: String::new(),
        }];
        assert!(ascii_plot(&one).is_empty());
        // Flat series (max == min): nothing to plot either.
        let mut flat = one.clone();
        flat.push(one[0].clone());
        assert!(ascii_plot(&flat).is_empty());
        // NaN model (unmodelled baseline) must not break rendering.
        let mixed = vec![
            Fig5Row {
                frac: 0.1,
                pages: 10,
                model: f64::NAN,
                sim: 5.0,
                faults_read: 0,
                faults_write: 0,
                note: String::new(),
            },
            Fig5Row {
                frac: 0.2,
                pages: 20,
                model: f64::NAN,
                sim: 9.0,
                faults_read: 0,
                faults_write: 0,
                note: String::new(),
            },
        ];
        let plot = ascii_plot(&mixed);
        // Skip the legend line; the grid must mark experiments only.
        let grid: String = plot.lines().skip(1).collect();
        assert!(grid.contains('x') && !grid.contains('o'));
        let table = render_fig5("t", &mixed);
        assert!(table.contains("NaN") || table.contains('-'));
    }

    #[test]
    fn fig5_json_is_well_formed() {
        let rows = vec![
            Fig5Row {
                frac: 0.1,
                pages: 10,
                model: f64::NAN,
                sim: 5.0,
                faults_read: 1,
                faults_write: 2,
                note: "K=3 \"quoted\"\n".into(),
            },
            Fig5Row {
                frac: 0.2,
                pages: 20,
                model: 4.5,
                sim: 4.0,
                faults_read: 0,
                faults_write: 0,
                note: String::new(),
            },
        ];
        let j = fig5_json(&rows);
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\"model_seconds\":null"));
        assert!(j.contains("\"model_seconds\":4.5"));
        assert!(j.contains("K=3 \\\"quoted\\\"\\u000a"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn fig5_sweep_smoke() {
        // A miniature sweep end to end (tiny workload for speed).
        let mut w = paper_workload(2, 1);
        w.rel.r_objects = 2_000;
        w.rel.s_objects = 2_000;
        let rows = fig5_sweep(Algo::Grace, &[0.05, 0.2], &w, |_, _| String::new());
        assert_eq!(rows.len(), 2);
        assert!(rows[0].sim > 0.0 && rows[1].sim > 0.0);
        assert!(rows[0].sim >= rows[1].sim, "less memory can't be faster");
        let table = render_fig5("test", &rows);
        assert!(table.contains("Model") && table.contains('x'));
    }
}
