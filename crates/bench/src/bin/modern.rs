//! Faithful vs `--modern` execution on the real memory-mapped store.
//!
//! Runs every algorithm twice over the same workload — once with the
//! faithful 1996 inner loops (threaded), once through the
//! cache-conscious modern kernels — on `MmapEnv`, where elapsed time is
//! real wall-clock. Prints the per-algorithm speedup table, verifies
//! both outputs against the workload oracle, and (with `--json`) writes
//! `results/modern.json`.
//!
//! `--assert-speedup X` turns the table into a gate: exit nonzero if
//! any paper algorithm's modern/faithful ratio lands below `X`. The
//! naive baseline is reported but exempt — it has no re-partitioning
//! pass for the kernels to accelerate, so its faithful loop is already
//! a straight scan.
//!
//! ```sh
//! cargo run --release -p mmjoin-bench --bin modern -- \
//!     --objects 40000 --d 4 --reps 3 --json --assert-speedup 5
//! ```

use std::time::Instant;

use mmjoin::{join, verify, Algo, ExecMode, JoinSpec};
use mmjoin_bench::load::opt;
use mmjoin_bench::PAGE;
use mmjoin_mmstore::{MmapEnv, MmapEnvConfig};
use mmjoin_relstore::{build, PointerDist, RelConfig, WorkloadSpec};

struct Row {
    alg: Algo,
    faithful: f64,
    modern: f64,
    pairs: u64,
    checksum: u64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.faithful / self.modern
    }
}

/// Best-of-`reps` wall-clock seconds for one (algorithm, mode) pair on
/// a fresh store, plus the verified output.
fn measure(w: &WorkloadSpec, alg: Algo, mode: ExecMode, pages: u64, reps: u32) -> (f64, u64, u64) {
    let root = std::env::temp_dir().join(format!(
        "mmjoin-modern-bench-{}-{}-{mode:?}",
        std::process::id(),
        alg.name()
    ));
    let _ = std::fs::remove_dir_all(&root);
    let env = MmapEnv::new(MmapEnvConfig {
        root: root.clone(),
        num_disks: w.rel.d,
        page_size: PAGE,
    })
    .expect("mmap env");
    let rels = build(&env, w).expect("workload builds");
    let mut best = f64::INFINITY;
    let mut pairs = 0;
    let mut checksum = 0;
    for rep in 0..reps.max(1) {
        let spec = JoinSpec::new(pages * PAGE, pages * PAGE)
            .with_mode(mode)
            .with_tag(&format!("rep{rep}"));
        let t0 = Instant::now();
        let out = join(&env, &rels, alg, &spec).expect("join runs");
        best = best.min(t0.elapsed().as_secs_f64());
        verify(&out, &rels).expect("join result matches oracle");
        pairs = out.pairs;
        checksum = out.checksum;
    }
    let _ = std::fs::remove_dir_all(&root);
    (best, pairs, checksum)
}

fn main() {
    let objects: u64 = opt("--objects", 40_000);
    let obj_size: u32 = opt("--obj-size", 64);
    let d: u32 = opt("--d", 4);
    let pages: u64 = opt("--mem-pages", 256);
    let reps: u32 = opt("--reps", 3);
    let seed: u64 = opt("--seed", 1996);
    let assert_speedup: f64 = opt("--assert-speedup", 0.0);

    let w = WorkloadSpec {
        rel: RelConfig {
            r_size: obj_size,
            s_size: obj_size,
            d,
            r_objects: objects,
            s_objects: objects,
        },
        dist: PointerDist::Uniform,
        seed,
        prefix: String::new(),
    };

    println!(
        "modern vs faithful on MmapEnv: {objects} x {obj_size} B objects, \
         d={d}, {pages} pages/proc, best of {reps}"
    );
    println!(
        "{:>14} {:>13} {:>13} {:>9}",
        "algorithm", "faithful (s)", "modern (s)", "speedup"
    );
    let mut rows = Vec::new();
    for alg in Algo::ALL {
        let (faithful, fp, fc) = measure(&w, alg, ExecMode::Threaded, pages, reps);
        let (modern, mp, mc) = measure(&w, alg, ExecMode::Modern, pages, reps);
        assert_eq!((fp, fc), (mp, mc), "{}: modes disagree", alg.name());
        let row = Row {
            alg,
            faithful,
            modern,
            pairs: mp,
            checksum: mc,
        };
        println!(
            "{:>14} {:>13.4} {:>13.4} {:>8.1}x",
            alg.name(),
            row.faithful,
            row.modern,
            row.speedup()
        );
        rows.push(row);
    }

    let mut json = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            concat!(
                "{{\"alg\":\"{}\",\"faithful_seconds\":{:.6},",
                "\"modern_seconds\":{:.6},\"speedup\":{:.4},",
                "\"pairs\":{},\"checksum\":\"{:#x}\"}}"
            ),
            r.alg.name(),
            r.faithful,
            r.modern,
            r.speedup(),
            r.pairs,
            r.checksum
        ));
    }
    json.push(']');
    mmjoin_bench::maybe_write_json("modern", &json);

    if assert_speedup > 0.0 {
        let worst = rows
            .iter()
            .filter(|r| r.alg != Algo::NaiveNestedLoops)
            .min_by(|a, b| a.speedup().total_cmp(&b.speedup()))
            .expect("nonempty");
        if worst.speedup() < assert_speedup {
            eprintln!(
                "modern: FAILED speedup gate: {} at {:.1}x < required {assert_speedup}x",
                worst.alg.name(),
                worst.speedup()
            );
            std::process::exit(1);
        }
        println!(
            "speedup gate OK: worst algorithm ({}) at {:.1}x >= {assert_speedup}x",
            worst.alg.name(),
            worst.speedup()
        );
    }
}
