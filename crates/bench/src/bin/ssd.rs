//! Extension E10: do these algorithms still matter without seeks?
//!
//! The paper's entire design space — re-partitioning passes, pointer
//! sorting, staggered phases — exists because *random disk access is
//! expensive*. This experiment swaps the mechanistic 1996 drive for a
//! flat-cost SSD-like device (no seek, no rotation), recalibrates, and
//! re-runs a Fig.-5-style point for each algorithm. The expected
//! collapse of the nested-loops penalty is the quantitative version of
//! why this once-hot niche went quiet.

use mmjoin::{join, verify, Algo, ExecMode, JoinSpec};
use mmjoin_bench::{paper_workload, r_bytes, PAGE};
use mmjoin_relstore::build;
use mmjoin_vmsim::{calibrated_params, DiskParams, SimConfig, SimEnv};

fn run(disk: &DiskParams, alg: Algo, pages: u64, w: &mmjoin_relstore::WorkloadSpec) -> f64 {
    let mut cfg = SimConfig::waterloo96(4);
    cfg.machine = calibrated_params(disk).expect("calibration");
    cfg.disk = disk.clone();
    cfg.rproc_pages = pages as usize;
    cfg.sproc_pages = pages as usize;
    let env = SimEnv::new(cfg).expect("config");
    let rels = build(&env, w).expect("workload");
    let spec = JoinSpec::new(pages * PAGE, pages * PAGE).with_mode(ExecMode::Sequential);
    let out = join(&env, &rels, alg, &spec).expect("join");
    verify(&out, &rels).expect("oracle");
    out.elapsed
}

fn main() {
    let w = paper_workload(4, 2000);
    let pages = ((0.05 * r_bytes(&w) as f64) as u64 / PAGE).max(4);
    let hdd = DiskParams::waterloo96();
    let ssd = DiskParams::flat_ssd();
    println!("E10 device ablation at M/|R| = 0.05 (seconds; ratio vs the best)");
    println!(
        "{:>14} {:>12} {:>8} {:>12} {:>8}",
        "algorithm", "1996 disk", "ratio", "flat ssd", "ratio"
    );
    let mut rows = Vec::new();
    for alg in [
        Algo::NestedLoops,
        Algo::SortMerge,
        Algo::Grace,
        Algo::HybridHash,
    ] {
        rows.push((alg, run(&hdd, alg, pages, &w), run(&ssd, alg, pages, &w)));
    }
    let best_hdd = rows.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
    let best_ssd = rows.iter().map(|r| r.2).fold(f64::INFINITY, f64::min);
    for (alg, h, s) in &rows {
        println!(
            "{:>14} {:>11.1}s {:>7.1}x {:>11.1}s {:>7.1}x",
            alg.name(),
            h,
            h / best_hdd,
            s,
            s / best_ssd
        );
    }
    println!();
    println!("expected: on the seeking disk, nested loops pays several-fold for its");
    println!("random S access; on the flat device the spread collapses toward CPU +");
    println!("transfer costs — the re-partitioning machinery stops paying for itself,");
    println!("which is why pointer-join re-partitioning faded with cheap random I/O.");
}
