//! Extension E3: pointer-distribution skew sensitivity, executed and
//! modelled. Zipf-distributed join pointers concentrate references;
//! CrossPartition concentrates whole partitions (skew = D).

use mmjoin::{inputs_for, join, verify, Algo, ExecMode, JoinSpec};
use mmjoin_bench::{calibrated_machine, paper_workload, r_bytes, sim_env, PAGE};
use mmjoin_model::predict;
use mmjoin_relstore::{build, PointerDist};
use mmjoin_vmsim::{ContentionMode, Policy};

fn main() {
    println!("E3 skew sensitivity (M/|R| = 0.05, D = 4)");
    println!(
        "{:>12} {:>16} {:>8} {:>12} {:>12}",
        "algorithm", "distribution", "skew", "model (s)", "experim (s)"
    );
    for alg in [Algo::NestedLoops, Algo::SortMerge, Algo::Grace] {
        for (name, dist) in [
            ("uniform", PointerDist::Uniform),
            ("zipf(0.8)", PointerDist::Zipf { theta: 0.8 }),
            ("cross-partition", PointerDist::CrossPartition),
        ] {
            let mut w = paper_workload(4, 500);
            w.dist = dist;
            let pages = ((0.05 * r_bytes(&w) as f64) as u64 / PAGE) as usize;
            let env = sim_env(4, pages, Policy::Lru, ContentionMode::Independent);
            let rels = build(&env, &w).expect("workload");
            let spec = JoinSpec::new(pages as u64 * PAGE, pages as u64 * PAGE)
                .with_mode(ExecMode::Sequential);
            let out = join(&env, &rels, alg, &spec).expect("join");
            verify(&out, &rels).expect("oracle");
            let model = alg
                .modelled()
                .map(|a| predict(a, calibrated_machine(), &inputs_for(&rels, &spec)).total())
                .unwrap_or(f64::NAN);
            println!(
                "{:>12} {:>16} {:>8.2} {:>12.1} {:>12.1}",
                alg.name(),
                name,
                rels.skew,
                model,
                out.elapsed
            );
        }
    }
    println!();
    println!("expected: skew inflates the synchronized algorithms (worst-case");
    println!("partition gates each pass) more than free-running nested loops.");
    println!("note: the model's skew terms are the paper's worst-case bounds;");
    println!("for pathological distributions (cross-partition) the bound is loose");
    println!("and the model over-predicts — conservatively — by design.");
}
