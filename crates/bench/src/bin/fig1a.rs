//! Figure 1(a): measured disk transfer time (ms per 4 KB block) as a
//! function of band size, for random reads and deferred writes — the
//! paper's banding measurement run against the simulated drive.

use mmjoin_vmsim::{measure_dtt, CalibrationSpec, DiskParams};

fn main() {
    let disk = DiskParams::waterloo96();
    let spec = CalibrationSpec::default();
    println!("Fig 1(a): disk transfer time vs band size");
    println!(
        "disk: {} blocks/track, {} tracks/cyl, {} cylinders, {} rpm",
        disk.blocks_per_track, disk.tracks_per_cyl, disk.cylinders, disk.rpm
    );
    println!(
        "{:>12} {:>14} {:>14}",
        "band (blks)", "dttr (ms/blk)", "dttw (ms/blk)"
    );
    for s in measure_dtt(&disk, &spec) {
        println!(
            "{:>12} {:>14.2} {:>14.2}",
            s.band,
            s.read * 1e3,
            s.write * 1e3
        );
    }
    println!();
    println!("paper (Fujitsu M2344K/M2372K): dttr 6..~20+ ms, dttw below dttr,");
    println!("both rising with band size; compare the shapes above.");
}
