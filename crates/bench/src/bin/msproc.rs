//! Extension E11: isolating the Mackert–Lohman term.
//!
//! Fig. 5 sweeps `M_Rproc` with `M_Sproc` along for the ride. Nested
//! loops' cost, though, is dominated by the `Ylru(...)` faults of the
//! *Sproc* buffer — so sweeping `M_Sproc` alone, at fixed `M_Rproc`,
//! tests the Ylru approximation in isolation: the model's S-read terms
//! are the only ones that move.

use mmjoin::{inputs_for, join, verify, Algo, ExecMode, JoinSpec};
use mmjoin_bench::{calibrated_machine, paper_workload, r_bytes, PAGE};
use mmjoin_model::predict;
use mmjoin_relstore::build;
use mmjoin_vmsim::{ContentionMode, Policy, SimConfig, SimEnv};

fn main() {
    let w = paper_workload(4, 900);
    let machine = calibrated_machine();
    let r_pages = ((0.3 * r_bytes(&w) as f64) as u64 / PAGE) as usize; // fixed, ample
    println!("E11 M_Sproc sweep (nested loops, M_Rproc fixed at 0.3·|R|)");
    println!(
        "{:>10} {:>12} {:>12} {:>8} {:>10}",
        "S pages", "model (s)", "experim (s)", "err%", "S faults"
    );
    for s_frac in [0.02, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3] {
        let s_pages = ((s_frac * r_bytes(&w) as f64) as u64 / PAGE).max(4) as usize;
        let mut cfg = SimConfig::waterloo96(4);
        cfg.machine = machine.clone();
        cfg.rproc_pages = r_pages;
        cfg.sproc_pages = s_pages;
        cfg.policy = Policy::Lru;
        cfg.contention = ContentionMode::Independent;
        let env = SimEnv::new(cfg).expect("config");
        let rels = build(&env, &w).expect("workload");
        let spec = JoinSpec::new(r_pages as u64 * PAGE, s_pages as u64 * PAGE)
            .with_mode(ExecMode::Sequential);
        let out = join(&env, &rels, Algo::NestedLoops, &spec).expect("join");
        verify(&out, &rels).expect("oracle");
        let model = predict(
            mmjoin_model::Algorithm::NestedLoops,
            machine,
            &inputs_for(&rels, &spec),
        )
        .total();
        // S faults are the Sproc-side reads: total reads minus the
        // R/RP compulsory traffic, visible directly as the delta.
        println!(
            "{:>10} {:>12.1} {:>12.1} {:>+7.1}% {:>10}",
            s_pages,
            model,
            out.elapsed,
            (model - out.elapsed) / out.elapsed * 100.0,
            out.stats.total_read_faults(),
        );
    }
    println!();
    println!("expected: both series fall together as the Sproc buffer grows, with");
    println!("model error staying in single digits — Ylru earning its validation.");
}
