//! Extension E4: all three algorithms (plus the naive baseline) on one
//! memory axis — who wins where (the comparative analysis §9 lists as
//! future work).

use mmjoin::{Algo, ExecMode};
use mmjoin_bench::{one_sim_join, paper_workload, r_bytes, PAGE};
use mmjoin_vmsim::{ContentionMode, Policy};

fn main() {
    let w = paper_workload(4, 600);
    let fracs = [0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.7];
    println!("E4 algorithm crossover: Time/Rproc (s) vs M/|R|, D = 4");
    print!("{:>8}", "M/|R|");
    for alg in Algo::ALL {
        print!(" {:>13}", alg.name());
    }
    println!(" {:>13}", "winner");
    for frac in fracs {
        let pages = ((frac * r_bytes(&w) as f64) as u64 / PAGE).max(4) as usize;
        print!("{frac:>8.2}");
        let mut best = (f64::INFINITY, "");
        for alg in Algo::ALL {
            let (t, _, _) = one_sim_join(
                alg,
                &w,
                pages,
                Policy::Lru,
                ContentionMode::Independent,
                ExecMode::Sequential,
                false,
            );
            if t < best.0 {
                best = (t, alg.name());
            }
            print!(" {t:>13.1}");
        }
        println!(" {:>13}", best.1);
    }
    println!();
    println!("expected: Grace wins at small memory; the re-partitioned algorithms");
    println!("always beat the naive baseline; nested loops catches up only once S");
    println!("is effectively memory-resident.");
}
