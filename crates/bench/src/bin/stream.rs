//! Streaming-tier sweep: batch size vs client latency and throughput.
//!
//! For each micro-batch size, one resident-S streaming session runs a
//! warmup batch (paying the build and the cold faults on S exactly
//! once) and then a fixed steady-state batch train. Latency is the
//! simulator's measured environment time per batch — deterministic for
//! a given seed — so p50/p99 and the throughput curve reproduce
//! bit-for-bit. The sweep also re-derives the tier's core economics:
//! each steady batch must be at least 3x cheaper than an independent
//! full join of the same rows against the same |S|.
//!
//! ```sh
//! cargo run --release -p mmjoin-bench --bin stream -- [--json]
//! ```

use std::sync::Arc;

use mmjoin::{join, Algo, ExecMode, JoinSpec};
use mmjoin_bench::load::opt;
use mmjoin_env::machine::MachineParams;
use mmjoin_relstore::{build, PointerDist, RelConfig, WorkloadSpec};
use mmjoin_stream::{StreamConfig, StreamHeader, StreamOp, StreamSession};
use mmjoin_vmsim::{SimConfig, SimEnv};

const D: u32 = 2;
const MEM_PAGES: u64 = 64;

fn sim() -> Arc<SimEnv> {
    let mut cfg = SimConfig::waterloo96(D);
    cfg.rproc_pages = MEM_PAGES as usize;
    cfg.sproc_pages = MEM_PAGES as usize;
    Arc::new(SimEnv::new(cfg).unwrap())
}

/// Nearest-rank percentile over a sorted sample.
fn pct(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

struct Point {
    batch_rows: u64,
    batches: u64,
    p50_ms: f64,
    p99_ms: f64,
    rows_per_sec: f64,
    full_join_seconds: f64,
    amortization: f64,
}

fn measure(s_objects: u64, batch_rows: u64, batches: u64, seed: u64, modern: bool) -> Point {
    let env = sim();
    let header = StreamHeader {
        name: format!("sweep{batch_rows}"),
        s_objects,
        s_size: 64,
        d: D,
        mem_pages: MEM_PAGES,
        seed,
        modern,
    };
    let sess = StreamSession::open(
        Arc::clone(&env),
        header,
        StreamConfig::ephemeral(MachineParams::waterloo96()),
    )
    .unwrap();
    sess.submit(StreamOp::Batch {
        name: "warmup".into(),
        objects: batch_rows,
        seed: 0,
    })
    .unwrap();
    for i in 0..batches {
        sess.submit(StreamOp::Batch {
            name: format!("b{i}"),
            objects: batch_rows,
            seed: i + 1,
        })
        .unwrap();
    }
    sess.drain();
    let results = sess.results();
    let mut lat: Vec<f64> = results
        .iter()
        .filter(|r| r.name != "warmup")
        .map(|r| {
            assert!(r.ok, "batch {} failed: {:?}", r.seq, r.error);
            r.env_elapsed
        })
        .collect();
    assert_eq!(lat.len(), batches as usize);
    let total: f64 = lat.iter().sum();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    sess.shutdown();

    // The yardstick: a from-scratch join of one batch's rows against
    // the same inner relation, on an identical fresh machine.
    let full_env = sim();
    let spec = WorkloadSpec {
        rel: RelConfig {
            r_size: 16,
            s_size: 64,
            d: D,
            r_objects: batch_rows,
            s_objects,
        },
        dist: PointerDist::Uniform,
        seed,
        prefix: String::new(),
    };
    let rels = build(&*full_env, &spec).unwrap();
    let jspec = JoinSpec::new(MEM_PAGES * 4096, MEM_PAGES * 4096).with_mode(ExecMode::Sequential);
    let full = join(&*full_env, &rels, Algo::Grace, &jspec).unwrap();

    let p99 = pct(&lat, 99.0);
    Point {
        batch_rows,
        batches,
        p50_ms: pct(&lat, 50.0) * 1e3,
        p99_ms: p99 * 1e3,
        rows_per_sec: batch_rows as f64 * batches as f64 / total,
        full_join_seconds: full.elapsed,
        amortization: full.elapsed / p99,
    }
}

fn main() {
    let s_objects: u64 = opt("--s-objects", 4096);
    let batches: u64 = opt("--batches", 32);
    let seed: u64 = opt("--seed", 1996);
    let modern = std::env::args().any(|a| a == "--modern");

    println!(
        "stream sweep: |S| = {s_objects} x 64 B, D = {D}, {MEM_PAGES} pages, \
         {batches} steady batches per point, {} index",
        if modern {
            "modern sorted-run"
        } else {
            "radix hash"
        }
    );
    println!(
        "{:>10} {:>9} {:>9} {:>12} {:>12} {:>7}",
        "batch", "p50(ms)", "p99(ms)", "rows/s", "full(ms)", "amort"
    );
    let points: Vec<Point> = [64u64, 256, 1024]
        .iter()
        .map(|&rows| {
            let p = measure(s_objects, rows, batches, seed, modern);
            println!(
                "{:>10} {:>9.3} {:>9.3} {:>12.0} {:>12.3} {:>6.1}x",
                p.batch_rows,
                p.p50_ms,
                p.p99_ms,
                p.rows_per_sec,
                p.full_join_seconds * 1e3,
                p.amortization
            );
            p
        })
        .collect();

    // The resident set's reason to exist: even the worst (p99) steady
    // batch beats an equivalent cold join by 3x at every batch size.
    for p in &points {
        assert!(
            p.amortization >= 3.0,
            "batch {} rows: amortization {:.2}x is below the 3x floor",
            p.batch_rows,
            p.amortization
        );
    }

    let body = points
        .iter()
        .map(|p| {
            format!(
                concat!(
                    "{{\"batch_rows\":{},\"batches\":{},\"p50_ms\":{:.6},",
                    "\"p99_ms\":{:.6},\"rows_per_sec\":{:.3},",
                    "\"full_join_ms\":{:.6},\"amortization\":{:.3}}}"
                ),
                p.batch_rows,
                p.batches,
                p.p50_ms,
                p.p99_ms,
                p.rows_per_sec,
                p.full_join_seconds * 1e3,
                p.amortization
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    mmjoin_bench::maybe_write_json(
        "stream",
        &format!(
            concat!(
                "{{\"s_objects\":{},\"d\":{},\"mem_pages\":{},\"seed\":{},",
                "\"modern\":{},\"points\":[{}]}}"
            ),
            s_objects, D, MEM_PAGES, seed, modern, body
        ),
    );
}
