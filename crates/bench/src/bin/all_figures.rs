//! Run every figure and extension experiment, writing each output to
//! `results/<name>.txt` — the one-command regeneration of
//! EXPERIMENTS.md's evidence.
//!
//! ```sh
//! cargo run --release -p mmjoin-bench --bin all_figures
//! ```

use std::process::Command;

fn main() {
    let bins = [
        "fig1a",
        "fig1b",
        "fig5a",
        "fig5b",
        "fig5c",
        "sync_ablation",
        "speedup",
        "scaleup",
        "skew",
        "crossover",
        "replacement_ablation",
        "hybrid",
        "model_ablation",
        "trace_stats",
        "contention",
        "ssd",
        "msproc",
        "gbuffer",
    ];
    let out_dir = std::path::Path::new("results");
    std::fs::create_dir_all(out_dir).expect("create results/");
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    // Forward --json so every figure also lands in results/<name>.json.
    let json = std::env::args().any(|a| a == "--json");
    let mut failures = 0;
    for bin in bins {
        print!("{bin:<22} ");
        let started = std::time::Instant::now();
        let mut cmd = Command::new(exe_dir.join(bin));
        if json {
            cmd.arg("--json");
        }
        let output = cmd
            .output()
            .unwrap_or_else(|e| panic!("launching {bin}: {e} (build with --release first)"));
        let path = out_dir.join(format!("{bin}.txt"));
        std::fs::write(&path, &output.stdout).expect("write result");
        if output.status.success() {
            println!("ok   {:>6.1?} -> {}", started.elapsed(), path.display());
        } else {
            failures += 1;
            println!("FAILED ({})", output.status);
            eprintln!("{}", String::from_utf8_lossy(&output.stderr));
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
    println!("\nall experiment outputs written to {}/", out_dir.display());
}
