//! Load generator for the mmjoin-serve service: submit `--jobs N`
//! randomized join jobs against a budget-constrained service and report
//! throughput plus the p50/p90/p99/p99.9 client latency ladder from the
//! service's fixed-memory log-scale histograms.
//!
//! ```sh
//! cargo run --release -p mmjoin-bench --bin loadgen -- \
//!     --jobs 32 --budget-pages 128 --workers 4 --policy spf [--json]
//! ```
//!
//! With `--shards N` (N > 1) it becomes a sweep: the **same** job list
//! under the **same** fault spec is run twice — once through the
//! single-queue [`Service`], once through the N-shard
//! [`ShardedService`] — and the two throughput/latency profiles are
//! compared side by side (JSON lands in `results/loadgen_shards.json`).
//! The default mix injects small real I/O stalls ([`CONTENDED_SPEC`]),
//! which a single admission queue serializes and shards overlap.
//!
//! With `--nodes N` (N > 1) it becomes the **cluster** sweep: the same
//! contended job list runs three times through a [`Coordinator`] over
//! real TCP — against one worker node, against N nodes, and against N
//! nodes with node 0 killed a third of the way through — and the run
//! asserts >1.3x 1→N throughput scaling plus zero lost jobs under the
//! kill (JSON lands in `results/loadgen_cluster.json`).

use std::time::Duration;

use mmjoin::RetryPolicy;
use mmjoin_bench::load::{machine_override, opt, random_job, CONTENDED_SPEC};
use mmjoin_cluster::{ClusterConfig, Coordinator, NodeServer};
use mmjoin_env::FaultSpec;
use mmjoin_serve::{
    AdmissionPolicy, JobRequest, JoinService, PlacementKind, ServeConfig, Service, ShardedService,
    PAGE,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic splitmix64 step. The arrival process must reproduce
/// exactly for a given seed — independent of the `rand` shim's stream,
/// which the job mix already consumes.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Parse `--arrival`: `closed` (the default — submit jobs back to
/// back) or `poisson:RATE` (open loop: exponential inter-arrival gaps
/// at RATE jobs/s, pre-drawn from a seeded splitmix64 stream so two
/// runs with the same seed see the identical arrival schedule).
fn arrival_gaps(mode: &str, seed: u64, jobs: u64) -> Result<Option<Vec<Duration>>, String> {
    if mode == "closed" {
        return Ok(None);
    }
    let Some(rate_str) = mode.strip_prefix("poisson:") else {
        return Err(format!(
            "unknown arrival mode '{mode}' (closed | poisson:RATE)"
        ));
    };
    let rate: f64 = rate_str
        .parse()
        .map_err(|e| format!("poisson rate '{rate_str}': {e}"))?;
    if !rate.is_finite() || rate <= 0.0 {
        return Err(format!("poisson rate must be positive, got {rate}"));
    }
    let mut state = seed ^ 0x5851_f42d_4c95_7f2d;
    Ok(Some(
        (0..jobs)
            .map(|_| {
                // Inverse-CDF draw; the u53 mantissa is in [0, 1), so
                // 1-u is in (0, 1] and the log is finite.
                let u = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
                Duration::from_secs_f64(-(1.0 - u).ln() / rate)
            })
            .collect(),
    ))
}

/// One run's worth of reportable numbers.
struct RunSummary {
    label: String,
    wall: f64,
    accepted: u64,
    failed: u64,
    completed: u64,
    throughput: f64,
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    peak_pages: u64,
    stolen: u64,
    per_shard_completed: Vec<u64>,
    stats_json: String,
}

fn run(label: &str, svc: Box<dyn JoinService>, jobs: &[JobRequest]) -> RunSummary {
    let started = std::time::Instant::now();
    let mut accepted = 0u64;
    for (i, req) in jobs.iter().enumerate() {
        match svc.submit(req.clone()) {
            Ok(_) => accepted += 1,
            Err(e) => eprintln!("{label}: job {i}: {e}"),
        }
    }
    svc.drain();
    let results = svc.results();
    let stats = svc.stats();
    let wall = started.elapsed().as_secs_f64();
    let failed = results.iter().filter(|r| r.error.is_some()).count() as u64;
    let lat = &stats.latency_hist;
    RunSummary {
        label: label.to_string(),
        wall,
        accepted,
        failed,
        completed: stats.completed,
        throughput: accepted as f64 / wall,
        p50_ms: lat.p50() * 1e3,
        p90_ms: lat.p90() * 1e3,
        p99_ms: lat.p99() * 1e3,
        p999_ms: lat.p999() * 1e3,
        peak_pages: stats.peak_budget_bytes / PAGE,
        stolen: stats.stolen,
        per_shard_completed: svc.shard_stats().iter().map(|s| s.completed).collect(),
        stats_json: stats.to_json(),
    }
}

impl RunSummary {
    fn print(&self) {
        println!(
            "{:<12} {:>8.3} s  {:>7.1} jobs/s  p50 {:>7.1} ms  p99 {:>8.1} ms  \
             {} ok / {} failed{}",
            self.label,
            self.wall,
            self.throughput,
            self.p50_ms,
            self.p99_ms,
            self.completed,
            self.failed,
            if self.stolen > 0 {
                format!("  ({} stolen)", self.stolen)
            } else {
                String::new()
            }
        );
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"label\":\"{}\",\"wall_seconds\":{:.6},\"accepted\":{},",
                "\"failed\":{},\"completed\":{},\"throughput_jobs_per_sec\":{:.3},",
                "\"p50_ms\":{:.3},\"p90_ms\":{:.3},\"p99_ms\":{:.3},\"p999_ms\":{:.3},",
                "\"peak_pages\":{},\"stolen\":{},\"per_shard_completed\":[{}]}}"
            ),
            self.label,
            self.wall,
            self.accepted,
            self.failed,
            self.completed,
            self.throughput,
            self.p50_ms,
            self.p90_ms,
            self.p99_ms,
            self.p999_ms,
            self.peak_pages,
            self.stolen,
            self.per_shard_completed
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(",")
        )
    }
}

fn main() {
    let jobs: u64 = opt("--jobs", 32);
    let budget_pages: u64 = opt("--budget-pages", 128);
    let workers: usize = opt("--workers", 4);
    let seed: u64 = opt("--seed", 1996);
    let shards: u32 = opt("--shards", 1);
    let nodes: u32 = opt("--nodes", 1);
    let policy_name: String = opt("--policy", "fifo".to_string());
    let placement_name: String = opt("--placement", "pred".to_string());
    let Some(policy) = AdmissionPolicy::from_name(&policy_name) else {
        eprintln!("--policy: unknown policy '{policy_name}' (fifo | spf)");
        std::process::exit(2);
    };
    let Some(placement) = PlacementKind::from_name(&placement_name) else {
        eprintln!("--placement: unknown placement '{placement_name}' (rr | load | pred)");
        std::process::exit(2);
    };
    let machine = match machine_override() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("--machine-profile: {e}");
            std::process::exit(2);
        }
    };

    if nodes > 1 {
        if shards > 1 {
            eprintln!("--nodes and --shards are separate sweeps; pick one");
            std::process::exit(2);
        }
        cluster_sweep(jobs, budget_pages, workers, seed, nodes, machine);
        return;
    }

    if shards > 1 {
        sweep(
            jobs,
            budget_pages,
            workers,
            seed,
            shards,
            policy,
            placement,
            machine,
        );
        return;
    }

    let arrival: String = opt("--arrival", "closed".to_string());
    let gaps = match arrival_gaps(&arrival, seed, jobs) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("--arrival: {e}");
            std::process::exit(2);
        }
    };

    let mut rng = StdRng::seed_from_u64(seed);
    let mut start_cfg = ServeConfig::sim(budget_pages * PAGE, workers).with_policy(policy);
    if let Some(m) = machine {
        start_cfg = start_cfg.with_machine(m);
    }
    let svc = match Service::start(start_cfg) {
        Ok(svc) => svc,
        Err(e) => {
            eprintln!("cannot start service: {e}");
            std::process::exit(2);
        }
    };
    let started = std::time::Instant::now();
    let mut accepted = 0u64;
    for i in 0..jobs {
        if let Some(g) = &gaps {
            // Open loop: arrivals follow the pre-drawn schedule, not
            // the service's completion pace.
            std::thread::sleep(g[i as usize]);
        }
        match svc.submit(random_job(&mut rng, i + 1)) {
            Ok(_) => accepted += 1,
            Err(e) => eprintln!("job {i}: {e}"),
        }
    }
    let (results, stats) = svc.finish();
    let wall = started.elapsed().as_secs_f64();

    let failed = results.iter().filter(|r| r.error.is_some()).count();
    let throughput = accepted as f64 / wall;
    // Quantiles come from the service's latency histogram, not a
    // sorted sample vector — same numbers a long-running service would
    // report from constant memory.
    let lat = &stats.latency_hist;

    println!(
        "loadgen: {accepted}/{jobs} jobs accepted, policy {}, arrivals {arrival}",
        policy.name()
    );
    println!(
        "budget:     {budget_pages} pages (peak {} pages), {workers} workers",
        stats.peak_budget_bytes / PAGE
    );
    println!(
        "completed:  {} ok, {failed} failed in {wall:.3} s",
        stats.completed
    );
    println!("throughput: {throughput:.1} jobs/s");
    println!(
        "latency:    p50 {:.1} ms, p90 {:.1} ms, p99 {:.1} ms, p99.9 {:.1} ms",
        lat.p50() * 1e3,
        lat.p90() * 1e3,
        lat.p99() * 1e3,
        lat.p999() * 1e3
    );
    println!(
        "queue wait: {:.3} s total across jobs; exec {:.3} s",
        stats.queue_wait_seconds, stats.exec_wall_seconds
    );

    mmjoin_bench::maybe_write_json(
        "loadgen",
        &format!(
            concat!(
                "{{\"jobs\":{},\"accepted\":{},\"failed\":{},\"policy\":\"{}\",",
                "\"arrival\":\"{}\",",
                "\"budget_pages\":{},\"workers\":{},\"wall_seconds\":{:.6},",
                "\"throughput_jobs_per_sec\":{:.3},",
                "\"latency\":{},",
                "\"service\":{}}}"
            ),
            jobs,
            accepted,
            failed,
            policy.name(),
            arrival,
            budget_pages,
            workers,
            wall,
            throughput,
            lat.to_json(),
            stats.to_json()
        ),
    );

    assert!(
        stats.peak_budget_bytes <= budget_pages * PAGE,
        "admission exceeded the global budget"
    );
    if failed > 0 {
        std::process::exit(1);
    }
}

/// Run the identical contended job list through the single-queue
/// service and the sharded service, and compare.
#[allow(clippy::too_many_arguments)]
fn sweep(
    jobs: u64,
    budget_pages: u64,
    workers: usize,
    seed: u64,
    shards: u32,
    policy: AdmissionPolicy,
    placement: PlacementKind,
    machine: Option<std::sync::Arc<mmjoin_env::machine::MachineParams>>,
) {
    let spec_str: String = opt("--fault-spec", CONTENDED_SPEC.to_string());
    let fault_spec = match FaultSpec::parse(&spec_str) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("--fault-spec: {e}");
            std::process::exit(2);
        }
    };
    // One fixed job list: both services see the same arrivals in the
    // same order, so the comparison isolates the service structure.
    let mut rng = StdRng::seed_from_u64(seed);
    let reqs: Vec<JobRequest> = (0..jobs).map(|i| random_job(&mut rng, i + 1)).collect();
    let cfg = || {
        let mut c = ServeConfig::sim(budget_pages * PAGE, workers).with_policy(policy);
        c.fault_spec = fault_spec.clone();
        if let Some(m) = &machine {
            c = c.with_machine(m.clone());
        }
        c
    };

    println!(
        "loadgen sweep: {jobs} jobs, budget {budget_pages} pages, \
         {workers} worker(s)/queue, policy {}, fault spec '{spec_str}'",
        policy.name()
    );
    let single = match Service::start(cfg()) {
        Ok(svc) => run("single-queue", Box::new(svc), &reqs),
        Err(e) => {
            eprintln!("cannot start single-queue service: {e}");
            std::process::exit(2);
        }
    };
    single.print();
    let sharded = match ShardedService::start(cfg(), shards, placement.build()) {
        Ok(svc) => run(
            &format!("{shards}-shard/{}", placement.name()),
            Box::new(svc),
            &reqs,
        ),
        Err(e) => {
            eprintln!("cannot start sharded service: {e}");
            std::process::exit(2);
        }
    };
    sharded.print();

    let speedup = sharded.throughput / single.throughput;
    println!(
        "speedup:     {speedup:.2}x throughput, p99 {:.1} ms -> {:.1} ms",
        single.p99_ms, sharded.p99_ms
    );

    mmjoin_bench::maybe_write_json(
        "loadgen_shards",
        &format!(
            concat!(
                "{{\"jobs\":{},\"seed\":{},\"budget_pages\":{},\"workers_per_queue\":{},",
                "\"shards\":{},\"policy\":\"{}\",\"placement\":\"{}\",",
                "\"fault_spec\":\"{}\",\"speedup\":{:.3},",
                "\"single\":{},\"sharded\":{},",
                "\"single_service\":{},\"sharded_service\":{}}}"
            ),
            jobs,
            seed,
            budget_pages,
            workers,
            shards,
            policy.name(),
            placement.name(),
            spec_str,
            speedup,
            single.to_json(),
            sharded.to_json(),
            single.stats_json,
            sharded.stats_json
        ),
    );

    assert!(
        single.peak_pages <= budget_pages && sharded.peak_pages <= budget_pages,
        "admission exceeded the global budget"
    );
    if single.failed + sharded.failed > 0 {
        std::process::exit(1);
    }
}

/// One coordinator run's worth of reportable numbers.
struct ClusterRun {
    label: String,
    nodes: u32,
    wall: f64,
    accepted: u64,
    failed: u64,
    completed: u64,
    throughput: f64,
    p50_ms: f64,
    p99_ms: f64,
    requeued: u64,
    node_losses: u64,
    duplicate_completions: u64,
    budget_leak_bytes: u64,
    stats_json: String,
}

impl ClusterRun {
    fn print(&self) {
        println!(
            "{:<14} {:>8.3} s  {:>7.1} jobs/s  p50 {:>7.1} ms  p99 {:>8.1} ms  \
             {} ok / {} failed{}",
            self.label,
            self.wall,
            self.throughput,
            self.p50_ms,
            self.p99_ms,
            self.completed - self.failed,
            self.failed,
            if self.node_losses > 0 {
                format!(
                    "  ({} lost node(s), {} requeue(s))",
                    self.node_losses, self.requeued
                )
            } else {
                String::new()
            }
        );
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"label\":\"{}\",\"nodes\":{},\"wall_seconds\":{:.6},\"accepted\":{},",
                "\"failed\":{},\"completed\":{},\"throughput_jobs_per_sec\":{:.3},",
                "\"p50_ms\":{:.3},\"p99_ms\":{:.3},\"requeued\":{},\"node_losses\":{},",
                "\"duplicate_completions\":{},\"budget_leak_bytes\":{},\"cluster\":{}}}"
            ),
            self.label,
            self.nodes,
            self.wall,
            self.accepted,
            self.failed,
            self.completed,
            self.throughput,
            self.p50_ms,
            self.p99_ms,
            self.requeued,
            self.node_losses,
            self.duplicate_completions,
            self.budget_leak_bytes,
            self.stats_json
        )
    }
}

/// Run the fixed job list through a coordinator over `node_count`
/// in-process worker nodes (real TCP). With `kill_after`, node 0 is
/// killed as soon as that many results have landed, forcing its queued
/// and in-flight jobs onto the survivors.
fn run_cluster(
    label: &str,
    node_count: u32,
    kill_after: Option<usize>,
    reqs: &[JobRequest],
    node_cfg: &dyn Fn() -> ServeConfig,
) -> ClusterRun {
    let nodes: Vec<NodeServer> = (0..node_count)
        .map(|i| {
            NodeServer::start("127.0.0.1:0", &format!("bench-{i}"), node_cfg()).unwrap_or_else(
                |e| {
                    eprintln!("cannot start node {i}: {e}");
                    std::process::exit(2);
                },
            )
        })
        .collect();
    let addrs: Vec<String> = nodes.iter().map(|n| n.local_addr().to_string()).collect();
    let cfg = ClusterConfig::new(addrs)
        .with_heartbeat(Duration::from_millis(20))
        .with_timeout(Duration::from_millis(250))
        .with_retry(RetryPolicy::attempts(6));
    let co = match Coordinator::start(cfg) {
        Ok(co) => co,
        Err(e) => {
            eprintln!("cannot start coordinator: {e}");
            std::process::exit(2);
        }
    };
    let started = std::time::Instant::now();
    let mut accepted = 0u64;
    for (i, req) in reqs.iter().enumerate() {
        match co.submit(req.clone()) {
            Ok(_) => accepted += 1,
            Err(e) => eprintln!("{label}: job {i}: {e}"),
        }
    }
    if let Some(after) = kill_after {
        // Wait for the first third of the results, then take node 0
        // out from under its remaining claims.
        let deadline = std::time::Instant::now() + Duration::from_secs(120);
        while co.results().len() < after && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        nodes[0].kill();
    }
    let (_, stats) = co.finish();
    let wall = started.elapsed().as_secs_f64();
    ClusterRun {
        label: label.to_string(),
        nodes: node_count,
        wall,
        accepted,
        failed: stats.failed,
        completed: stats.completed,
        throughput: accepted as f64 / wall,
        p50_ms: stats.latency.p50() * 1e3,
        p99_ms: stats.latency.p99() * 1e3,
        requeued: stats.requeued,
        node_losses: stats.node_losses,
        duplicate_completions: stats.duplicate_completions,
        budget_leak_bytes: stats.budget_leak_bytes,
        stats_json: stats.to_json(),
    }
}

/// The `--nodes N` cluster sweep: the same contended job list through
/// one node, through N nodes, and through N nodes with node 0 killed
/// mid-run. Asserts >1.3x 1→N throughput scaling and zero lost jobs.
fn cluster_sweep(
    jobs: u64,
    budget_pages: u64,
    workers: usize,
    seed: u64,
    nodes: u32,
    machine: Option<std::sync::Arc<mmjoin_env::machine::MachineParams>>,
) {
    let spec_str: String = opt("--fault-spec", CONTENDED_SPEC.to_string());
    let fault_spec = match FaultSpec::parse(&spec_str) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("--fault-spec: {e}");
            std::process::exit(2);
        }
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let reqs: Vec<JobRequest> = (0..jobs).map(|i| random_job(&mut rng, i + 1)).collect();
    let node_cfg = || {
        let mut c = ServeConfig::sim(budget_pages * PAGE, workers);
        c.fault_spec = fault_spec.clone();
        if let Some(m) = &machine {
            c = c.with_machine(m.clone());
        }
        c
    };

    println!(
        "loadgen cluster sweep: {jobs} jobs, {budget_pages} pages and \
         {workers} worker(s) per node, fault spec '{spec_str}'"
    );
    let single = run_cluster("1-node", 1, None, &reqs, &node_cfg);
    single.print();
    let multi = run_cluster(&format!("{nodes}-node"), nodes, None, &reqs, &node_cfg);
    multi.print();
    let kill_after = (jobs as usize / 3).max(1);
    let chaos = run_cluster(
        &format!("{nodes}-node-chaos"),
        nodes,
        Some(kill_after),
        &reqs,
        &node_cfg,
    );
    chaos.print();

    let scaling = multi.throughput / single.throughput;
    println!(
        "scaling:       {scaling:.2}x throughput 1 -> {nodes} nodes, p99 {:.1} ms -> {:.1} ms",
        single.p99_ms, multi.p99_ms
    );

    mmjoin_bench::maybe_write_json(
        "loadgen_cluster",
        &format!(
            concat!(
                "{{\"jobs\":{},\"seed\":{},\"budget_pages\":{},\"workers_per_node\":{},",
                "\"nodes\":{},\"fault_spec\":\"{}\",\"scaling\":{:.3},",
                "\"single\":{},\"multi\":{},\"chaos\":{}}}"
            ),
            jobs,
            seed,
            budget_pages,
            workers,
            nodes,
            spec_str,
            scaling,
            single.to_json(),
            multi.to_json(),
            chaos.to_json()
        ),
    );

    // Zero lost jobs in every leg — including the one that lost a node.
    for run in [&single, &multi, &chaos] {
        assert_eq!(
            run.completed,
            run.accepted,
            "{}: {} of {} jobs went missing",
            run.label,
            run.accepted - run.completed,
            run.accepted
        );
        assert_eq!(run.failed, 0, "{}: {} jobs failed", run.label, run.failed);
        assert_eq!(
            run.budget_leak_bytes, 0,
            "{}: budget accounting leaked",
            run.label
        );
    }
    assert_eq!(
        chaos.node_losses, 1,
        "chaos leg must lose exactly the killed node"
    );
    assert!(
        scaling > 1.3,
        "1 -> {nodes} node scaling {scaling:.2}x is below the 1.3x floor"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_mode_has_no_gaps() {
        assert!(arrival_gaps("closed", 1, 8).unwrap().is_none());
    }

    #[test]
    fn poisson_gaps_are_seed_deterministic_with_the_right_mean() {
        let a = arrival_gaps("poisson:200", 42, 4096).unwrap().unwrap();
        let b = arrival_gaps("poisson:200", 42, 4096).unwrap().unwrap();
        assert_eq!(a, b, "same seed, same schedule");
        let c = arrival_gaps("poisson:200", 43, 4096).unwrap().unwrap();
        assert_ne!(a, c, "different seed, different schedule");
        let mean = a.iter().map(|d| d.as_secs_f64()).sum::<f64>() / a.len() as f64;
        // Exp(200) has mean 5 ms; 4096 draws put the sample mean well
        // within 20% of it.
        assert!((mean - 0.005).abs() < 0.001, "mean gap {mean}");
    }

    #[test]
    fn malformed_arrival_modes_are_rejected() {
        assert!(arrival_gaps("poisson:0", 1, 8).is_err());
        assert!(arrival_gaps("poisson:-3", 1, 8).is_err());
        assert!(arrival_gaps("poisson:x", 1, 8).is_err());
        assert!(arrival_gaps("uniform:5", 1, 8).is_err());
    }
}
