//! Load generator for the mmjoin-serve service: submit `--jobs N`
//! randomized join jobs against a budget-constrained service and report
//! throughput plus the p50/p90/p99/p99.9 client latency ladder from the
//! service's fixed-memory log-scale histograms.
//!
//! ```sh
//! cargo run --release -p mmjoin-bench --bin loadgen -- \
//!     --jobs 32 --budget-pages 128 --workers 4 --policy spf [--json]
//! ```

use mmjoin_bench::load::{opt, random_job};
use mmjoin_serve::{AdmissionPolicy, ServeConfig, Service, PAGE};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let jobs: u64 = opt("--jobs", 32);
    let budget_pages: u64 = opt("--budget-pages", 128);
    let workers: usize = opt("--workers", 4);
    let seed: u64 = opt("--seed", 1996);
    let policy_name: String = opt("--policy", "fifo".to_string());
    let Some(policy) = AdmissionPolicy::from_name(&policy_name) else {
        eprintln!("--policy: unknown policy '{policy_name}' (fifo | spf)");
        std::process::exit(2);
    };

    let mut rng = StdRng::seed_from_u64(seed);
    let svc =
        match Service::start(ServeConfig::sim(budget_pages * PAGE, workers).with_policy(policy)) {
            Ok(svc) => svc,
            Err(e) => {
                eprintln!("cannot start service: {e}");
                std::process::exit(2);
            }
        };
    let started = std::time::Instant::now();
    let mut accepted = 0u64;
    for i in 0..jobs {
        match svc.submit(random_job(&mut rng, i + 1)) {
            Ok(_) => accepted += 1,
            Err(e) => eprintln!("job {i}: {e}"),
        }
    }
    let (results, stats) = svc.finish();
    let wall = started.elapsed().as_secs_f64();

    let failed = results.iter().filter(|r| r.error.is_some()).count();
    let throughput = accepted as f64 / wall;
    // Quantiles come from the service's latency histogram, not a
    // sorted sample vector — same numbers a long-running service would
    // report from constant memory.
    let lat = &stats.latency_hist;

    println!(
        "loadgen: {accepted}/{jobs} jobs accepted, policy {}",
        policy.name()
    );
    println!(
        "budget:     {budget_pages} pages (peak {} pages), {workers} workers",
        stats.peak_budget_bytes / PAGE
    );
    println!(
        "completed:  {} ok, {failed} failed in {wall:.3} s",
        stats.completed
    );
    println!("throughput: {throughput:.1} jobs/s");
    println!(
        "latency:    p50 {:.1} ms, p90 {:.1} ms, p99 {:.1} ms, p99.9 {:.1} ms",
        lat.p50() * 1e3,
        lat.p90() * 1e3,
        lat.p99() * 1e3,
        lat.p999() * 1e3
    );
    println!(
        "queue wait: {:.3} s total across jobs; exec {:.3} s",
        stats.queue_wait_seconds, stats.exec_wall_seconds
    );

    mmjoin_bench::maybe_write_json(
        "loadgen",
        &format!(
            concat!(
                "{{\"jobs\":{},\"accepted\":{},\"failed\":{},\"policy\":\"{}\",",
                "\"budget_pages\":{},\"workers\":{},\"wall_seconds\":{:.6},",
                "\"throughput_jobs_per_sec\":{:.3},",
                "\"latency\":{},",
                "\"service\":{}}}"
            ),
            jobs,
            accepted,
            failed,
            policy.name(),
            budget_pages,
            workers,
            wall,
            throughput,
            lat.to_json(),
            stats.to_json()
        ),
    );

    assert!(
        stats.peak_budget_bytes <= budget_pages * PAGE,
        "admission exceeded the global budget"
    );
    if failed > 0 {
        std::process::exit(1);
    }
}
