//! Figure 1(b): memory-mapping setup time (newMap / openMap /
//! deleteMap) as a function of map size — measured for real on this
//! machine's mmap (mmjoin-mmstore), and shown against the linear cost
//! model the simulator charges.

use mmjoin_bench::calibrated_machine;
use mmjoin_mmstore::measure_map_costs;

fn main() {
    let dir = std::env::temp_dir().join(format!("mmjoin-fig1b-{}", std::process::id()));
    let blocks = [1600u64, 3200, 4800, 6400, 8000, 9600, 11200, 12800];
    println!("Fig 1(b): mapping setup time vs map size (4 KB blocks)");
    println!("measured on this machine's real mmap:");
    println!(
        "{:>12} {:>12} {:>12} {:>12}",
        "blocks", "newMap (s)", "openMap (s)", "deleteMap (s)"
    );
    match measure_map_costs(&dir, 4096, &blocks, 3) {
        Ok(samples) => {
            for s in &samples {
                println!(
                    "{:>12} {:>12.4} {:>12.4} {:>12.4}",
                    s.blocks, s.new_map, s.open_map, s.delete_map
                );
            }
        }
        Err(e) => println!("  measurement failed: {e}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!();
    println!("modelled 1996 machine (linear fits used by the simulator/model):");
    let mc = calibrated_machine().map_cost;
    println!(
        "{:>12} {:>12} {:>12} {:>12}",
        "blocks", "newMap (s)", "openMap (s)", "deleteMap (s)"
    );
    for b in blocks {
        println!(
            "{:>12} {:>12.2} {:>12.2} {:>12.2}",
            b,
            mc.new_map(b),
            mc.open_map(b),
            mc.delete_map(b)
        );
    }
    println!();
    println!("paper: all three linear in size; newMap > openMap > deleteMap.");
}
