//! Data-aware planner sweep: the fixed-configuration plan vs the
//! sampled-histogram auto plan, both *executed* on the simulated
//! machine, across pointer distributions of increasing skew.
//!
//! For each distribution the fixed arm takes the model's pick under
//! the paper's uniform assumption at the configured memory grant; the
//! auto arm samples the workload's pointers, folds them into the
//! equi-depth histogram, and takes whatever algorithm, grant, and
//! partition count `choose_auto` derives from it. Both plans then run
//! for real, so the table is an end-to-end account of what the
//! statistics buy.
//!
//! `--json` writes `results/skew_planner.json`; `--assert` turns the
//! sweep into a CI gate: exit nonzero unless the auto plan differs
//! from the fixed plan on every skewed input (the planner must *react*
//! to skew — on hot zipf keys the Chao1 hot-set estimate flips the
//! algorithm outright, on cross-partition pointers the partition count
//! grows) and the auto arm's executed time is within `--tolerance`
//! (default 10%) of the fixed arm on every input (the statistics must
//! never cost more than they buy).
//!
//! ```sh
//! cargo run --release -p mmjoin-bench --bin skew_planner -- --json --assert
//! ```

use mmjoin::{
    choose, choose_auto, join, verify, Algo, ExecMode, JoinSpec, SampleSummary, HISTOGRAM_BUCKETS,
    SAMPLE_CAP,
};
use mmjoin_bench::load::opt;
use mmjoin_bench::{calibrated_machine, sim_env, PAGE};
use mmjoin_model::choose_k;
use mmjoin_relstore::{
    build, sample_spec_pointers, PointerDist, RelConfig, WorkloadSpec, SPTR_SIZE,
};
use mmjoin_vmsim::{ContentionMode, Policy};

/// One executed plan: what was chosen and what it cost.
struct Arm {
    alg: Algo,
    m_rproc: u64,
    partitions: u32,
    predicted: f64,
    elapsed: f64,
}

/// Run one plan to completion on a fresh simulated machine and verify
/// it against the workload oracle. Elapsed is virtual seconds, so the
/// sweep is bit-deterministic across hosts.
fn execute(w: &WorkloadSpec, alg: Algo, m_rproc: u64) -> f64 {
    let pages = (m_rproc / PAGE).max(1) as usize;
    let env = sim_env(w.rel.d, pages, Policy::Lru, ContentionMode::Independent);
    let rels = build(&env, w).expect("workload builds");
    let spec = JoinSpec::new(m_rproc, m_rproc).with_mode(ExecMode::Sequential);
    let out = join(&env, &rels, alg, &spec).expect("join runs");
    verify(&out, &rels).expect("join result matches oracle");
    out.elapsed
}

fn main() {
    let objects: u64 = opt("--objects", 40_000);
    let obj_size: u32 = opt("--obj-size", 128);
    let d: u32 = opt("--d", 4);
    let pages: u64 = opt("--mem-pages", 32);
    let seed: u64 = opt("--seed", 1996);
    let theta: f64 = opt("--theta", 2.0);
    let tolerance: f64 = opt("--tolerance", 0.10);
    let assert_gates = std::env::args().any(|a| a == "--assert");

    let machine = calibrated_machine();
    let grant = pages * PAGE;
    println!(
        "skew-planner sweep: |R| = |S| = {objects} x {obj_size} B, D = {d}, \
         {pages} pages/proc fixed grant"
    );
    println!(
        "{:>10} {:>6} {:>8}  {:<14} {:>9}  {:<30} {:>9} {:>7}",
        "dist", "skew", "dup", "fixed plan", "exec(s)", "auto plan", "exec(s)", "ratio"
    );

    let mut json = String::from("[");
    let mut gate_failures: Vec<String> = Vec::new();
    for (i, (name, dist)) in [
        ("uniform", PointerDist::Uniform),
        ("zipf", PointerDist::Zipf { theta }),
        ("cross", PointerDist::CrossPartition),
    ]
    .into_iter()
    .enumerate()
    {
        let w = WorkloadSpec {
            rel: RelConfig {
                r_size: obj_size,
                s_size: obj_size,
                d,
                r_objects: objects,
                s_objects: objects,
            },
            dist,
            seed,
            prefix: String::new(),
        };
        let inputs = mmjoin_model::JoinInputs {
            r_objects: objects,
            s_objects: objects,
            r_size: obj_size,
            s_size: obj_size,
            sptr_size: SPTR_SIZE,
            d,
            skew: 1.0,
            m_rproc: grant,
            m_sproc: grant,
            g_buffer: 4096,
        };

        // The fixed arm: the uniform-assumption pick at the configured
        // grant, with the partition count the executor would derive.
        let fixed_choice = choose(machine, &inputs);
        let fixed = Arm {
            alg: Algo::from(fixed_choice.algorithm),
            m_rproc: grant,
            partitions: choose_k(objects / d as u64, obj_size, grant).max(1) as u32,
            predicted: fixed_choice.predicted_seconds(),
            elapsed: execute(&w, Algo::from(fixed_choice.algorithm), grant),
        };

        // The auto arm: sampled histogram in, data-aware plan out.
        let summary = SampleSummary::from_pointers(
            &sample_spec_pointers(&w, SAMPLE_CAP),
            objects,
            objects,
            d,
            HISTOGRAM_BUCKETS,
        );
        let plan = choose_auto(machine, &inputs, Some(&summary));
        let auto = Arm {
            alg: Algo::from(plan.choice.algorithm),
            m_rproc: plan.m_rproc,
            partitions: plan.partitions,
            predicted: plan.predicted_seconds(),
            elapsed: execute(&w, Algo::from(plan.choice.algorithm), plan.m_rproc),
        };

        let plans_differ = auto.alg != fixed.alg
            || auto.m_rproc != fixed.m_rproc
            || auto.partitions != fixed.partitions;
        let ratio = auto.elapsed / fixed.elapsed;
        println!(
            "{:>10} {:>6.2} {:>8.2}  {:<14} {:>9.1}  {:<30} {:>9.1} {:>7.2}",
            name,
            plan.skew,
            summary.duplication,
            format!("{} K={}", fixed.alg.name(), fixed.partitions),
            fixed.elapsed,
            plan.describe(),
            auto.elapsed,
            ratio
        );

        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            concat!(
                "{{\"dist\":\"{}\",\"sampled_skew\":{:.4},\"duplication\":{:.4},",
                "\"fixed\":{{\"alg\":\"{}\",\"m_rproc_kib\":{},\"partitions\":{},",
                "\"predicted_seconds\":{:.4},\"elapsed_seconds\":{:.4}}},",
                "\"auto\":{{\"alg\":\"{}\",\"m_rproc_kib\":{},\"partitions\":{},",
                "\"skew_source\":\"{}\",",
                "\"predicted_seconds\":{:.4},\"elapsed_seconds\":{:.4}}},",
                "\"plans_differ\":{},\"auto_over_fixed\":{:.4}}}"
            ),
            name,
            plan.skew,
            summary.duplication,
            fixed.alg.name(),
            fixed.m_rproc / 1024,
            fixed.partitions,
            fixed.predicted,
            fixed.elapsed,
            auto.alg.name(),
            auto.m_rproc / 1024,
            auto.partitions,
            plan.source.name(),
            auto.predicted,
            auto.elapsed,
            plans_differ,
            ratio
        ));

        // Gate (a): the planner must react to skew — on every skewed
        // input the auto plan cannot collapse back to the
        // uniform-assumption plan.
        if assert_gates && name != "uniform" && !plans_differ {
            gate_failures.push(format!(
                "{name}: auto plan equals fixed plan ({} K={} at {} KiB)",
                fixed.alg.name(),
                fixed.partitions,
                fixed.m_rproc / 1024
            ));
        }
        // Gate (b): the statistics must never cost more than they buy
        // — on every input the auto arm stays within the tolerance of
        // the fixed arm's executed time.
        if assert_gates && ratio > 1.0 + tolerance {
            gate_failures.push(format!(
                "{name}: auto {:.1}s vs fixed {:.1}s (ratio {ratio:.2} > {:.2})",
                auto.elapsed,
                fixed.elapsed,
                1.0 + tolerance
            ));
        }
    }
    json.push_str("]\n");
    mmjoin_bench::maybe_write_json("skew_planner", &json);

    if !gate_failures.is_empty() {
        for f in &gate_failures {
            eprintln!("skew_planner: FAILED gate: {f}");
        }
        std::process::exit(1);
    }
    if assert_gates {
        println!(
            "gates OK: auto reacts on every skewed input, and stays within {:.0}% of fixed everywhere",
            tolerance * 100.0
        );
    }
}
