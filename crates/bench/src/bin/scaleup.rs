//! Extension E2 (paper §9 future work): scaleup — grow D and |R|
//! together; flat curves mean perfect scaleup.

use mmjoin::{Algo, ExecMode};
use mmjoin_bench::{one_sim_join, paper_workload, r_bytes, PAGE};
use mmjoin_vmsim::{ContentionMode, Policy};

fn main() {
    println!("E2 scaleup: |R| = 25,600 x D (per-disk share fixed), M/|R| = 0.05");
    println!(
        "{:>12} {:>4} {:>10} {:>12} {:>10}",
        "algorithm", "D", "|R|", "time (s)", "vs D=1"
    );
    for alg in [Algo::NestedLoops, Algo::SortMerge, Algo::Grace] {
        let mut base = None;
        for d in [1u32, 2, 4, 8] {
            let mut w = paper_workload(d, 400 + d as u64);
            w.rel.r_objects = 25_600 * d as u64;
            w.rel.s_objects = 25_600 * d as u64;
            let pages = ((0.05 * r_bytes(&w) as f64 / d as f64) as u64 / PAGE).max(8) as usize;
            let (t, _, _) = one_sim_join(
                alg,
                &w,
                pages,
                Policy::Lru,
                ContentionMode::Independent,
                ExecMode::Sequential,
                false,
            );
            let b = *base.get_or_insert(t);
            println!(
                "{:>12} {d:>4} {:>10} {t:>12.1} {:>9.2}x",
                alg.name(),
                w.rel.r_objects,
                t / b
            );
        }
    }
    println!();
    println!("expected: ratios near 1.0x (flat) — the per-proc share is constant");
    println!("and the staggered phases keep disks private. The residual growth in");
    println!("sort-merge/Grace is the mapping-setup term: manipulating a mapping is");
    println!("serial (charged xD, paper 5.3), an inherent scaleup limiter.");
}
