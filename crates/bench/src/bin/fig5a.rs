//! Figure 5(a): nested loops — model vs experiment, Time/Rproc against
//! M_Rproc/|R| ∈ [0.1, 0.7] on the §8 workload.

use mmjoin::Algo;
use mmjoin_bench::{fig5_json, fig5_sweep, maybe_write_json, paper_workload, render_fig5};

fn main() {
    let w = paper_workload(4, 1996);
    let fracs = [0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5, 0.6, 0.7];
    let rows = fig5_sweep(Algo::NestedLoops, &fracs, &w, |_, _| String::new());
    println!(
        "{}",
        render_fig5("Fig 5(a): parallel pointer-based nested loops", &rows)
    );
    println!("paper: ~2000 s at 0.1 falling monotonically to ~800 s at 0.7;");
    println!("model tracks experiment closely. Check the same decline+flatten here.");
    maybe_write_json("fig5a", &fig5_json(&rows));
}
