//! Figure 5(b): sort-merge — model vs experiment over M_Rproc/|R| ∈
//! [0.01, 0.05]; the discontinuities mark extra merge passes.

use mmjoin::Algo;
use mmjoin_bench::{fig5_json, fig5_sweep, maybe_write_json, paper_workload, render_fig5, PAGE};

fn main() {
    let w = paper_workload(4, 1996);
    let fracs = [
        0.008, 0.01, 0.012, 0.015, 0.02, 0.025, 0.03, 0.035, 0.04, 0.045, 0.05,
    ];
    let rows =
        fig5_sweep(
            Algo::SortMerge,
            &fracs,
            &w,
            |rels, spec| match mmjoin::sort_merge::plan_for(PAGE, rels, spec, 0) {
                Ok(p) => format!(
                    "IRUN-runs={} NPASS={} LRUN={}",
                    p.initial_runs, p.npass, p.lrun
                ),
                Err(_) => String::new(),
            },
        );
    println!(
        "{}",
        render_fig5("Fig 5(b): parallel pointer-based sort-merge", &rows)
    );
    println!("paper: ~700 s at 0.01 stepping down to ~500 s at 0.05, with");
    println!("discontinuities where an extra merging pass appears (see NPASS).");
    maybe_write_json("fig5b", &fig5_json(&rows));
}
