//! Extension E8: is pass-0/1 access really "random within the band"?
//!
//! The paper's §3.1 prices every I/O of a pass at `dtt(BandSize)`, the
//! measured cost of uniformly random access across the whole band.
//! This experiment records the simulator's actual disk accesses during
//! each algorithm's run and compares:
//!
//! * the *model band* (the §5.3/§6.3/§7.3 formulas) and its `dttr`;
//! * the *effective band* the trace actually exhibits (3 × mean arm
//!   jump — for uniform access in a span W the mean jump is W/3);
//! * the empirical mean read cost.
//!
//! This pins down the residual bias discussed in EXPERIMENTS.md: the
//! algorithms' access is *structured*, so the random-in-band assumption
//! over-prices sort-merge and Grace while barely affecting nested loops
//! (whose S fetches genuinely are random).

use mmjoin::{join, verify, Algo, ExecMode, JoinSpec};
use mmjoin_bench::{calibrated_machine, paper_workload, r_bytes, PAGE};
use mmjoin_relstore::build;
use mmjoin_vmsim::{analyze, SimConfig, SimEnv};

fn main() {
    let w = paper_workload(4, 1996);
    let machine = calibrated_machine();
    println!("E8 trace analysis: actual access pattern vs the random-in-band assumption");
    println!(
        "{:>12} {:>7} {:>11} {:>11} {:>13} {:>12} {:>12}",
        "algorithm", "M/|R|", "reads/disk", "span(blk)", "eff-band(blk)", "dttr(eff)", "mean-read"
    );
    for (alg, frac) in [
        (Algo::NestedLoops, 0.1),
        (Algo::SortMerge, 0.03),
        (Algo::Grace, 0.04),
    ] {
        let pages = ((frac * r_bytes(&w) as f64) as u64 / PAGE).max(4);
        let mut cfg = SimConfig::waterloo96(4);
        cfg.machine = machine.clone();
        cfg.rproc_pages = pages as usize;
        cfg.sproc_pages = pages as usize;
        cfg.trace = true;
        let env = SimEnv::new(cfg).expect("config");
        let rels = build(&env, &w).expect("workload");
        let spec = JoinSpec::new(pages * PAGE, pages * PAGE).with_mode(ExecMode::Sequential);
        let out = join(&env, &rels, alg, &spec).expect("join");
        verify(&out, &rels).expect("oracle");
        let stats = analyze(&env.take_trace());
        // Disk 0 is representative (uniform workload).
        if let Some(s) = stats.first() {
            println!(
                "{:>12} {:>7.2} {:>11} {:>11} {:>13.0} {:>10.2}ms {:>10.2}ms",
                alg.name(),
                frac,
                s.reads,
                s.touched_span,
                s.effective_band,
                machine.dttr.eval(s.effective_band) * 1e3,
                s.mean_read * 1e3,
            );
        }
    }
    println!();
    println!("reading: if access were truly random over the touched span, eff-band");
    println!("would approach span and mean-read would approach dttr(span). A small");
    println!("eff-band/span ratio quantifies how structured the algorithm's access");
    println!("is — and therefore how much the paper's simplification over-prices it.");
}
