//! Figure 5(c): Grace — model vs experiment over M_Rproc/|R| ∈
//! [0.02, 0.08]; the curve at low memory is paging-induced thrashing
//! (urn model).

use mmjoin::Algo;
use mmjoin_bench::{fig5_json, fig5_sweep, maybe_write_json, paper_workload, render_fig5};
use mmjoin_relstore::Relations;

fn main() {
    let w = paper_workload(4, 1996);
    let fracs = [0.015, 0.02, 0.025, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08];
    let rows = fig5_sweep(Algo::Grace, &fracs, &w, |rels: &Relations, spec| {
        format!("K={}", mmjoin::grace::k_for(rels, spec))
    });
    println!(
        "{}",
        render_fig5("Fig 5(c): parallel pointer-based Grace", &rows)
    );
    println!("paper: ~460 s at 0.02 falling to ~340 s at 0.08; the low-memory");
    println!("rise is thrashing from the page replacement algorithm.");
    maybe_write_json("fig5c", &fig5_json(&rows));
}
