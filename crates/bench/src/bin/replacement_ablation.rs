//! Extension E5: page-replacement policy ablation. The paper blames
//! part of its residual error on Dynix's replacement policy and works
//! around LRU's mid-merge mistakes by under-using memory (NRUN =
//! M/(3B), §6.2). Here the same joins run under strict LRU, FIFO and
//! second-chance.

use mmjoin::{Algo, ExecMode};
use mmjoin_bench::{one_sim_join, paper_workload, r_bytes, PAGE};
use mmjoin_vmsim::{ContentionMode, Policy};

fn main() {
    let w = paper_workload(4, 700);
    println!("E5 replacement-policy ablation (M/|R| = 0.03)");
    println!(
        "{:>12} {:>14} {:>12} {:>10} {:>10}",
        "algorithm", "policy", "time (s)", "faults-r", "faults-w"
    );
    let pages = ((0.03 * r_bytes(&w) as f64) as u64 / PAGE) as usize;
    for alg in [Algo::SortMerge, Algo::Grace] {
        for (name, policy) in [
            ("LRU", Policy::Lru),
            ("FIFO", Policy::Fifo),
            ("second-chance", Policy::SecondChance),
        ] {
            let (t, fr, fw) = one_sim_join(
                alg,
                &w,
                pages,
                policy,
                ContentionMode::Independent,
                ExecMode::Sequential,
                false,
            );
            println!("{:>12} {name:>14} {t:>12.1} {fr:>10} {fw:>10}", alg.name());
        }
    }
    println!();
    println!("expected: differences are modest because the algorithms already");
    println!("under-use memory (NRUN = M/3B, K slack) to sidestep LRU's mistakes —");
    println!("the paper's own compensation, §6.2/§7.2.");
}
