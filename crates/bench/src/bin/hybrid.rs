//! Extension E6: hybrid hash vs Grace — the "more modern hash-based
//! join" the paper defers to future work (§7), on the Fig. 5(c) axis.
//! Hybrid hash keeps bucket 0 memory-resident, so its advantage over
//! Grace should grow with memory.

use mmjoin::Algo;
use mmjoin_bench::{fig5_json, fig5_sweep, maybe_write_json, paper_workload, render_fig5};
use mmjoin_relstore::Relations;

fn main() {
    let w = paper_workload(4, 1996);
    let fracs = [0.015, 0.02, 0.03, 0.04, 0.06, 0.08];
    let grace = fig5_sweep(Algo::Grace, &fracs, &w, |_, _| String::new());
    let hybrid = fig5_sweep(Algo::HybridHash, &fracs, &w, |rels: &Relations, spec| {
        let plan = mmjoin::hybrid::plan_for(rels, spec);
        format!("f0={:.2} K={}", plan.f0, plan.k)
    });
    println!("{}", render_fig5("E6 hybrid hash (extension)", &hybrid));
    println!("Grace on the same axis, for comparison:");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "M/|R|", "grace mdl", "grace exp", "hybrid mdl", "hybrid exp"
    );
    for (g, h) in grace.iter().zip(&hybrid) {
        println!(
            "{:>8.3} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            g.frac, g.model, g.sim, h.model, h.sim
        );
    }
    println!();
    println!("expected: hybrid <= grace everywhere, with the gap widening as");
    println!("memory (and with it bucket 0's share f0) grows.");
    maybe_write_json("hybrid", &fig5_json(&hybrid));
    maybe_write_json("hybrid_grace_baseline", &fig5_json(&grace));
}
