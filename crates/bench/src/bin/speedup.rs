//! Extension E1 (paper §9 future work): speedup — elapsed time vs the
//! number of disks/process pairs D at a fixed total workload.

use mmjoin::{Algo, ExecMode};
use mmjoin_bench::{one_sim_join, paper_workload, r_bytes, PAGE};
use mmjoin_vmsim::{ContentionMode, Policy};

fn main() {
    println!("E1 speedup: Time vs D, |R| = |S| = 102,400 fixed, M/|R| = 0.05 per proc");
    println!(
        "{:>12} {:>4} {:>12} {:>9}",
        "algorithm", "D", "time (s)", "speedup"
    );
    for alg in [Algo::NestedLoops, Algo::SortMerge, Algo::Grace] {
        let mut base = None;
        for d in [1u32, 2, 4, 8] {
            let w = paper_workload(d, 300 + d as u64);
            let pages = ((0.05 * r_bytes(&w) as f64) as u64 / PAGE) as usize;
            let (t, _, _) = one_sim_join(
                alg,
                &w,
                pages,
                Policy::Lru,
                ContentionMode::Independent,
                ExecMode::Sequential,
                false,
            );
            let b = *base.get_or_insert(t);
            println!("{:>12} {d:>4} {t:>12.1} {:>8.2}x", alg.name(), b / t);
        }
    }
    println!();
    println!("expected: near-linear speedup (each Rproc handles |R|/D against its");
    println!("own disk). Nested loops goes super-linear because per-proc memory is");
    println!("held at 0.05|R| while each S partition shrinks with D, so the Sproc");
    println!("buffers cover ever more of S — the classic aggregate-memory effect.");
}
