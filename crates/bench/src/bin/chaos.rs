//! Chaos harness: the loadgen batch under injected faults.
//!
//! Runs the same randomized job mix as `loadgen` against a service whose
//! per-job environments inject seeded deterministic faults, then asserts
//! the recovery invariants:
//!
//! * every job that completed (no error) produced a join output that
//!   verifies against the workload oracle;
//! * the budget accounting leaked nothing (`used_bytes` back to 0);
//! * the injector actually fired (`faults_injected > 0`) and the retry
//!   layer actually healed something (`retries > 0`).
//!
//! Jobs may *fail* under heavy fault rates — that is allowed; silent
//! corruption and leaks are not. Exit status is nonzero only when an
//! invariant breaks.
//!
//! ```sh
//! cargo run --release -p mmjoin-bench --bin chaos -- \
//!     --jobs 16 --seed 1996 --fault-spec 'seed=7;read:p=1:after=60:count=2' [--json]
//! ```

use mmjoin_bench::load::{machine_override, opt, random_job};
use mmjoin_env::FaultSpec;
use mmjoin_serve::{AdmissionPolicy, ServeConfig, Service, PAGE};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default spec: every job sees exactly two transient read errors once
/// its join is ~60 reads in (deep enough to have temp files on disk),
/// plus scattered map-setup failures on the re-partitioning
/// temporaries. All heal within the 4-attempt budget.
const DEFAULT_SPEC: &str = "seed=7;read:p=1:after=60:count=2;create:p=0.2:file=RP:count=1";

fn fail(msg: &str) -> ! {
    eprintln!("chaos: INVARIANT VIOLATED: {msg}");
    std::process::exit(1);
}

fn main() {
    let jobs: u64 = opt("--jobs", 16);
    let budget_pages: u64 = opt("--budget-pages", 128);
    let workers: usize = opt("--workers", 4);
    let seed: u64 = opt("--seed", 1996);
    let spec_text: String = opt("--fault-spec", DEFAULT_SPEC.to_string());
    let retries: u32 = opt("--retries", 4);
    let journal: String = opt("--journal", String::new());
    let fault_spec = match FaultSpec::parse(&spec_text) {
        Ok(s) if !s.is_empty() => s,
        Ok(_) => {
            eprintln!("--fault-spec: chaos needs a nonzero spec");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("--fault-spec: {e}");
            std::process::exit(2);
        }
    };

    let mut cfg = ServeConfig::sim(budget_pages * PAGE, workers)
        .with_policy(AdmissionPolicy::Fifo)
        .with_faults(fault_spec.clone())
        .with_retries(retries);
    if !journal.is_empty() {
        cfg = cfg.with_journal(journal.clone().into());
    }
    match machine_override() {
        Ok(Some(m)) => cfg = cfg.with_machine(m),
        Ok(None) => {}
        Err(e) => {
            eprintln!("--machine-profile: {e}");
            std::process::exit(2);
        }
    }
    let svc = match Service::start(cfg) {
        Ok(svc) => svc,
        Err(e) => {
            eprintln!("cannot start service: {e}");
            std::process::exit(2);
        }
    };

    let mut rng = StdRng::seed_from_u64(seed);
    let mut accepted = 0u64;
    for i in 0..jobs {
        match svc.submit(random_job(&mut rng, i + 1)) {
            Ok(_) => accepted += 1,
            Err(e) => eprintln!("job {i}: {e}"),
        }
    }
    let (results, stats) = svc.finish();

    println!("chaos: {accepted}/{jobs} jobs under spec '{fault_spec}'");
    println!(
        "completed:  {} ok, {} failed; attempts {}, faults injected {}, \
         retries {}, degraded {}, orphans cleaned {}",
        stats.completed,
        stats.failed,
        results.iter().map(|r| r.attempts as u64).sum::<u64>(),
        stats.faults_injected,
        stats.retries,
        stats.degraded,
        stats.cleaned_files,
    );

    mmjoin_bench::maybe_write_json(
        "chaos",
        &format!(
            "{{\"jobs\":{jobs},\"accepted\":{accepted},\"fault_spec\":\"{fault_spec}\",\"service\":{}}}",
            stats.to_json()
        ),
    );

    // Invariant 1: every completed job verified against the oracle.
    for r in &results {
        if r.error.is_none() && !r.verified {
            fail(&format!("job {} completed but did not verify", r.id));
        }
    }
    // Invariant 2: zero budget-accounting leaks after drain.
    if stats.budget_leak_bytes != 0 {
        fail(&format!("{} budget bytes leaked", stats.budget_leak_bytes));
    }
    if stats.peak_budget_bytes > budget_pages * PAGE {
        fail("admission exceeded the global budget");
    }
    // Invariant 3: the chaos actually happened and was actually healed.
    if stats.faults_injected == 0 {
        fail("no faults injected — the spec never fired");
    }
    if stats.retries == 0 {
        fail("no retries — the recovery layer never engaged");
    }
    // Invariant 4 (with --journal): every admission and completion was
    // durably committed — one commit per submit and one per finish, and
    // checkpoint/area records ride along (appends >= commits).
    if !journal.is_empty() {
        if stats.journal_commits < stats.submitted + stats.completed + stats.failed {
            fail(&format!(
                "journal committed {} times for {} submits and {} finishes",
                stats.journal_commits,
                stats.submitted,
                stats.completed + stats.failed
            ));
        }
        if stats.journal_appended_records < stats.journal_commits {
            fail("journal appended fewer records than it committed");
        }
    }
    println!("chaos: all invariants held");
}
