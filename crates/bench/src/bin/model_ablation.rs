//! Extension E7: what the paper's modelling refinements buy.
//!
//! §2.3 criticizes Shekita & Carey's model for assuming "the cost of
//! I/O on a single byte to be a constant, not taking into account seek
//! times or the possibility of savings using block transfer; they do
//! not distinguish between sequential and random I/O". This ablation
//! evaluates three model variants against the execution-driven
//! experiment at several Fig. 5 operating points:
//!
//! * `full` — the paper's model as implemented here (band-size
//!   dependent dtt curves, fault overhead, urn model);
//! * `flat-dtt` — dttr/dttw replaced by constants (their band-12800
//!   values): no sequential/random distinction;
//! * `no-fault` — the per-fault CPU overhead term removed.

use mmjoin::{inputs_for, join, verify, Algo, ExecMode, JoinSpec};
use mmjoin_bench::{calibrated_machine, paper_workload, r_bytes, sim_env, PAGE};
use mmjoin_env::machine::{DttCurve, MachineParams};
use mmjoin_env::CpuOp;
use mmjoin_model::predict;
use mmjoin_relstore::build;
use mmjoin_vmsim::{ContentionMode, Policy};

fn flat_dtt(m: &MachineParams) -> MachineParams {
    MachineParams {
        dttr: DttCurve::constant(m.dttr.eval(12_800.0)),
        dttw: DttCurve::constant(m.dttw.eval(12_800.0)),
        ..m.clone()
    }
}

fn no_fault_overhead(m: &MachineParams) -> MachineParams {
    let mut out = m.clone();
    out.cpu[CpuOp::FaultOverhead.index()] = 0.0;
    out
}

fn main() {
    let w = paper_workload(4, 1996);
    let full = calibrated_machine();
    let flat = flat_dtt(full);
    let nofault = no_fault_overhead(full);
    println!("E7 model ablation: prediction error vs the executed experiment");
    println!(
        "{:>12} {:>7} {:>10} {:>9} {:>9} {:>9}",
        "algorithm", "M/|R|", "experim", "full", "flat-dtt", "no-fault"
    );
    for (alg, fracs) in [
        (Algo::NestedLoops, [0.1, 0.3]),
        (Algo::SortMerge, [0.01, 0.04]),
        (Algo::Grace, [0.02, 0.06]),
    ] {
        for frac in fracs {
            let pages = ((frac * r_bytes(&w) as f64) as u64 / PAGE).max(4);
            let env = sim_env(4, pages as usize, Policy::Lru, ContentionMode::Independent);
            let rels = build(&env, &w).expect("workload");
            let spec = JoinSpec::new(pages * PAGE, pages * PAGE).with_mode(ExecMode::Sequential);
            let out = join(&env, &rels, alg, &spec).expect("join");
            verify(&out, &rels).expect("oracle");
            let inputs = inputs_for(&rels, &spec);
            let ma = alg.modelled().expect("modelled");
            let err = |m: &MachineParams| {
                let p = predict(ma, m, &inputs).total();
                format!("{:+.0}%", (p - out.elapsed) / out.elapsed * 100.0)
            };
            println!(
                "{:>12} {frac:>7.2} {:>9.1}s {:>9} {:>9} {:>9}",
                alg.name(),
                out.elapsed,
                err(full),
                err(&flat),
                err(&nofault),
            );
        }
    }
    println!();
    println!("expected: the flat-dtt (Shekita–Carey-style) variant misses the");
    println!("memory sensitivity that band-dependent curves capture — most visibly");
    println!("for nested loops, whose cost is dominated by random S reads whose");
    println!("band shrinks as memory grows. Removing the fault-overhead term");
    println!("uniformly under-predicts.");
}
