//! Extension E12: the §5.2 parameter choice for `G`.
//!
//! "G should be large enough to avoid many context switches between
//! Rproc_i and Sproc_i, but small enough so that the volume of pending
//! requests does not force important information out of memory. The
//! implementation used a value of B for G." This sweep varies `G` for
//! nested loops and reports elapsed time and context switches — the
//! trade-off the paper describes, with its chosen point (G = B = 4096)
//! marked.

use mmjoin::{join, verify, Algo, ExecMode, JoinSpec};
use mmjoin_bench::{paper_workload, r_bytes, sim_env, PAGE};
use mmjoin_relstore::build;
use mmjoin_vmsim::{ContentionMode, Policy};

fn main() {
    let w = paper_workload(4, 1100);
    let pages = ((0.15 * r_bytes(&w) as f64) as u64 / PAGE) as usize;
    println!("E12 shared-buffer size G (nested loops, M/|R| = 0.15)");
    println!(
        "{:>10} {:>12} {:>14} {:>12}",
        "G (bytes)", "time (s)", "ctx switches", "batch objs"
    );
    for g in [264u64, 1024, 4096, 16_384, 65_536] {
        let env = sim_env(4, pages, Policy::Lru, ContentionMode::Independent);
        let rels = build(&env, &w).expect("workload");
        let mut spec =
            JoinSpec::new(pages as u64 * PAGE, pages as u64 * PAGE).with_mode(ExecMode::Sequential);
        spec.g_buffer = g;
        let out = join(&env, &rels, Algo::NestedLoops, &spec).expect("join");
        verify(&out, &rels).expect("oracle");
        let ctx: u64 = out.stats.procs.iter().map(|p| p.ctx_switches).sum();
        let marker = if g == PAGE {
            "  <- paper's choice (G = B)"
        } else {
            ""
        };
        println!(
            "{g:>10} {:>12.1} {:>14} {:>12}{marker}",
            out.elapsed,
            ctx,
            g / (128 + 8 + 128),
        );
    }
    println!();
    println!("expected: context switches fall ~linearly with G while elapsed time");
    println!("flattens once exchanges are cheap relative to the S reads — G = B");
    println!("already sits on the flat part, as §5.2 chose.");
}
