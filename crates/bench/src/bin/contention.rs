//! Extension E9: the opening claim of §5 — "parallelism [of the naive
//! version] is inhibited by contention when several R_i reference the
//! same S_j". The naive baseline and the two-pass nested loops run
//! under both disk-arbitration modes; contention should hurt the naive
//! version much more, because the staggered phases give each S_j a
//! single suitor per phase.

use mmjoin::{Algo, ExecMode};
use mmjoin_bench::{one_sim_join, paper_workload, r_bytes, PAGE};
use mmjoin_vmsim::{ContentionMode, Policy};

fn main() {
    let w = paper_workload(4, 800);
    let pages = ((0.1 * r_bytes(&w) as f64) as u64 / PAGE) as usize;
    println!("E9 disk contention: naive vs staggered nested loops (M/|R| = 0.1, threaded)");
    println!(
        "{:>14} {:>14} {:>12} {:>12}",
        "algorithm", "arbitration", "time (s)", "slowdown"
    );
    for alg in [Algo::NaiveNestedLoops, Algo::NestedLoops] {
        let mut base = None;
        for (name, mode) in [
            ("independent", ContentionMode::Independent),
            ("queued", ContentionMode::Queued),
        ] {
            let (t, _, _) =
                one_sim_join(alg, &w, pages, Policy::Lru, mode, ExecMode::Threaded, false);
            let b = *base.get_or_insert(t);
            println!(
                "{:>14} {:>14} {:>12.1} {:>11.2}x",
                alg.name(),
                name,
                t,
                t / b
            );
        }
    }
    println!();
    println!("expected: the naive version suffers noticeably more than the staggered");
    println!("one. Note the arbiter is conservative: it serializes any requests whose");
    println!("virtual intervals overlap, without global event ordering, so *both*");
    println!("rows inflate under 'queued'; the paper's claim lives in the gap between");
    println!("them (naive pays extra because several Rprocs genuinely want the same");
    println!("S_j at once, which staggering forbids).");
}
