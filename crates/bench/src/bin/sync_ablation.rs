//! §5.1 claim: adding synchronization between the phases of nested
//! loops' pass 1 changes I/O and total time by at most ~0.5% (best case
//! a small decrease from reduced contention).

use mmjoin::{Algo, ExecMode};
use mmjoin_bench::{one_sim_join, paper_workload, r_bytes, PAGE};
use mmjoin_vmsim::{ContentionMode, Policy};

fn main() {
    let w = paper_workload(4, 77);
    let pages = ((0.3 * r_bytes(&w) as f64) as u64 / PAGE) as usize;
    println!("Nested loops, pass-1 phase synchronization ablation (M/|R| = 0.3)");
    println!(
        "{:>22} {:>12} {:>10} {:>10}",
        "variant", "time (s)", "faults-r", "faults-w"
    );
    for (name, contention, sync) in [
        ("free-running", ContentionMode::Independent, false),
        ("free-running+queued", ContentionMode::Queued, false),
        ("synchronized+queued", ContentionMode::Queued, true),
    ] {
        // Threaded execution so phases can actually overlap.
        let (t, fr, fw) = one_sim_join(
            Algo::NestedLoops,
            &w,
            pages,
            Policy::Lru,
            contention,
            ExecMode::Threaded,
            sync,
        );
        println!("{name:>22} {t:>12.1} {fr:>10} {fw:>10}");
    }
    println!();
    println!("paper: synchronization bought at most a 0.5% decrease in I/O and");
    println!("total time; the offset scheme already removes nearly all contention.");
}
