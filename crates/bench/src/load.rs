//! Shared machinery for the service load binaries (`loadgen`, `chaos`):
//! command-line option parsing and the randomized job mix.

use mmjoin_serve::JobRequest;
use rand::rngs::StdRng;
use rand::Rng;

/// `--key value` lookup with a default (the load binaries' minimal CLI).
pub fn opt<T: std::str::FromStr>(key: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// `--machine-profile FILE` lookup for the load binaries: load a
/// calibrated [`MachineProfile`](mmjoin_calibrate::MachineProfile) and
/// return its parameters for
/// [`ServeConfig::with_machine`](mmjoin_serve::ServeConfig::with_machine),
/// or `None`
/// when the flag is absent (the service then uses the built-in
/// waterloo96-derived default).
pub fn machine_override(
) -> Result<Option<std::sync::Arc<mmjoin_env::machine::MachineParams>>, String> {
    let path: String = opt("--machine-profile", String::new());
    if path.is_empty() {
        return Ok(None);
    }
    let profile = mmjoin_calibrate::MachineProfile::load(std::path::Path::new(&path))
        .map_err(|e| e.to_string())?;
    eprintln!(
        "machine profile: {} (host {}, quick={})",
        path, profile.provenance.host, profile.provenance.quick
    );
    Ok(Some(std::sync::Arc::new(profile.machine)))
}

/// The default contended mix for the `--shards` sweep: every page-level
/// I/O has a small chance of a real 2 ms stall (`FaultKind::Delay`
/// sleeps the worker thread). A single-queue service serializes those
/// stalls behind one admission queue; a sharded service overlaps them
/// across shards — which is exactly the contention the sweep measures,
/// and it does not depend on spare CPU cores.
pub const CONTENDED_SPEC: &str = "seed=7;delay:p=0.1:ms=4";

/// One randomized job: the shapes stay small enough that a 32-job run
/// finishes in seconds, while footprints (4–16 pages × D) still
/// oversubscribe the default budget and exercise the queue.
pub fn random_job(rng: &mut StdRng, seed: u64) -> JobRequest {
    let d = [2u32, 4][rng.random_range(0..2usize)];
    let objects = rng.random_range(500..2_000u64) * d as u64;
    let mem_pages = rng.random_range(4..16u64);
    let mut req = JobRequest::new(objects, 64, d, mem_pages, seed);
    req.name = format!("load{seed}");
    if rng.random_bool(0.3) {
        req.workload.dist = mmjoin_relstore::PointerDist::Zipf {
            theta: rng.random_range(0.2..0.9),
        };
    }
    req
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn random_jobs_are_valid_and_seed_deterministic() {
        let gen = |seed: u64| -> Vec<u64> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..10)
                .map(|i| {
                    let req = random_job(&mut rng, i);
                    req.workload.rel.validate().unwrap();
                    req.footprint()
                })
                .collect()
        };
        assert_eq!(gen(42), gen(42));
        assert_ne!(gen(42), gen(43));
    }
}
