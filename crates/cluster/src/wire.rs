//! The coordinator ⇄ node RPC message vocabulary and its framed,
//! checksummed binary encoding over TCP.
//!
//! The build environment has no serde, so the protocol is hand-rolled
//! in exactly the journal-record idiom ([`mmjoin_recovery::JournalRecord`]):
//!
//! ```text
//! [len: u32 LE] [type: u8] [payload ...] [crc: u32 LE]
//! ```
//!
//! where `len` counts the type byte plus the payload and `crc` is the
//! CRC32 of exactly those bytes. Strings are `u32 LE` length + UTF-8;
//! integers are little-endian fixed width. Decoding is total: a frame
//! that is short, oversized, checksum-invalid, or carries trailing
//! payload bytes is rejected as `InvalidData`, never panicked on.
//!
//! I/O errors surface as `std::io::Error` so the caller can route them
//! through [`EnvError::is_transient`](mmjoin_env::EnvError::is_transient)
//! — connection drops are transient there, which is what lets the
//! coordinator's reconnect/re-queue logic reuse the retry layer's
//! classification instead of growing its own.

use std::io::{self, Read, Write};

use mmjoin_recovery::crc32;

/// Upper bound on one frame's body (type byte + payload). Job lines and
/// node names are short; anything larger is a corrupt length prefix.
pub const MAX_FRAME: usize = 1 << 20;

const T_HELLO: u8 = 1;
const T_RUN_JOB: u8 = 2;
const T_PING: u8 = 3;
const T_PONG: u8 = 4;
const T_JOB_DONE: u8 = 5;
const T_SHUTDOWN: u8 = 6;

/// One RPC message. The coordinator sends `RunJob`/`Ping`/`Shutdown`;
/// a node sends `Hello` (once, on connect) and `Pong`/`JobDone`.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// A node's registration, sent immediately after the coordinator
    /// connects: its name and the capacity admission control plans
    /// against.
    Hello {
        /// Node name (unique per cluster).
        node: String,
        /// Budget bytes the node's local service admits against.
        budget_bytes: u64,
        /// Worker threads the node runs.
        workers: u32,
        /// Relative execution speed under the node's calibrated machine
        /// profile (inverse predicted seconds of a fixed reference
        /// join). Dimensionless: the coordinator only compares ratios
        /// between nodes when weighting placement. Carried as IEEE-754
        /// bits on the wire, so the round trip is exact.
        speed: f64,
    },
    /// Dispatch one job. At-least-once: the coordinator may resend a
    /// `RunJob` it is unsure about, and the node dedups by `job` id.
    RunJob {
        /// Cluster job id.
        job: u64,
        /// The request in the job-file grammar
        /// ([`JobRequest::to_line`](mmjoin_serve::JobRequest::to_line)).
        line: String,
    },
    /// Heartbeat probe.
    Ping {
        /// Echo-matched sequence number.
        seq: u64,
    },
    /// Heartbeat reply.
    Pong {
        /// The probed sequence number.
        seq: u64,
    },
    /// A job finished on the node. Resent verbatim on reconnect until
    /// the coordinator has durably recorded it (dedup by `job` id makes
    /// the resend harmless).
    JobDone {
        /// Cluster job id.
        job: u64,
        /// Algorithm that actually ran (planner-chosen on the node).
        alg: String,
        /// Joined pairs produced.
        pairs: u64,
        /// Order-independent join checksum.
        checksum: u64,
        /// Whether the result verified against the workload oracle.
        ok: bool,
        /// Failure message; empty means none.
        error: String,
    },
    /// Orderly stop: the node exits its serve loop.
    Shutdown,
}

impl Message {
    /// Stable snake_case tag (log/debug labelling).
    pub fn tag(&self) -> &'static str {
        match self {
            Message::Hello { .. } => "hello",
            Message::RunJob { .. } => "run_job",
            Message::Ping { .. } => "ping",
            Message::Pong { .. } => "pong",
            Message::JobDone { .. } => "job_done",
            Message::Shutdown => "shutdown",
        }
    }

    /// Encode into the framed, checksummed wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(48);
        match self {
            Message::Hello {
                node,
                budget_bytes,
                workers,
                speed,
            } => {
                body.push(T_HELLO);
                put_str(&mut body, node);
                body.extend_from_slice(&budget_bytes.to_le_bytes());
                body.extend_from_slice(&workers.to_le_bytes());
                body.extend_from_slice(&speed.to_bits().to_le_bytes());
            }
            Message::RunJob { job, line } => {
                body.push(T_RUN_JOB);
                body.extend_from_slice(&job.to_le_bytes());
                put_str(&mut body, line);
            }
            Message::Ping { seq } => {
                body.push(T_PING);
                body.extend_from_slice(&seq.to_le_bytes());
            }
            Message::Pong { seq } => {
                body.push(T_PONG);
                body.extend_from_slice(&seq.to_le_bytes());
            }
            Message::JobDone {
                job,
                alg,
                pairs,
                checksum,
                ok,
                error,
            } => {
                body.push(T_JOB_DONE);
                body.extend_from_slice(&job.to_le_bytes());
                put_str(&mut body, alg);
                body.extend_from_slice(&pairs.to_le_bytes());
                body.extend_from_slice(&checksum.to_le_bytes());
                body.push(*ok as u8);
                put_str(&mut body, error);
            }
            Message::Shutdown => body.push(T_SHUTDOWN),
        }
        let mut out = Vec::with_capacity(body.len() + 8);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out
    }

    /// Decode one message from a complete frame body (the bytes `len`
    /// counted, checksum already verified). Total: malformed input
    /// yields `None`.
    fn decode_body(body: &[u8]) -> Option<Message> {
        let mut cur = Cursor { buf: body, pos: 0 };
        let msg = match cur.u8()? {
            T_HELLO => Message::Hello {
                node: cur.string()?,
                budget_bytes: cur.u64()?,
                workers: cur.u32()?,
                speed: f64::from_bits(cur.u64()?),
            },
            T_RUN_JOB => Message::RunJob {
                job: cur.u64()?,
                line: cur.string()?,
            },
            T_PING => Message::Ping { seq: cur.u64()? },
            T_PONG => Message::Pong { seq: cur.u64()? },
            T_JOB_DONE => Message::JobDone {
                job: cur.u64()?,
                alg: cur.string()?,
                pairs: cur.u64()?,
                checksum: cur.u64()?,
                ok: cur.u8()? != 0,
                error: cur.string()?,
            },
            T_SHUTDOWN => Message::Shutdown,
            _ => return None,
        };
        // The payload must be exactly consumed; a valid checksum over a
        // longer body (a future protocol version) is not accepted.
        if cur.pos != body.len() {
            return None;
        }
        Some(msg)
    }
}

/// Write one message to `w` (unbuffered; messages are small and the
/// protocol is latency- not throughput-bound).
pub fn write_msg<W: Write>(w: &mut W, msg: &Message) -> io::Result<()> {
    w.write_all(&msg.encode())?;
    w.flush()
}

/// Incremental frame reader: one per connection, holding partial-frame
/// state across calls.
///
/// The coordinator and node poll their sockets with short read
/// timeouts, and a frame can arrive split across TCP segments — so a
/// timeout can land after part of a frame has already been consumed.
/// Bytes read so far are kept here, and the next [`FrameReader::read_msg`]
/// call resumes where the timeout cut in. Without this state, a resumed
/// read would parse from mid-frame and a healthy stream would look
/// corrupt (checksum mismatch → the peer declared dead).
#[derive(Default)]
pub struct FrameReader {
    /// Bytes of the in-progress frame, length prefix included.
    buf: Vec<u8>,
}

impl FrameReader {
    /// A reader with no partial frame.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Read one message from `r`, resuming any partial frame left by a
    /// previous call. Returns `Ok(None)` on a clean EOF at a frame
    /// boundary (the peer closed the connection); EOF mid-frame is
    /// `UnexpectedEof`, a bad checksum or malformed payload
    /// `InvalidData`. `WouldBlock`/`TimedOut` surface to the caller
    /// with the partial frame preserved for the next call.
    pub fn read_msg<R: Read>(&mut self, r: &mut R) -> io::Result<Option<Message>> {
        loop {
            let need = match self.frame_len()? {
                Some(total) if self.buf.len() >= total => {
                    let msg = parse_frame(&self.buf[4..]);
                    self.buf.clear();
                    return msg.map(Some);
                }
                Some(total) => total - self.buf.len(),
                None => 4 - self.buf.len(),
            };
            let start = self.buf.len();
            self.buf.resize(start + need, 0);
            match r.read(&mut self.buf[start..]) {
                Ok(0) => {
                    self.buf.truncate(start);
                    return if start == 0 {
                        // A clean close before any byte of the next
                        // frame is a normal end of stream.
                        Ok(None)
                    } else {
                        Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed mid-frame",
                        ))
                    };
                }
                Ok(n) => self.buf.truncate(start + n),
                Err(e) => {
                    self.buf.truncate(start);
                    if e.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Total frame size (prefix + body + crc) once the length prefix is
    /// complete, `None` while still inside it. A corrupt length fails
    /// here, before any body allocation.
    fn frame_len(&self) -> io::Result<Option<usize>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().expect("4-byte prefix")) as usize;
        if len == 0 || len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad frame length {len}"),
            ));
        }
        Ok(Some(4 + len + 4))
    }
}

/// Verify and decode one complete frame (body + trailing crc).
fn parse_frame(rest: &[u8]) -> io::Result<Message> {
    let (body, crc_bytes) = rest.split_at(rest.len() - 4);
    let crc = u32::from_le_bytes(crc_bytes.try_into().expect("4-byte split"));
    if crc32(body) != crc {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame checksum mismatch",
        ));
    }
    match Message::decode_body(body) {
        Some(msg) => Ok(msg),
        None => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed frame payload",
        )),
    }
}

/// Read one message from `r` with no cross-call state: for in-memory
/// streams and blocking sockets. On a socket with a read timeout, use a
/// per-connection [`FrameReader`] instead — a timeout mid-frame here
/// would lose the bytes already consumed.
pub fn read_msg<R: Read>(r: &mut R) -> io::Result<Option<Message>> {
    FrameReader::new().read_msg(r)
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        let s = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn string(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor as IoCursor;

    fn samples() -> Vec<Message> {
        vec![
            Message::Hello {
                node: "node-a".into(),
                budget_bytes: 1 << 24,
                workers: 4,
                speed: 2.5,
            },
            Message::RunJob {
                job: 9,
                line: "name=q1 alg=grace objects=2000 d=2 mem-pages=16 seed=7".into(),
            },
            Message::Ping { seq: 42 },
            Message::Pong { seq: 42 },
            Message::JobDone {
                job: 9,
                alg: "grace".into(),
                pairs: 2000,
                checksum: 0xC0FFEE,
                ok: true,
                error: String::new(),
            },
            Message::JobDone {
                job: 10,
                alg: "auto".into(),
                pairs: 0,
                checksum: 0,
                ok: false,
                error: "deadline exceeded".into(),
            },
            Message::Shutdown,
        ]
    }

    #[test]
    fn round_trips_through_a_stream() {
        let mut buf = Vec::new();
        for msg in samples() {
            write_msg(&mut buf, &msg).unwrap();
        }
        let mut r = IoCursor::new(buf);
        for want in samples() {
            let got = read_msg(&mut r).unwrap().expect("message present");
            assert_eq!(got, want);
        }
        assert!(read_msg(&mut r).unwrap().is_none(), "clean EOF at the end");
    }

    #[test]
    fn hello_speed_round_trips_bitwise() {
        for speed in [0.0, 1.0 / 3.0, 1234.5678e-9, f64::MAX] {
            let msg = Message::Hello {
                node: "n".into(),
                budget_bytes: 1,
                workers: 1,
                speed,
            };
            let got = read_msg(&mut IoCursor::new(msg.encode()))
                .unwrap()
                .expect("message present");
            match got {
                Message::Hello { speed: s, .. } => assert_eq!(s.to_bits(), speed.to_bits()),
                other => panic!("decoded wrong variant: {other:?}"),
            }
        }
    }

    #[test]
    fn truncation_mid_frame_is_unexpected_eof() {
        let wire = Message::RunJob {
            job: 1,
            line: "objects=1000".into(),
        }
        .encode();
        for cut in 1..wire.len() {
            let mut r = IoCursor::new(wire[..cut].to_vec());
            let err = read_msg(&mut r).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    /// Delivers one byte per read, with a `WouldBlock` between every
    /// pair — the worst case of a frame split across TCP segments under
    /// a poll-style read timeout.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
        starve: bool,
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            if self.starve {
                self.starve = false;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "starved"));
            }
            self.starve = true;
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn frame_reader_survives_byte_by_byte_delivery_with_timeouts() {
        let mut wire = Vec::new();
        for msg in samples() {
            write_msg(&mut wire, &msg).unwrap();
        }
        let mut r = Trickle {
            data: wire,
            pos: 0,
            starve: false,
        };
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        loop {
            match reader.read_msg(&mut r) {
                Ok(Some(msg)) => got.push(msg),
                Ok(None) => break,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(got, samples(), "partial frames must reassemble exactly");
    }

    #[test]
    fn corruption_is_invalid_data() {
        let wire = Message::Ping { seq: 7 }.encode();
        // Flip a payload bit: checksum mismatch.
        let mut bad = wire.clone();
        bad[6] ^= 1;
        let err = read_msg(&mut IoCursor::new(bad)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Zero and oversized lengths are rejected before allocation.
        for len in [0u32, (MAX_FRAME as u32) + 1] {
            let mut framed = len.to_le_bytes().to_vec();
            framed.extend_from_slice(&[0u8; 16]);
            let err = read_msg(&mut IoCursor::new(framed)).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "len {len}");
        }
    }

    #[test]
    fn unknown_type_and_trailing_bytes_are_rejected() {
        // Hand-build a frame with an unknown type byte but valid CRC.
        let body = [200u8, 1, 2, 3];
        let mut wire = (body.len() as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&body);
        wire.extend_from_slice(&crc32(&body).to_le_bytes());
        let err = read_msg(&mut IoCursor::new(wire)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // A valid message with a trailing payload byte: also rejected.
        let mut body = Message::Ping { seq: 1 }.encode()[4..13].to_vec();
        body.push(0xAB);
        let mut wire = (body.len() as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&body);
        wire.extend_from_slice(&crc32(&body).to_le_bytes());
        let err = read_msg(&mut IoCursor::new(wire)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn connection_errors_classify_as_transient() {
        // The contract the reconnect logic relies on: wire-level
        // connection failures route into the retry layer as transient.
        let e = io::Error::new(io::ErrorKind::ConnectionReset, "peer died");
        assert!(mmjoin_env::EnvError::from(e).is_transient());
        let e = io::Error::new(io::ErrorKind::UnexpectedEof, "mid-frame close");
        assert!(mmjoin_env::EnvError::from(e).is_transient());
        // Corruption is not: retrying a malformed frame cannot help.
        let e = io::Error::new(io::ErrorKind::InvalidData, "crc");
        assert!(!mmjoin_env::EnvError::from(e).is_transient());
    }
}
