//! Fault-tolerant multi-node join cluster.
//!
//! This crate lifts the single-process join service
//! ([`mmjoin_serve`]) to a coordinator/worker cluster in the spirit of
//! the paper's multi-machine outlook: each worker node is one `mmjoin
//! serve --node` process wrapping a local [`Service`] with its own
//! calibrated machine profile, and one [`Coordinator`] dispatches jobs
//! over a small length-prefixed RPC protocol ([`wire`]).
//!
//! The interesting part is what happens when a node dies:
//!
//! * **Failure detection** — heartbeat pings with a configurable
//!   timeout; an unanswered heartbeat, an exhausted reconnect budget,
//!   or a corrupt protocol stream declares the node dead.
//! * **Re-queue** — the dead node's in-flight and queued jobs move
//!   back to the pending queue with the retry layer's exponential
//!   backoff, and run on survivors. Dispatch is at-least-once; results
//!   are exactly-once by id dedup on both sides.
//! * **Degradation** — admission re-plans against the surviving
//!   nodes' aggregate budget; jobs that fit nowhere fail fast instead
//!   of waiting for capacity that is gone.
//! * **Coordinator recovery** — an optional write-ahead journal
//!   (reusing [`mmjoin_recovery`]) makes coordinator crash-restart
//!   resume dispatch without re-running or double-reporting finished
//!   jobs.
//! * **Resident-stream routing** — [`resident_route`] gives a
//!   coordinator a shared-nothing sticky map from a streaming
//!   session's name (`mmjoin serve --stream`) to the node holding its
//!   resident index: rendezvous hashing, so losing a node re-homes
//!   only that node's streams (they re-build on a survivor) while
//!   every other stream keeps probing its warm resident set.
//!
//! [`Service`]: mmjoin_serve::Service

mod coordinator;
mod node;
pub mod route;
mod stats;
pub mod wire;

pub use coordinator::{ClusterConfig, ClusterJobResult, Coordinator, ResumeReport};
pub use node::NodeServer;
pub use route::resident_route;
pub use stats::ClusterStats;
pub use wire::Message;
