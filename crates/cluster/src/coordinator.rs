//! The cluster coordinator: dispatch, heartbeats, failure detection,
//! node-loss re-queue, and the coordinator-side write-ahead journal.
//!
//! # Fault model
//!
//! One thread per configured node owns that node's TCP session:
//! connect (with [`RetryPolicy`] backoff on transient errors — the same
//! classification [`EnvError::is_transient`] gives the join retry
//! layer), read the node's `Hello` registration, then loop: claim
//! pending jobs that fit the node's advertised budget and free worker
//! slots, send heartbeats, and absorb `Pong`/`JobDone` replies.
//!
//! A connection **drop** that still has reconnect budget re-queues the
//! node's in-flight jobs before the reconnect attempt: a `RunJob`
//! written into the dying connection may never have arrived, and the
//! node cannot report while disconnected, so leaving the jobs in
//! flight could strand them forever on an otherwise healthy node.
//! Node-side dedup by job id absorbs the duplicate dispatch.
//!
//! A node is declared **dead** when its heartbeat goes unanswered for
//! the configured timeout, when the connection drops and reconnect
//! attempts are exhausted, or when the protocol stream is corrupt
//! (non-transient). Death is handled exactly once per node:
//!
//! * its budget reservation is zeroed *once* — the re-queued jobs
//!   re-reserve on whichever surviving node admits them, so releasing
//!   again at completion would double-count (that double release is the
//!   `budget_leak_bytes` bug this layer guards against with a
//!   take-the-entry-or-do-nothing discipline);
//! * every in-flight job is re-queued to the front of the pending
//!   queue with a `ready_at` delay of `RetryPolicy::backoff(attempt)` —
//!   the join retry layer's backoff semantics lifted to the cluster —
//!   or failed terminally once its dispatch attempts are exhausted;
//! * admission is re-planned against the survivors: any pending job
//!   whose footprint no longer fits *any* live node fails instead of
//!   waiting forever.
//!
//! # Exactly-once results over at-least-once dispatch
//!
//! Dispatch is at-least-once (re-queue can re-run a job whose first
//! completion died with its node before reporting). Results are
//! deduplicated by cluster job id: the first `JobDone` per id is
//! journaled (commit-before-visibility) and reported; later duplicates
//! increment a counter and are dropped. The write-ahead journal
//! (`JobSubmitted`/`JobDispatched`/`NodeLost`/`JobCompleted` records,
//! extending `crates/recovery`) makes the same invariant hold across a
//! coordinator crash: `--resume` re-reports journaled completions
//! without re-running them and re-dispatches only jobs with no durable
//! completion.
//!
//! [`EnvError::is_transient`]: mmjoin_env::EnvError::is_transient

use std::collections::{BTreeSet, VecDeque};
use std::io;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mmjoin::RetryPolicy;
use mmjoin_env::{null_sink, EnvError, ProcId, TraceEvent, TraceSink};
use mmjoin_mmstore::{MmapEnv, MmapEnvConfig};
use mmjoin_recovery::{Journal, JournalRecord, JournalStats, ReplayState};
use mmjoin_serve::{JobRequest, PAGE};

use crate::stats::ClusterStats;
use crate::wire::{write_msg, FrameReader, Message};

/// Journal file name inside the coordinator's journal directory.
const JOURNAL_FILE: &str = "coordinator.wal";
const JOURNAL_CAPACITY: u64 = 4 << 20;
const JOURNAL_PROC: ProcId = ProcId(0);

/// Coordinator configuration.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Node addresses to connect to (`host:port`).
    pub nodes: Vec<String>,
    /// Heartbeat ping interval.
    pub heartbeat: Duration,
    /// Declare a node dead after this long without hearing from it.
    pub timeout: Duration,
    /// Bounds reconnect attempts and per-job dispatch attempts, and
    /// supplies the backoff curve for both.
    pub retry: RetryPolicy,
    /// Write-ahead journal directory; `None` disables journaling.
    pub journal_dir: Option<PathBuf>,
    /// Replay an existing journal instead of starting fresh.
    pub resume: bool,
    /// Trace sink for node lifecycle and job events.
    pub trace: Arc<dyn TraceSink>,
}

impl ClusterConfig {
    /// A config for the given nodes with test-friendly timing defaults.
    pub fn new(nodes: Vec<String>) -> ClusterConfig {
        ClusterConfig {
            nodes,
            heartbeat: Duration::from_millis(100),
            timeout: Duration::from_millis(1500),
            retry: RetryPolicy::default(),
            journal_dir: None,
            resume: false,
            trace: null_sink(),
        }
    }

    /// Set the heartbeat interval.
    pub fn with_heartbeat(mut self, heartbeat: Duration) -> Self {
        self.heartbeat = heartbeat;
        self
    }

    /// Set the failure-detection timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Set the reconnect/re-dispatch retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enable the write-ahead journal under `dir`.
    pub fn with_journal(mut self, dir: PathBuf) -> Self {
        self.journal_dir = Some(dir);
        self
    }

    /// Resume from an existing journal (pair with `with_journal`).
    pub fn with_resume(mut self) -> Self {
        self.resume = true;
        self
    }

    /// Install a trace sink.
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = sink;
        self
    }
}

/// One terminal cluster job outcome.
#[derive(Clone, Debug)]
pub struct ClusterJobResult {
    /// Cluster job id (submission order, continued across resumes).
    pub id: u64,
    /// Client label from the request.
    pub name: String,
    /// Node that reported the result (`journal` for resumed results,
    /// `coordinator` for jobs failed without reaching a node).
    pub node: String,
    /// Algorithm that ran (name; `auto` when unknown).
    pub alg: String,
    /// Joined pairs produced.
    pub pairs: u64,
    /// Order-independent join checksum.
    pub checksum: u64,
    /// Whether the result verified on the node.
    pub ok: bool,
    /// Times the job was re-queued off a dead node.
    pub requeues: u32,
    /// Submit→completion wall seconds (0 for resumed results).
    pub latency: f64,
    /// Reconstructed from the journal rather than run in this life.
    pub resumed: bool,
    /// Failure message, if any.
    pub error: Option<String>,
}

struct PendingJob {
    id: u64,
    req: JobRequest,
    requeues: u32,
    ready_at: Instant,
    submitted: Instant,
}

struct InFlight {
    req: JobRequest,
    requeues: u32,
    submitted: Instant,
}

#[derive(Default)]
struct NodeState {
    addr: String,
    name: String,
    registered: bool,
    alive: bool,
    /// The node's thread is done with it: dead, or departed cleanly.
    terminal: bool,
    budget: u64,
    workers: u32,
    /// Relative speed from the node's `Hello` (inverse predicted
    /// seconds of a reference join under its calibrated profile);
    /// 0.0 until registered. Only ratios between nodes matter.
    speed: f64,
    reserved: u64,
    in_flight: std::collections::BTreeMap<u64, InFlight>,
}

impl NodeState {
    fn display_name(&self) -> &str {
        if self.name.is_empty() {
            &self.addr
        } else {
            &self.name
        }
    }
}

struct CoState {
    pending: VecDeque<PendingJob>,
    nodes: Vec<NodeState>,
    results: Vec<ClusterJobResult>,
    completed: BTreeSet<u64>,
    stats: ClusterStats,
    next_id: u64,
    /// Finish was requested: stop dispatching once drained and send
    /// each node a `Shutdown`.
    halt: bool,
}

struct CoShared {
    cfg: ClusterConfig,
    state: Mutex<CoState>,
    done: Condvar,
    start: Instant,
    journal: Option<Mutex<Journal<MmapEnv>>>,
}

impl CoShared {
    fn lock(&self) -> MutexGuard<'_, CoState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    fn trace(&self, event: TraceEvent) {
        if self.cfg.trace.enabled() {
            self.cfg.trace.emit(self.now(), event);
        }
    }

    /// Append and commit a journal record; failures are reported but
    /// never take the cluster down (the journal is a recovery aid).
    fn journal_commit(&self, rec: &JournalRecord) {
        if let Some(j) = &self.journal {
            let mut j = j.lock().unwrap_or_else(|e| e.into_inner());
            if let Err(e) = j.append_commit(rec) {
                eprintln!(
                    "mmjoin-cluster: journal commit ({}) failed: {e}",
                    rec.kind()
                );
            }
        }
    }

    fn journal_stats(&self) -> Option<JournalStats> {
        self.journal
            .as_ref()
            .map(|j| j.lock().unwrap_or_else(|e| e.into_inner()).stats())
    }

    /// Could `footprint` ever be placed, given the nodes not yet
    /// terminal? Nodes that have not registered yet count as possible
    /// homes (their budget is unknown until their `Hello`).
    fn placeable(st: &CoState, footprint: u64) -> bool {
        st.nodes
            .iter()
            .any(|n| !n.terminal && (!n.registered || n.budget >= footprint))
    }

    /// Fail one job terminally (journaled, deduped, visible).
    fn fail_job(&self, st: &mut CoState, id: u64, req: &JobRequest, requeues: u32, error: String) {
        if !st.completed.insert(id) {
            return;
        }
        self.journal_commit(&JournalRecord::JobCompleted {
            job: id,
            pairs: 0,
            checksum: 0,
            ok: false,
        });
        st.stats.completed += 1;
        st.stats.failed += 1;
        st.results.push(ClusterJobResult {
            id,
            name: req.name.clone(),
            node: "coordinator".into(),
            alg: req.alg.map_or("auto", |a| a.name()).to_string(),
            pairs: 0,
            checksum: 0,
            ok: false,
            requeues,
            latency: 0.0,
            resumed: false,
            error: Some(error),
        });
        self.trace(TraceEvent::JobCompleted {
            job: id,
            ok: false,
            degraded: 0,
        });
    }

    /// Fail every pending job that no longer fits any live node — the
    /// admission re-plan after capacity shrinks.
    fn fail_unplaceable(&self, st: &mut CoState) {
        let mut keep = VecDeque::with_capacity(st.pending.len());
        while let Some(p) = st.pending.pop_front() {
            if Self::placeable(st, p.req.footprint()) {
                keep.push_back(p);
            } else {
                let err = format!(
                    "job footprint {} no longer fits any surviving node",
                    p.req.footprint()
                );
                self.fail_job(st, p.id, &p.req, p.requeues, err);
            }
        }
        st.pending = keep;
    }

    /// Declare node `idx` dead exactly once: emit `node_lost`, journal
    /// it, zero its reservation, and re-queue (or terminally fail) its
    /// in-flight jobs.
    fn declare_dead(&self, idx: usize, why: &str) {
        let mut st = self.lock();
        if st.nodes[idx].terminal {
            return;
        }
        let node = &mut st.nodes[idx];
        node.terminal = true;
        let was_registered = node.registered;
        node.alive = false;
        let name = node.display_name().to_string();
        let in_flight = std::mem::take(&mut node.in_flight);
        // Release-once: the re-queued jobs will re-reserve on whichever
        // node re-admits them; the completion path releases only when
        // it finds the in-flight entry, which we just took. Zeroing
        // here (rather than subtracting per job at completion) is what
        // keeps `budget_leak_bytes` at zero across a death.
        node.reserved = 0;
        if was_registered {
            st.stats.node_losses += 1;
            eprintln!("mmjoin-cluster: node {name} lost ({why})");
            self.trace(TraceEvent::NodeLost {
                node: name.clone(),
                in_flight: in_flight.len() as u64,
            });
            self.journal_commit(&JournalRecord::NodeLost { node: name.clone() });
        }
        let now = Instant::now();
        for (id, fl) in in_flight {
            let attempt = fl.requeues + 1;
            if attempt >= self.cfg.retry.max_attempts {
                let err = format!("lost with node {name} after {attempt} dispatch attempts");
                self.fail_job(&mut st, id, &fl.req, fl.requeues, err);
                continue;
            }
            if !Self::placeable(&st, fl.req.footprint()) {
                let err = format!(
                    "lost with node {name}; footprint {} fits no surviving node",
                    fl.req.footprint()
                );
                self.fail_job(&mut st, id, &fl.req, fl.requeues, err);
                continue;
            }
            st.stats.requeued += 1;
            self.trace(TraceEvent::JobRequeued {
                job: id,
                from: name.clone(),
                attempt,
            });
            st.pending.push_front(PendingJob {
                id,
                req: fl.req,
                requeues: attempt,
                ready_at: now + self.cfg.retry.backoff(attempt),
                submitted: fl.submitted,
            });
        }
        self.fail_unplaceable(&mut st);
        drop(st);
        self.done.notify_all();
    }

    /// Re-queue node `idx`'s in-flight jobs before a reconnect attempt
    /// after a transient connection drop. A `RunJob` written into the
    /// dropped connection may never have reached the node, and the node
    /// cannot report results while disconnected — without this, a lost
    /// dispatch frame would strand its job in `in_flight` forever on a
    /// node that stays healthy (heartbeats resume after reconnect, so
    /// `declare_dead` never fires, and `drain` never returns). The
    /// node-side dedup by job id makes the duplicate dispatch harmless:
    /// a job the node *did* receive re-sends its cached result instead
    /// of re-running. Because the resend is recovery, not failure, it
    /// does not count against the job's dispatch attempts.
    fn requeue_dropped(&self, idx: usize) {
        let mut st = self.lock();
        if st.nodes[idx].terminal {
            return;
        }
        let in_flight = std::mem::take(&mut st.nodes[idx].in_flight);
        // Release-once, exactly as in `declare_dead`: the re-dispatch
        // re-reserves on whichever node admits the job next.
        st.nodes[idx].reserved = 0;
        if in_flight.is_empty() {
            return;
        }
        let from = st.nodes[idx].display_name().to_string();
        let now = Instant::now();
        // Reverse so push_front leaves the jobs in ascending id order
        // at the head of the queue.
        for (id, fl) in in_flight.into_iter().rev() {
            st.stats.requeued += 1;
            self.trace(TraceEvent::JobRequeued {
                job: id,
                from: from.clone(),
                attempt: fl.requeues,
            });
            st.pending.push_front(PendingJob {
                id,
                req: fl.req,
                requeues: fl.requeues,
                ready_at: now,
                submitted: fl.submitted,
            });
        }
        drop(st);
        self.done.notify_all();
    }

    /// Register a node's `Hello` (first connect or reconnect).
    fn register(&self, idx: usize, name: &str, budget: u64, workers: u32, speed: f64) {
        let mut st = self.lock();
        let node = &mut st.nodes[idx];
        node.name = name.to_string();
        node.budget = budget;
        node.workers = workers.max(1);
        // Guard against a garbage profile on the wire: a non-finite or
        // non-positive speed would make every comparison vacuous, so it
        // degrades to "average" instead.
        node.speed = if speed.is_finite() && speed > 0.0 {
            speed
        } else {
            1.0
        };
        node.registered = true;
        node.alive = true;
        st.stats.node_joins += 1;
        self.trace(TraceEvent::NodeJoined {
            node: name.to_string(),
            budget,
            workers,
        });
        drop(st);
        self.done.notify_all();
    }

    /// Claim the first ready pending job that fits node `idx`'s free
    /// budget and worker slots. Reserves and journals the dispatch.
    fn claim(&self, idx: usize) -> Option<(u64, String)> {
        let mut st = self.lock();
        let node = &st.nodes[idx];
        if !node.alive || node.in_flight.len() >= node.workers as usize {
            return None;
        }
        let free = node.budget.saturating_sub(node.reserved);
        // A completion can land while its job still sits in pending
        // (a node replaying its result cache ahead of re-dispatch);
        // never hand out a job that already has a terminal result.
        {
            let CoState {
                pending, completed, ..
            } = &mut *st;
            pending.retain(|p| !completed.contains(&p.id));
        }
        let now = Instant::now();
        let pos = st
            .pending
            .iter()
            .position(|p| p.ready_at <= now && p.req.footprint() <= free)?;
        // Host-aware placement: when a strictly faster node could run
        // this job *right now* (alive, free worker slot, free budget),
        // leave it in the queue — that node's session loop claims
        // within one poll interval. If the faster node dies or fills
        // up, the condition lapses and this node takes the job, so
        // nothing starves; a stalled-but-undeclared faster node delays
        // a job by at most the failure-detection timeout.
        let footprint = st.pending[pos].req.footprint();
        let my_speed = st.nodes[idx].speed;
        let faster_is_free = st.nodes.iter().enumerate().any(|(k, n)| {
            k != idx
                && n.alive
                && n.speed > my_speed
                && n.in_flight.len() < n.workers as usize
                && n.budget.saturating_sub(n.reserved) >= footprint
        });
        if faster_is_free {
            st.stats.deferred_claims += 1;
            return None;
        }
        let p = st.pending.remove(pos).expect("position just found");
        let node_name = st.nodes[idx].display_name().to_string();
        let line = p.req.to_line();
        let footprint = p.req.footprint();
        st.nodes[idx].reserved += footprint;
        st.stats.peak_reserved_bytes = st
            .stats
            .peak_reserved_bytes
            .max(st.nodes.iter().map(|n| n.reserved).sum());
        st.nodes[idx].in_flight.insert(
            p.id,
            InFlight {
                req: p.req,
                requeues: p.requeues,
                submitted: p.submitted,
            },
        );
        let id = p.id;
        self.journal_commit(&JournalRecord::JobDispatched {
            job: id,
            node: node_name,
        });
        Some((id, line))
    }

    /// Absorb one `JobDone` from node `idx`: dedup by id, release the
    /// reservation if this node holds the in-flight entry, journal
    /// (commit-before-visibility), then publish the result.
    #[allow(clippy::too_many_arguments)]
    fn complete(
        &self,
        idx: usize,
        job: u64,
        alg: String,
        pairs: u64,
        checksum: u64,
        ok: bool,
        error: String,
    ) {
        let mut st = self.lock();
        if st.completed.contains(&job) {
            // The at-least-once resend path: this completion was
            // already recorded (possibly from a previous connection or
            // a re-run after re-queue). Drop it — and if this node
            // still carries an in-flight entry for it, settle that
            // reservation too (take-the-entry-or-do-nothing keeps the
            // release single-shot).
            st.stats.duplicate_completions += 1;
            if let Some(fl) = st.nodes[idx].in_flight.remove(&job) {
                let node = &mut st.nodes[idx];
                node.reserved = node.reserved.saturating_sub(fl.req.footprint());
            }
            return;
        }
        let (name, requeues, submitted) = match st.nodes[idx].in_flight.remove(&job) {
            Some(fl) => {
                let footprint = fl.req.footprint();
                let node = &mut st.nodes[idx];
                debug_assert!(node.reserved >= footprint, "reservation underflow");
                node.reserved = node.reserved.saturating_sub(footprint);
                (fl.req.name.clone(), fl.requeues, Some(fl.submitted))
            }
            // A completion for a job this node no longer owns — it was
            // re-queued off this node after a connection drop and is
            // either still pending or already re-dispatched elsewhere.
            // Still a valid result; settle the queued copy so it is not
            // dispatched again.
            None => {
                if let Some(pos) = st.pending.iter().position(|p| p.id == job) {
                    let p = st.pending.remove(pos).expect("position just found");
                    (p.req.name.clone(), p.requeues, Some(p.submitted))
                } else if let Some(fl) = st.nodes.iter().find_map(|n| n.in_flight.get(&job)) {
                    // In flight on another node: that node's own
                    // completion (a duplicate by then) releases its
                    // reservation.
                    (fl.req.name.clone(), fl.requeues, Some(fl.submitted))
                } else {
                    (String::new(), 0, None)
                }
            }
        };
        // Durable before visible: a crash after this commit re-reports
        // the job instead of re-running it.
        self.journal_commit(&JournalRecord::JobCompleted {
            job,
            pairs,
            checksum,
            ok,
        });
        st.completed.insert(job);
        st.stats.completed += 1;
        if !ok {
            st.stats.failed += 1;
        }
        let latency = submitted.map_or(0.0, |t| t.elapsed().as_secs_f64());
        st.stats.latency.record(latency);
        let node_name = st.nodes[idx].display_name().to_string();
        st.results.push(ClusterJobResult {
            id: job,
            name,
            node: node_name,
            alg,
            pairs,
            checksum,
            ok,
            requeues,
            latency,
            resumed: false,
            error: if error.is_empty() { None } else { Some(error) },
        });
        self.trace(TraceEvent::JobCompleted {
            job,
            ok,
            degraded: 0,
        });
        drop(st);
        self.done.notify_all();
    }

    /// True when finish was requested and node `idx` has nothing left
    /// to do (no pending work anywhere, nothing in flight on it).
    fn ready_to_part(&self, idx: usize) -> bool {
        let st = self.lock();
        st.halt && st.pending.is_empty() && st.nodes[idx].in_flight.is_empty()
    }

    /// True when the coordinator was dropped without `finish`: detach
    /// from the node silently — it must keep serving (a restarted
    /// coordinator will reconnect), so no `Shutdown` is sent.
    fn abandoned(&self, idx: usize) -> bool {
        let st = self.lock();
        st.halt && st.nodes[idx].terminal
    }

    /// Mark node `idx` cleanly departed (finish-time `Shutdown`).
    fn depart(&self, idx: usize) {
        let mut st = self.lock();
        st.nodes[idx].terminal = true;
        st.nodes[idx].alive = false;
        drop(st);
        self.done.notify_all();
    }
}

enum SessionEnd {
    /// Clean departure (`Shutdown` sent at finish).
    Parted,
    /// Declared dead (heartbeat timeout or protocol corruption).
    Dead(String),
    /// Connection dropped; reconnect may help.
    Dropped(io::Error),
}

/// Run one registered session over `stream`. Returns how it ended.
fn session(shared: &CoShared, idx: usize, mut stream: TcpStream) -> SessionEnd {
    let poll = Duration::from_millis(20).min(shared.cfg.heartbeat);
    if let Err(e) = stream
        .set_nodelay(true)
        .and_then(|()| stream.set_read_timeout(Some(poll)))
        .and_then(|()| stream.set_write_timeout(Some(shared.cfg.timeout)))
    {
        return SessionEnd::Dropped(e);
    }
    // Per-connection frame state: a frame split across TCP segments can
    // hit the poll timeout mid-frame, and the partial bytes must carry
    // over to the next read instead of corrupting the stream.
    let mut reader = FrameReader::new();
    // Registration: the node speaks first.
    let hello_deadline = Instant::now() + shared.cfg.timeout;
    loop {
        match reader.read_msg(&mut stream) {
            Ok(Some(Message::Hello {
                node,
                budget_bytes,
                workers,
                speed,
            })) => {
                shared.register(idx, &node, budget_bytes, workers, speed);
                break;
            }
            Ok(Some(_)) => {}
            Ok(None) => {
                return SessionEnd::Dropped(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "closed before hello",
                ))
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if Instant::now() > hello_deadline {
                    return SessionEnd::Dead("no hello within timeout".into());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                return SessionEnd::Dead(format!("protocol error: {e}"));
            }
            Err(e) => return SessionEnd::Dropped(e),
        }
    }
    let mut last_heard = Instant::now();
    let mut last_ping = Instant::now();
    let mut seq = 0u64;
    loop {
        if shared.abandoned(idx) {
            return SessionEnd::Parted;
        }
        if shared.ready_to_part(idx) {
            let _ = write_msg(&mut stream, &Message::Shutdown);
            shared.depart(idx);
            return SessionEnd::Parted;
        }
        while let Some((job, line)) = shared.claim(idx) {
            if let Err(e) = write_msg(&mut stream, &Message::RunJob { job, line }) {
                return SessionEnd::Dropped(e);
            }
        }
        if last_ping.elapsed() >= shared.cfg.heartbeat {
            seq += 1;
            if let Err(e) = write_msg(&mut stream, &Message::Ping { seq }) {
                return SessionEnd::Dropped(e);
            }
            last_ping = Instant::now();
        }
        match reader.read_msg(&mut stream) {
            Ok(Some(Message::Pong { .. })) => last_heard = Instant::now(),
            Ok(Some(Message::JobDone {
                job,
                alg,
                pairs,
                checksum,
                ok,
                error,
            })) => {
                last_heard = Instant::now();
                shared.complete(idx, job, alg, pairs, checksum, ok, error);
            }
            Ok(Some(_)) => last_heard = Instant::now(),
            Ok(None) => {
                return SessionEnd::Dropped(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "node closed the connection",
                ))
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if last_heard.elapsed() > shared.cfg.timeout {
                    return SessionEnd::Dead(format!(
                        "heartbeat timeout ({} ms unanswered)",
                        last_heard.elapsed().as_millis()
                    ));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                return SessionEnd::Dead(format!("protocol error: {e}"));
            }
            Err(e) => return SessionEnd::Dropped(e),
        }
    }
}

/// The per-node owner thread: connect with backoff, run sessions, and
/// declare death when the retry budget is spent.
fn node_loop(shared: Arc<CoShared>, idx: usize) {
    let addr = shared.lock().nodes[idx].addr.clone();
    let mut attempt = 0u32;
    loop {
        if shared.ready_to_part(idx) {
            shared.depart(idx);
            return;
        }
        if shared.lock().nodes[idx].terminal {
            return;
        }
        let stream = match TcpStream::connect(&addr) {
            Ok(s) => {
                attempt = 0;
                s
            }
            Err(e) => {
                attempt += 1;
                let transient = EnvError::from(e).is_transient();
                if !transient || attempt >= shared.cfg.retry.max_attempts {
                    shared.declare_dead(idx, &format!("connect to {addr} failed"));
                    return;
                }
                std::thread::sleep(shared.cfg.retry.backoff(attempt));
                continue;
            }
        };
        match session(&shared, idx, stream) {
            SessionEnd::Parted => return,
            SessionEnd::Dead(why) => {
                shared.declare_dead(idx, &why);
                return;
            }
            SessionEnd::Dropped(e) => {
                attempt += 1;
                let transient = EnvError::from(e).is_transient();
                if !transient || attempt >= shared.cfg.retry.max_attempts {
                    shared.declare_dead(idx, &format!("connection to {addr} lost"));
                    return;
                }
                // A RunJob written into the dropped connection may be
                // lost: put this node's in-flight jobs back in the
                // queue before reconnecting (node-side dedup absorbs
                // the duplicates).
                shared.requeue_dropped(idx);
                std::thread::sleep(shared.cfg.retry.backoff(attempt));
            }
        }
    }
}

/// What `--resume` replayed, surfaced for logging and tests.
pub struct ResumeReport {
    /// CRC-valid records adopted.
    pub records: u64,
    /// Committed bytes lost to a torn tail.
    pub torn_bytes: u64,
    /// Completed jobs re-reported from the journal.
    pub finished: u64,
    /// Pending jobs re-queued for dispatch.
    pub pending: u64,
}

/// A running cluster coordinator.
pub struct Coordinator {
    shared: Arc<CoShared>,
    threads: Vec<JoinHandle<()>>,
}

impl Coordinator {
    /// Connect to the configured nodes and start dispatching. With
    /// `resume`, the journal is replayed first: completed jobs are
    /// re-reported (marked `resumed`), in-flight and queued jobs are
    /// re-queued under their original ids.
    pub fn start(cfg: ClusterConfig) -> Result<Coordinator, String> {
        if cfg.nodes.is_empty() {
            return Err("no nodes configured".into());
        }
        let journal = match &cfg.journal_dir {
            Some(dir) => Some(open_journal(dir, cfg.resume, Arc::clone(&cfg.trace))?),
            None => None,
        };
        let (journal, replayed) = match journal {
            Some((j, r)) => (Some(Mutex::new(j)), r),
            None => (None, None),
        };
        let nodes: Vec<NodeState> = cfg
            .nodes
            .iter()
            .map(|addr| NodeState {
                addr: addr.clone(),
                ..NodeState::default()
            })
            .collect();
        let node_count = nodes.len() as u32;
        let shared = Arc::new(CoShared {
            state: Mutex::new(CoState {
                pending: VecDeque::new(),
                nodes,
                results: Vec::new(),
                completed: BTreeSet::new(),
                stats: ClusterStats {
                    nodes: node_count,
                    ..ClusterStats::default()
                },
                next_id: 0,
                halt: false,
            }),
            done: Condvar::new(),
            start: Instant::now(),
            cfg,
            journal,
        });
        if let Some(replayed) = replayed {
            let report = apply_resume(&shared, replayed)?;
            shared.trace(TraceEvent::RecoveryReplayed {
                records: report.records,
                torn: report.torn_bytes,
                orphans_deleted: 0,
                resumed_jobs: report.pending,
            });
        }
        let threads = (0..shared.lock().nodes.len())
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cluster-node-{idx}"))
                    .spawn(move || node_loop(shared, idx))
                    .map_err(|e| format!("spawn node thread: {e}"))
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Coordinator { shared, threads })
    }

    /// The node a streaming session's micro-batches belong on: the
    /// rendezvous home ([`crate::resident_route`]) of `stream` among
    /// the nodes not yet declared permanently dead. The address is the
    /// routing key, so the answer is stable across coordinator
    /// restarts; when the home node dies only its streams re-home (the
    /// resident set rebuilds on the survivor), every other stream
    /// keeps its warm index.
    pub fn stream_home(&self, stream: &str) -> Option<String> {
        let st = self.shared.lock();
        let live: Vec<String> = st
            .nodes
            .iter()
            .filter(|n| !n.terminal)
            .map(|n| n.addr.clone())
            .collect();
        crate::route::resident_route(stream, &live).map(|i| live[i].clone())
    }

    /// Enqueue one job. Rejected when its footprint exceeds every
    /// live node's budget (optimistically accepted while nodes are
    /// still registering).
    pub fn submit(&self, req: JobRequest) -> Result<u64, String> {
        let footprint = req.footprint();
        let mut st = self.shared.lock();
        if st.halt {
            return Err("coordinator is shutting down".into());
        }
        if st.nodes.iter().all(|n| n.terminal) {
            st.stats.rejected += 1;
            return Err("no live nodes".into());
        }
        let any_unregistered = st.nodes.iter().any(|n| !n.terminal && !n.registered);
        if !any_unregistered && !CoShared::placeable(&st, footprint) {
            st.stats.rejected += 1;
            return Err(format!(
                "job footprint {footprint} exceeds every node's budget"
            ));
        }
        st.next_id += 1;
        let id = st.next_id;
        // Journal-before-queue, under the id-assigning lock: a client
        // that got an id back will find its job after a crash.
        self.shared.journal_commit(&JournalRecord::JobSubmitted {
            job: id,
            line: req.to_line(),
        });
        st.stats.submitted += 1;
        self.shared.trace(TraceEvent::JobSubmitted {
            job: id,
            footprint,
            shard: 0,
        });
        st.pending.push_back(PendingJob {
            id,
            req,
            requeues: 0,
            ready_at: Instant::now(),
            submitted: Instant::now(),
        });
        Ok(id)
    }

    /// Parse and submit every job line of `text` (the job-file grammar
    /// of [`JobRequest::parse_line`]). A bad line fails the whole call.
    pub fn submit_script(&self, text: &str) -> Result<Vec<u64>, String> {
        let mut ids = Vec::new();
        for (no, line) in text.lines().enumerate() {
            match JobRequest::parse_line(line) {
                Ok(Some(req)) => ids.push(
                    self.submit(req)
                        .map_err(|e| format!("line {}: {e}", no + 1))?,
                ),
                Ok(None) => {}
                Err(e) => return Err(format!("line {}: {e}", no + 1)),
            }
        }
        Ok(ids)
    }

    /// Block until every accepted job has a terminal result. Jobs that
    /// can no longer run anywhere (every node dead) fail rather than
    /// wait forever.
    pub fn drain(&self) {
        let mut st = self.shared.lock();
        loop {
            {
                let CoState {
                    pending, completed, ..
                } = &mut *st;
                pending.retain(|p| !completed.contains(&p.id));
            }
            let in_flight: usize = st.nodes.iter().map(|n| n.in_flight.len()).sum();
            if st.pending.is_empty() && in_flight == 0 {
                return;
            }
            if st.nodes.iter().all(|n| n.terminal) {
                // Capacity is gone for good: fail whatever is left so
                // drain terminates with every job accounted for.
                while let Some(p) = st.pending.pop_front() {
                    self.shared
                        .fail_job(&mut st, p.id, &p.req, p.requeues, "no live nodes".into());
                }
                return;
            }
            let (guard, _) = self
                .shared
                .done
                .wait_timeout(st, Duration::from_millis(100))
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Terminal results so far, in completion order.
    pub fn results(&self) -> Vec<ClusterJobResult> {
        self.shared.lock().results.clone()
    }

    /// Counter snapshot: live aggregates (budget, reservations, leak
    /// check) are computed from the current node table.
    pub fn stats(&self) -> ClusterStats {
        let st = self.shared.lock();
        let mut stats = st.stats.clone();
        stats.nodes_alive = st.nodes.iter().filter(|n| n.alive).count() as u32;
        stats.budget_bytes = st.nodes.iter().filter(|n| n.alive).map(|n| n.budget).sum();
        stats.reserved_bytes = st.nodes.iter().map(|n| n.reserved).sum();
        // Any reserved byte not backed by an in-flight job is a leak:
        // this is the invariant the release-once discipline protects.
        stats.budget_leak_bytes = st
            .nodes
            .iter()
            .map(|n| {
                let backing: u64 = n.in_flight.values().map(|f| f.req.footprint()).sum();
                n.reserved.saturating_sub(backing)
            })
            .sum();
        stats.journal = self.shared.journal_stats();
        stats
    }

    /// Drain, send every surviving node a `Shutdown`, and return the
    /// final results and stats.
    pub fn finish(mut self) -> (Vec<ClusterJobResult>, ClusterStats) {
        self.drain();
        {
            let mut st = self.shared.lock();
            st.halt = true;
        }
        self.shared.done.notify_all();
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
        let stats = self.stats();
        let results = std::mem::take(&mut self.shared.lock().results);
        (results, stats)
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock();
            st.halt = true;
            // An abandoned coordinator must not strand its threads in
            // ready_to_part (pending jobs would hold them): mark every
            // node terminal so the loops exit.
            for n in st.nodes.iter_mut() {
                n.terminal = true;
            }
        }
        self.shared.done.notify_all();
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

/// Open (or resume) the coordinator journal in its own single-disk
/// mmap store under `dir` — the same arrangement as the serve journal.
#[allow(clippy::type_complexity)]
fn open_journal(
    dir: &Path,
    resume: bool,
    sink: Arc<dyn TraceSink>,
) -> Result<(Journal<MmapEnv>, Option<mmjoin_recovery::Replayed>), String> {
    let cfg = MmapEnvConfig {
        root: dir.to_path_buf(),
        num_disks: 1,
        page_size: PAGE,
    };
    if !resume {
        let _ = std::fs::remove_dir_all(dir);
        let env = MmapEnv::new(cfg).map_err(|e| format!("journal env: {e}"))?;
        env.set_trace_sink(sink);
        let journal = Journal::create(env, JOURNAL_FILE, JOURNAL_CAPACITY, JOURNAL_PROC)
            .map_err(|e| format!("journal create: {e}"))?;
        return Ok((journal, None));
    }
    let (env, adopted) = MmapEnv::recover(cfg).map_err(|e| format!("journal env: {e}"))?;
    env.set_trace_sink(sink);
    if adopted.iter().any(|n| n == JOURNAL_FILE) {
        let (journal, replayed) = Journal::open(env, JOURNAL_FILE, JOURNAL_PROC)
            .map_err(|e| format!("journal open: {e}"))?;
        Ok((journal, Some(replayed)))
    } else {
        // --resume on a first start: nothing to replay yet.
        let journal = Journal::create(env, JOURNAL_FILE, JOURNAL_CAPACITY, JOURNAL_PROC)
            .map_err(|e| format!("journal create: {e}"))?;
        Ok((journal, None))
    }
}

/// Fold a replayed journal into the fresh coordinator state: re-report
/// completed jobs exactly once, re-queue everything else under its
/// original id, and continue id assignment above the replayed maximum.
fn apply_resume(
    shared: &CoShared,
    replayed: mmjoin_recovery::Replayed,
) -> Result<ResumeReport, String> {
    let state = ReplayState::from_records(&replayed.records);
    let mut st = shared.lock();
    let mut finished = 0u64;
    let mut pending = 0u64;
    for (id, js) in &state.jobs {
        let req = match JobRequest::parse_line(&js.line) {
            Ok(Some(req)) => req,
            Ok(None) | Err(_) => {
                eprintln!(
                    "mmjoin-cluster: journal job {id} has no usable submission line ({:?}); dropped",
                    js.line
                );
                continue;
            }
        };
        match js.completed {
            Some((pairs, checksum, ok)) => {
                finished += 1;
                st.completed.insert(*id);
                st.stats.completed += 1;
                st.stats.resumed_reported += 1;
                if !ok {
                    st.stats.failed += 1;
                }
                st.results.push(ClusterJobResult {
                    id: *id,
                    name: req.name.clone(),
                    node: "journal".into(),
                    alg: req.alg.map_or("auto", |a| a.name()).to_string(),
                    pairs,
                    checksum,
                    ok,
                    requeues: 0,
                    latency: 0.0,
                    resumed: true,
                    error: if ok {
                        None
                    } else {
                        Some("failed before restart (replayed from journal)".into())
                    },
                });
            }
            None => {
                pending += 1;
                st.stats.submitted += 1;
                st.pending.push_back(PendingJob {
                    id: *id,
                    req,
                    requeues: 0,
                    ready_at: Instant::now(),
                    submitted: Instant::now(),
                });
            }
        }
    }
    st.next_id = state.max_job_id().unwrap_or(0);
    st.stats.replayed_records = replayed.records.len() as u64;
    Ok(ResumeReport {
        records: replayed.records.len() as u64,
        torn_bytes: replayed.torn_bytes,
        finished,
        pending,
    })
}
