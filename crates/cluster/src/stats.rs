//! Coordinator-side counters, with the same hand-rolled JSON snapshot
//! idiom as [`ServiceStats`](mmjoin_serve::ServiceStats).

use std::fmt::Write as _;

use mmjoin_env::Histogram;
use mmjoin_recovery::JournalStats;

/// Counters describing one coordinator's lifetime.
#[derive(Clone, Debug, Default)]
pub struct ClusterStats {
    /// Nodes configured.
    pub nodes: u32,
    /// Nodes currently registered and alive.
    pub nodes_alive: u32,
    /// Successful node registrations (a reconnect re-registers).
    pub node_joins: u64,
    /// Nodes declared dead (heartbeat timeout or connection loss after
    /// exhausted reconnects).
    pub node_losses: u64,
    /// Jobs accepted at submission.
    pub submitted: u64,
    /// Jobs rejected at submission (footprint exceeds every node).
    pub rejected: u64,
    /// Jobs with a terminal result (ok or failed).
    pub completed: u64,
    /// Terminal results with `ok == false`.
    pub failed: u64,
    /// Jobs re-queued off a dead node onto the pending queue.
    pub requeued: u64,
    /// Claims a node declined because a strictly faster node had a free
    /// worker slot and budget for the job at that moment (host-aware
    /// placement deferring to the better home).
    pub deferred_claims: u64,
    /// Duplicate `JobDone` deliveries dropped by id dedup (the
    /// at-least-once resend path working as designed).
    pub duplicate_completions: u64,
    /// Completed jobs re-reported from the journal by `--resume`.
    pub resumed_reported: u64,
    /// CRC-valid journal records replayed at startup.
    pub replayed_records: u64,
    /// Aggregate budget bytes across currently alive nodes — the
    /// capacity admission control re-plans against as nodes come and
    /// go.
    pub budget_bytes: u64,
    /// Bytes currently reserved for in-flight jobs across alive nodes.
    pub reserved_bytes: u64,
    /// High-water mark of `reserved_bytes`.
    pub peak_reserved_bytes: u64,
    /// Reserved bytes not backed by any in-flight job — 0 unless the
    /// release accounting leaks (see the node-death release-once
    /// guard in the coordinator).
    pub budget_leak_bytes: u64,
    /// Submit→completion wall latency of terminal results.
    pub latency: Histogram,
    /// Coordinator journal counters, when journaling is configured.
    pub journal: Option<JournalStats>,
}

impl ClusterStats {
    /// JSON snapshot (one flat object, stable key order).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        let _ = write!(
            s,
            "{{\"nodes\":{},\"nodes_alive\":{},\"node_joins\":{},\"node_losses\":{},",
            self.nodes, self.nodes_alive, self.node_joins, self.node_losses
        );
        let _ = write!(
            s,
            "\"submitted\":{},\"rejected\":{},\"completed\":{},\"failed\":{},\"requeued\":{},",
            self.submitted, self.rejected, self.completed, self.failed, self.requeued
        );
        let _ = write!(
            s,
            "\"deferred_claims\":{},\"duplicate_completions\":{},\"resumed_reported\":{},\"replayed_records\":{},",
            self.deferred_claims, self.duplicate_completions, self.resumed_reported, self.replayed_records
        );
        let _ = write!(
            s,
            "\"budget_bytes\":{},\"reserved_bytes\":{},\"peak_reserved_bytes\":{},\"budget_leak_bytes\":{},",
            self.budget_bytes, self.reserved_bytes, self.peak_reserved_bytes, self.budget_leak_bytes
        );
        let _ = write!(s, "\"latency\":{}", self.latency.to_json());
        match &self.journal {
            Some(j) => {
                let _ = write!(
                    s,
                    ",\"journal\":{{\"appended_records\":{},\"appended_bytes\":{},\"commits\":{},\"replayed_records\":{},\"torn_bytes\":{}}}",
                    j.appended_records, j.appended_bytes, j.commits, j.replayed_records, j.torn_bytes
                );
            }
            None => s.push_str(",\"journal\":null"),
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_flat_and_complete() {
        let mut st = ClusterStats {
            nodes: 2,
            nodes_alive: 1,
            node_joins: 2,
            node_losses: 1,
            submitted: 10,
            completed: 10,
            failed: 1,
            requeued: 3,
            deferred_claims: 4,
            duplicate_completions: 2,
            ..ClusterStats::default()
        };
        st.latency.record(0.05);
        let json = st.to_json();
        for key in [
            "\"nodes\":2",
            "\"nodes_alive\":1",
            "\"node_losses\":1",
            "\"requeued\":3",
            "\"deferred_claims\":4",
            "\"duplicate_completions\":2",
            "\"budget_leak_bytes\":0",
            "\"latency\":{",
            "\"journal\":null",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn journal_section_appears_when_configured() {
        let st = ClusterStats {
            journal: Some(JournalStats {
                appended_records: 4,
                appended_bytes: 128,
                commits: 4,
                replayed_records: 0,
                torn_bytes: 0,
            }),
            ..ClusterStats::default()
        };
        let json = st.to_json();
        assert!(json.contains("\"journal\":{\"appended_records\":4"));
        assert!(json.contains("\"commits\":4"));
    }
}
