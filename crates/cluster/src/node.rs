//! A worker node: a TCP wrapper around one local
//! [`Service`](mmjoin_serve::Service).
//!
//! The node is a server socket. The coordinator connects *to* it; the
//! node answers with a [`Message::Hello`] carrying its name and the
//! budget its local admission controller plans against (each node is
//! expected to run with its own calibrated machine profile via
//! [`ServeConfig::with_machine`](mmjoin_serve::ServeConfig)). One
//! connection at a time is served — there is one coordinator — but the
//! accept loop survives disconnects, so a coordinator that restarts or
//! rides out a network blip simply reconnects.
//!
//! # At-least-once dispatch, idempotent dedup
//!
//! Dispatch is at-least-once: the coordinator resends any `RunJob` it
//! is unsure about, and resends happen naturally after reconnects. The
//! node holds the dedup side of the contract:
//!
//! * a `RunJob` for a job currently *running* is ignored;
//! * a `RunJob` for a job already *finished* re-sends the cached
//!   [`Message::JobDone`] instead of re-executing;
//! * finished-job messages are resent on every fresh connection until
//!   the coordinator stops asking (the coordinator dedups by job id on
//!   its side), so a completion can be duplicated on the wire but never
//!   in either side's state.
//!
//! [`NodeServer::kill`] exists for chaos tests: it drops the listener
//! and resets the live connection without any goodbye, which is
//! indistinguishable over TCP from the process being SIGKILLed.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use mmjoin_serve::{JobRequest, ServeConfig, Service};

use crate::wire::{write_msg, FrameReader, Message};

/// Poll cadence of the per-connection loop: the read timeout that also
/// paces the completion pump.
const POLL: Duration = Duration::from_millis(20);

/// Dedup and result-cache state for one node.
#[derive(Default)]
struct NodeJobs {
    /// Cluster job id → local service id, for jobs in flight.
    running: BTreeMap<u64, u64>,
    /// Local service id → cluster job id (harvesting direction).
    local_to_cluster: BTreeMap<u64, u64>,
    /// Cluster job id → cached `JobDone`, kept forever (results are a
    /// few dozen bytes; a node's lifetime is one benchmark run).
    done: BTreeMap<u64, Message>,
    /// Local results already harvested from the service.
    harvested: usize,
}

struct NodeShared {
    name: String,
    budget_bytes: u64,
    workers: u32,
    speed: f64,
    svc: Service,
    /// Cleared by `Shutdown`, `kill`, or drop; every loop watches it.
    running: AtomicBool,
    /// The live connection, kept so `kill` can reset it abruptly.
    conn: Mutex<Option<TcpStream>>,
    jobs: Mutex<NodeJobs>,
}

impl NodeShared {
    /// Harvest newly finished local results into cached `JobDone`
    /// messages, then return every cached message not yet sent on this
    /// connection (tracked by the caller's `sent` set).
    fn pump(&self, sent: &mut BTreeSet<u64>) -> Vec<Message> {
        let results = self.svc.results();
        let mut jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
        for r in &results[jobs.harvested.min(results.len())..] {
            let Some(cluster) = jobs.local_to_cluster.remove(&r.id) else {
                continue;
            };
            jobs.running.remove(&cluster);
            jobs.done.insert(
                cluster,
                Message::JobDone {
                    job: cluster,
                    alg: r.alg.name().to_string(),
                    pairs: r.pairs,
                    checksum: r.checksum,
                    ok: r.verified,
                    error: r.error.clone().unwrap_or_default(),
                },
            );
        }
        jobs.harvested = results.len();
        let mut out = Vec::new();
        for (id, msg) in &jobs.done {
            if sent.insert(*id) {
                out.push(msg.clone());
            }
        }
        out
    }

    /// Handle one `RunJob`: dedup against running and finished jobs,
    /// else submit to the local service. Returns true when the cached
    /// completion should be resent (the coordinator asked about a job
    /// that already finished — it clearly never saw the result).
    fn accept_job(&self, job: u64, line: &str) -> bool {
        let mut jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
        if jobs.done.contains_key(&job) {
            return true;
        }
        if jobs.running.contains_key(&job) {
            return false;
        }
        let submitted = match JobRequest::parse_line(line) {
            Ok(Some(req)) => self.svc.submit(req),
            Ok(None) => Err("empty job line".to_string()),
            Err(e) => Err(e),
        };
        match submitted {
            Ok(local) => {
                jobs.running.insert(job, local);
                jobs.local_to_cluster.insert(local, job);
                false
            }
            Err(e) => {
                // A submit-time rejection is reported as a failed
                // completion, which the coordinator records as
                // *terminal* — it does not re-queue failed results onto
                // other nodes. That is sound here because the
                // coordinator only dispatches jobs that fit this node's
                // advertised budget, so a rejection means the request
                // itself is bad (unparsable line, service shutting
                // down), not a transient local condition.
                jobs.done.insert(
                    job,
                    Message::JobDone {
                        job,
                        alg: "auto".into(),
                        pairs: 0,
                        checksum: 0,
                        ok: false,
                        error: e,
                    },
                );
                true
            }
        }
    }

    fn handle(&self, mut stream: TcpStream) -> io::Result<()> {
        // The listener is non-blocking (so the accept loop can watch
        // the running flag); the session socket must not inherit that.
        stream.set_nonblocking(false)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(POLL))?;
        stream.set_write_timeout(Some(Duration::from_secs(5)))?;
        *self.conn.lock().unwrap_or_else(|e| e.into_inner()) = Some(stream.try_clone()?);
        write_msg(
            &mut stream,
            &Message::Hello {
                node: self.name.clone(),
                budget_bytes: self.budget_bytes,
                workers: self.workers,
                speed: self.speed,
            },
        )?;
        // Completions sent on *this* connection; a reconnect starts
        // empty, so every cached completion is resent (at-least-once).
        let mut sent: BTreeSet<u64> = BTreeSet::new();
        // Per-connection frame state: the poll-timeout read can cut in
        // mid-frame, and the partial bytes must carry over.
        let mut reader = FrameReader::new();
        loop {
            if !self.running.load(Ordering::SeqCst) {
                return Ok(());
            }
            for msg in self.pump(&mut sent) {
                write_msg(&mut stream, &msg)?;
            }
            match reader.read_msg(&mut stream) {
                Ok(Some(Message::RunJob { job, line })) => {
                    if self.accept_job(job, &line) {
                        sent.remove(&job);
                    }
                }
                Ok(Some(Message::Ping { seq })) => {
                    write_msg(&mut stream, &Message::Pong { seq })?;
                }
                Ok(Some(Message::Shutdown)) => {
                    self.running.store(false, Ordering::SeqCst);
                    return Ok(());
                }
                Ok(Some(_)) => {}
                Ok(None) => return Ok(()),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// The relative speed a node advertises in its `Hello`: the inverse of
/// its machine profile's predicted seconds for a fixed reference join.
/// Dimensionless — the coordinator only compares ratios between nodes
/// — so any common reference workload works, as long as every node
/// uses the same one. A node whose profile cannot be loaded advertises
/// 1.0 (average) rather than failing registration.
fn advertised_speed(cfg: &ServeConfig) -> f64 {
    let reference = JobRequest::new(20_000, 64, 4, 64, 1);
    match cfg.machine() {
        Ok(m) => {
            let s = mmjoin::choose(m, &reference.planner_inputs()).predicted_seconds();
            if s.is_finite() && s > 0.0 {
                1.0 / s
            } else {
                1.0
            }
        }
        Err(_) => 1.0,
    }
}

/// A running worker node. Dropping it stops the accept loop and the
/// wrapped service's workers.
pub struct NodeServer {
    shared: Arc<NodeShared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl NodeServer {
    /// Bind `listen` (e.g. `127.0.0.1:0` for an ephemeral port), start
    /// the local service from `cfg`, and serve coordinator connections
    /// in a background thread.
    pub fn start(listen: &str, name: &str, cfg: ServeConfig) -> Result<NodeServer, String> {
        let budget_bytes = cfg.budget_bytes;
        let workers = cfg.workers as u32;
        let speed = advertised_speed(&cfg);
        let svc = Service::start(cfg)?;
        let listener = TcpListener::bind(listen).map_err(|e| format!("bind {listen}: {e}"))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;
        let shared = Arc::new(NodeShared {
            name: name.to_string(),
            budget_bytes,
            workers,
            speed,
            svc,
            running: AtomicBool::new(true),
            conn: Mutex::new(None),
            jobs: Mutex::new(NodeJobs::default()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name(format!("node-{name}"))
            .spawn(move || {
                while accept_shared.running.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Connections are served inline: one
                            // coordinator, one session at a time. An
                            // errored session just waits for the next
                            // connect.
                            let _ = accept_shared.handle(stream);
                            *accept_shared.conn.lock().unwrap_or_else(|e| e.into_inner()) = None;
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => break,
                    }
                }
            })
            .map_err(|e| format!("spawn accept loop: {e}"))?;
        Ok(NodeServer {
            shared,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves `:0` to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The node's registered name.
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// True until `Shutdown` is received, `kill` is called, or the
    /// server is dropped.
    pub fn is_running(&self) -> bool {
        self.shared.running.load(Ordering::SeqCst)
    }

    /// Jobs this node has finished (cached completions).
    pub fn completed(&self) -> usize {
        self.shared
            .jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .done
            .len()
    }

    /// Simulate the process being SIGKILLed: stop accepting, reset the
    /// live connection with no goodbye, and never send another byte.
    /// Over TCP this is indistinguishable from real process death.
    pub fn kill(&self) {
        self.shared.running.store(false, Ordering::SeqCst);
        if let Some(conn) = self
            .shared
            .conn
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Block until the node stops (a coordinator `Shutdown`, or
    /// `kill` from another thread). Used by `mmjoin serve --node`.
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for NodeServer {
    fn drop(&mut self) {
        self.kill();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}
