//! Sticky routing of resident streams to cluster nodes.
//!
//! A streaming session (`mmjoin serve --stream`) keeps its inner
//! relation resident: the node that built a stream's resident index is
//! the only node that can probe it without re-paying the build. A
//! coordinator dispatching micro-batches therefore needs a *sticky*
//! stream→node map — every batch of stream `hot` must land on the same
//! node — that also survives membership churn gracefully: when a node
//! dies, only the streams it held should move (and re-build on a
//! survivor); every other stream must keep its node.
//!
//! Rendezvous (highest-random-weight) hashing gives exactly that with
//! no shared state: each (stream, node) pair gets a deterministic
//! weight, and the stream lives on its highest-weight live node.
//! Removing a node only re-homes the streams whose maximum it was;
//! adding a node back restores its streams.

/// 64-bit FNV-1a over `bytes` — small, dependency-free, and stable
/// across processes (routing must agree between coordinator restarts).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The rendezvous weight of placing `stream` on `node`.
fn weight(stream: &str, node: &str) -> u64 {
    let mut key = Vec::with_capacity(stream.len() + node.len() + 1);
    key.extend_from_slice(stream.as_bytes());
    key.push(0); // unambiguous boundary: ("ab","c") != ("a","bc")
    key.extend_from_slice(node.as_bytes());
    fnv1a(&key)
}

/// Pick the node that holds `stream`'s resident set: the index into
/// `nodes` with the highest rendezvous weight. Ties break toward the
/// lower index (deterministic). Returns `None` for an empty node list.
pub fn resident_route(stream: &str, nodes: &[String]) -> Option<usize> {
    nodes
        .iter()
        .enumerate()
        .max_by(|(ia, a), (ib, b)| {
            weight(stream, a)
                .cmp(&weight(stream, b))
                // max_by keeps the *last* maximal element; invert the
                // index order so equal weights favour the lower index.
                .then(ib.cmp(ia))
        })
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let ns = nodes(&["a:1", "b:2", "c:3"]);
        for i in 0..64 {
            let stream = format!("s{i}");
            let n = resident_route(&stream, &ns).unwrap();
            assert!(n < ns.len());
            assert_eq!(resident_route(&stream, &ns), Some(n), "sticky");
        }
        assert_eq!(resident_route("x", &[]), None);
    }

    #[test]
    fn removing_a_node_only_moves_its_own_streams() {
        let full = nodes(&["a:1", "b:2", "c:3"]);
        let survivors = nodes(&["a:1", "c:3"]);
        let mut moved = 0;
        for i in 0..256 {
            let stream = format!("s{i}");
            let before = resident_route(&stream, &full).unwrap();
            let after = resident_route(&stream, &survivors).unwrap();
            if full[before] == "b:2" {
                moved += 1; // its node died; it must move somewhere
            } else {
                // Every stream that did not live on b keeps its node.
                assert_eq!(survivors[after], full[before], "{stream}");
            }
        }
        assert!(moved > 0, "some streams lived on the dead node");
    }

    #[test]
    fn placement_spreads_across_nodes() {
        let ns = nodes(&["a:1", "b:2", "c:3", "d:4"]);
        let mut counts = vec![0u32; ns.len()];
        for i in 0..400 {
            counts[resident_route(&format!("s{i}"), &ns).unwrap()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 40, "node {i} got only {c} of 400 streams");
        }
    }
}
