//! Cluster fault-tolerance acceptance tests: a coordinator over real
//! in-process [`NodeServer`]s (plus a few scripted fake nodes speaking
//! the wire protocol) must survive node loss with zero lost and zero
//! duplicated completions, keep budget accounting leak-free, and
//! resume from its journal exactly once.

use std::collections::{BTreeMap, BTreeSet};
use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mmjoin::RetryPolicy;
use mmjoin_cluster::wire::{read_msg, write_msg};
use mmjoin_cluster::{ClusterConfig, ClusterJobResult, Coordinator, Message, NodeServer};
use mmjoin_env::FaultSpec;
use mmjoin_serve::{JobRequest, ServeConfig, Service, PAGE};

/// Named jobs in the shared script grammar; names key the outcome-set
/// comparison against the single-node reference.
fn jobs(n: u64) -> Vec<JobRequest> {
    (0..n)
        .map(|i| {
            let mut req = JobRequest::new(600 + 40 * i, 32, 2, 8, i + 1);
            req.name = format!("j{i}");
            req
        })
        .collect()
}

/// The uninterrupted single-node reference: the same jobs through one
/// plain local service.
fn reference(reqs: &[JobRequest]) -> BTreeMap<String, (u64, u64, bool)> {
    let svc = Service::start(ServeConfig::sim(64 * PAGE, 2)).unwrap();
    for req in reqs {
        svc.submit(req.clone()).unwrap();
    }
    let (results, _) = svc.finish();
    results
        .into_iter()
        .map(|r| (r.name.clone(), (r.pairs, r.checksum, r.verified)))
        .collect()
}

fn outcomes(results: &[ClusterJobResult]) -> BTreeMap<String, (u64, u64, bool)> {
    results
        .iter()
        .map(|r| (r.name.clone(), (r.pairs, r.checksum, r.ok)))
        .collect()
}

fn fast_cfg(nodes: Vec<String>) -> ClusterConfig {
    ClusterConfig::new(nodes)
        .with_heartbeat(Duration::from_millis(10))
        .with_timeout(Duration::from_millis(150))
}

#[test]
fn two_node_cluster_matches_single_node_reference() {
    let reqs = jobs(8);
    let want = reference(&reqs);

    let a = NodeServer::start("127.0.0.1:0", "alpha", ServeConfig::sim(64 * PAGE, 2)).unwrap();
    let b = NodeServer::start("127.0.0.1:0", "beta", ServeConfig::sim(64 * PAGE, 2)).unwrap();
    let co = Coordinator::start(fast_cfg(vec![
        a.local_addr().to_string(),
        b.local_addr().to_string(),
    ]))
    .unwrap();
    for req in &reqs {
        co.submit(req.clone()).unwrap();
    }
    let (results, stats) = co.finish();

    assert_eq!(outcomes(&results), want);
    assert!(results.iter().all(|r| r.ok), "{results:?}");
    assert_eq!(stats.node_joins, 2);
    assert_eq!(stats.node_losses, 0);
    assert_eq!(stats.completed, 8);
    assert_eq!(stats.duplicate_completions, 0);
    assert_eq!(stats.budget_leak_bytes, 0);
    // Both nodes participated (work actually spread across the wire).
    assert!(a.completed() + b.completed() >= 8);
}

/// A scripted fake node: registers with a generous budget, absorbs up
/// to `claim_before_silence` dispatches while answering heartbeats,
/// then goes completely silent — never completing a job, never
/// answering another ping. The coordinator must declare it dead and
/// re-queue everything it swallowed onto the survivor.
fn spawn_silent_node(claim_before_silence: usize) -> (String, Arc<AtomicUsize>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let swallowed = Arc::new(AtomicUsize::new(0));
    let count = Arc::clone(&swallowed);
    std::thread::spawn(move || {
        let Ok((mut stream, _)) = listener.accept() else {
            return;
        };
        stream
            .set_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();
        write_msg(
            &mut stream,
            &Message::Hello {
                node: "black-hole".into(),
                budget_bytes: 1 << 30,
                workers: 4,
                speed: 1.0,
            },
        )
        .unwrap();
        loop {
            match read_msg(&mut stream) {
                Ok(Some(Message::RunJob { .. })) => {
                    if count.fetch_add(1, Ordering::SeqCst) + 1 >= claim_before_silence {
                        // Silence: hold the socket open but never
                        // speak again — heartbeats go unanswered.
                        std::thread::sleep(Duration::from_secs(30));
                        return;
                    }
                }
                Ok(Some(Message::Ping { seq })) => {
                    let _ = write_msg(&mut stream, &Message::Pong { seq });
                }
                Ok(Some(_)) => {}
                Ok(None) => return,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(_) => return,
            }
        }
    });
    (addr, swallowed)
}

#[test]
fn dead_node_jobs_requeue_onto_survivor_with_no_loss_or_leak() {
    let reqs = jobs(10);
    let want = reference(&reqs);

    let survivor =
        NodeServer::start("127.0.0.1:0", "survivor", ServeConfig::sim(64 * PAGE, 2)).unwrap();
    let (black_hole, swallowed) = spawn_silent_node(1);
    let co = Coordinator::start(fast_cfg(vec![
        black_hole,
        survivor.local_addr().to_string(),
    ]))
    .unwrap();
    for req in &reqs {
        co.submit(req.clone()).unwrap();
    }
    let (results, stats) = co.finish();

    // Zero lost, zero duplicated: the outcome set equals the
    // uninterrupted single-node reference, and every job verified.
    assert_eq!(outcomes(&results), want);
    assert!(results.iter().all(|r| r.ok), "{results:?}");
    assert_eq!(stats.node_losses, 1, "black hole must be declared dead");
    assert!(
        swallowed.load(Ordering::SeqCst) >= 1,
        "the black hole should have swallowed at least one dispatch"
    );
    assert!(
        stats.requeued >= swallowed.load(Ordering::SeqCst) as u64,
        "swallowed jobs must be re-queued: {stats:?}"
    );
    assert!(
        results.iter().any(|r| r.requeues > 0),
        "at least one result should record its re-queue: {results:?}"
    );
    // Satellite regression: releasing a dead node's budget exactly once
    // means no reserved byte survives without an in-flight job backing
    // it.
    assert_eq!(stats.budget_leak_bytes, 0);
    assert_eq!(stats.reserved_bytes, 0);
}

/// A fake node that completes every job instantly — twice. The
/// duplicate delivery must be dropped by the coordinator's id dedup.
fn spawn_double_done_node() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        let Ok((mut stream, _)) = listener.accept() else {
            return;
        };
        stream
            .set_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();
        write_msg(
            &mut stream,
            &Message::Hello {
                node: "stutter".into(),
                budget_bytes: 1 << 30,
                workers: 4,
                speed: 1.0,
            },
        )
        .unwrap();
        loop {
            match read_msg(&mut stream) {
                Ok(Some(Message::RunJob { job, .. })) => {
                    let done = Message::JobDone {
                        job,
                        alg: "grace".into(),
                        pairs: job * 100,
                        checksum: job * 7,
                        ok: true,
                        error: String::new(),
                    };
                    let _ = write_msg(&mut stream, &done);
                    let _ = write_msg(&mut stream, &done);
                }
                Ok(Some(Message::Ping { seq })) => {
                    let _ = write_msg(&mut stream, &Message::Pong { seq });
                }
                Ok(Some(Message::Shutdown)) | Ok(None) => return,
                Ok(Some(_)) => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(_) => return,
            }
        }
    });
    addr
}

/// A scripted node that advertises the given relative speed and
/// completes every dispatch instantly (by formula, idempotently).
fn spawn_completing_node(name: &'static str, speed: f64, workers: u32) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        let Ok((mut stream, _)) = listener.accept() else {
            return;
        };
        stream
            .set_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();
        write_msg(
            &mut stream,
            &Message::Hello {
                node: name.into(),
                budget_bytes: 1 << 30,
                workers,
                speed,
            },
        )
        .unwrap();
        loop {
            match read_msg(&mut stream) {
                Ok(Some(Message::RunJob { job, .. })) => {
                    let _ = write_msg(
                        &mut stream,
                        &Message::JobDone {
                            job,
                            alg: "grace".into(),
                            pairs: job * 100,
                            checksum: job * 7,
                            ok: true,
                            error: String::new(),
                        },
                    );
                }
                Ok(Some(Message::Ping { seq })) => {
                    let _ = write_msg(&mut stream, &Message::Pong { seq });
                }
                Ok(Some(Message::Shutdown)) | Ok(None) => return,
                Ok(Some(_)) => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(_) => return,
            }
        }
    });
    addr
}

/// Host-aware placement: with the whole speed table known before any
/// job exists, every claim by the slower node must defer to the faster
/// node while it has a free worker slot and budget — so the faster
/// node wins every job.
#[test]
fn claims_defer_to_the_faster_free_node() {
    let slow = NodeServer::start("127.0.0.1:0", "slow", ServeConfig::sim(64 * PAGE, 2)).unwrap();
    let fast_addr = spawn_completing_node("fast", 1e12, 64);
    let co = Coordinator::start(fast_cfg(vec![slow.local_addr().to_string(), fast_addr])).unwrap();
    // Submit only after both nodes have registered, so the speed table
    // is complete and placement is deterministic.
    let deadline = Instant::now() + Duration::from_secs(10);
    while co.stats().nodes_alive < 2 {
        assert!(Instant::now() < deadline, "nodes did not register in time");
        std::thread::sleep(Duration::from_millis(5));
    }
    for req in jobs(6) {
        co.submit(req).unwrap();
    }
    let (results, stats) = co.finish();
    assert_eq!(results.len(), 6);
    assert!(
        results.iter().all(|r| r.node == "fast"),
        "every job must land on the faster node: {results:?}"
    );
    assert_eq!(slow.completed(), 0, "slow node must not win any claim");
    assert_eq!(stats.budget_leak_bytes, 0);
}

/// A node whose first session swallows one dispatch and then drops the
/// connection without a word; every later session completes jobs
/// normally (idempotently, by formula, so redelivered dispatches are
/// harmless). Models a `RunJob` frame lost in transit on a healthy
/// node.
fn spawn_flaky_then_healthy_node() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        let mut first = true;
        loop {
            let Ok((mut stream, _)) = listener.accept() else {
                return;
            };
            stream
                .set_read_timeout(Some(Duration::from_millis(10)))
                .unwrap();
            if write_msg(
                &mut stream,
                &Message::Hello {
                    node: "flaky".into(),
                    budget_bytes: 1 << 30,
                    workers: 4,
                    speed: 1.0,
                },
            )
            .is_err()
            {
                continue;
            }
            loop {
                match read_msg(&mut stream) {
                    Ok(Some(Message::RunJob { job, .. })) => {
                        if first {
                            first = false;
                            // Swallow the dispatch and hang up abruptly.
                            break;
                        }
                        let _ = write_msg(
                            &mut stream,
                            &Message::JobDone {
                                job,
                                alg: "grace".into(),
                                pairs: job * 100,
                                checksum: job * 7,
                                ok: true,
                                error: String::new(),
                            },
                        );
                    }
                    Ok(Some(Message::Ping { seq })) => {
                        let _ = write_msg(&mut stream, &Message::Pong { seq });
                    }
                    Ok(Some(Message::Shutdown)) | Ok(None) => return,
                    Ok(Some(_)) => {}
                    Err(e)
                        if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    }
                    Err(_) => break,
                }
            }
        }
    });
    addr
}

/// Regression: a dispatch swallowed by a dropped-but-reconnectable
/// connection must be re-queued on the drop. Before the fix it stayed
/// in the node's in-flight set forever — the reconnected node kept
/// answering heartbeats, so the node was never declared dead, no
/// re-queue ever fired, and `finish` hung.
#[test]
fn dropped_connection_requeues_in_flight_without_declaring_death() {
    let reqs = jobs(5);
    let co = Coordinator::start(fast_cfg(vec![spawn_flaky_then_healthy_node()])).unwrap();
    for req in &reqs {
        co.submit(req.clone()).unwrap();
    }
    let (results, stats) = co.finish();

    assert_eq!(results.len(), 5, "every job must complete: {results:?}");
    assert!(results.iter().all(|r| r.ok), "{results:?}");
    let ids: BTreeSet<u64> = results.iter().map(|r| r.id).collect();
    assert_eq!(ids.len(), 5, "each id exactly once");
    assert_eq!(
        stats.node_losses, 0,
        "a reconnectable drop is not a death: {stats:?}"
    );
    assert!(
        stats.requeued >= 1,
        "the swallowed dispatch must be re-queued: {stats:?}"
    );
    assert_eq!(stats.budget_leak_bytes, 0);
}

#[test]
fn duplicate_completions_are_dropped_by_id_dedup() {
    let reqs = jobs(6);
    let co = Coordinator::start(fast_cfg(vec![spawn_double_done_node()])).unwrap();
    for req in &reqs {
        co.submit(req.clone()).unwrap();
    }
    let (results, stats) = co.finish();

    assert_eq!(results.len(), 6, "exactly one result per job");
    let ids: BTreeSet<u64> = results.iter().map(|r| r.id).collect();
    assert_eq!(ids.len(), 6, "no id reported twice");
    // Every duplicate except possibly the last (drain can finish
    // before the final resend is read) must be counted.
    assert!(
        stats.duplicate_completions >= 5,
        "duplicate deliveries must be counted: {stats:?}"
    );
    assert_eq!(stats.completed, 6);
    assert_eq!(stats.budget_leak_bytes, 0);
}

#[test]
fn footprint_too_big_for_survivors_fails_fast_not_forever() {
    // Only the black hole (1 GiB budget) can host a 64-page job; the
    // survivor has 16 pages. When the black hole dies, the big job must
    // fail as unplaceable instead of waiting for capacity that is gone.
    let survivor =
        NodeServer::start("127.0.0.1:0", "small", ServeConfig::sim(16 * PAGE, 2)).unwrap();
    let (black_hole, _swallowed) = spawn_silent_node(1);
    let co = Coordinator::start(fast_cfg(vec![
        black_hole,
        survivor.local_addr().to_string(),
    ]))
    .unwrap();
    let mut big = JobRequest::new(600, 32, 2, 32, 9);
    big.name = "big".into();
    let mut small = JobRequest::new(600, 32, 2, 4, 10);
    small.name = "small".into();
    co.submit(big).unwrap();
    co.submit(small).unwrap();
    let (results, stats) = co.finish();

    assert_eq!(results.len(), 2);
    let big = results.iter().find(|r| r.name == "big").unwrap();
    assert!(!big.ok, "the unplaceable job must fail: {big:?}");
    assert!(
        big.error.as_deref().unwrap_or("").contains("surviving"),
        "{big:?}"
    );
    let small = results.iter().find(|r| r.name == "small").unwrap();
    assert!(small.ok, "{small:?}");
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.budget_leak_bytes, 0);
}

#[test]
fn coordinator_crash_restart_reports_each_job_exactly_once() {
    let dir = std::env::temp_dir().join(format!("mmjoin-cluster-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let reqs = jobs(8);
    let want = reference(&reqs);

    // A single slow worker (each job stretched ≥50 ms by the fault
    // injector) so abandoning the coordinator after the first
    // completion deterministically strands most of the queue.
    let node_cfg = ServeConfig::sim(64 * PAGE, 1)
        .with_faults(FaultSpec::parse("delay:ms=1:count=50").unwrap());
    let node = NodeServer::start("127.0.0.1:0", "worker", node_cfg).unwrap();
    let addr = node.local_addr().to_string();

    // Life 1: journaling coordinator; abandon it (drop without finish —
    // the journal is all that survives) once at least one completion
    // has been journaled.
    let co = Coordinator::start(fast_cfg(vec![addr.clone()]).with_journal(dir.clone())).unwrap();
    for req in &reqs {
        co.submit(req.clone()).unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while co.results().is_empty() {
        assert!(Instant::now() < deadline, "no completion before deadline");
        std::thread::sleep(Duration::from_millis(5));
    }
    let first_life = co.results().len();
    drop(co);

    // Life 2: --resume against the same journal and the same node (its
    // completion cache makes redelivery of finished work a duplicate,
    // not a re-run).
    let co =
        Coordinator::start(fast_cfg(vec![addr]).with_journal(dir.clone()).with_resume()).unwrap();
    let (results, stats) = co.finish();

    assert_eq!(outcomes(&results), want, "no lost and no duplicated jobs");
    let ids: BTreeSet<u64> = results.iter().map(|r| r.id).collect();
    assert_eq!(ids.len(), 8, "each id exactly once: {results:?}");
    let resumed = results.iter().filter(|r| r.resumed).count();
    assert!(
        resumed >= first_life,
        "every completion journaled before the crash is re-reported"
    );
    assert!(
        resumed < 8,
        "the stranded queue must actually be re-dispatched, not replayed"
    );
    assert_eq!(stats.resumed_reported, resumed as u64);
    assert!(stats.replayed_records > 0);
    assert_eq!(stats.budget_leak_bytes, 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_on_fresh_journal_is_a_plain_start() {
    let dir = std::env::temp_dir().join(format!("mmjoin-cluster-fresh-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let node = NodeServer::start("127.0.0.1:0", "worker", ServeConfig::sim(64 * PAGE, 2)).unwrap();
    let co = Coordinator::start(
        fast_cfg(vec![node.local_addr().to_string()])
            .with_journal(dir.clone())
            .with_resume(),
    )
    .unwrap();
    co.submit(JobRequest::new(600, 32, 2, 8, 1)).unwrap();
    let (results, stats) = co.finish();
    assert_eq!(results.len(), 1);
    assert!(results[0].ok);
    assert_eq!(stats.resumed_reported, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn submit_script_round_trips_the_job_file_grammar() {
    let node = NodeServer::start("127.0.0.1:0", "worker", ServeConfig::sim(64 * PAGE, 2)).unwrap();
    let co = Coordinator::start(fast_cfg(vec![node.local_addr().to_string()])).unwrap();
    let ids = co
        .submit_script(
            "# comment\n\
             name=a alg=grace objects=800 obj-size=32 d=2 mem-pages=8 seed=1\n\
             \n\
             name=b objects=600 obj-size=32 d=2 mem-pages=8 seed=2 dist=zipf:0.8\n",
        )
        .unwrap();
    assert_eq!(ids.len(), 2);
    let (results, _) = co.finish();
    let names: BTreeSet<String> = results.iter().map(|r| r.name.clone()).collect();
    assert_eq!(names, BTreeSet::from(["a".to_string(), "b".to_string()]));
    assert!(results.iter().all(|r| r.ok), "{results:?}");
}

#[test]
fn wire_rejects_oversized_and_corrupt_frames_without_killing_the_node() {
    // A garbage client must not take the node down for the real
    // coordinator that connects next.
    let node = NodeServer::start("127.0.0.1:0", "worker", ServeConfig::sim(64 * PAGE, 2)).unwrap();
    {
        let mut garbage = TcpStream::connect(node.local_addr()).unwrap();
        use std::io::Write as _;
        garbage.write_all(&[0xff; 64]).unwrap();
        // Give the node a moment to read the junk and drop the session.
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(node.is_running(), "garbage must not stop the accept loop");
    let co = Coordinator::start(fast_cfg(vec![node.local_addr().to_string()])).unwrap();
    co.submit(JobRequest::new(600, 32, 2, 8, 3)).unwrap();
    let (results, _) = co.finish();
    assert_eq!(results.len(), 1);
    assert!(results[0].ok);
}

#[test]
fn stream_home_is_sticky_and_rehomes_only_the_dead_nodes_streams() {
    let a = NodeServer::start("127.0.0.1:0", "home-a", ServeConfig::sim(64 * PAGE, 2)).unwrap();
    let b = NodeServer::start("127.0.0.1:0", "home-b", ServeConfig::sim(64 * PAGE, 2)).unwrap();
    let addrs = vec![a.local_addr().to_string(), b.local_addr().to_string()];
    let co = Coordinator::start(fast_cfg(addrs.clone())).unwrap();

    // Find one stream homed on each node; the answer must be sticky.
    let (mut on_a, mut on_b) = (None, None);
    for i in 0..256 {
        let s = format!("stream{i}");
        let home = co.stream_home(&s).expect("two live nodes");
        assert_eq!(co.stream_home(&s).as_ref(), Some(&home), "sticky");
        if home == addrs[0] {
            on_a.get_or_insert(s);
        } else {
            assert_eq!(home, addrs[1], "home must be a configured node");
            on_b.get_or_insert(s);
        }
        if on_a.is_some() && on_b.is_some() {
            break;
        }
    }
    let (on_a, on_b) = (on_a.expect("a stream on a"), on_b.expect("a stream on b"));

    // Kill a's node. Once the heartbeat declares it dead, a's stream
    // re-homes to the survivor — and b's stream must never move, so
    // its resident index stays warm through the membership change.
    a.kill();
    let deadline = Instant::now() + Duration::from_secs(10);
    while co.stream_home(&on_a).as_ref() != Some(&addrs[1]) {
        assert!(Instant::now() < deadline, "dead node never left the route");
        assert_eq!(co.stream_home(&on_b), Some(addrs[1].clone()));
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(co.stream_home(&on_b), Some(addrs[1].clone()));
    // (node_losses is not asserted: the kill may race the node's
    // registration, and only registered nodes count as losses.)
    let _ = co.finish();
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]
        /// Satellite: for arbitrary small job mixes, killing a node
        /// mid-run and re-queuing onto the survivor yields exactly the
        /// uninterrupted single-node outcome set (pairs + checksums),
        /// with zero lost and zero duplicated completions.
        #[test]
        fn requeue_after_kill_equals_uninterrupted_run(
            n_jobs in 3u64..8,
            seed in 0u64..1000,
            swallow in 1usize..3,
        ) {
            let reqs: Vec<JobRequest> = (0..n_jobs)
                .map(|i| {
                    let mut req =
                        JobRequest::new(500 + 37 * ((seed + i) % 9), 32, 2, 8, seed + i);
                    req.name = format!("p{i}");
                    req
                })
                .collect();
            let want = reference(&reqs);

            let survivor = NodeServer::start(
                "127.0.0.1:0",
                "survivor",
                ServeConfig::sim(64 * PAGE, 2),
            )
            .unwrap();
            let (black_hole, _swallowed) = spawn_silent_node(swallow);
            let co = Coordinator::start(
                fast_cfg(vec![black_hole, survivor.local_addr().to_string()])
                    .with_retry(RetryPolicy::attempts(6)),
            )
            .unwrap();
            for req in &reqs {
                co.submit(req.clone()).unwrap();
            }
            let (results, stats) = co.finish();

            prop_assert_eq!(outcomes(&results), want);
            prop_assert_eq!(results.len() as u64, n_jobs);
            prop_assert_eq!(stats.budget_leak_bytes, 0);
        }
    }
}
