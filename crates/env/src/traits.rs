//! The [`Env`] and [`FileOps`] traits: everything a parallel
//! pointer-based join algorithm needs from its environment.
//!
//! The abstraction deliberately mirrors how the paper's algorithms touch
//! the machine:
//!
//! * partitions and temporary areas are *memory-mapped files on specific
//!   disks* — created, opened and deleted at measured `newMap`/`openMap`/
//!   `deleteMap` cost;
//! * reads and writes are implicit: "when we speak of reading a block of
//!   data, the implementation actually accesses a location in virtual
//!   memory mapped to that block" (§4) — so [`FileOps::read_at`]/
//!   [`FileOps::write_at`] may fault and cost disk time, or hit and cost
//!   nothing, depending on the environment's paging state;
//! * all access to the inner relation `S` goes through the owning
//!   `Sproc` via a shared-memory buffer exchange
//!   ([`Env::s_fetch_batch`]), which is where context switches and
//!   private↔shared transfer costs arise;
//! * CPU-side costs (`map`, `hash`, heap operations, memory moves) are
//!   *declared* by the algorithm via [`Env::cpu`]/[`Env::move_bytes`] so
//!   the simulated environment can price them with the measured machine
//!   parameters. The real environment ignores these declarations — there
//!   the costs are incurred physically.

use crate::error::Result;
use crate::trace::{null_sink, TraceEvent, TraceSink};
use crate::{CpuOp, DiskId, EnvStats, MoveKind, ProcId, SPtr};
use std::sync::Arc;

/// Byte-addressed access to one mapped file (a relation partition or a
/// temporary area).
pub trait FileOps: Send + Sync {
    /// Allocated size in bytes.
    fn len(&self) -> u64;

    /// True if the file has zero allocated bytes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read `buf.len()` bytes starting at `offset`, charging the
    /// requesting process for any page faults.
    fn read_at(&self, proc: ProcId, offset: u64, buf: &mut [u8]) -> Result<()>;

    /// Write `buf` starting at `offset`, dirtying the touched pages;
    /// write-back happens on page replacement, as in a memory-mapped
    /// store.
    fn write_at(&self, proc: ProcId, offset: u64, buf: &[u8]) -> Result<()>;

    /// Force every byte previously written through this handle to
    /// durable storage before returning (`msync` semantics).
    ///
    /// This is the primitive behind the journal's *flush-before-commit*
    /// ordering contract: a writer that performs
    ///
    /// 1. `write_at(data)` → `sync()` → 2. `write_at(commit)` → `sync()`
    ///
    /// is guaranteed that no post-crash state exists in which the commit
    /// record is durable but the data it covers is not. Within a single
    /// step writes may still be torn (persisted prefix-only) or
    /// corrupted — that is what the journal's per-record checksums
    /// detect.
    ///
    /// Environments with immediate durability (e.g. the simulator, whose
    /// file bodies are updated synchronously at `write_at` time) may
    /// implement this as a no-op; the default does exactly that.
    fn sync(&self, proc: ProcId) -> Result<()> {
        let _ = proc;
        Ok(())
    }
}

/// Catalog describing where the inner relation `S` lives, registered
/// once before a join so the environment can stand up its `Sproc`
/// service.
#[derive(Clone, Debug)]
pub struct SCatalog {
    /// File name of each partition `S_j`, indexed by partition.
    pub part_files: Vec<String>,
    /// Logical bytes spanned by each partition (uniform, per §4's
    /// equal-sized partitions); `MAP(sptr) = sptr / part_bytes`.
    pub part_bytes: u64,
    /// Size in bytes of one S-object (`s` in the paper).
    pub s_obj_size: u32,
}

impl SCatalog {
    /// Number of S partitions.
    pub fn num_parts(&self) -> u32 {
        self.part_files.len() as u32
    }
}

/// A memory-mapped execution environment for parallel pointer-based
/// joins.
///
/// Implementations must be shareable across the `2D` worker threads of a
/// join (`D` Rprocs + `D` Sprocs).
pub trait Env: Send + Sync {
    /// Handle to a mapped file.
    type File: FileOps + Clone + Send + Sync;

    /// `B`: the virtual-memory page size in bytes.
    fn page_size(&self) -> u64;

    /// `D`: the number of parallel disks.
    fn num_disks(&self) -> u32;

    /// Create (and map) a new file of `bytes` bytes on `disk`, charging
    /// `newMap`. Files are laid out on the disk in creation order,
    /// matching the layout diagrams in §5.3/§6.3.
    fn create_file(&self, proc: ProcId, name: &str, disk: DiskId, bytes: u64)
        -> Result<Self::File>;

    /// Map an existing file, charging `openMap`.
    fn open_file(&self, proc: ProcId, name: &str) -> Result<Self::File>;

    /// Destroy a mapping and its data, charging `deleteMap`.
    fn delete_file(&self, proc: ProcId, name: &str) -> Result<()>;

    /// Names of every live file, in unspecified order, without
    /// measurement charges. Recovery code diffs this table around a
    /// failed join to find (and delete) orphaned temporary areas, and
    /// tests use it as a leak check.
    fn list_files(&self) -> Vec<String>;

    /// Declare `count` occurrences of CPU operation `op` by `proc`.
    fn cpu(&self, proc: ProcId, op: CpuOp, count: u64);

    /// Declare a memory move of `bytes` bytes of kind `kind` by `proc`.
    fn move_bytes(&self, proc: ProcId, kind: MoveKind, bytes: u64);

    /// Declare `count` context switches experienced by `proc`.
    fn context_switches(&self, proc: ProcId, count: u64);

    /// Register the inner relation and start the `Sproc` service.
    fn register_s(&self, catalog: SCatalog) -> Result<()>;

    /// One shared-buffer exchange with `Sproc_{spart}` (§5.1's buffer of
    /// size `G`): request the S-objects named by `ptrs` (all of which
    /// must lie in partition `spart`) and append them, in request order,
    /// to `out`.
    ///
    /// `req_bytes_each` is the number of R-side bytes accompanying each
    /// pointer in the shared buffer (the R-object plus the copied-out
    /// `sptr`), so the environment can charge the private→shared
    /// transfers of §5.3: per joined object, `(r + sptr + s)` bytes move
    /// through shared memory and the batch costs two context switches.
    fn s_fetch_batch(
        &self,
        proc: ProcId,
        spart: u32,
        ptrs: &[SPtr],
        req_bytes_each: u64,
        out: &mut Vec<u8>,
    ) -> Result<()>;

    /// Stop the `Sproc` service (join drivers call this once the join
    /// completes). Default: nothing to stop.
    fn shutdown_s(&self) {}

    /// Bulk-load file contents outside any measurement: no paging, no
    /// cost. Models relations that already exist on disk before a join
    /// begins — loading them is the workload generator's job, not the
    /// join's.
    fn preload(&self, name: &str, offset: u64, data: &[u8]) -> Result<()>;

    /// Zero every per-process counter and clock. Drivers call this after
    /// workload setup so a join is measured from a clean origin (caches
    /// start cold either way: `preload` bypasses them).
    fn reset_stats(&self);

    /// Current clock of `proc` in seconds (virtual time in a simulator,
    /// wall time in a real environment).
    fn now(&self, proc: ProcId) -> f64;

    /// Snapshot all per-process counters.
    fn stats(&self) -> EnvStats;

    /// The structured trace sink this environment emits to. Defaults to
    /// the shared [`NullSink`](crate::NullSink) (tracing off); concrete
    /// environments override this with a settable sink.
    fn trace_sink(&self) -> Arc<dyn TraceSink> {
        null_sink()
    }

    /// Emit a structured trace event stamped with `proc`'s current
    /// clock. Wrappers (e.g. `FaultyEnv`) inherit the inner sink via
    /// [`Env::trace_sink`], so events flow to one place.
    fn trace(&self, proc: ProcId, event: TraceEvent) {
        let sink = self.trace_sink();
        if sink.enabled() {
            sink.emit(self.now(proc), event);
        }
    }
}
