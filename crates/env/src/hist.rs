//! Fixed-bucket log-scale latency histograms.
//!
//! `loadgen`'s original p50/p95 summary kept every latency in a sorted
//! vector — fine for a batch, wrong for a long-running service. This
//! histogram is the standard fixed-memory alternative: a constant array
//! of buckets whose bounds grow geometrically, so relative quantile
//! error is bounded by the bucket width ratio (one factor of
//! `10^(1/8) ≈ 1.33` here) regardless of how many samples are recorded.
//! No external dependencies; merging is element-wise addition, which
//! makes per-pass and per-job histograms fold into service totals the
//! same way `ProcStats` counters do.

use std::fmt::Write as _;

/// Buckets per decade. 8 gives a worst-case quantile ratio error of
/// `10^(1/8) ≈ 1.33×`, plenty for latency reporting.
const PER_DECADE: usize = 8;
/// Lowest finite bucket bound: 1 ns.
const LO: f64 = 1e-9;
/// Decades covered: 1 ns .. 1000 s.
const DECADES: usize = 12;
/// Inner (finite-bound) buckets.
const INNER: usize = PER_DECADE * DECADES;
/// Total buckets: underflow + inner + overflow.
pub const BUCKETS: usize = INNER + 2;

/// A fixed-size log-scale histogram of durations in seconds.
///
/// Recording is O(1); merging is element-wise and therefore commutative
/// and associative on the counts; quantiles are exact to within one
/// bucket's width (property-tested in `tests/` via the proptest shim).
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: 0.0,
        }
    }

    /// Bucket index for a duration. Negative/NaN clamp to the underflow
    /// bucket; values ≥ 1000 s land in the overflow bucket.
    pub fn bucket_index(v: f64) -> usize {
        if v.is_nan() || v < LO {
            // NaN, negative, or sub-nanosecond.
            return 0;
        }
        let raw = ((v / LO).log10() * PER_DECADE as f64).floor() as isize + 1;
        let mut idx = raw.clamp(1, (BUCKETS - 1) as isize) as usize;
        // log10 can round either way at exact bucket boundaries; settle
        // against the same powf-derived bounds `bucket_bounds` reports,
        // so `lower ≤ v < upper` holds exactly.
        if idx < BUCKETS - 1 && v >= Self::bucket_bounds(idx).1 {
            idx += 1;
        } else if idx > 1 && v < Self::bucket_bounds(idx).0 {
            idx -= 1;
        }
        idx
    }

    /// `[lower, upper)` bounds of bucket `idx`. The underflow bucket is
    /// `[0, 1 ns)`; the overflow bucket's upper bound is `+∞`.
    pub fn bucket_bounds(idx: usize) -> (f64, f64) {
        if idx == 0 {
            return (0.0, LO);
        }
        if idx >= BUCKETS - 1 {
            return (
                LO * 10f64.powf(INNER as f64 / PER_DECADE as f64),
                f64::INFINITY,
            );
        }
        let lower = LO * 10f64.powf((idx - 1) as f64 / PER_DECADE as f64);
        let upper = LO * 10f64.powf(idx as f64 / PER_DECADE as f64);
        (lower, upper)
    }

    /// Record one duration in seconds.
    pub fn record(&mut self, seconds: f64) {
        let v = if seconds.is_nan() {
            0.0
        } else {
            seconds.max(0.0)
        };
        self.counts[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of recorded durations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean recorded duration (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded duration (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded duration (0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Fold `other` into `self`: element-wise count addition, so the
    /// operation is commutative and associative on the bucket counts
    /// and preserves the total recorded count exactly.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            if other.min < self.min {
                self.min = other.min;
            }
            if other.max > self.max {
                self.max = other.max;
            }
        }
    }

    /// Nearest-rank quantile estimate for `q ∈ [0, 1]`.
    ///
    /// Returns the upper bound of the bucket holding the rank-⌈q·n⌉
    /// sample, clamped to the recorded `[min, max]` — so the estimate
    /// never undershoots the true nearest-rank value and overshoots it
    /// by at most one bucket width. Monotone in `q` by construction.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, upper) = Self::bucket_bounds(idx);
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }

    /// JSON object snapshot: count, mean, min/max, and the standard
    /// quantile ladder. Embeddable in larger hand-rolled JSON documents.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(160);
        let _ = write!(
            s,
            "{{\"count\":{},\"mean\":{:.9},\"min\":{:.9},\"p50\":{:.9},\"p90\":{:.9},\"p99\":{:.9},\"p999\":{:.9},\"max\":{:.9}}}",
            self.count,
            self.mean(),
            self.min(),
            self.p50(),
            self.p90(),
            self.p99(),
            self.p999(),
            self.max()
        );
        s
    }

    /// The raw bucket counts (underflow, inner buckets, overflow).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.is_empty());
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn bucket_bounds_contain_their_values() {
        for &v in &[1e-9, 3.7e-8, 1e-6, 0.004, 0.5, 1.0, 17.0, 999.0] {
            let idx = Histogram::bucket_index(v);
            let (lo, hi) = Histogram::bucket_bounds(idx);
            assert!(lo <= v && v < hi, "v={v} idx={idx} lo={lo} hi={hi}");
        }
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(-1.0), 0);
        assert_eq!(Histogram::bucket_index(f64::NAN), 0);
        assert_eq!(Histogram::bucket_index(1e9), BUCKETS - 1);
    }

    #[test]
    fn quantiles_bracket_true_values() {
        let mut h = Histogram::new();
        let vals: Vec<f64> = (1..=1000).map(|i| i as f64 * 1e-3).collect();
        for &v in &vals {
            h.record(v);
        }
        // True nearest-rank p50 is 0.5 s; estimate within one bucket.
        let (lo, hi) = Histogram::bucket_bounds(Histogram::bucket_index(0.5));
        let est = h.p50();
        assert!(est >= 0.5 && est <= hi, "est={est} lo={lo} hi={hi}");
        assert!(h.p50() <= h.p90() && h.p90() <= h.p99() && h.p99() <= h.p999());
        assert!(h.p999() <= h.max());
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 0.5005).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_counts_and_tracks_extrema() {
        let mut a = Histogram::new();
        a.record(0.001);
        a.record(0.010);
        let mut b = Histogram::new();
        b.record(1.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 0.001);
        assert_eq!(a.max(), 1.0);
        a.merge(&Histogram::new());
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 0.001);
    }

    #[test]
    fn json_snapshot_shape() {
        let mut h = Histogram::new();
        h.record(0.25);
        let j = h.to_json();
        assert!(j.starts_with("{\"count\":1,"));
        for key in ["mean", "min", "p50", "p90", "p99", "p999", "max"] {
            assert!(j.contains(&format!("\"{key}\":")), "missing {key} in {j}");
        }
        assert_eq!(j.matches('{').count(), 1);
    }
}
