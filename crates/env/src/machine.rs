//! Measured machine parameters (paper §3).
//!
//! The paper's model is *quantitative*: every formula is evaluated with
//! parameters measured on the machine performing the join (its Fig. 1
//! shows the two measured function families). This module holds those
//! parameters in one struct shared by the analytical model
//! (`mmjoin-model`) and the execution-driven simulator
//! (`mmjoin-vmsim`), so both price identical events identically.

use crate::cost::{CpuOp, MoveKind};
use crate::error::{EnvError, Result};

/// A measured disk-transfer-time curve: average seconds to transfer one
/// block as a function of the *band size* (paper §3.1) — the span of
/// blocks over which random accesses occur. Band size 1 means purely
/// sequential access.
///
/// Evaluated by linear interpolation between measured points and clamped
/// at both ends, exactly how the paper says the two Fig. 1(a) curves are
/// used ("the two curves are used to interpolate disk transfer times").
///
/// ```
/// use mmjoin_env::machine::DttCurve;
/// let dttr = DttCurve::from_points(vec![(1.0, 6e-3), (12_800.0, 20e-3)]).unwrap();
/// assert_eq!(dttr.eval(1.0), 6e-3);           // sequential
/// assert!(dttr.eval(6_400.0) > 12e-3);        // interpolated
/// assert_eq!(dttr.eval(1e9), 20e-3);          // clamped
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct DttCurve {
    /// `(band_size_in_blocks, seconds_per_block)`, strictly increasing in
    /// band size.
    points: Vec<(f64, f64)>,
}

impl DttCurve {
    /// Build a curve from measured `(band_blocks, seconds_per_block)`
    /// points. Points must be non-empty, strictly increasing in band
    /// size, with positive times.
    pub fn from_points(points: Vec<(f64, f64)>) -> Result<Self> {
        if points.is_empty() {
            return Err(EnvError::InvalidConfig("dtt curve needs points".into()));
        }
        for w in points.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(EnvError::InvalidConfig(
                    "dtt curve band sizes must strictly increase".into(),
                ));
            }
        }
        if points.iter().any(|&(b, t)| b < 1.0 || t <= 0.0) {
            return Err(EnvError::InvalidConfig(
                "dtt curve needs band >= 1 and positive times".into(),
            ));
        }
        Ok(DttCurve { points })
    }

    /// A constant-time curve (useful in tests and for Shekita–Carey-style
    /// "I/O costs a constant" ablations).
    pub fn constant(seconds_per_block: f64) -> Self {
        DttCurve {
            points: vec![(1.0, seconds_per_block)],
        }
    }

    /// Seconds to transfer one block when random accesses span
    /// `band_blocks` blocks.
    pub fn eval(&self, band_blocks: f64) -> f64 {
        let pts = &self.points;
        if band_blocks <= pts[0].0 {
            return pts[0].1;
        }
        if band_blocks >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        // Linear interpolation within the bracketing segment.
        let i = pts.partition_point(|&(b, _)| b < band_blocks);
        let (b0, t0) = pts[i - 1];
        let (b1, t1) = pts[i];
        t0 + (t1 - t0) * (band_blocks - b0) / (b1 - b0)
    }

    /// The measured points backing the curve.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

/// Linear cost models for the three memory-mapping setup operations
/// (paper §3.2, Fig. 1b): all three "increase linearly with the size of
/// the file mapped".
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MapCostModel {
    /// Fixed + per-block cost of creating a mapping for a *new* disk
    /// area (`newMap`): most expensive, acquires disk space.
    pub new_base: f64,
    /// Per-block slope of `newMap` (seconds/block).
    pub new_per_block: f64,
    /// Fixed cost of mapping an *existing* area (`openMap`).
    pub open_base: f64,
    /// Per-block slope of `openMap`.
    pub open_per_block: f64,
    /// Fixed cost of destroying a mapping and its data (`deleteMap`):
    /// cheapest, only frees page table and disk space.
    pub delete_base: f64,
    /// Per-block slope of `deleteMap`.
    pub delete_per_block: f64,
}

impl MapCostModel {
    /// `newMap(blocks)` in seconds.
    pub fn new_map(&self, blocks: u64) -> f64 {
        self.new_base + self.new_per_block * blocks as f64
    }

    /// `openMap(blocks)` in seconds.
    pub fn open_map(&self, blocks: u64) -> f64 {
        self.open_base + self.open_per_block * blocks as f64
    }

    /// `deleteMap(blocks)` in seconds.
    pub fn delete_map(&self, blocks: u64) -> f64 {
        self.delete_base + self.delete_per_block * blocks as f64
    }
}

/// The full set of measured machine parameters from paper §3.
///
/// `PartialEq` is field-exact (bitwise on the floats): two parameter
/// sets compare equal iff every model evaluation over them is
/// identical, which is what the profile round-trip tests assert.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineParams {
    /// `B`: virtual-memory page (block) size in bytes.
    pub page_size: u64,
    /// `CS`: context-switch time between processes, seconds.
    pub cs: f64,
    /// `MT{pp,ps,sp,ss}`: per-byte combined read/write transfer times,
    /// indexed by [`MoveKind::index`].
    pub mt: [f64; 4],
    /// Per-operation CPU times, indexed by [`CpuOp::index`]: `map`,
    /// `hash`, `compare`, `swap`, `transfer`, fault overhead.
    pub cpu: [f64; 6],
    /// `dttr`: measured random-read transfer-time curve.
    pub dttr: DttCurve,
    /// `dttw`: measured deferred-write transfer-time curve (cheaper than
    /// reads thanks to write-behind and shortest-seek scheduling).
    pub dttw: DttCurve,
    /// `newMap`/`openMap`/`deleteMap` linear cost models.
    pub map_cost: MapCostModel,
}

impl MachineParams {
    /// Parameters shaped like the paper's test bed (Sequent
    /// Symmetry/Dynix, Fujitsu M2344K/M2372K drives, 4 KB pages): the
    /// `dtt` defaults digitize Fig. 1(a), the map costs digitize
    /// Fig. 1(b), and the CPU constants are sized for a mid-1990s
    /// shared-memory multiprocessor. Experiments normally *replace* the
    /// `dtt` curves with ones calibrated from the simulated disk (the
    /// paper's own procedure); these defaults make the model usable
    /// stand-alone.
    pub fn waterloo96() -> Self {
        let dttr = DttCurve::from_points(vec![
            (1.0, 6.0e-3),
            (200.0, 9.0e-3),
            (800.0, 11.0e-3),
            (3200.0, 14.5e-3),
            (6400.0, 17.0e-3),
            (9600.0, 19.0e-3),
            (12800.0, 20.5e-3),
        ])
        .expect("static points are valid");
        let dttw = DttCurve::from_points(vec![
            (1.0, 4.0e-3),
            (200.0, 6.0e-3),
            (800.0, 7.5e-3),
            (3200.0, 9.5e-3),
            (6400.0, 11.0e-3),
            (9600.0, 12.5e-3),
            (12800.0, 13.5e-3),
        ])
        .expect("static points are valid");
        let mut mt = [0.0; 4];
        mt[MoveKind::PP.index()] = 0.10e-6;
        mt[MoveKind::PS.index()] = 0.13e-6;
        mt[MoveKind::SP.index()] = 0.13e-6;
        mt[MoveKind::SS.index()] = 0.16e-6;
        let mut cpu = [0.0; 6];
        cpu[CpuOp::Map.index()] = 2.0e-6;
        cpu[CpuOp::Hash.index()] = 4.0e-6;
        cpu[CpuOp::Compare.index()] = 2.0e-6;
        cpu[CpuOp::Swap.index()] = 3.0e-6;
        cpu[CpuOp::HeapTransfer.index()] = 2.5e-6;
        cpu[CpuOp::FaultOverhead.index()] = 1.0e-3;
        MachineParams {
            page_size: 4096,
            cs: 60.0e-6,
            mt,
            cpu,
            dttr,
            dttw,
            map_cost: MapCostModel {
                new_base: 0.05,
                new_per_block: 9.0e-4,
                open_base: 0.03,
                open_per_block: 6.0e-4,
                delete_base: 0.02,
                delete_per_block: 3.0e-4,
            },
        }
    }

    /// Per-byte cost of a memory move of the given kind.
    pub fn mt(&self, kind: MoveKind) -> f64 {
        self.mt[kind.index()]
    }

    /// Per-operation cost of a CPU op.
    pub fn op(&self, op: CpuOp) -> f64 {
        self.cpu[op.index()]
    }

    /// Number of whole pages needed to hold `bytes` bytes.
    pub fn pages(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.page_size)
    }
}

impl Default for MachineParams {
    fn default() -> Self {
        Self::waterloo96()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtt_interpolates_and_clamps() {
        let c = DttCurve::from_points(vec![(1.0, 6.0), (11.0, 16.0)]).unwrap();
        assert_eq!(c.eval(0.5), 6.0);
        assert_eq!(c.eval(1.0), 6.0);
        assert!((c.eval(6.0) - 11.0).abs() < 1e-12);
        assert_eq!(c.eval(11.0), 16.0);
        assert_eq!(c.eval(1e9), 16.0);
    }

    #[test]
    fn dtt_rejects_bad_points() {
        assert!(DttCurve::from_points(vec![]).is_err());
        assert!(DttCurve::from_points(vec![(2.0, 1.0), (2.0, 2.0)]).is_err());
        assert!(DttCurve::from_points(vec![(1.0, -1.0)]).is_err());
        assert!(DttCurve::from_points(vec![(0.5, 1.0)]).is_err());
    }

    #[test]
    fn dtt_eval_exact_at_measured_points() {
        let pts = vec![(1.0, 6.0), (100.0, 9.0), (1000.0, 12.0)];
        let c = DttCurve::from_points(pts.clone()).unwrap();
        for (b, t) in pts {
            assert!((c.eval(b) - t).abs() < 1e-12);
        }
    }

    #[test]
    fn default_params_are_sane() {
        let p = MachineParams::default();
        assert_eq!(p.page_size, 4096);
        // Fig 1a: writes cheaper than reads at every band size.
        for &(b, _) in p.dttr.points() {
            assert!(p.dttw.eval(b) < p.dttr.eval(b), "band {b}");
        }
        // Fig 1b ordering: newMap > openMap > deleteMap for large maps.
        let blocks = 12800;
        assert!(p.map_cost.new_map(blocks) > p.map_cost.open_map(blocks));
        assert!(p.map_cost.open_map(blocks) > p.map_cost.delete_map(blocks));
        // dtt curves increase with band size.
        assert!(p.dttr.eval(12800.0) > p.dttr.eval(1.0));
    }

    #[test]
    fn pages_rounds_up() {
        let p = MachineParams::default();
        assert_eq!(p.pages(0), 0);
        assert_eq!(p.pages(1), 1);
        assert_eq!(p.pages(4096), 1);
        assert_eq!(p.pages(4097), 2);
    }
}
