//! The cost taxonomy of the analytical model.
//!
//! Every CPU-side quantity the paper's model charges for has a variant
//! here, so that the execution-driven simulator and the closed-form model
//! price the *same events* with the *same measured parameters* — the
//! precondition for a meaningful "model vs. experiment" comparison
//! (paper §8).

/// A priced CPU operation (paper §3, §5.3–§7.3).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CpuOp {
    /// `map`: computing the containing `S` partition from a virtual
    /// pointer (`MAP(sptr)`).
    Map,
    /// `hash`: hashing a join attribute into a Grace bucket or an
    /// in-memory hash-table chain.
    Hash,
    /// `compare`: comparing two elements of a heap of pointers to
    /// R-objects.
    Compare,
    /// `swap`: swapping two heap elements.
    Swap,
    /// `transfer`: moving an element to or from a heap.
    HeapTransfer,
    /// Per-page-fault CPU overhead of the memory-mapping machinery
    /// (signal handling, page-table update). The paper attributes part
    /// of its residual model error to exactly this cost (§8); pricing it
    /// explicitly lets the model include it.
    FaultOverhead,
}

impl CpuOp {
    /// All variants, for table-driven accounting.
    pub const ALL: [CpuOp; 6] = [
        CpuOp::Map,
        CpuOp::Hash,
        CpuOp::Compare,
        CpuOp::Swap,
        CpuOp::HeapTransfer,
        CpuOp::FaultOverhead,
    ];

    /// Dense index for per-op counters.
    pub fn index(self) -> usize {
        match self {
            CpuOp::Map => 0,
            CpuOp::Hash => 1,
            CpuOp::Compare => 2,
            CpuOp::Swap => 3,
            CpuOp::HeapTransfer => 4,
            CpuOp::FaultOverhead => 5,
        }
    }
}

/// A memory-to-memory move, priced per byte (paper §3: `MTpp`, `MTps`,
/// `MTsp`, `MTss` — combined read+write assignment-statement transfer
/// times between the private and shared portions of a segment).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum MoveKind {
    /// Private → private (within one process's segment).
    PP,
    /// Private → shared (staging data for another process).
    PS,
    /// Shared → private.
    SP,
    /// Shared → shared.
    SS,
}

impl MoveKind {
    /// All variants, for table-driven accounting.
    pub const ALL: [MoveKind; 4] = [MoveKind::PP, MoveKind::PS, MoveKind::SP, MoveKind::SS];

    /// Dense index for per-kind counters.
    pub fn index(self) -> usize {
        match self {
            MoveKind::PP => 0,
            MoveKind::PS => 1,
            MoveKind::SP => 2,
            MoveKind::SS => 3,
        }
    }
}

/// Accumulated cost declarations for one modern-mode kernel invocation.
///
/// The faithful algorithms declare costs tuple-by-tuple
/// (`env.cpu(proc, op, 1)` inside the inner loop), which is exactly the
/// overhead the `--modern` kernels exist to avoid. A kernel instead
/// tallies its operations into a `KernelOps` while it runs over a block
/// or batch, then charges the environment **once** via
/// [`KernelOps::charge`]. The vocabulary is unchanged — only the six
/// [`CpuOp`]s and four [`MoveKind`]s the machine profile prices — so the
/// analytical model needs no new measured parameter for modern mode.
#[derive(Default, Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelOps {
    /// Per-[`CpuOp`] occurrence counts, indexed by [`CpuOp::index`].
    pub cpu: [u64; 6],
    /// Per-[`MoveKind`] byte counts, indexed by [`MoveKind::index`].
    pub moved: [u64; 4],
}

impl KernelOps {
    /// An empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `count` occurrences of `op`.
    pub fn op(&mut self, op: CpuOp, count: u64) {
        self.cpu[op.index()] += count;
    }

    /// Record a memory move of `bytes` bytes of kind `kind`.
    pub fn moved(&mut self, kind: MoveKind, bytes: u64) {
        self.moved[kind.index()] += bytes;
    }

    /// Fold another tally into this one.
    pub fn absorb(&mut self, other: &KernelOps) {
        for (a, b) in self.cpu.iter_mut().zip(other.cpu.iter()) {
            *a += b;
        }
        for (a, b) in self.moved.iter_mut().zip(other.moved.iter()) {
            *a += b;
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.cpu.iter().all(|&c| c == 0) && self.moved.iter().all(|&b| b == 0)
    }

    /// Declare the whole tally to `env` on behalf of `proc` and reset it,
    /// so a reused per-worker tally never double-charges.
    pub fn charge<E: crate::traits::Env + ?Sized>(&mut self, env: &E, proc: crate::ids::ProcId) {
        for op in CpuOp::ALL {
            let n = self.cpu[op.index()];
            if n > 0 {
                env.cpu(proc, op, n);
            }
        }
        for kind in MoveKind::ALL {
            let b = self.moved[kind.index()];
            if b > 0 {
                env.move_bytes(proc, kind, b);
            }
        }
        *self = KernelOps::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn cpu_op_indices_are_dense_and_unique() {
        let idx: HashSet<usize> = CpuOp::ALL.iter().map(|o| o.index()).collect();
        assert_eq!(idx.len(), CpuOp::ALL.len());
        assert_eq!(*idx.iter().max().unwrap(), CpuOp::ALL.len() - 1);
    }

    #[test]
    fn kernel_ops_accumulate_and_absorb() {
        let mut a = KernelOps::new();
        assert!(a.is_empty());
        a.op(CpuOp::Hash, 10);
        a.op(CpuOp::Hash, 5);
        a.moved(MoveKind::PP, 64);
        let mut b = KernelOps::new();
        b.op(CpuOp::Compare, 3);
        b.moved(MoveKind::PP, 36);
        a.absorb(&b);
        assert_eq!(a.cpu[CpuOp::Hash.index()], 15);
        assert_eq!(a.cpu[CpuOp::Compare.index()], 3);
        assert_eq!(a.moved[MoveKind::PP.index()], 100);
        assert!(!a.is_empty());
    }

    #[test]
    fn move_kind_indices_are_dense_and_unique() {
        let idx: HashSet<usize> = MoveKind::ALL.iter().map(|m| m.index()).collect();
        assert_eq!(idx.len(), MoveKind::ALL.len());
        assert_eq!(*idx.iter().max().unwrap(), MoveKind::ALL.len() - 1);
    }
}
