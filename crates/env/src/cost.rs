//! The cost taxonomy of the analytical model.
//!
//! Every CPU-side quantity the paper's model charges for has a variant
//! here, so that the execution-driven simulator and the closed-form model
//! price the *same events* with the *same measured parameters* — the
//! precondition for a meaningful "model vs. experiment" comparison
//! (paper §8).

/// A priced CPU operation (paper §3, §5.3–§7.3).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CpuOp {
    /// `map`: computing the containing `S` partition from a virtual
    /// pointer (`MAP(sptr)`).
    Map,
    /// `hash`: hashing a join attribute into a Grace bucket or an
    /// in-memory hash-table chain.
    Hash,
    /// `compare`: comparing two elements of a heap of pointers to
    /// R-objects.
    Compare,
    /// `swap`: swapping two heap elements.
    Swap,
    /// `transfer`: moving an element to or from a heap.
    HeapTransfer,
    /// Per-page-fault CPU overhead of the memory-mapping machinery
    /// (signal handling, page-table update). The paper attributes part
    /// of its residual model error to exactly this cost (§8); pricing it
    /// explicitly lets the model include it.
    FaultOverhead,
}

impl CpuOp {
    /// All variants, for table-driven accounting.
    pub const ALL: [CpuOp; 6] = [
        CpuOp::Map,
        CpuOp::Hash,
        CpuOp::Compare,
        CpuOp::Swap,
        CpuOp::HeapTransfer,
        CpuOp::FaultOverhead,
    ];

    /// Dense index for per-op counters.
    pub fn index(self) -> usize {
        match self {
            CpuOp::Map => 0,
            CpuOp::Hash => 1,
            CpuOp::Compare => 2,
            CpuOp::Swap => 3,
            CpuOp::HeapTransfer => 4,
            CpuOp::FaultOverhead => 5,
        }
    }
}

/// A memory-to-memory move, priced per byte (paper §3: `MTpp`, `MTps`,
/// `MTsp`, `MTss` — combined read+write assignment-statement transfer
/// times between the private and shared portions of a segment).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum MoveKind {
    /// Private → private (within one process's segment).
    PP,
    /// Private → shared (staging data for another process).
    PS,
    /// Shared → private.
    SP,
    /// Shared → shared.
    SS,
}

impl MoveKind {
    /// All variants, for table-driven accounting.
    pub const ALL: [MoveKind; 4] = [MoveKind::PP, MoveKind::PS, MoveKind::SP, MoveKind::SS];

    /// Dense index for per-kind counters.
    pub fn index(self) -> usize {
        match self {
            MoveKind::PP => 0,
            MoveKind::PS => 1,
            MoveKind::SP => 2,
            MoveKind::SS => 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn cpu_op_indices_are_dense_and_unique() {
        let idx: HashSet<usize> = CpuOp::ALL.iter().map(|o| o.index()).collect();
        assert_eq!(idx.len(), CpuOp::ALL.len());
        assert_eq!(*idx.iter().max().unwrap(), CpuOp::ALL.len() - 1);
    }

    #[test]
    fn move_kind_indices_are_dense_and_unique() {
        let idx: HashSet<usize> = MoveKind::ALL.iter().map(|m| m.index()).collect();
        assert_eq!(idx.len(), MoveKind::ALL.len());
        assert_eq!(*idx.iter().max().unwrap(), MoveKind::ALL.len() - 1);
    }
}
