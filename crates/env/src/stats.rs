//! Per-process accounting shared by both environments.

use crate::cost::{CpuOp, MoveKind};

/// Counters and accumulated virtual/wall time for one process.
///
/// The simulator fills every field; the real memory-mapped environment
/// fills the event counters and the clock (wall time) but cannot observe
/// page faults directly, so `fault_*` stay zero there.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProcStats {
    /// Accumulated time in seconds: virtual time in the simulator, wall
    /// time in the real environment.
    pub clock: f64,
    /// Blocks read from disk due to page faults.
    pub fault_read_blocks: u64,
    /// Dirty blocks written back to disk.
    pub fault_write_blocks: u64,
    /// Page accesses satisfied without a fault.
    pub page_hits: u64,
    /// Seconds spent in disk transfers.
    pub io_time: f64,
    /// CPU operation counts, indexed by [`CpuOp::index`].
    pub cpu_ops: [u64; 6],
    /// Seconds charged for CPU operations.
    pub cpu_time: f64,
    /// Bytes moved per [`MoveKind::index`].
    pub move_bytes: [u64; 4],
    /// Seconds charged for memory moves.
    pub move_time: f64,
    /// Context switches charged.
    pub ctx_switches: u64,
    /// Seconds charged for context switches.
    pub ctx_time: f64,
    /// Mapping setup operations (`newMap`/`openMap`/`deleteMap`).
    pub map_ops: u64,
    /// Seconds charged for mapping setup.
    pub map_time: f64,
    /// Batches exchanged with an `Sproc` through the shared buffer.
    pub s_batches: u64,
    /// Individual S-objects fetched.
    pub s_objects: u64,
}

impl ProcStats {
    /// Record `count` occurrences of a CPU op.
    pub fn add_cpu(&mut self, op: CpuOp, count: u64, seconds_each: f64) {
        self.cpu_ops[op.index()] += count;
        self.cpu_time += seconds_each * count as f64;
        self.clock += seconds_each * count as f64;
    }

    /// Record a memory move.
    pub fn add_move(&mut self, kind: MoveKind, bytes: u64, seconds_per_byte: f64) {
        self.move_bytes[kind.index()] += bytes;
        let t = seconds_per_byte * bytes as f64;
        self.move_time += t;
        self.clock += t;
    }

    /// Record context switches.
    pub fn add_ctx(&mut self, count: u64, seconds_each: f64) {
        self.ctx_switches += count;
        let t = seconds_each * count as f64;
        self.ctx_time += t;
        self.clock += t;
    }

    /// Total disk blocks transferred.
    pub fn blocks_transferred(&self) -> u64 {
        self.fault_read_blocks + self.fault_write_blocks
    }

    /// Fold another process's counters into this one. Clocks are
    /// summed — the result is aggregate work, not elapsed time (use
    /// [`EnvStats::elapsed`] for makespan-style questions).
    pub fn absorb(&mut self, other: &ProcStats) {
        self.clock += other.clock;
        self.fault_read_blocks += other.fault_read_blocks;
        self.fault_write_blocks += other.fault_write_blocks;
        self.page_hits += other.page_hits;
        self.io_time += other.io_time;
        for (a, b) in self.cpu_ops.iter_mut().zip(other.cpu_ops) {
            *a += b;
        }
        self.cpu_time += other.cpu_time;
        for (a, b) in self.move_bytes.iter_mut().zip(other.move_bytes) {
            *a += b;
        }
        self.move_time += other.move_time;
        self.ctx_switches += other.ctx_switches;
        self.ctx_time += other.ctx_time;
        self.map_ops += other.map_ops;
        self.map_time += other.map_time;
        self.s_batches += other.s_batches;
        self.s_objects += other.s_objects;
    }
}

/// Snapshot of every process's counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EnvStats {
    /// One entry per process slot (Rprocs then Sprocs).
    pub procs: Vec<ProcStats>,
}

impl EnvStats {
    /// Elapsed time of the whole join: the maximum over the per-process
    /// clocks (paper §4: with negligible contention the elapsed time of
    /// `Rproc_i` is the elapsed time of the join).
    pub fn elapsed(&self) -> f64 {
        self.procs.iter().map(|p| p.clock).fold(0.0, f64::max)
    }

    /// Elapsed time over the first `d` slots only (the Rprocs).
    pub fn elapsed_rprocs(&self, d: u32) -> f64 {
        self.procs
            .iter()
            .take(d as usize)
            .map(|p| p.clock)
            .fold(0.0, f64::max)
    }

    /// Sum of disk blocks transferred by all processes.
    pub fn total_blocks(&self) -> u64 {
        self.procs.iter().map(|p| p.blocks_transferred()).sum()
    }

    /// Sum of read faults by all processes.
    pub fn total_read_faults(&self) -> u64 {
        self.procs.iter().map(|p| p.fault_read_blocks).sum()
    }

    /// Sum of write-backs by all processes.
    pub fn total_write_backs(&self) -> u64 {
        self.procs.iter().map(|p| p.fault_write_blocks).sum()
    }

    /// Sum of seconds spent in disk transfers by all processes.
    pub fn total_io_time(&self) -> f64 {
        self.procs.iter().map(|p| p.io_time).sum()
    }

    /// Collapse every process slot into one aggregate counter set —
    /// the shape a service layer accumulates across many jobs.
    pub fn folded(&self) -> ProcStats {
        let mut total = ProcStats::default();
        for p in &self.procs {
            total.absorb(p);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_accumulates_clock() {
        let mut p = ProcStats::default();
        p.add_cpu(CpuOp::Compare, 10, 2e-6);
        p.add_move(MoveKind::PP, 1000, 1e-7);
        p.add_ctx(4, 5e-5);
        assert_eq!(p.cpu_ops[CpuOp::Compare.index()], 10);
        assert_eq!(p.move_bytes[MoveKind::PP.index()], 1000);
        assert_eq!(p.ctx_switches, 4);
        let expect = 10.0 * 2e-6 + 1000.0 * 1e-7 + 4.0 * 5e-5;
        assert!((p.clock - expect).abs() < 1e-12);
        assert!((p.cpu_time + p.move_time + p.ctx_time - expect).abs() < 1e-12);
    }

    #[test]
    fn elapsed_is_max_over_procs() {
        let mut s = EnvStats::default();
        s.procs.push(ProcStats {
            clock: 1.5,
            ..Default::default()
        });
        s.procs.push(ProcStats {
            clock: 3.0,
            ..Default::default()
        });
        s.procs.push(ProcStats {
            clock: 2.0,
            ..Default::default()
        });
        assert_eq!(s.elapsed(), 3.0);
        assert_eq!(s.elapsed_rprocs(1), 1.5);
    }

    #[test]
    fn folding_sums_every_counter() {
        let mut a = ProcStats::default();
        a.add_cpu(CpuOp::Compare, 3, 1e-6);
        a.fault_read_blocks = 10;
        a.io_time = 0.5;
        a.s_batches = 2;
        let mut b = ProcStats::default();
        b.add_move(MoveKind::PP, 100, 1e-8);
        b.fault_write_blocks = 4;
        b.io_time = 0.25;
        let s = EnvStats {
            procs: vec![a.clone(), b.clone()],
        };
        let folded = s.folded();
        assert_eq!(folded.fault_read_blocks, 10);
        assert_eq!(folded.fault_write_blocks, 4);
        assert_eq!(folded.cpu_ops[CpuOp::Compare.index()], 3);
        assert_eq!(folded.move_bytes[MoveKind::PP.index()], 100);
        assert_eq!(folded.s_batches, 2);
        assert!((folded.io_time - 0.75).abs() < 1e-12);
        assert!((s.total_io_time() - 0.75).abs() < 1e-12);
        assert!((folded.clock - (a.clock + b.clock)).abs() < 1e-12);
    }
}
