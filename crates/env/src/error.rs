//! Error type shared by every environment implementation.

use std::fmt;

/// Errors surfaced by [`crate::Env`] implementations.
#[derive(Debug)]
pub enum EnvError {
    /// A file name was opened or deleted but never created.
    NotFound(String),
    /// A file name was created twice without an intervening delete.
    AlreadyExists(String),
    /// A read or write fell outside a file's allocated extent.
    OutOfBounds {
        /// File the access targeted.
        file: String,
        /// Requested byte offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Allocated file size.
        size: u64,
    },
    /// The disk extent allocator ran out of modelled disk space.
    DiskFull(crate::DiskId),
    /// A request referenced an `S` partition outside the registered
    /// catalog, or the catalog was never registered.
    BadSRequest(String),
    /// Underlying OS error (real memory-mapped environment only).
    Io(std::io::Error),
    /// Configuration rejected up front.
    InvalidConfig(String),
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvError::NotFound(name) => write!(f, "file not found: {name}"),
            EnvError::AlreadyExists(name) => write!(f, "file already exists: {name}"),
            EnvError::OutOfBounds {
                file,
                offset,
                len,
                size,
            } => write!(
                f,
                "access out of bounds: {file} offset={offset} len={len} size={size}"
            ),
            EnvError::DiskFull(d) => write!(f, "modelled disk full: {d}"),
            EnvError::BadSRequest(msg) => write!(f, "bad S request: {msg}"),
            EnvError::Io(e) => write!(f, "I/O error: {e}"),
            EnvError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for EnvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EnvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for EnvError {
    fn from(e: std::io::Error) -> Self {
        EnvError::Io(e)
    }
}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, EnvError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EnvError::OutOfBounds {
            file: "R_0".into(),
            offset: 128,
            len: 64,
            size: 100,
        };
        let s = e.to_string();
        assert!(s.contains("R_0") && s.contains("128") && s.contains("100"));
        assert!(EnvError::NotFound("x".into()).to_string().contains('x'));
    }

    #[test]
    fn io_error_conversion_preserves_source() {
        use std::error::Error;
        let e: EnvError = std::io::Error::other("boom").into();
        assert!(e.source().is_some());
    }
}
