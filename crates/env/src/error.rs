//! Error type shared by every environment implementation.

use std::fmt;

/// Errors surfaced by [`crate::Env`] implementations.
#[derive(Debug)]
pub enum EnvError {
    /// A file name was opened or deleted but never created.
    NotFound(String),
    /// A file name was created twice without an intervening delete.
    AlreadyExists(String),
    /// A read or write fell outside a file's allocated extent.
    OutOfBounds {
        /// File the access targeted.
        file: String,
        /// Requested byte offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Allocated file size.
        size: u64,
    },
    /// The disk extent allocator ran out of modelled disk space.
    DiskFull(crate::DiskId),
    /// A request referenced an `S` partition outside the registered
    /// catalog, or the catalog was never registered.
    BadSRequest(String),
    /// Underlying OS error (real memory-mapped environment only).
    Io(std::io::Error),
    /// Configuration rejected up front.
    InvalidConfig(String),
    /// A fault injected by [`crate::faults::FaultyEnv`]. `transient`
    /// faults model conditions that clear on retry (an interrupted
    /// read, a momentary map-setup failure); non-transient ones model
    /// hard failures.
    Faulted {
        /// Operation the fault was injected into (`read`, `newMap`, …).
        op: String,
        /// Whether a retry can be expected to succeed.
        transient: bool,
    },
}

impl EnvError {
    /// True if retrying the failed operation (or the enclosing pass) can
    /// be expected to succeed: injected transient faults, and the I/O
    /// error kinds an operating system reports for conditions that clear
    /// on their own. Connection-level network errors (reset, aborted,
    /// refused, broken pipe, unexpected EOF, ...) are transient too: the
    /// cluster RPC layer maps socket failures into `EnvError::Io`, and a
    /// dropped connection is exactly the condition its reconnect/re-queue
    /// backoff is built to ride out. `AddrInUse` is *not* transient: a
    /// port held by another process needs intervention, not backoff.
    /// `DiskFull` is deliberately not transient either — it needs
    /// intervention (a smaller footprint or freed space), which is the
    /// service layer's graceful-degradation path.
    pub fn is_transient(&self) -> bool {
        match self {
            EnvError::Faulted { transient, .. } => *transient,
            EnvError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::WouldBlock
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
                    | std::io::ErrorKind::ConnectionRefused
                    | std::io::ErrorKind::NotConnected
                    | std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::UnexpectedEof
            ),
            _ => false,
        }
    }
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvError::NotFound(name) => write!(f, "file not found: {name}"),
            EnvError::AlreadyExists(name) => write!(f, "file already exists: {name}"),
            EnvError::OutOfBounds {
                file,
                offset,
                len,
                size,
            } => write!(
                f,
                "access out of bounds: {file} offset={offset} len={len} size={size}"
            ),
            EnvError::DiskFull(d) => write!(f, "modelled disk full: {d}"),
            EnvError::BadSRequest(msg) => write!(f, "bad S request: {msg}"),
            EnvError::Io(e) => write!(f, "I/O error: {e}"),
            EnvError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            EnvError::Faulted { op, transient } => {
                let kind = if *transient { "transient" } else { "permanent" };
                write!(f, "injected {kind} fault in {op}")
            }
        }
    }
}

impl std::error::Error for EnvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EnvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for EnvError {
    fn from(e: std::io::Error) -> Self {
        EnvError::Io(e)
    }
}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, EnvError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EnvError::OutOfBounds {
            file: "R_0".into(),
            offset: 128,
            len: 64,
            size: 100,
        };
        let s = e.to_string();
        assert!(s.contains("R_0") && s.contains("128") && s.contains("100"));
        assert!(EnvError::NotFound("x".into()).to_string().contains('x'));
    }

    #[test]
    fn transient_classification() {
        assert!(EnvError::Faulted {
            op: "read".into(),
            transient: true
        }
        .is_transient());
        assert!(!EnvError::Faulted {
            op: "read".into(),
            transient: false
        }
        .is_transient());
        let interrupted: EnvError =
            std::io::Error::new(std::io::ErrorKind::Interrupted, "sig").into();
        assert!(interrupted.is_transient());
        let denied: EnvError =
            std::io::Error::new(std::io::ErrorKind::PermissionDenied, "no").into();
        assert!(!denied.is_transient());
        // Connection drops are the cluster RPC layer's bread and butter:
        // each must route into the existing retry machinery.
        for kind in [
            std::io::ErrorKind::ConnectionReset,
            std::io::ErrorKind::ConnectionAborted,
            std::io::ErrorKind::ConnectionRefused,
            std::io::ErrorKind::NotConnected,
            std::io::ErrorKind::BrokenPipe,
            std::io::ErrorKind::UnexpectedEof,
        ] {
            let e: EnvError = std::io::Error::new(kind, "net").into();
            assert!(e.is_transient(), "{kind:?} should be transient");
        }
        let data: EnvError = std::io::Error::new(std::io::ErrorKind::InvalidData, "crc").into();
        assert!(!data.is_transient(), "protocol corruption is not transient");
        let in_use: EnvError = std::io::Error::new(std::io::ErrorKind::AddrInUse, "port").into();
        assert!(
            !in_use.is_transient(),
            "a held port needs intervention, not backoff"
        );
        assert!(!EnvError::DiskFull(crate::DiskId(0)).is_transient());
        assert!(!EnvError::NotFound("x".into()).is_transient());
    }

    #[test]
    fn io_error_conversion_preserves_source() {
        use std::error::Error;
        let e: EnvError = std::io::Error::other("boom").into();
        assert!(e.source().is_some());
    }
}
