//! Page/block arithmetic helpers used throughout the workspace.

/// Number of whole blocks of size `block` needed to hold `bytes` bytes.
pub fn blocks_for(bytes: u64, block: u64) -> u64 {
    debug_assert!(block > 0);
    bytes.div_ceil(block)
}

/// The block index containing byte `offset`.
pub fn block_of(offset: u64, block: u64) -> u64 {
    debug_assert!(block > 0);
    offset / block
}

/// Inclusive block range `[first, last]` touched by the byte range
/// `[offset, offset + len)`. Returns `None` for empty ranges.
pub fn block_span(offset: u64, len: u64, block: u64) -> Option<(u64, u64)> {
    if len == 0 {
        return None;
    }
    Some((block_of(offset, block), block_of(offset + len - 1, block)))
}

/// Iterator over the block indices touched by a byte range.
pub fn blocks_touched(offset: u64, len: u64, block: u64) -> impl Iterator<Item = u64> {
    let (first, last) = block_span(offset, len, block).unwrap_or((1, 0));
    first..=last
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_for_rounds_up() {
        assert_eq!(blocks_for(0, 4096), 0);
        assert_eq!(blocks_for(1, 4096), 1);
        assert_eq!(blocks_for(4096, 4096), 1);
        assert_eq!(blocks_for(4097, 4096), 2);
    }

    #[test]
    fn block_span_edges() {
        assert_eq!(block_span(0, 0, 4096), None);
        assert_eq!(block_span(0, 1, 4096), Some((0, 0)));
        assert_eq!(block_span(0, 4096, 4096), Some((0, 0)));
        assert_eq!(block_span(0, 4097, 4096), Some((0, 1)));
        assert_eq!(block_span(4095, 2, 4096), Some((0, 1)));
        assert_eq!(block_span(8192, 4096, 4096), Some((2, 2)));
    }

    #[test]
    fn blocks_touched_enumerates() {
        let v: Vec<u64> = blocks_touched(4000, 5000, 4096).collect();
        assert_eq!(v, vec![0, 1, 2]);
        let empty: Vec<u64> = blocks_touched(100, 0, 4096).collect();
        assert!(empty.is_empty());
    }
}
