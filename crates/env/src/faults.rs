//! Deterministic fault injection: [`FaultyEnv`] wraps any [`Env`] and
//! injects seeded faults described by a parsed [`FaultSpec`].
//!
//! The paper's algorithms (and the `mmjoin-serve` worker pool built on
//! them) assume every disk read, write and map-setup call succeeds. This
//! module is the chaos layer that lets the rest of the workspace drop
//! that assumption without touching real hardware: transient read/write
//! I/O errors, map-setup failures, `DiskFull` on create, and wall-clock
//! latency spikes, all drawn from a seeded generator so a failing run
//! replays exactly.
//!
//! # Spec grammar
//!
//! A spec is `;`-separated rules (empty string or `none` = no faults,
//! full passthrough):
//!
//! ```text
//! spec  := '' | 'none' | item (';' item)*
//! item  := 'seed=' N | rule
//! rule  := kind (':' key '=' value)*
//! kind  := read | write | create | open | delete | sfetch | diskfull | delay
//!        | torn_write | bit_corrupt | crash
//! key   := p      injection probability per matching op   (default 1.0)
//!        | count  max injections for this rule            (default 1)
//!        | after  matching ops skipped before arming      (default 0)
//!        | disk   only ops touching this disk             (default any)
//!        | file   only files whose name contains this     (default any)
//!        | ms     delay kind only: spike length in ms     (default 10)
//!        | frac   torn_write only: persisted prefix frac  (default 0.5)
//!        | hard   crash only: 1 = abort the whole process (default 0)
//! ```
//!
//! Example: `seed=7;read:p=0.05:count=3:disk=1;delay:p=0.01:ms=5:count=20`
//! injects up to three transient read errors on disk 1 with 5%
//! probability each, plus up to twenty 5 ms latency spikes.
//!
//! The three crash-consistency kinds model storage failures rather than
//! transient errors. `torn_write` silently persists only a prefix of the
//! buffer (`frac` of its length) — the op *appears* to succeed, exactly
//! like a write torn by power loss; the journal's CRC32 record checksums
//! are what detect it. `bit_corrupt` flips one seeded bit of the buffer
//! before persisting it. `crash` stops execution at a seeded point
//! (counted across every read/write/map/sfetch candidate op): by default
//! it fails the operation with a *non-transient* error so the current
//! iteration aborts; with `hard=1` it calls `std::process::abort()` —
//! the in-process equivalent of `kill -9`, used by the chaos-restart
//! tests to kill a serve mid-job at a deterministic op index.
//!
//! Because the temporary areas of the join algorithms have pass-specific
//! names (`R_i` is read in pass 0, `RP_i` written in pass 0 and read in
//! pass 1, `RS_i` written in pass 1 and read in the join pass, `S_j`
//! read in the join pass), `file=` targets faults at a specific pass of
//! the re-partitioning prologue.
//!
//! # Determinism
//!
//! One seeded xorshift generator is shared by all rules; every matching
//! candidate op consumes exactly one draw. Under
//! `ExecMode::Sequential` (the service default) the op order is fixed,
//! so a given seed injects the same faults at the same points on every
//! run. Threaded joins interleave ops and are deterministic only in
//! aggregate probability.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::error::{EnvError, Result};
use crate::trace::{TraceEvent, TraceSink};
use crate::{CpuOp, DiskId, Env, EnvStats, FileOps, MoveKind, ProcId, SCatalog, SPtr};

/// Operations a fault rule can target.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Transient I/O error on `read_at`.
    Read,
    /// Transient I/O error on `write_at`.
    Write,
    /// Transient map-setup failure on `create_file` (`newMap`).
    Create,
    /// Transient map-setup failure on `open_file` (`openMap`).
    Open,
    /// Transient failure on `delete_file` (`deleteMap`).
    Delete,
    /// Transient failure of one shared-buffer exchange with an `Sproc`.
    SFetch,
    /// `DiskFull` on `create_file` — non-transient; exercises the
    /// service's graceful-degradation path.
    DiskFull,
    /// Wall-clock latency spike on `read_at`/`write_at` (no error).
    Delay,
    /// Silently persist only a prefix of a `write_at` buffer (the op
    /// reports success), modeling a write torn by power loss.
    TornWrite,
    /// Flip one seeded bit of a `write_at` buffer before persisting.
    BitCorrupt,
    /// Stop at a seeded point: non-transient failure of the op, or
    /// `std::process::abort()` when the rule sets `hard=1`.
    Crash,
}

impl FaultKind {
    /// Parse a rule kind name.
    pub fn from_name(s: &str) -> Option<FaultKind> {
        Some(match s {
            "read" => FaultKind::Read,
            "write" => FaultKind::Write,
            "create" => FaultKind::Create,
            "open" => FaultKind::Open,
            "delete" => FaultKind::Delete,
            "sfetch" => FaultKind::SFetch,
            "diskfull" => FaultKind::DiskFull,
            "delay" => FaultKind::Delay,
            "torn_write" => FaultKind::TornWrite,
            "bit_corrupt" => FaultKind::BitCorrupt,
            "crash" => FaultKind::Crash,
            _ => return None,
        })
    }

    /// Display name (round-trips through [`FaultKind::from_name`]).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Read => "read",
            FaultKind::Write => "write",
            FaultKind::Create => "create",
            FaultKind::Open => "open",
            FaultKind::Delete => "delete",
            FaultKind::SFetch => "sfetch",
            FaultKind::DiskFull => "diskfull",
            FaultKind::Delay => "delay",
            FaultKind::TornWrite => "torn_write",
            FaultKind::BitCorrupt => "bit_corrupt",
            FaultKind::Crash => "crash",
        }
    }

    /// The env operation this rule kind watches.
    fn watches(self, op: FaultKind) -> bool {
        match self {
            // DiskFull arms on creates; Delay arms on reads and writes.
            FaultKind::DiskFull => op == FaultKind::Create,
            FaultKind::Delay => matches!(op, FaultKind::Read | FaultKind::Write),
            // Data-mutating kinds only make sense on writes.
            FaultKind::TornWrite | FaultKind::BitCorrupt => op == FaultKind::Write,
            // A crash point is counted across every candidate op, so
            // `after=K` names the K-th environment operation of any kind.
            FaultKind::Crash => true,
            k => op == k,
        }
    }
}

/// One parsed injection rule.
#[derive(Clone, Debug)]
pub struct FaultRule {
    /// What to inject, and into which operation.
    pub kind: FaultKind,
    /// Injection probability per armed matching op.
    pub p: f64,
    /// Max injections before the rule exhausts.
    pub count: u64,
    /// Matching ops to skip before the rule arms.
    pub after: u64,
    /// Only ops on this disk (when the wrapper knows the disk).
    pub disk: Option<u32>,
    /// Only files whose name contains this substring.
    pub file: Option<String>,
    /// Spike length for `delay` rules, in milliseconds.
    pub delay_ms: u64,
    /// Fraction of the buffer persisted by `torn_write` rules.
    pub frac: f64,
    /// `crash` rules: abort the whole process instead of failing the op.
    pub hard: bool,
}

impl FaultRule {
    fn new(kind: FaultKind) -> Self {
        FaultRule {
            kind,
            p: 1.0,
            count: 1,
            after: 0,
            disk: None,
            file: None,
            delay_ms: 10,
            frac: 0.5,
            hard: false,
        }
    }

    fn matches(&self, op: FaultKind, disk: Option<DiskId>, name: &str) -> bool {
        self.kind.watches(op)
            && self.disk.is_none_or(|d| disk.is_some_and(|got| got.0 == d))
            && self.file.as_ref().is_none_or(|f| name.contains(f))
    }
}

/// A parsed fault specification: a seed plus a list of rules.
#[derive(Clone, Debug, Default)]
pub struct FaultSpec {
    /// Seed of the shared draw generator.
    pub seed: u64,
    /// Rules, consulted in order for every candidate op.
    pub rules: Vec<FaultRule>,
}

impl FaultSpec {
    /// No faults: [`FaultyEnv`] with an empty spec is a pure
    /// passthrough.
    pub fn none() -> Self {
        FaultSpec::default()
    }

    /// True if no rule can ever fire.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Parse the grammar described at module level.
    pub fn parse(s: &str) -> std::result::Result<FaultSpec, String> {
        let mut spec = FaultSpec::none();
        let s = s.trim();
        if s.is_empty() || s == "none" {
            return Ok(spec);
        }
        for item in s.split(';') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            if let Some(seed) = item.strip_prefix("seed=") {
                spec.seed = seed
                    .parse()
                    .map_err(|_| format!("seed: cannot parse '{seed}'"))?;
                continue;
            }
            let mut parts = item.split(':');
            let kind_name = parts.next().unwrap_or_default();
            let kind = FaultKind::from_name(kind_name).ok_or_else(|| {
                format!(
                    "unknown fault kind '{kind_name}' \
                     (read|write|create|open|delete|sfetch|diskfull|delay\
                     |torn_write|bit_corrupt|crash)"
                )
            })?;
            let mut rule = FaultRule::new(kind);
            for kv in parts {
                let (key, value) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("expected key=value in fault rule, got '{kv}'"))?;
                match key {
                    "p" => {
                        rule.p = value
                            .parse()
                            .map_err(|_| format!("p: cannot parse '{value}'"))?;
                        if !(0.0..=1.0).contains(&rule.p) {
                            return Err(format!("p must be in [0,1], got {value}"));
                        }
                    }
                    "count" => {
                        rule.count = value
                            .parse()
                            .map_err(|_| format!("count: cannot parse '{value}'"))?;
                    }
                    "after" => {
                        rule.after = value
                            .parse()
                            .map_err(|_| format!("after: cannot parse '{value}'"))?;
                    }
                    "disk" => {
                        rule.disk = Some(
                            value
                                .parse()
                                .map_err(|_| format!("disk: cannot parse '{value}'"))?,
                        );
                    }
                    "file" => rule.file = Some(value.to_string()),
                    "ms" => {
                        rule.delay_ms = value
                            .parse()
                            .map_err(|_| format!("ms: cannot parse '{value}'"))?;
                    }
                    "frac" => {
                        rule.frac = value
                            .parse()
                            .map_err(|_| format!("frac: cannot parse '{value}'"))?;
                        if !(0.0..=1.0).contains(&rule.frac) {
                            return Err(format!("frac must be in [0,1], got {value}"));
                        }
                    }
                    "hard" => {
                        rule.hard = match value {
                            "0" => false,
                            "1" => true,
                            _ => return Err(format!("hard must be 0 or 1, got '{value}'")),
                        };
                    }
                    other => return Err(format!("unknown fault rule key '{other}'")),
                }
            }
            spec.rules.push(rule);
        }
        Ok(spec)
    }
}

impl std::str::FromStr for FaultSpec {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        FaultSpec::parse(s)
    }
}

impl std::fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return write!(f, "none");
        }
        write!(f, "seed={}", self.seed)?;
        for r in &self.rules {
            write!(f, ";{}", r.kind.name())?;
            if r.p != 1.0 {
                write!(f, ":p={}", r.p)?;
            }
            if r.count != 1 {
                write!(f, ":count={}", r.count)?;
            }
            if r.after != 0 {
                write!(f, ":after={}", r.after)?;
            }
            if let Some(d) = r.disk {
                write!(f, ":disk={d}")?;
            }
            if let Some(file) = &r.file {
                write!(f, ":file={file}")?;
            }
            if r.kind == FaultKind::Delay {
                write!(f, ":ms={}", r.delay_ms)?;
            }
            if r.kind == FaultKind::TornWrite && r.frac != 0.5 {
                write!(f, ":frac={}", r.frac)?;
            }
            if r.hard {
                write!(f, ":hard=1")?;
            }
        }
        Ok(())
    }
}

/// Injection counters, mirrored live by every wrapped operation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient errors injected into `read_at`.
    pub read_errors: u64,
    /// Transient errors injected into `write_at`.
    pub write_errors: u64,
    /// Map-setup failures injected into `create_file`/`open_file`/
    /// `delete_file`.
    pub map_errors: u64,
    /// Transient errors injected into `s_fetch_batch`.
    pub sfetch_errors: u64,
    /// `DiskFull` errors injected into `create_file`.
    pub disk_full: u64,
    /// Latency spikes injected.
    pub delays: u64,
    /// Total injected delay, in milliseconds.
    pub delay_ms: u64,
    /// Writes persisted prefix-only by `torn_write` rules.
    pub torn_writes: u64,
    /// Writes with one bit flipped by `bit_corrupt` rules.
    pub bit_corrupts: u64,
    /// `crash` rules fired in soft (op-failing) mode. Hard crashes
    /// abort the process and are never observed here.
    pub crashes: u64,
}

impl FaultStats {
    /// All injected faults (latency spikes included).
    pub fn total(&self) -> u64 {
        self.read_errors
            + self.write_errors
            + self.map_errors
            + self.sfetch_errors
            + self.disk_full
            + self.delays
            + self.torn_writes
            + self.bit_corrupts
            + self.crashes
    }
}

/// What the injector decided to do to one candidate operation.
#[derive(Debug)]
pub enum Outcome {
    /// Proceed unchanged.
    Pass,
    /// Fail the operation with this error.
    Fail(EnvError),
    /// Write ops only: silently persist only the first `len` bytes.
    Torn {
        /// Bytes of the buffer to persist.
        len: usize,
    },
    /// Write ops only: flip `mask` in byte `byte` before persisting.
    Corrupt {
        /// Index of the byte to corrupt.
        byte: usize,
        /// Single-bit mask to XOR into the byte.
        mask: u8,
    },
}

/// Per-rule arming state.
#[derive(Default)]
struct RuleState {
    seen: u64,
    injected: u64,
}

/// The shared injector: spec + RNG + counters.
struct Injector {
    spec: FaultSpec,
    /// xorshift64* state; `0` draws are avoided by seeding with a
    /// non-zero constant mix.
    rng: AtomicU64,
    rule_states: Vec<Mutex<RuleState>>,
    stats: Mutex<FaultStats>,
}

impl Injector {
    fn new(spec: FaultSpec) -> Self {
        let rng = AtomicU64::new(spec.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
        let rule_states = spec.rules.iter().map(|_| Mutex::default()).collect();
        Injector {
            spec,
            rng,
            rule_states,
            stats: Mutex::new(FaultStats::default()),
        }
    }

    /// One uniform draw in [0,1).
    fn draw(&self) -> f64 {
        let mut x = self.rng.load(Ordering::Relaxed);
        loop {
            let mut y = x;
            y ^= y << 13;
            y ^= y >> 7;
            y ^= y << 17;
            match self
                .rng
                .compare_exchange_weak(x, y, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return (y >> 11) as f64 / (1u64 << 53) as f64,
                Err(actual) => x = actual,
            }
        }
    }

    fn stats_mut(&self) -> std::sync::MutexGuard<'_, FaultStats> {
        self.stats.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consult every rule for one candidate `op`; sleeps for matching
    /// delay rules and returns the first injected error. (Test-facing
    /// wrapper over [`Injector::check_op`]; production callers go
    /// through `FaultyInner`, which also mirrors trace events.)
    #[cfg(test)]
    fn check(&self, op: FaultKind, disk: Option<DiskId>, name: &str) -> Result<()> {
        match self.check_op(op, disk, name, None).0 {
            Outcome::Pass | Outcome::Torn { .. } | Outcome::Corrupt { .. } => Ok(()),
            Outcome::Fail(e) => Err(e),
        }
    }

    /// Consult every rule for one candidate `op`. `write_len` is the
    /// buffer length for write ops (enabling the data-mutating
    /// `torn_write`/`bit_corrupt` outcomes). Sleeps for matching delay
    /// rules. Returns the outcome plus the fired rule kind's name (for
    /// trace mirroring); a delay that fired without a later error
    /// reports `Some("delay")`.
    fn check_op(
        &self,
        op: FaultKind,
        disk: Option<DiskId>,
        name: &str,
        write_len: Option<usize>,
    ) -> (Outcome, Option<&'static str>) {
        if self.spec.is_empty() {
            return (Outcome::Pass, None);
        }
        let mut fired = None;
        for (rule, state) in self.spec.rules.iter().zip(&self.rule_states) {
            if !rule.matches(op, disk, name) {
                continue;
            }
            let armed = {
                let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
                st.seen += 1;
                st.seen > rule.after && st.injected < rule.count
            };
            if !armed || (rule.p < 1.0 && self.draw() >= rule.p) {
                continue;
            }
            state.lock().unwrap_or_else(|e| e.into_inner()).injected += 1;
            let mut stats = self.stats_mut();
            match rule.kind {
                FaultKind::Delay => {
                    stats.delays += 1;
                    stats.delay_ms += rule.delay_ms;
                    drop(stats);
                    std::thread::sleep(std::time::Duration::from_millis(rule.delay_ms));
                    // A spike is not an error; later rules still apply.
                    fired = Some(FaultKind::Delay.name());
                    continue;
                }
                FaultKind::DiskFull => {
                    stats.disk_full += 1;
                    return (
                        Outcome::Fail(EnvError::DiskFull(disk.unwrap_or(DiskId(0)))),
                        Some(FaultKind::DiskFull.name()),
                    );
                }
                FaultKind::TornWrite => {
                    let Some(len) = write_len else { continue };
                    stats.torn_writes += 1;
                    let keep = (len as f64 * rule.frac) as usize;
                    return (
                        Outcome::Torn { len: keep.min(len) },
                        Some(FaultKind::TornWrite.name()),
                    );
                }
                FaultKind::BitCorrupt => {
                    let Some(len) = write_len else { continue };
                    if len == 0 {
                        continue;
                    }
                    stats.bit_corrupts += 1;
                    drop(stats);
                    let byte = ((self.draw() * len as f64) as usize).min(len - 1);
                    let mask = 1u8 << ((self.draw() * 8.0) as u32 & 7);
                    return (
                        Outcome::Corrupt { byte, mask },
                        Some(FaultKind::BitCorrupt.name()),
                    );
                }
                FaultKind::Crash => {
                    if rule.hard {
                        // The in-process `kill -9`: no unwinding, no
                        // destructors, no journal flush. Recovery must
                        // work from whatever was synced before this op.
                        std::process::abort();
                    }
                    stats.crashes += 1;
                    return (
                        Outcome::Fail(EnvError::Faulted {
                            op: format!("crash at {} {name}", op_label(op)),
                            transient: false,
                        }),
                        Some(FaultKind::Crash.name()),
                    );
                }
                FaultKind::Read => stats.read_errors += 1,
                FaultKind::Write => stats.write_errors += 1,
                FaultKind::Create | FaultKind::Open | FaultKind::Delete => stats.map_errors += 1,
                FaultKind::SFetch => stats.sfetch_errors += 1,
            }
            return (
                Outcome::Fail(EnvError::Faulted {
                    op: format!("{} {name}", op_label(rule.kind)),
                    transient: true,
                }),
                Some(rule.kind.name()),
            );
        }
        (Outcome::Pass, fired)
    }
}

fn op_label(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::Read => "read_at",
        FaultKind::Write => "write_at",
        FaultKind::Create => "create_file(newMap)",
        FaultKind::Open => "open_file(openMap)",
        FaultKind::Delete => "delete_file(deleteMap)",
        FaultKind::SFetch => "s_fetch_batch",
        FaultKind::DiskFull
        | FaultKind::Delay
        | FaultKind::TornWrite
        | FaultKind::BitCorrupt
        | FaultKind::Crash => "",
    }
}

/// Best-effort disk recovery from the workspace naming convention
/// (`R_3`, `S_3`, `RP_3`, `RS_3`, `Merge_3`, possibly scoped as
/// `prefix.NAME_3#tag` — partition `i` always lives on disk `i`), for
/// files the wrapper did not see being created.
fn guess_disk(name: &str) -> Option<DiskId> {
    let base = name.split('#').next().unwrap_or(name);
    let digits = base.rsplit('_').next()?;
    digits.parse::<u32>().ok().map(DiskId)
}

struct FaultyInner<E: Env> {
    env: E,
    injector: Injector,
    /// Disk of every file created through this wrapper.
    disks: Mutex<HashMap<String, DiskId>>,
}

impl<E: Env> FaultyInner<E> {
    /// Run the injector for one candidate op, mirroring every injection
    /// — transient errors, `DiskFull`, data mutations, and delay spikes
    /// alike — into the wrapped environment's structured trace. An empty
    /// spec stays a strict no-op: no draws, no events.
    fn check_op(
        &self,
        proc: ProcId,
        op: FaultKind,
        disk: Option<DiskId>,
        name: &str,
        write_len: Option<usize>,
    ) -> Outcome {
        if self.injector.spec.is_empty() {
            return Outcome::Pass;
        }
        let (outcome, fired) = self.injector.check_op(op, disk, name, write_len);
        if let Some(kind) = fired {
            self.env.trace(
                proc,
                TraceEvent::FaultInjected {
                    proc: proc.0,
                    op: op.name().to_string(),
                    kind: kind.to_string(),
                    name: name.to_string(),
                    disk: disk.map(|d| d.0),
                },
            );
        }
        outcome
    }

    fn check(&self, proc: ProcId, op: FaultKind, disk: Option<DiskId>, name: &str) -> Result<()> {
        match self.check_op(proc, op, disk, name, None) {
            Outcome::Pass | Outcome::Torn { .. } | Outcome::Corrupt { .. } => Ok(()),
            Outcome::Fail(e) => Err(e),
        }
    }
}

/// An [`Env`] wrapper injecting seeded deterministic faults (see the
/// module docs). With an empty [`FaultSpec`] every call forwards
/// unchanged — same results, same measured costs.
#[derive(Clone)]
pub struct FaultyEnv<E: Env> {
    inner: std::sync::Arc<FaultyInner<E>>,
}

/// A file handle whose reads and writes pass through the injector.
pub struct FaultyFile<E: Env> {
    file: E::File,
    inner: std::sync::Arc<FaultyInner<E>>,
    name: String,
    disk: Option<DiskId>,
}

impl<E: Env> Clone for FaultyFile<E> {
    fn clone(&self) -> Self {
        FaultyFile {
            file: self.file.clone(),
            inner: self.inner.clone(),
            name: self.name.clone(),
            disk: self.disk,
        }
    }
}

impl<E: Env> FaultyEnv<E> {
    /// Wrap `env`, injecting faults per `spec`.
    pub fn new(env: E, spec: FaultSpec) -> Self {
        FaultyEnv {
            inner: std::sync::Arc::new(FaultyInner {
                env,
                injector: Injector::new(spec),
                disks: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// The wrapped environment.
    pub fn inner(&self) -> &E {
        &self.inner.env
    }

    /// Snapshot of the injection counters.
    pub fn fault_stats(&self) -> FaultStats {
        self.inner.injector.stats_mut().clone()
    }

    /// The spec this wrapper was built with.
    pub fn spec(&self) -> &FaultSpec {
        &self.inner.injector.spec
    }

    fn disk_of(&self, name: &str) -> Option<DiskId> {
        self.inner
            .disks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .copied()
            .or_else(|| guess_disk(name))
    }
}

impl<E: Env> FileOps for FaultyFile<E> {
    fn len(&self) -> u64 {
        self.file.len()
    }

    fn read_at(&self, proc: ProcId, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.inner
            .check(proc, FaultKind::Read, self.disk, &self.name)?;
        self.file.read_at(proc, offset, buf)
    }

    fn write_at(&self, proc: ProcId, offset: u64, buf: &[u8]) -> Result<()> {
        match self.inner.check_op(
            proc,
            FaultKind::Write,
            self.disk,
            &self.name,
            Some(buf.len()),
        ) {
            Outcome::Pass => self.file.write_at(proc, offset, buf),
            Outcome::Fail(e) => Err(e),
            // Persist only a prefix, then report success — the caller
            // believes the whole buffer is durable, exactly as after a
            // torn write. Checksums downstream are what catch this.
            Outcome::Torn { len } => self.file.write_at(proc, offset, &buf[..len]),
            Outcome::Corrupt { byte, mask } => {
                let mut corrupted = buf.to_vec();
                corrupted[byte] ^= mask;
                self.file.write_at(proc, offset, &corrupted)
            }
        }
    }

    fn sync(&self, proc: ProcId) -> Result<()> {
        // Flushes pass through uninstrumented: the fault model tears and
        // corrupts data at write time, and an injected sync failure
        // would be indistinguishable from a write error to callers.
        self.file.sync(proc)
    }
}

impl<E: Env> Env for FaultyEnv<E> {
    type File = FaultyFile<E>;

    fn page_size(&self) -> u64 {
        self.inner.env.page_size()
    }

    fn num_disks(&self) -> u32 {
        self.inner.env.num_disks()
    }

    fn create_file(
        &self,
        proc: ProcId,
        name: &str,
        disk: DiskId,
        bytes: u64,
    ) -> Result<Self::File> {
        self.inner
            .check(proc, FaultKind::Create, Some(disk), name)?;
        let file = self.inner.env.create_file(proc, name, disk, bytes)?;
        self.inner
            .disks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_string(), disk);
        Ok(FaultyFile {
            file,
            inner: self.inner.clone(),
            name: name.to_string(),
            disk: Some(disk),
        })
    }

    fn open_file(&self, proc: ProcId, name: &str) -> Result<Self::File> {
        let disk = self.disk_of(name);
        self.inner.check(proc, FaultKind::Open, disk, name)?;
        let file = self.inner.env.open_file(proc, name)?;
        Ok(FaultyFile {
            file,
            inner: self.inner.clone(),
            name: name.to_string(),
            disk,
        })
    }

    fn delete_file(&self, proc: ProcId, name: &str) -> Result<()> {
        let disk = self.disk_of(name);
        self.inner.check(proc, FaultKind::Delete, disk, name)?;
        self.inner.env.delete_file(proc, name)?;
        self.inner
            .disks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(name);
        Ok(())
    }

    fn list_files(&self) -> Vec<String> {
        self.inner.env.list_files()
    }

    fn cpu(&self, proc: ProcId, op: CpuOp, count: u64) {
        self.inner.env.cpu(proc, op, count);
    }

    fn move_bytes(&self, proc: ProcId, kind: MoveKind, bytes: u64) {
        self.inner.env.move_bytes(proc, kind, bytes);
    }

    fn context_switches(&self, proc: ProcId, count: u64) {
        self.inner.env.context_switches(proc, count);
    }

    fn register_s(&self, catalog: SCatalog) -> Result<()> {
        self.inner.env.register_s(catalog)
    }

    fn s_fetch_batch(
        &self,
        proc: ProcId,
        spart: u32,
        ptrs: &[SPtr],
        req_bytes_each: u64,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        self.inner
            .check(proc, FaultKind::SFetch, Some(DiskId(spart)), "S_fetch")?;
        self.inner
            .env
            .s_fetch_batch(proc, spart, ptrs, req_bytes_each, out)
    }

    fn shutdown_s(&self) {
        self.inner.env.shutdown_s();
    }

    fn preload(&self, name: &str, offset: u64, data: &[u8]) -> Result<()> {
        // Workload setup is outside the fault domain by design.
        self.inner.env.preload(name, offset, data)
    }

    fn reset_stats(&self) {
        self.inner.env.reset_stats();
    }

    fn now(&self, proc: ProcId) -> f64 {
        self.inner.env.now(proc)
    }

    fn stats(&self) -> EnvStats {
        self.inner.env.stats()
    }

    fn trace_sink(&self) -> std::sync::Arc<dyn TraceSink> {
        // Wrapper events (fault injections) and inner events (map ops,
        // passes) interleave into the one sink the inner env holds.
        self.inner.env.trace_sink()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_none_specs_parse_empty() {
        assert!(FaultSpec::parse("").unwrap().is_empty());
        assert!(FaultSpec::parse("none").unwrap().is_empty());
        assert!(FaultSpec::parse("  ").unwrap().is_empty());
    }

    #[test]
    fn full_grammar_round_trips() {
        let s = "seed=7;read:p=0.5:count=3:disk=1;delay:p=0.25:count=20:ms=5;\
                 diskfull:after=2:file=RP";
        let spec = FaultSpec::parse(s).unwrap();
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.rules.len(), 3);
        assert_eq!(spec.rules[0].kind, FaultKind::Read);
        assert_eq!(spec.rules[0].p, 0.5);
        assert_eq!(spec.rules[0].count, 3);
        assert_eq!(spec.rules[0].disk, Some(1));
        assert_eq!(spec.rules[1].kind, FaultKind::Delay);
        assert_eq!(spec.rules[1].delay_ms, 5);
        assert_eq!(spec.rules[2].kind, FaultKind::DiskFull);
        assert_eq!(spec.rules[2].after, 2);
        assert_eq!(spec.rules[2].file.as_deref(), Some("RP"));
        // Display output parses back to the same rules.
        let reparsed = FaultSpec::parse(&spec.to_string()).unwrap();
        assert_eq!(reparsed.to_string(), spec.to_string());
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        for (input, needle) in [
            ("explode", "unknown fault kind"),
            ("read:p=2.0", "p must be in [0,1]"),
            ("read:frequency=1", "unknown fault rule key"),
            ("read:p", "key=value"),
            ("seed=banana", "seed"),
        ] {
            let err = FaultSpec::parse(input).unwrap_err();
            assert!(err.contains(needle), "'{input}' → {err}");
        }
    }

    #[test]
    fn guess_disk_reads_the_naming_convention() {
        assert_eq!(guess_disk("R_3"), Some(DiskId(3)));
        assert_eq!(guess_disk("w.RP_1#t2"), Some(DiskId(1)));
        assert_eq!(guess_disk("Merge_0"), Some(DiskId(0)));
        assert_eq!(guess_disk("catalog"), None);
    }

    #[test]
    fn injector_respects_count_and_after() {
        let spec = FaultSpec::parse("read:after=2:count=2").unwrap();
        let inj = Injector::new(spec);
        let outcomes: Vec<bool> = (0..6)
            .map(|_| inj.check(FaultKind::Read, None, "R_0").is_err())
            .collect();
        // Two armed skips, two injections, then exhausted.
        assert_eq!(outcomes, [false, false, true, true, false, false]);
        assert_eq!(inj.stats_mut().read_errors, 2);
    }

    #[test]
    fn injector_draws_are_seed_deterministic() {
        let run = |seed: u64| -> Vec<bool> {
            let spec = FaultSpec::parse(&format!("seed={seed};write:p=0.3:count=1000")).unwrap();
            let inj = Injector::new(spec);
            (0..200)
                .map(|_| inj.check(FaultKind::Write, None, "RP_0").is_err())
                .collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds give different traces");
        let hits = run(42).iter().filter(|&&b| b).count();
        assert!((20..=100).contains(&hits), "p=0.3 over 200 draws: {hits}");
    }

    #[test]
    fn disk_and_file_filters_select_targets() {
        let spec = FaultSpec::parse("read:disk=1:count=100;write:file=RS:count=100").unwrap();
        let inj = Injector::new(spec);
        assert!(inj.check(FaultKind::Read, Some(DiskId(0)), "R_0").is_ok());
        assert!(
            inj.check(FaultKind::Read, None, "R_1").is_ok(),
            "unknown disk never matches"
        );
        assert!(inj.check(FaultKind::Read, Some(DiskId(1)), "R_1").is_err());
        assert!(inj.check(FaultKind::Write, Some(DiskId(1)), "RP_1").is_ok());
        assert!(inj
            .check(FaultKind::Write, Some(DiskId(1)), "RS_1")
            .is_err());
    }

    #[test]
    fn diskfull_rule_yields_typed_disk_full() {
        let spec = FaultSpec::parse("diskfull").unwrap();
        let inj = Injector::new(spec);
        match inj.check(FaultKind::Create, Some(DiskId(2)), "RP_2") {
            Err(EnvError::DiskFull(d)) => assert_eq!(d, DiskId(2)),
            other => panic!("expected DiskFull, got {other:?}"),
        }
        // Non-transient: the retry layer must not spin on it.
        assert!(!EnvError::DiskFull(DiskId(2)).is_transient());
    }

    #[test]
    fn injected_errors_are_transient_and_informative() {
        let spec = FaultSpec::parse("sfetch").unwrap();
        let inj = Injector::new(spec);
        let err = inj
            .check(FaultKind::SFetch, Some(DiskId(0)), "S_fetch")
            .unwrap_err();
        assert!(err.is_transient());
        assert!(err.to_string().contains("s_fetch_batch"), "{err}");
    }

    #[test]
    fn torn_write_yields_prefix_outcome() {
        let spec = FaultSpec::parse("torn_write:frac=0.25:count=2").unwrap();
        let inj = Injector::new(spec);
        // Reads never match a torn_write rule.
        assert!(matches!(
            inj.check_op(FaultKind::Read, None, "R_0", None).0,
            Outcome::Pass
        ));
        match inj.check_op(FaultKind::Write, None, "RP_0", Some(100)) {
            (Outcome::Torn { len }, Some("torn_write")) => assert_eq!(len, 25),
            other => panic!("expected torn outcome, got {other:?}"),
        }
        // frac=0 keeps nothing; still reported as success to the writer.
        let spec = FaultSpec::parse("torn_write:frac=0").unwrap();
        let inj = Injector::new(spec);
        match inj.check_op(FaultKind::Write, None, "RP_0", Some(64)).0 {
            Outcome::Torn { len } => assert_eq!(len, 0),
            other => panic!("expected torn outcome, got {other:?}"),
        }
    }

    #[test]
    fn bit_corrupt_flips_exactly_one_seeded_bit() {
        let spec = FaultSpec::parse("seed=9;bit_corrupt:count=100").unwrap();
        let inj = Injector::new(spec);
        for _ in 0..20 {
            match inj.check_op(FaultKind::Write, None, "RS_1", Some(33)).0 {
                Outcome::Corrupt { byte, mask } => {
                    assert!(byte < 33);
                    assert_eq!(mask.count_ones(), 1);
                }
                other => panic!("expected corrupt outcome, got {other:?}"),
            }
        }
        // Determinism: the same seed picks the same byte/bit sequence.
        let replay = |seed: u64| {
            let spec = FaultSpec::parse(&format!("seed={seed};bit_corrupt:count=10")).unwrap();
            let inj = Injector::new(spec);
            (0..10)
                .map(
                    |_| match inj.check_op(FaultKind::Write, None, "x", Some(256)).0 {
                        Outcome::Corrupt { byte, mask } => (byte, mask),
                        other => panic!("{other:?}"),
                    },
                )
                .collect::<Vec<_>>()
        };
        assert_eq!(replay(5), replay(5));
    }

    #[test]
    fn soft_crash_fails_non_transient_at_seeded_op_index() {
        // `after` counts candidate ops of every kind.
        let spec = FaultSpec::parse("crash:after=3").unwrap();
        let inj = Injector::new(spec);
        assert!(inj.check(FaultKind::Read, None, "R_0").is_ok());
        assert!(inj
            .check(FaultKind::Create, Some(DiskId(1)), "RP_1")
            .is_ok());
        assert!(inj.check(FaultKind::Write, None, "RP_1").is_ok());
        let err = inj.check(FaultKind::Write, None, "RP_1").unwrap_err();
        assert!(!err.is_transient(), "a crash must not be retried");
        assert!(err.to_string().contains("crash"), "{err}");
        assert_eq!(inj.stats_mut().crashes, 1);
        // Exhausted after `count` (default 1).
        assert!(inj.check(FaultKind::Write, None, "RP_1").is_ok());
    }

    #[test]
    fn crash_consistency_grammar_round_trips() {
        let s =
            "seed=3;torn_write:frac=0.75:count=2:file=RS;bit_corrupt:p=0.5;crash:after=40:hard=1";
        let spec = FaultSpec::parse(s).unwrap();
        assert_eq!(spec.rules[0].kind, FaultKind::TornWrite);
        assert_eq!(spec.rules[0].frac, 0.75);
        assert_eq!(spec.rules[1].kind, FaultKind::BitCorrupt);
        assert_eq!(spec.rules[2].kind, FaultKind::Crash);
        assert!(spec.rules[2].hard);
        let reparsed = FaultSpec::parse(&spec.to_string()).unwrap();
        assert_eq!(reparsed.to_string(), spec.to_string());
        // Bad values are rejected.
        assert!(FaultSpec::parse("torn_write:frac=1.5").is_err());
        assert!(FaultSpec::parse("crash:hard=yes").is_err());
    }

    #[test]
    fn delay_rule_sleeps_and_counts_but_does_not_fail() {
        let spec = FaultSpec::parse("delay:count=2:ms=1").unwrap();
        let inj = Injector::new(spec);
        let t0 = std::time::Instant::now();
        for _ in 0..5 {
            inj.check(FaultKind::Read, None, "R_0").unwrap();
        }
        assert!(t0.elapsed() >= std::time::Duration::from_millis(2));
        let stats = inj.stats_mut().clone();
        assert_eq!(stats.delays, 2);
        assert_eq!(stats.delay_ms, 2);
        assert_eq!(stats.total(), 2);
    }
}
