//! # mmjoin-env — shared environment abstraction
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: the [`Env`]/[`FileOps`] traits through which the parallel
//! pointer-based join algorithms access storage, the cost taxonomy of the
//! analytical model ([`CpuOp`], [`MoveKind`]), the measured machine
//! parameters ([`machine::MachineParams`]), and the identifiers for
//! processes, disks and virtual pointers.
//!
//! The join algorithms in the `mmjoin` crate are written **once** against
//! [`Env`] and executed on two implementations:
//!
//! * `mmjoin-vmsim`'s `SimEnv` — an execution-driven simulator that runs
//!   the algorithms on real data while charging every page fault, memory
//!   move, CPU operation and context switch against a parameterized
//!   machine (this is the "experiment" line of the paper's Figure 5);
//! * `mmjoin-mmstore`'s `MmapEnv` — a real memory-mapped single-level
//!   store in the style of µDatabase, used for functional validation and
//!   for measuring real mapping setup costs (Figure 1b).
//!
//! The split mirrors the paper's method: the same algorithm text is both
//! analyzed (via `mmjoin-model`, which consumes the same
//! [`machine::MachineParams`]) and measured (via the environments).

pub mod cost;
pub mod error;
pub mod faults;
pub mod hist;
pub mod ids;
pub mod layout;
pub mod machine;
pub mod stats;
pub mod trace;
pub mod traits;

pub use cost::{CpuOp, KernelOps, MoveKind};
pub use error::{EnvError, Result};
pub use faults::{FaultKind, FaultSpec, FaultStats, FaultyEnv, FaultyFile, Outcome};
pub use hist::Histogram;
pub use ids::{DiskId, ProcId, SPtr};
pub use stats::{EnvStats, ProcStats};
pub use trace::{
    null_sink, CollectingSink, JsonlSink, MapOp, NullSink, TraceEvent, TraceRecord, TraceSink,
};
pub use traits::{Env, FileOps, SCatalog};
