//! Identifiers: processes, disks, and virtual pointers into `S`.

use std::fmt;

/// Index of a logical process.
///
/// In the paper each partition pair is managed by an `Rproc_i` and an
/// `Sproc_i`. We number Rprocs `0..D` and Sprocs `D..2D`; the helper
/// constructors keep that convention in one place.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcId(pub u32);

impl ProcId {
    /// The `Rproc` managing partition `i` of `R`.
    pub fn rproc(i: u32) -> Self {
        ProcId(i)
    }

    /// The `Sproc` managing partition `j` of `S`, in a system with `d`
    /// disks/partitions.
    pub fn sproc(j: u32, d: u32) -> Self {
        ProcId(d + j)
    }

    /// Total number of process slots for a `d`-disk configuration
    /// (`d` Rprocs followed by `d` Sprocs).
    pub fn slots(d: u32) -> usize {
        2 * d as usize
    }

    /// True if this id denotes an Rproc under a `d`-disk configuration.
    pub fn is_rproc(self, d: u32) -> bool {
        self.0 < d
    }

    /// Index of the partition this process manages under a `d`-disk
    /// configuration.
    pub fn partition(self, d: u32) -> u32 {
        if self.0 < d {
            self.0
        } else {
            self.0 - d
        }
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc{}", self.0)
    }
}

/// Index of a parallel I/O channel — a disk (controller) in the paper's
/// model parameter `D`.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DiskId(pub u32);

impl fmt::Display for DiskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "disk{}", self.0)
    }
}

/// A *virtual pointer* into the inner relation `S`.
///
/// `SPtr` is a byte address in the single logical address space formed by
/// concatenating the `S` partitions `S_0 … S_{D-1}` in order. Because the
/// pointer value equals the storage address, pointer order equals storage
/// order — the property the paper exploits to skip sorting/hashing `S`
/// entirely (§4): sorting `R` by `SPtr` yields a *sequential* scan of
/// `S`, and a range-partitioning "hash" of `SPtr`s yields buckets whose
/// `S` locations are monotonically increasing (§7).
///
/// The containing partition is computed in model time `map` by
/// [`SPtr::partition`], mirroring the paper's `MAP(sptr)` function.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SPtr(pub u64);

impl SPtr {
    /// Construct a pointer to byte `offset` inside partition `part`,
    /// where every partition spans `part_bytes` bytes of the logical
    /// address space.
    pub fn new(part: u32, offset: u64, part_bytes: u64) -> Self {
        debug_assert!(offset < part_bytes);
        SPtr(part as u64 * part_bytes + offset)
    }

    /// The paper's `MAP(sptr)`: which `S` partition contains the target.
    pub fn partition(self, part_bytes: u64) -> u32 {
        debug_assert!(part_bytes > 0);
        (self.0 / part_bytes) as u32
    }

    /// Byte offset of the target within its partition.
    pub fn offset(self, part_bytes: u64) -> u64 {
        self.0 % part_bytes
    }

    /// Raw logical address.
    pub fn addr(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s@{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sptr_partition_roundtrip() {
        let part_bytes = 1 << 20;
        for part in 0..8u32 {
            for &off in &[0u64, 1, 4095, 4096, (1 << 20) - 1] {
                let p = SPtr::new(part, off, part_bytes);
                assert_eq!(p.partition(part_bytes), part);
                assert_eq!(p.offset(part_bytes), off);
            }
        }
    }

    #[test]
    fn sptr_order_matches_storage_order() {
        let part_bytes = 4096;
        let a = SPtr::new(0, 4000, part_bytes);
        let b = SPtr::new(1, 0, part_bytes);
        let c = SPtr::new(1, 128, part_bytes);
        assert!(a < b && b < c);
    }

    #[test]
    fn proc_id_roles() {
        let d = 4;
        assert!(ProcId::rproc(3).is_rproc(d));
        assert!(!ProcId::sproc(0, d).is_rproc(d));
        assert_eq!(ProcId::sproc(2, d).partition(d), 2);
        assert_eq!(ProcId::rproc(2).partition(d), 2);
        assert_eq!(ProcId::slots(d), 8);
    }
}
