//! Structured trace events for joins, environments, and the service.
//!
//! The paper's central claims are *schedule* claims — pass 1's staggered
//! phases `offset(i,t) = ((i+t-1) mod D) + 1` keep every disk owned by
//! exactly one process per phase (§5) — yet counters alone cannot show a
//! schedule. This module defines a small event vocabulary
//! ([`TraceEvent`]) and a pluggable sink ([`TraceSink`]) so that the
//! algorithms, the environments, the fault injector, the retry layer,
//! and the job service can all narrate what they do. The in-memory
//! [`CollectingSink`] turns executions into test oracles (see
//! `tests/trace_schedule.rs`); the [`JsonlSink`] backs the `--trace`
//! CLI flag.
//!
//! Events carry no timestamps themselves; the emitting environment
//! stamps each one with the emitting process's clock (virtual seconds in
//! the simulator, wall seconds in the real store) into a
//! [`TraceRecord`]. Comparing event *sequences* across environments is
//! therefore exact: strip the `t` fields and the remaining payloads must
//! be identical (asserted in `tests/cross_env_equivalence.rs`).

use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};

/// How a mapping came into being: a fresh file (`newMap`) or an existing
/// one re-opened (`openMap`), mirroring the Fig. 1b cost taxonomy.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MapOp {
    /// `newMap`: the file was created.
    New,
    /// `openMap`: an existing file was opened.
    Open,
}

impl MapOp {
    /// Stable lowercase name used in the JSONL encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            MapOp::New => "new",
            MapOp::Open => "open",
        }
    }
}

/// One structured event. Variants cover the join passes (the schedule),
/// mapping setup/teardown (Fig. 1b operations), fault injections, retry
/// attempts, and service job lifecycle transitions.
///
/// Field conventions: `proc` is the emitting [`ProcId`](crate::ProcId)
/// index; `pass` is 0 (scan/scatter), 1 (staggered phases), or 2 (the
/// algorithm-specific local join pass); `phase` is the paper's `t`
/// (0 for passes without phases); `disk` is the disk the pass touches;
/// `area` names the storage area in the paper's notation (`R_i`,
/// `R(i,j)` for the sub-partition `R_{i,j}` held in `RP_i`, `RS_i`).
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A join pass (or one phase of pass 1) begins on `proc`.
    PassStart {
        /// Emitting process.
        proc: u32,
        /// Pass id: 0 scan, 1 staggered phases, 2 local join.
        pass: u32,
        /// Phase `t` within pass 1 (0 elsewhere).
        phase: u32,
        /// Disk this pass touches.
        disk: u32,
        /// Storage area in paper notation (`R_i`, `R(i,j)`, `RS_i`).
        area: String,
    },
    /// The matching end of a [`TraceEvent::PassStart`].
    PassEnd {
        /// Emitting process.
        proc: u32,
        /// Pass id: 0 scan, 1 staggered phases, 2 local join.
        pass: u32,
        /// Phase `t` within pass 1 (0 elsewhere).
        phase: u32,
        /// Disk this pass touched.
        disk: u32,
        /// Storage area in paper notation.
        area: String,
        /// Bytes of R-objects processed by the pass.
        bytes: u64,
        /// R-objects processed by the pass.
        objects: u64,
    },
    /// A mapping was established (`newMap`/`openMap`).
    MapSetup {
        /// Process performing the operation.
        proc: u32,
        /// Whether the file was created or re-opened.
        op: MapOp,
        /// File name.
        name: String,
        /// Disk holding the file.
        disk: u32,
        /// Logical file size in bytes.
        bytes: u64,
    },
    /// A mapping was destroyed (`deleteMap`).
    MapTeardown {
        /// Process performing the operation.
        proc: u32,
        /// File name.
        name: String,
        /// Disk that held the file.
        disk: u32,
    },
    /// The fault injector fired a rule.
    FaultInjected {
        /// Process whose operation was faulted.
        proc: u32,
        /// Operation label (`read`, `write`, `create`, ...).
        op: String,
        /// What was injected: the op label for transient errors,
        /// `diskfull`, or `delay`.
        kind: String,
        /// File (or `S_fetch` partition) the operation targeted.
        name: String,
        /// Disk, when the operation names one.
        disk: Option<u32>,
    },
    /// `join_with_retry` starts attempt `attempt` (1-based).
    RetryAttempt {
        /// Attempt number, starting at 1.
        attempt: u32,
    },
    /// A transient failure was caught; sleeping before the next attempt.
    RetryBackoff {
        /// The attempt that just failed.
        attempt: u32,
        /// Backoff sleep in milliseconds.
        millis: u64,
    },
    /// The planner sampled a job's join pointers at submit time
    /// (`plan=auto`).
    PlanSampled {
        /// Service job id.
        job: u64,
        /// Pointers sampled.
        sampled: u64,
        /// Histogram-derived skew factor.
        skew: f64,
        /// Pointer duplication factor (`sampled / distinct`).
        duplication: f64,
    },
    /// The planner chose a job's plan from statistics (`plan=auto`).
    PlanChosen {
        /// Service job id.
        job: u64,
        /// Chosen algorithm name.
        algorithm: String,
        /// Chosen `M_Rproc_i` in bytes.
        m_rproc: u64,
        /// Plan-level partition count for the local join pass.
        partitions: u32,
        /// Skew factor the plan was priced with.
        skew: f64,
        /// Where the skew came from (`assumed` | `estimated` |
        /// `sampled`).
        source: String,
    },
    /// A job entered the service queue.
    JobSubmitted {
        /// Service job id.
        job: u64,
        /// Reserved footprint `m_rproc × D` in bytes.
        footprint: u64,
        /// Shard the placement policy assigned the job to (0 on the
        /// single-queue service).
        shard: u32,
    },
    /// The admission controller dispatched a queued job to a worker.
    JobAdmitted {
        /// Service job id.
        job: u64,
        /// Reserved footprint in bytes.
        footprint: u64,
        /// Budget bytes in use on the admitting shard after this
        /// admission (the whole global budget on the single-queue
        /// service).
        used: u64,
        /// Shard whose worker admitted the job (0 on the single-queue
        /// service); differs from the [`TraceEvent::JobSubmitted`] shard
        /// when the job was stolen.
        shard: u32,
    },
    /// An idle shard stole a queued-but-unadmitted job from an
    /// overloaded sibling (sharded service only).
    JobStolen {
        /// Service job id.
        job: u64,
        /// Shard the job was queued on.
        from: u32,
        /// Shard that stole it.
        to: u32,
    },
    /// A job degraded to a smaller memory grant after `DiskFull`.
    JobDegraded {
        /// Service job id.
        job: u64,
        /// New (reduced) footprint in bytes.
        footprint: u64,
        /// Bytes returned to the global budget.
        released: u64,
    },
    /// A job left the service (successfully or not).
    JobCompleted {
        /// Service job id.
        job: u64,
        /// Whether the job produced a verified result.
        ok: bool,
        /// How many times the job degraded.
        degraded: u32,
    },
    /// A record was appended to the write-ahead journal.
    JournalAppend {
        /// Record kind tag (`area_created`, `job_completed`, ...).
        kind: String,
        /// Encoded record length in bytes (framing + payload + CRC).
        bytes: u64,
    },
    /// A pass-boundary checkpoint was made durable for a job.
    Checkpoint {
        /// Service job id.
        job: u64,
        /// The pass that completed (0 scan, 1 staggered phases, 2 local
        /// join).
        pass: u32,
    },
    /// A restarted service finished replaying its journal.
    RecoveryReplayed {
        /// CRC-valid records replayed.
        records: u64,
        /// Bytes of torn tail discarded after the last valid record.
        torn: u64,
        /// Orphaned areas deleted during garbage collection.
        orphans_deleted: u64,
        /// In-flight jobs re-submitted for execution.
        resumed_jobs: u64,
    },
    /// A worker node registered with the cluster coordinator.
    NodeJoined {
        /// Node name (as registered in its hello).
        node: String,
        /// Budget bytes the node advertises for admission control.
        budget: u64,
        /// Worker threads the node runs.
        workers: u32,
    },
    /// A worker node was declared dead (heartbeat timeout or connection
    /// loss); its jobs are about to be re-queued.
    NodeLost {
        /// Node name.
        node: String,
        /// Jobs that were in flight on the node when it died.
        in_flight: u64,
    },
    /// A job lost with its node was re-queued for dispatch to a
    /// surviving node.
    JobRequeued {
        /// Cluster job id.
        job: u64,
        /// Node the job was dispatched to when it was lost.
        from: String,
        /// How many times this job has now been re-queued.
        attempt: u32,
    },
    /// A modern-mode radix partitioning kernel ran (histogram + scatter
    /// of one block scan's `(ptr, key)` pairs into per-owner buckets).
    KernelRadix {
        /// Emitting process.
        proc: u32,
        /// Storage area the scan covered (`R_i`).
        area: String,
        /// Radix buckets scattered into (the fan-out `D`, or the
        /// second-level bucket count `K` in Grace/Hybrid local joins).
        buckets: u32,
        /// `(ptr, key)` pairs partitioned.
        objects: u64,
    },
    /// A modern-mode multi-way merge-scan kernel ran (MPSM-style: one
    /// owner sequentially merging the sorted private runs every worker
    /// published for its partition).
    KernelMerge {
        /// Emitting (owning) process.
        proc: u32,
        /// Area the merged output joins against (`RS_i`).
        area: String,
        /// Sorted runs merged.
        runs: u32,
        /// Total `(ptr, key)` pairs across all runs.
        objects: u64,
    },
    /// A modern-mode batched S-probe kernel ran (fixed-width key
    /// fetch + compare over `s_fetch_batch`).
    KernelProbe {
        /// Emitting process.
        proc: u32,
        /// S partition probed.
        spart: u32,
        /// `s_fetch_batch` round trips issued.
        batches: u64,
        /// Pointers probed.
        objects: u64,
    },
    /// A host-calibration probe began (mmjoin-calibrate).
    ProbeStart {
        /// Probe name (`dtt`, `map`, `mt`, `cs`, `cpu`).
        probe: String,
        /// Repetitions the probe will run (median-of-k).
        reps: u32,
    },
    /// The matching end of a [`TraceEvent::ProbeStart`].
    ProbeEnd {
        /// Probe name.
        probe: String,
        /// Repetitions actually run.
        reps: u32,
        /// Wall seconds the whole probe took.
        seconds: f64,
    },
    /// A least-squares fit of probe samples into a model coefficient
    /// pair (mmjoin-calibrate: the Fig. 1b `base + slope·blocks` fits).
    ProbeFit {
        /// Fit name (`map_new`, `map_open`, `map_delete`).
        fit: String,
        /// Fitted fixed cost in seconds.
        base: f64,
        /// Fitted per-block slope in seconds/block.
        slope: f64,
        /// RMS residual of the fit in seconds.
        residual: f64,
    },
    /// A resident S index finished building (streaming tier warmup —
    /// the only point the stream pays pass-0 partitioning cost).
    ResidentBuilt {
        /// Resident partitions built (one per disk).
        parts: u32,
        /// Live S objects indexed.
        objects: u64,
        /// Index layout: `"hash"` (faithful) or `"sorted"` (modern).
        layout: String,
    },
    /// An `append=`/`delete=` mutation patched the resident index in
    /// place (no rebuild).
    ResidentPatched {
        /// `"append"` or `"delete"`.
        op: String,
        /// Objects appended or tombstoned by this mutation.
        objects: u64,
        /// Live objects after the patch.
        live: u64,
    },
    /// An R micro-batch entered the stream queue.
    BatchSubmitted {
        /// Stream sequence number.
        batch: u64,
        /// R rows in the batch.
        rows: u64,
    },
    /// An R micro-batch finished probing the resident index.
    BatchCompleted {
        /// Stream sequence number.
        batch: u64,
        /// Join pairs produced.
        pairs: u64,
        /// Rows whose target was not live at probe time.
        misses: u64,
        /// Whether the batch completed without error.
        ok: bool,
    },
    /// The stream queue exceeded its bound; the submitter blocked until
    /// the worker drained below it.
    StreamBackpressure {
        /// Ops queued when the submitter blocked.
        queued: u64,
        /// The configured queue bound.
        bound: u64,
    },
}

impl TraceEvent {
    /// Stable snake_case tag used as the `"ev"` field in JSONL.
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEvent::PassStart { .. } => "pass_start",
            TraceEvent::PassEnd { .. } => "pass_end",
            TraceEvent::MapSetup { .. } => "map_setup",
            TraceEvent::MapTeardown { .. } => "map_teardown",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::RetryAttempt { .. } => "retry_attempt",
            TraceEvent::RetryBackoff { .. } => "retry_backoff",
            TraceEvent::PlanSampled { .. } => "plan_sampled",
            TraceEvent::PlanChosen { .. } => "plan_chosen",
            TraceEvent::JobSubmitted { .. } => "job_submitted",
            TraceEvent::JobAdmitted { .. } => "job_admitted",
            TraceEvent::JobStolen { .. } => "job_stolen",
            TraceEvent::JobDegraded { .. } => "job_degraded",
            TraceEvent::JobCompleted { .. } => "job_completed",
            TraceEvent::JournalAppend { .. } => "journal_append",
            TraceEvent::Checkpoint { .. } => "checkpoint",
            TraceEvent::RecoveryReplayed { .. } => "recovery_replayed",
            TraceEvent::NodeJoined { .. } => "node_joined",
            TraceEvent::NodeLost { .. } => "node_lost",
            TraceEvent::JobRequeued { .. } => "job_requeued",
            TraceEvent::KernelRadix { .. } => "kernel_radix",
            TraceEvent::KernelMerge { .. } => "kernel_merge",
            TraceEvent::KernelProbe { .. } => "kernel_probe",
            TraceEvent::ProbeStart { .. } => "probe_start",
            TraceEvent::ProbeEnd { .. } => "probe_end",
            TraceEvent::ProbeFit { .. } => "probe_fit",
            TraceEvent::ResidentBuilt { .. } => "resident_built",
            TraceEvent::ResidentPatched { .. } => "resident_patched",
            TraceEvent::BatchSubmitted { .. } => "batch_submitted",
            TraceEvent::BatchCompleted { .. } => "batch_completed",
            TraceEvent::StreamBackpressure { .. } => "stream_backpressure",
        }
    }
}

/// A timestamped event: `t` is the emitting process's clock in seconds
/// (virtual in `SimEnv`, wall since environment creation in `MmapEnv`,
/// wall since service start for job lifecycle events).
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRecord {
    /// Timestamp in seconds.
    pub t: f64,
    /// The event payload.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// Encode as one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        encode(self.t, &self.event)
    }
}

/// Destination for trace events. Implementations must be cheap enough to
/// call from inside the join inner loops' pass boundaries.
pub trait TraceSink: Send + Sync {
    /// Record one event stamped at `t` seconds.
    fn emit(&self, t: f64, event: TraceEvent);
    /// False when emissions are guaranteed to be discarded, letting
    /// callers skip event construction entirely.
    fn enabled(&self) -> bool {
        true
    }
}

/// A sink that discards everything; the default for every environment.
#[derive(Default, Debug, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&self, _t: f64, _event: TraceEvent) {}
    fn enabled(&self) -> bool {
        false
    }
}

/// The process-wide shared null sink.
pub fn null_sink() -> Arc<dyn TraceSink> {
    static NULL: OnceLock<Arc<NullSink>> = OnceLock::new();
    NULL.get_or_init(|| Arc::new(NullSink)).clone()
}

/// An in-memory sink for tests: collects every record in order.
#[derive(Default)]
pub struct CollectingSink {
    records: Mutex<Vec<TraceRecord>>,
}

impl CollectingSink {
    /// A fresh, empty, shareable collecting sink.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Snapshot of every record collected so far, in emission order.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.records.lock().unwrap().clone()
    }

    /// The event payloads only (timestamps stripped) — the shape two
    /// environments must agree on.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.records
            .lock()
            .unwrap()
            .iter()
            .map(|r| r.event.clone())
            .collect()
    }

    /// Number of records collected.
    pub fn len(&self) -> usize {
        self.records.lock().unwrap().len()
    }

    /// True when nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop everything collected so far.
    pub fn clear(&self) {
        self.records.lock().unwrap().clear();
    }
}

impl TraceSink for CollectingSink {
    fn emit(&self, t: f64, event: TraceEvent) {
        self.records.lock().unwrap().push(TraceRecord { t, event });
    }
}

/// A sink writing one JSON object per line to a file (the `--trace`
/// flag's backend). Lines are flushed when the sink is dropped.
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Create (truncating) the trace file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            out: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Flush buffered lines to disk.
    pub fn flush(&self) -> io::Result<()> {
        self.out.lock().unwrap().flush()
    }
}

impl TraceSink for JsonlSink {
    fn emit(&self, t: f64, event: TraceEvent) {
        let line = encode(t, &event);
        let mut out = self.out.lock().unwrap();
        // A failed trace write must not fail the traced operation.
        let _ = writeln!(out, "{line}");
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

/// Escape a string for embedding in a JSON string literal.
fn esc(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Encode one record as a JSON object (no trailing newline).
pub fn encode(t: f64, event: &TraceEvent) -> String {
    use fmt::Write as _;
    let mut s = String::with_capacity(96);
    let _ = write!(s, "{{\"t\":{t:.9},\"ev\":\"{}\"", event.tag());
    match event {
        TraceEvent::PassStart {
            proc,
            pass,
            phase,
            disk,
            area,
        } => {
            let _ = write!(
                s,
                ",\"proc\":{proc},\"pass\":{pass},\"phase\":{phase},\"disk\":{disk},\"area\":\""
            );
            esc(area, &mut s);
            s.push('"');
        }
        TraceEvent::PassEnd {
            proc,
            pass,
            phase,
            disk,
            area,
            bytes,
            objects,
        } => {
            let _ = write!(
                s,
                ",\"proc\":{proc},\"pass\":{pass},\"phase\":{phase},\"disk\":{disk},\"area\":\""
            );
            esc(area, &mut s);
            let _ = write!(s, "\",\"bytes\":{bytes},\"objects\":{objects}");
        }
        TraceEvent::MapSetup {
            proc,
            op,
            name,
            disk,
            bytes,
        } => {
            let _ = write!(s, ",\"proc\":{proc},\"op\":\"{}\",\"name\":\"", op.as_str());
            esc(name, &mut s);
            let _ = write!(s, "\",\"disk\":{disk},\"bytes\":{bytes}");
        }
        TraceEvent::MapTeardown { proc, name, disk } => {
            let _ = write!(s, ",\"proc\":{proc},\"name\":\"");
            esc(name, &mut s);
            let _ = write!(s, "\",\"disk\":{disk}");
        }
        TraceEvent::FaultInjected {
            proc,
            op,
            kind,
            name,
            disk,
        } => {
            let _ = write!(s, ",\"proc\":{proc},\"op\":\"");
            esc(op, &mut s);
            s.push_str("\",\"kind\":\"");
            esc(kind, &mut s);
            s.push_str("\",\"name\":\"");
            esc(name, &mut s);
            s.push('"');
            match disk {
                Some(d) => {
                    let _ = write!(s, ",\"disk\":{d}");
                }
                None => s.push_str(",\"disk\":null"),
            }
        }
        TraceEvent::RetryAttempt { attempt } => {
            let _ = write!(s, ",\"attempt\":{attempt}");
        }
        TraceEvent::RetryBackoff { attempt, millis } => {
            let _ = write!(s, ",\"attempt\":{attempt},\"millis\":{millis}");
        }
        TraceEvent::PlanSampled {
            job,
            sampled,
            skew,
            duplication,
        } => {
            // Plain Display keeps the floats' shortest round-trip
            // representation, so replayed plans re-read identical bits.
            let _ = write!(
                s,
                ",\"job\":{job},\"sampled\":{sampled},\"skew\":{skew},\"duplication\":{duplication}"
            );
        }
        TraceEvent::PlanChosen {
            job,
            algorithm,
            m_rproc,
            partitions,
            skew,
            source,
        } => {
            let _ = write!(s, ",\"job\":{job},\"algorithm\":\"");
            esc(algorithm, &mut s);
            let _ = write!(
                s,
                "\",\"m_rproc\":{m_rproc},\"partitions\":{partitions},\"skew\":{skew},\"source\":\""
            );
            esc(source, &mut s);
            s.push('"');
        }
        TraceEvent::JobSubmitted {
            job,
            footprint,
            shard,
        } => {
            let _ = write!(
                s,
                ",\"job\":{job},\"footprint\":{footprint},\"shard\":{shard}"
            );
        }
        TraceEvent::JobAdmitted {
            job,
            footprint,
            used,
            shard,
        } => {
            let _ = write!(
                s,
                ",\"job\":{job},\"footprint\":{footprint},\"used\":{used},\"shard\":{shard}"
            );
        }
        TraceEvent::JobStolen { job, from, to } => {
            let _ = write!(s, ",\"job\":{job},\"from\":{from},\"to\":{to}");
        }
        TraceEvent::JobDegraded {
            job,
            footprint,
            released,
        } => {
            let _ = write!(
                s,
                ",\"job\":{job},\"footprint\":{footprint},\"released\":{released}"
            );
        }
        TraceEvent::JobCompleted { job, ok, degraded } => {
            let _ = write!(s, ",\"job\":{job},\"ok\":{ok},\"degraded\":{degraded}");
        }
        TraceEvent::JournalAppend { kind, bytes } => {
            s.push_str(",\"kind\":\"");
            esc(kind, &mut s);
            let _ = write!(s, "\",\"bytes\":{bytes}");
        }
        TraceEvent::Checkpoint { job, pass } => {
            let _ = write!(s, ",\"job\":{job},\"pass\":{pass}");
        }
        TraceEvent::RecoveryReplayed {
            records,
            torn,
            orphans_deleted,
            resumed_jobs,
        } => {
            let _ = write!(
                s,
                ",\"records\":{records},\"torn\":{torn},\"orphans_deleted\":{orphans_deleted},\"resumed_jobs\":{resumed_jobs}"
            );
        }
        TraceEvent::NodeJoined {
            node,
            budget,
            workers,
        } => {
            s.push_str(",\"node\":\"");
            esc(node, &mut s);
            let _ = write!(s, "\",\"budget\":{budget},\"workers\":{workers}");
        }
        TraceEvent::NodeLost { node, in_flight } => {
            s.push_str(",\"node\":\"");
            esc(node, &mut s);
            let _ = write!(s, "\",\"in_flight\":{in_flight}");
        }
        TraceEvent::JobRequeued { job, from, attempt } => {
            let _ = write!(s, ",\"job\":{job},\"from\":\"");
            esc(from, &mut s);
            let _ = write!(s, "\",\"attempt\":{attempt}");
        }
        TraceEvent::KernelRadix {
            proc,
            area,
            buckets,
            objects,
        } => {
            let _ = write!(s, ",\"proc\":{proc},\"area\":\"");
            esc(area, &mut s);
            let _ = write!(s, "\",\"buckets\":{buckets},\"objects\":{objects}");
        }
        TraceEvent::KernelMerge {
            proc,
            area,
            runs,
            objects,
        } => {
            let _ = write!(s, ",\"proc\":{proc},\"area\":\"");
            esc(area, &mut s);
            let _ = write!(s, "\",\"runs\":{runs},\"objects\":{objects}");
        }
        TraceEvent::KernelProbe {
            proc,
            spart,
            batches,
            objects,
        } => {
            let _ = write!(
                s,
                ",\"proc\":{proc},\"spart\":{spart},\"batches\":{batches},\"objects\":{objects}"
            );
        }
        TraceEvent::ProbeStart { probe, reps } => {
            s.push_str(",\"probe\":\"");
            esc(probe, &mut s);
            let _ = write!(s, "\",\"reps\":{reps}");
        }
        TraceEvent::ProbeEnd {
            probe,
            reps,
            seconds,
        } => {
            s.push_str(",\"probe\":\"");
            esc(probe, &mut s);
            let _ = write!(s, "\",\"reps\":{reps},\"seconds\":{seconds:.9}");
        }
        TraceEvent::ProbeFit {
            fit,
            base,
            slope,
            residual,
        } => {
            s.push_str(",\"fit\":\"");
            esc(fit, &mut s);
            let _ = write!(
                s,
                "\",\"base\":{base:.12},\"slope\":{slope:.12},\"residual\":{residual:.12}"
            );
        }
        TraceEvent::ResidentBuilt {
            parts,
            objects,
            layout,
        } => {
            let _ = write!(s, ",\"parts\":{parts},\"objects\":{objects},\"layout\":\"");
            esc(layout, &mut s);
            s.push('"');
        }
        TraceEvent::ResidentPatched { op, objects, live } => {
            s.push_str(",\"op\":\"");
            esc(op, &mut s);
            let _ = write!(s, "\",\"objects\":{objects},\"live\":{live}");
        }
        TraceEvent::BatchSubmitted { batch, rows } => {
            let _ = write!(s, ",\"batch\":{batch},\"rows\":{rows}");
        }
        TraceEvent::BatchCompleted {
            batch,
            pairs,
            misses,
            ok,
        } => {
            let _ = write!(
                s,
                ",\"batch\":{batch},\"pairs\":{pairs},\"misses\":{misses},\"ok\":{ok}"
            );
        }
        TraceEvent::StreamBackpressure { queued, bound } => {
            let _ = write!(s, ",\"queued\":{queued},\"bound\":{bound}");
        }
    }
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled_and_shared() {
        let a = null_sink();
        let b = null_sink();
        assert!(!a.enabled());
        assert!(Arc::ptr_eq(&a, &b));
        a.emit(1.0, TraceEvent::RetryAttempt { attempt: 1 });
    }

    #[test]
    fn collecting_sink_preserves_order_and_payloads() {
        let sink = CollectingSink::new();
        sink.emit(0.5, TraceEvent::RetryAttempt { attempt: 1 });
        sink.emit(
            1.5,
            TraceEvent::PassStart {
                proc: 0,
                pass: 1,
                phase: 2,
                disk: 3,
                area: "R(0,3)".into(),
            },
        );
        let recs = sink.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].t, 0.5);
        assert_eq!(recs[0].event, TraceEvent::RetryAttempt { attempt: 1 });
        assert_eq!(sink.events()[1].tag(), "pass_start");
        sink.clear();
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_encoding_is_one_flat_object() {
        let line = encode(
            0.25,
            &TraceEvent::PassEnd {
                proc: 1,
                pass: 1,
                phase: 3,
                disk: 0,
                area: "R(1,0)".into(),
                bytes: 4096,
                objects: 32,
            },
        );
        assert!(line.starts_with("{\"t\":0.250000000,\"ev\":\"pass_end\""));
        assert!(line.ends_with('}'));
        assert!(line.contains("\"disk\":0"));
        assert!(line.contains("\"bytes\":4096"));
        assert!(line.contains("\"objects\":32"));
        assert_eq!(line.matches('{').count(), 1);
    }

    #[test]
    fn strings_are_escaped() {
        let line = encode(
            0.0,
            &TraceEvent::MapTeardown {
                proc: 0,
                name: "we\"ird\\name\n".into(),
                disk: 2,
            },
        );
        assert!(line.contains("we\\\"ird\\\\name\\n"));
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path =
            std::env::temp_dir().join(format!("mmjoin_trace_test_{}.jsonl", std::process::id()));
        {
            let sink = JsonlSink::create(&path).unwrap();
            sink.emit(0.0, TraceEvent::RetryAttempt { attempt: 1 });
            sink.emit(
                1.0,
                TraceEvent::JobCompleted {
                    job: 7,
                    ok: true,
                    degraded: 0,
                },
            );
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
        assert!(lines[1].contains("\"ok\":true"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn plan_events_encode_provenance() {
        let sampled = encode(
            0.0,
            &TraceEvent::PlanSampled {
                job: 5,
                sampled: 4096,
                skew: 3.5,
                duplication: 1.25,
            },
        );
        assert!(sampled.contains("\"ev\":\"plan_sampled\""));
        assert!(sampled.contains("\"job\":5") && sampled.contains("\"sampled\":4096"));
        assert!(sampled.contains("\"skew\":3.5") && sampled.contains("\"duplication\":1.25"));
        let chosen = encode(
            1.0,
            &TraceEvent::PlanChosen {
                job: 5,
                algorithm: "grace".into(),
                m_rproc: 64 * 4096,
                partitions: 7,
                skew: 3.5,
                source: "sampled".into(),
            },
        );
        assert!(chosen.contains("\"ev\":\"plan_chosen\""));
        assert!(chosen.contains("\"algorithm\":\"grace\""));
        assert!(chosen.contains("\"m_rproc\":262144") && chosen.contains("\"partitions\":7"));
        assert!(chosen.contains("\"source\":\"sampled\""));
    }

    #[test]
    fn job_events_carry_shard_ids() {
        let submitted = encode(
            0.0,
            &TraceEvent::JobSubmitted {
                job: 3,
                footprint: 8192,
                shard: 2,
            },
        );
        assert!(submitted.contains("\"ev\":\"job_submitted\""));
        assert!(submitted.contains("\"shard\":2"));
        let admitted = encode(
            0.0,
            &TraceEvent::JobAdmitted {
                job: 3,
                footprint: 8192,
                used: 8192,
                shard: 1,
            },
        );
        assert!(admitted.contains("\"used\":8192"));
        assert!(admitted.contains("\"shard\":1"));
        let stolen = encode(
            0.0,
            &TraceEvent::JobStolen {
                job: 3,
                from: 2,
                to: 1,
            },
        );
        assert!(stolen.contains("\"ev\":\"job_stolen\""));
        assert!(stolen.contains("\"from\":2") && stolen.contains("\"to\":1"));
    }

    #[test]
    fn probe_events_encode_name_reps_and_fit() {
        let start = encode(
            0.0,
            &TraceEvent::ProbeStart {
                probe: "dttr".into(),
                reps: 5,
            },
        );
        assert!(start.contains("\"ev\":\"probe_start\""));
        assert!(start.contains("\"probe\":\"dttr\"") && start.contains("\"reps\":5"));
        let end = encode(
            1.0,
            &TraceEvent::ProbeEnd {
                probe: "dttr".into(),
                reps: 5,
                seconds: 0.25,
            },
        );
        assert!(end.contains("\"ev\":\"probe_end\""));
        assert!(end.contains("\"seconds\":0.250000000"));
        let fit = encode(
            2.0,
            &TraceEvent::ProbeFit {
                fit: "map_new".into(),
                base: 0.05,
                slope: 9.0e-4,
                residual: 1.0e-6,
            },
        );
        assert!(fit.contains("\"ev\":\"probe_fit\""));
        assert!(fit.contains("\"fit\":\"map_new\"") && fit.contains("\"base\":0.050000000000"));
    }

    #[test]
    fn recovery_events_encode_their_fields() {
        let append = encode(
            0.0,
            &TraceEvent::JournalAppend {
                kind: "area_created".into(),
                bytes: 41,
            },
        );
        assert!(append.contains("\"ev\":\"journal_append\""));
        assert!(append.contains("\"kind\":\"area_created\"") && append.contains("\"bytes\":41"));
        let ckpt = encode(0.0, &TraceEvent::Checkpoint { job: 4, pass: 1 });
        assert!(ckpt.contains("\"ev\":\"checkpoint\""));
        assert!(ckpt.contains("\"job\":4") && ckpt.contains("\"pass\":1"));
        let replayed = encode(
            0.0,
            &TraceEvent::RecoveryReplayed {
                records: 12,
                torn: 3,
                orphans_deleted: 2,
                resumed_jobs: 1,
            },
        );
        assert!(replayed.contains("\"ev\":\"recovery_replayed\""));
        assert!(replayed.contains("\"records\":12"));
        assert!(replayed.contains("\"torn\":3"));
        assert!(replayed.contains("\"orphans_deleted\":2"));
        assert!(replayed.contains("\"resumed_jobs\":1"));
    }

    #[test]
    fn cluster_events_encode_node_lifecycle() {
        let joined = encode(
            0.0,
            &TraceEvent::NodeJoined {
                node: "node-a".into(),
                budget: 1 << 20,
                workers: 2,
            },
        );
        assert!(joined.contains("\"ev\":\"node_joined\""));
        assert!(joined.contains("\"node\":\"node-a\""));
        assert!(joined.contains("\"budget\":1048576") && joined.contains("\"workers\":2"));
        let lost = encode(
            1.0,
            &TraceEvent::NodeLost {
                node: "node-a".into(),
                in_flight: 3,
            },
        );
        assert!(lost.contains("\"ev\":\"node_lost\""));
        assert!(lost.contains("\"in_flight\":3"));
        let req = encode(
            2.0,
            &TraceEvent::JobRequeued {
                job: 9,
                from: "node-a".into(),
                attempt: 1,
            },
        );
        assert!(req.contains("\"ev\":\"job_requeued\""));
        assert!(req.contains("\"job\":9"));
        assert!(req.contains("\"from\":\"node-a\"") && req.contains("\"attempt\":1"));
    }

    #[test]
    fn kernel_events_encode_their_fields() {
        let radix = encode(
            0.0,
            &TraceEvent::KernelRadix {
                proc: 1,
                area: "R_1".into(),
                buckets: 4,
                objects: 1024,
            },
        );
        assert!(radix.contains("\"ev\":\"kernel_radix\""));
        assert!(radix.contains("\"area\":\"R_1\""));
        assert!(radix.contains("\"buckets\":4") && radix.contains("\"objects\":1024"));
        let merge = encode(
            1.0,
            &TraceEvent::KernelMerge {
                proc: 0,
                area: "RS_0".into(),
                runs: 4,
                objects: 4096,
            },
        );
        assert!(merge.contains("\"ev\":\"kernel_merge\""));
        assert!(merge.contains("\"runs\":4") && merge.contains("\"objects\":4096"));
        let probe = encode(
            2.0,
            &TraceEvent::KernelProbe {
                proc: 2,
                spart: 2,
                batches: 3,
                objects: 5000,
            },
        );
        assert!(probe.contains("\"ev\":\"kernel_probe\""));
        assert!(probe.contains("\"spart\":2"));
        assert!(probe.contains("\"batches\":3") && probe.contains("\"objects\":5000"));
    }

    #[test]
    fn stream_events_encode_their_fields() {
        let built = encode(
            0.0,
            &TraceEvent::ResidentBuilt {
                parts: 4,
                objects: 40_000,
                layout: "hash".into(),
            },
        );
        assert!(built.contains("\"ev\":\"resident_built\""));
        assert!(built.contains("\"parts\":4") && built.contains("\"layout\":\"hash\""));
        let patched = encode(
            1.0,
            &TraceEvent::ResidentPatched {
                op: "delete".into(),
                objects: 32,
                live: 39_968,
            },
        );
        assert!(patched.contains("\"ev\":\"resident_patched\""));
        assert!(patched.contains("\"op\":\"delete\"") && patched.contains("\"live\":39968"));
        let sub = encode(
            2.0,
            &TraceEvent::BatchSubmitted {
                batch: 7,
                rows: 256,
            },
        );
        assert!(sub.contains("\"ev\":\"batch_submitted\""));
        assert!(sub.contains("\"batch\":7") && sub.contains("\"rows\":256"));
        let done = encode(
            3.0,
            &TraceEvent::BatchCompleted {
                batch: 7,
                pairs: 250,
                misses: 6,
                ok: true,
            },
        );
        assert!(done.contains("\"ev\":\"batch_completed\""));
        assert!(done.contains("\"pairs\":250") && done.contains("\"misses\":6"));
        assert!(done.contains("\"ok\":true"));
        let bp = encode(
            4.0,
            &TraceEvent::StreamBackpressure {
                queued: 65,
                bound: 64,
            },
        );
        assert!(bp.contains("\"ev\":\"stream_backpressure\""));
        assert!(bp.contains("\"queued\":65") && bp.contains("\"bound\":64"));
    }

    #[test]
    fn fault_event_encodes_optional_disk() {
        let with = encode(
            0.0,
            &TraceEvent::FaultInjected {
                proc: 2,
                op: "read".into(),
                kind: "read".into(),
                name: "w.RP_1#t2".into(),
                disk: Some(1),
            },
        );
        assert!(with.contains("\"disk\":1"));
        let without = encode(
            0.0,
            &TraceEvent::FaultInjected {
                proc: 2,
                op: "delete".into(),
                kind: "delay".into(),
                name: "x".into(),
                disk: None,
            },
        );
        assert!(without.contains("\"disk\":null"));
    }
}
