//! The write-ahead journal: an append-only, checksummed record log on
//! one [`Env`] file, with an explicit flush-before-commit ordering.
//!
//! # Layout
//!
//! ```text
//! offset 0           HEADER_SIZE                       capacity
//! | header page ... | record | record | ... | zero fill ...   |
//! ```
//!
//! The header holds `magic`, `version`, a `committed` watermark (bytes
//! of record area durably committed) and a CRC32 over those fields.
//! Records are framed and checksummed individually
//! ([`JournalRecord::encode`]).
//!
//! # Flush-before-commit
//!
//! [`Journal::commit`] performs, in order:
//!
//! 1. `file.sync()` — every appended record is durable;
//! 2. header rewrite with the new `committed` watermark;
//! 3. `file.sync()` — the watermark is durable.
//!
//! A crash therefore never yields a committed watermark pointing at
//! data that did not land (the exemplar ordering of pmem logs:
//! flush/drain the data, then the commit record). Torn or corrupted
//! *records* are still possible — the per-record CRC32 catches them,
//! and [`Journal::open`] stops its scan at the first invalid record, so
//! any prefix-truncated journal replays to a consistent prefix state.
//!
//! Records *beyond* the committed watermark that scan as CRC-valid are
//! adopted too: they were fully written but the crash preceded their
//! commit, and every record type is idempotent under replay (see
//! `replay.rs`), so adopting them only recovers more truth.

use std::sync::Arc;

use mmjoin_env::trace::TraceSink;
use mmjoin_env::{DiskId, Env, EnvError, FileOps, ProcId, Result, TraceEvent};

use crate::crc::crc32;
use crate::record::JournalRecord;

const MAGIC: u64 = 0x6D6D_6A6F_696E_574C; // "mmjoinWL"
const VERSION: u32 = 1;

/// Bytes reserved for the header at the head of the journal file (one
/// page keeps the record area page-aligned).
pub const HEADER_SIZE: u64 = 4096;

/// Default journal capacity when the caller does not size it.
pub const DEFAULT_CAPACITY: u64 = 1 << 20;

/// Counters describing a journal's lifetime and its last replay,
/// surfaced in the service stats JSON.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records appended in this process.
    pub appended_records: u64,
    /// Frame bytes appended in this process.
    pub appended_bytes: u64,
    /// Commits (header flushes) performed.
    pub commits: u64,
    /// CRC-valid records adopted by the last open-replay.
    pub replayed_records: u64,
    /// Bytes between the scan stop and the committed watermark — a torn
    /// or corrupted committed region (0 in a clean shutdown).
    pub torn_bytes: u64,
}

/// What [`Journal::open`] recovered.
pub struct Replayed {
    /// Every CRC-valid record, in append order.
    pub records: Vec<JournalRecord>,
    /// Bytes of committed region lost to a torn/corrupt tail.
    pub torn_bytes: u64,
}

/// A write-ahead journal over one environment file.
pub struct Journal<E: Env> {
    env: E,
    file: E::File,
    proc: ProcId,
    /// Next append offset.
    tail: u64,
    /// Durable watermark from the last commit.
    committed: u64,
    capacity: u64,
    stats: JournalStats,
}

impl<E: Env> Journal<E> {
    /// Create a fresh journal file named `name` on disk 0 of `env`,
    /// sized to `capacity` bytes, and commit its empty header.
    pub fn create(env: E, name: &str, capacity: u64, proc: ProcId) -> Result<Journal<E>> {
        if capacity < HEADER_SIZE * 2 {
            return Err(EnvError::InvalidConfig(format!(
                "journal capacity {capacity} below minimum {}",
                HEADER_SIZE * 2
            )));
        }
        let file = env.create_file(proc, name, DiskId(0), capacity)?;
        let mut j = Journal {
            env,
            file,
            proc,
            tail: HEADER_SIZE,
            committed: HEADER_SIZE,
            capacity,
            stats: JournalStats::default(),
        };
        j.write_header()?;
        j.file.sync(proc)?;
        Ok(j)
    }

    /// Open an existing journal and replay it: validate the header,
    /// scan CRC-valid records from the head of the record area, stop at
    /// the first invalid frame. Appends resume after the last valid
    /// record.
    pub fn open(env: E, name: &str, proc: ProcId) -> Result<(Journal<E>, Replayed)> {
        let file = env.open_file(proc, name)?;
        let capacity = file.len();
        if capacity < HEADER_SIZE * 2 {
            return Err(EnvError::InvalidConfig(format!(
                "{name}: journal file too small ({capacity} bytes)"
            )));
        }
        let mut header = [0u8; 24];
        file.read_at(proc, 0, &mut header)?;
        let magic = u64::from_le_bytes(header[0..8].try_into().unwrap());
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        let committed = u64::from_le_bytes(header[12..20].try_into().unwrap());
        let crc = u32::from_le_bytes(header[20..24].try_into().unwrap());
        if magic != MAGIC {
            return Err(EnvError::InvalidConfig(format!(
                "{name} is not a journal file"
            )));
        }
        if version != VERSION {
            return Err(EnvError::InvalidConfig(format!(
                "{name}: journal version {version} unsupported"
            )));
        }
        if crc32(&header[0..20]) != crc || committed < HEADER_SIZE || committed > capacity {
            // The header write itself was torn. The committed watermark
            // is untrustworthy; fall back to scanning from the start of
            // the record area (record CRCs are the ground truth).
            return Self::scan_from(env, file, proc, name, capacity, HEADER_SIZE);
        }
        Self::scan_from(env, file, proc, name, capacity, committed)
    }

    fn scan_from(
        env: E,
        file: E::File,
        proc: ProcId,
        _name: &str,
        capacity: u64,
        committed: u64,
    ) -> Result<(Journal<E>, Replayed)> {
        // Read the whole record area once; journals are small by
        // construction (capacity is bounded at create time).
        let mut area = vec![0u8; (capacity - HEADER_SIZE) as usize];
        file.read_at(proc, HEADER_SIZE, &mut area)?;
        let mut records = Vec::new();
        let mut off = 0usize;
        while let Some((rec, used)) = JournalRecord::decode(&area[off..]) {
            records.push(rec);
            off += used;
        }
        let tail = HEADER_SIZE + off as u64;
        let torn_bytes = committed.saturating_sub(tail);
        let stats = JournalStats {
            replayed_records: records.len() as u64,
            torn_bytes,
            ..JournalStats::default()
        };
        let mut j = Journal {
            env,
            file,
            proc,
            tail,
            committed: tail.min(committed),
            capacity,
            stats,
        };
        // Re-commit at the scan stop so the watermark no longer points
        // into the discarded torn region.
        if torn_bytes > 0 {
            j.committed = tail;
            j.write_header()?;
            j.file.sync(proc)?;
        }
        Ok((
            j,
            Replayed {
                records,
                torn_bytes,
            },
        ))
    }

    fn write_header(&mut self) -> Result<()> {
        let mut header = [0u8; 24];
        header[0..8].copy_from_slice(&MAGIC.to_le_bytes());
        header[8..12].copy_from_slice(&VERSION.to_le_bytes());
        header[12..20].copy_from_slice(&self.committed.to_le_bytes());
        let crc = crc32(&header[0..20]);
        header[20..24].copy_from_slice(&crc.to_le_bytes());
        self.file.write_at(self.proc, 0, &header)
    }

    /// Append one record (not yet durable — call [`Journal::commit`]).
    /// Emits a `journal_append` trace event through the environment.
    pub fn append(&mut self, rec: &JournalRecord) -> Result<()> {
        let wire = rec.encode();
        let end = self.tail + wire.len() as u64;
        if end > self.capacity {
            return Err(EnvError::InvalidConfig(format!(
                "journal full: {} of {} bytes used, record needs {}",
                self.tail,
                self.capacity,
                wire.len()
            )));
        }
        self.file.write_at(self.proc, self.tail, &wire)?;
        self.tail = end;
        self.stats.appended_records += 1;
        self.stats.appended_bytes += wire.len() as u64;
        self.env.trace(
            self.proc,
            TraceEvent::JournalAppend {
                kind: rec.kind().to_string(),
                bytes: wire.len() as u64,
            },
        );
        Ok(())
    }

    /// Make every appended record durable, then advance the committed
    /// watermark — the flush-before-commit ordering (see module docs).
    pub fn commit(&mut self) -> Result<()> {
        if self.tail == self.committed {
            return Ok(());
        }
        // 1. Data durable first.
        self.file.sync(self.proc)?;
        // 2. Then the watermark...
        self.committed = self.tail;
        self.write_header()?;
        // 3. ...made durable itself.
        self.file.sync(self.proc)?;
        self.stats.commits += 1;
        Ok(())
    }

    /// Append and immediately commit.
    pub fn append_commit(&mut self, rec: &JournalRecord) -> Result<()> {
        self.append(rec)?;
        self.commit()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> JournalStats {
        self.stats.clone()
    }

    /// Bytes of record area in use.
    pub fn used_bytes(&self) -> u64 {
        self.tail - HEADER_SIZE
    }

    /// The trace sink of the journal's environment (for wiring tee
    /// sinks that append checkpoints).
    pub fn trace_sink(&self) -> Arc<dyn TraceSink> {
        self.env.trace_sink()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmjoin_env::FaultSpec;

    fn sim() -> mmjoin_vmsim::SimEnv {
        mmjoin_vmsim::SimEnv::new(mmjoin_vmsim::SimConfig::waterloo96(1)).unwrap()
    }

    const P: ProcId = ProcId(0);

    #[test]
    fn create_append_commit_reopen() {
        let env = sim();
        let mut j = Journal::create(env.clone(), "wal", 1 << 16, P).unwrap();
        j.append_commit(&JournalRecord::JobSubmitted {
            job: 1,
            line: "objects=1000".into(),
        })
        .unwrap();
        j.append_commit(&JournalRecord::Checkpoint { job: 1, pass: 0 })
            .unwrap();
        assert_eq!(j.stats().appended_records, 2);
        assert_eq!(j.stats().commits, 2);
        drop(j);
        let (j2, replay) = Journal::open(env, "wal", P).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.torn_bytes, 0);
        assert_eq!(
            replay.records[0],
            JournalRecord::JobSubmitted {
                job: 1,
                line: "objects=1000".into()
            }
        );
        assert_eq!(j2.stats().replayed_records, 2);
    }

    #[test]
    fn uncommitted_but_fully_written_records_are_adopted() {
        let env = sim();
        let mut j = Journal::create(env.clone(), "wal", 1 << 16, P).unwrap();
        j.append_commit(&JournalRecord::Checkpoint { job: 1, pass: 0 })
            .unwrap();
        // Appended, synced by the simulator's immediate durability, but
        // never committed: the crash happened before the watermark moved.
        j.append(&JournalRecord::Checkpoint { job: 1, pass: 1 })
            .unwrap();
        drop(j);
        let (_, replay) = Journal::open(env, "wal", P).unwrap();
        assert_eq!(
            replay.records.len(),
            2,
            "valid past-watermark record adopted"
        );
    }

    #[test]
    fn torn_write_in_tail_is_detected_and_cut() {
        // Inject a torn write into the *second* record's append; the
        // journal survives with the first record intact.
        let base = sim();
        let spec = FaultSpec::parse("torn_write:after=3:frac=0.3:file=wal").unwrap();
        let env = mmjoin_env::FaultyEnv::new(base.clone(), spec);
        let mut j = Journal::create(env.clone(), "wal", 1 << 16, P).unwrap();
        j.append_commit(&JournalRecord::Checkpoint { job: 9, pass: 0 })
            .unwrap();
        j.append_commit(&JournalRecord::JobSubmitted {
            job: 9,
            line: "name=torn objects=4000".into(),
        })
        .unwrap();
        drop(j);
        let (j2, replay) = Journal::open(env, "wal", P).unwrap();
        assert_eq!(replay.records.len(), 1, "torn second record discarded");
        assert_eq!(
            replay.records[0],
            JournalRecord::Checkpoint { job: 9, pass: 0 }
        );
        assert!(replay.torn_bytes > 0, "torn bytes reported");
        assert!(j2.stats().torn_bytes > 0);
    }

    #[test]
    fn bit_corruption_is_detected() {
        let base = sim();
        // Corrupt the second record append (header write is op 1,
        // record appends are the write ops after it).
        let spec = FaultSpec::parse("seed=4;bit_corrupt:after=3:file=wal").unwrap();
        let env = mmjoin_env::FaultyEnv::new(base, spec);
        let mut j = Journal::create(env.clone(), "wal", 1 << 16, P).unwrap();
        j.append_commit(&JournalRecord::Checkpoint { job: 2, pass: 0 })
            .unwrap();
        j.append_commit(&JournalRecord::Checkpoint { job: 2, pass: 1 })
            .unwrap();
        j.append_commit(&JournalRecord::Checkpoint { job: 2, pass: 2 })
            .unwrap();
        drop(j);
        let (_, replay) = Journal::open(env, "wal", P).unwrap();
        // The scan stops at the corrupted record; the clean prefix
        // survives. (Everything after the flip is discarded even if
        // intact — the consistent-prefix contract.)
        assert!(replay.records.len() < 3);
        assert_eq!(
            replay.records[0],
            JournalRecord::Checkpoint { job: 2, pass: 0 }
        );
    }

    #[test]
    fn journal_full_is_reported() {
        let env = sim();
        let mut j = Journal::create(env, "wal", HEADER_SIZE * 2, P).unwrap();
        let rec = JournalRecord::JobSubmitted {
            job: 0,
            line: "x".repeat(600),
        };
        let mut appended = 0;
        loop {
            match j.append(&rec) {
                Ok(()) => appended += 1,
                Err(e) => {
                    assert!(e.to_string().contains("journal full"), "{e}");
                    break;
                }
            }
        }
        assert!(appended >= 6, "page of records fit first: {appended}");
    }

    #[test]
    fn capacity_floor_enforced() {
        assert!(Journal::create(sim(), "wal", 100, P).is_err());
    }
}
