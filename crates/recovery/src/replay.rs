//! Folding a replayed record sequence into recovered state, and
//! garbage-collecting storage areas the journal does not vouch for.
//!
//! # Idempotence
//!
//! Replay is a pure left-fold over the record prefix the journal scan
//! accepted, and every fold step is idempotent and last-writer-wins:
//!
//! * `AreaCreated`/`AreaDeleted` insert into / remove from a map keyed
//!   by area name — replaying a create twice, or a delete for an absent
//!   area, converges to the same map;
//! * `JobSubmitted` registers the job line (a re-submission with the
//!   same id overwrites with identical content, since ids are unique);
//! * `Checkpoint` advances the job's last-completed pass with `max`;
//! * `JobCompleted` stores the terminal result, after which checkpoints
//!   for that job are ignored;
//! * `JobDispatched` records (last-writer-wins) which cluster node holds
//!   the job; `NodeLost` clears that assignment for every job on the
//!   dead node, reverting them to undisposed-pending — replaying either
//!   twice converges.
//!
//! So replaying any *prefix* of the journal yields a state the system
//! actually passed through — which is exactly what a torn tail forces.

use std::collections::{BTreeMap, BTreeSet};

use mmjoin_env::{Env, EnvError, ProcId, Result};

use crate::record::JournalRecord;

/// Recovered per-job state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JobState {
    /// The job-file line recorded at submission (re-parseable into the
    /// original request).
    pub line: String,
    /// Highest pass whose boundary checkpoint is durable, if any.
    pub last_pass: Option<u32>,
    /// Terminal result, if the job completed: `(pairs, checksum, ok)`.
    pub completed: Option<(u64, u64, bool)>,
    /// Cluster node the job was last dispatched to, if that node is
    /// still considered alive (cleared by `NodeLost`).
    pub dispatched: Option<String>,
}

/// Recovered per-stream-operation state (batches and resident-index
/// mutations share one sequence-number space).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchState {
    /// The stream-grammar op line recorded at submission.
    pub line: String,
    /// Terminal result: `(pairs, checksum, misses)` for probe batches,
    /// `(slots patched, 0, 0)` for mutations (`append=`/`delete=`). A
    /// completed mutation is still re-applied in sequence order on
    /// replay — the resident set is rebuilt from scratch, and only the
    /// op list reconstructs its state — but it is not re-journaled.
    pub completed: Option<(u64, u64, u64)>,
}

/// The state a journal prefix folds into.
#[derive(Clone, Debug, Default)]
pub struct ReplayState {
    /// Areas the journal says are live: name → (disk, bytes).
    pub live_areas: BTreeMap<String, (u32, u64)>,
    /// Every job the journal knows about, keyed by id.
    pub jobs: BTreeMap<u64, JobState>,
    /// The streaming session's `resident=` header line, if one opened.
    pub stream_line: Option<String>,
    /// Every stream op the journal knows about, keyed by sequence
    /// number.
    pub batches: BTreeMap<u64, BatchState>,
}

impl ReplayState {
    /// Fold `records` (in journal order) into recovered state.
    pub fn from_records(records: &[JournalRecord]) -> ReplayState {
        let mut st = ReplayState::default();
        for rec in records {
            match rec {
                JournalRecord::AreaCreated { name, disk, bytes } => {
                    st.live_areas.insert(name.clone(), (*disk, *bytes));
                }
                JournalRecord::AreaDeleted { name } => {
                    st.live_areas.remove(name);
                }
                JournalRecord::JobSubmitted { job, line } => {
                    st.jobs.entry(*job).or_default().line = line.clone();
                }
                JournalRecord::Checkpoint { job, pass } => {
                    let j = st.jobs.entry(*job).or_default();
                    if j.completed.is_none() {
                        j.last_pass = Some(j.last_pass.map_or(*pass, |p| p.max(*pass)));
                    }
                }
                JournalRecord::JobCompleted {
                    job,
                    pairs,
                    checksum,
                    ok,
                } => {
                    st.jobs.entry(*job).or_default().completed = Some((*pairs, *checksum, *ok));
                }
                JournalRecord::JobDispatched { job, node } => {
                    st.jobs.entry(*job).or_default().dispatched = Some(node.clone());
                }
                JournalRecord::NodeLost { node } => {
                    for j in st.jobs.values_mut() {
                        if j.dispatched.as_deref() == Some(node) {
                            j.dispatched = None;
                        }
                    }
                }
                JournalRecord::StreamOpened { line } => {
                    st.stream_line = Some(line.clone());
                }
                JournalRecord::BatchSubmitted { batch, line } => {
                    st.batches.entry(*batch).or_default().line = line.clone();
                }
                JournalRecord::BatchCompleted {
                    batch,
                    pairs,
                    checksum,
                    misses,
                } => {
                    st.batches.entry(*batch).or_default().completed =
                        Some((*pairs, *checksum, *misses));
                }
            }
        }
        st
    }

    /// Jobs that were submitted but never completed, in id order —
    /// these must be re-run (or resumed) by the restarted service.
    pub fn pending_jobs(&self) -> Vec<(u64, &JobState)> {
        self.jobs
            .iter()
            .filter(|(_, j)| j.completed.is_none())
            .map(|(id, j)| (*id, j))
            .collect()
    }

    /// Jobs with a durable terminal result, in id order.
    pub fn completed_jobs(&self) -> Vec<(u64, &JobState)> {
        self.jobs
            .iter()
            .filter(|(_, j)| j.completed.is_some())
            .map(|(id, j)| (*id, j))
            .collect()
    }

    /// Highest job id the journal has seen (so a resumed service can
    /// continue numbering without collisions).
    pub fn max_job_id(&self) -> Option<u64> {
        self.jobs.keys().next_back().copied()
    }
}

/// Delete every file in `env` that the journal does not consider live
/// and that is not explicitly protected (the journal file itself, base
/// relation partitions, ...). Returns the names deleted, sorted.
///
/// A file already gone (deleted concurrently, or the create was itself
/// torn) is tolerated: the goal state is "absent", and it is.
pub fn gc_orphans<E: Env>(
    env: &E,
    proc: ProcId,
    state: &ReplayState,
    protect: &BTreeSet<String>,
) -> Result<Vec<String>> {
    let mut deleted = Vec::new();
    let mut names = env.list_files();
    names.sort();
    for name in names {
        if state.live_areas.contains_key(&name) || protect.contains(&name) {
            continue;
        }
        match env.delete_file(proc, &name) {
            Ok(()) => deleted.push(name),
            Err(EnvError::NotFound(_)) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(deleted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmjoin_env::DiskId;

    fn recs() -> Vec<JournalRecord> {
        vec![
            JournalRecord::JobSubmitted {
                job: 1,
                line: "name=a objects=100".into(),
            },
            JournalRecord::AreaCreated {
                name: "R_0".into(),
                disk: 0,
                bytes: 4096,
            },
            JournalRecord::AreaCreated {
                name: "w.RP_0#t1".into(),
                disk: 1,
                bytes: 8192,
            },
            JournalRecord::Checkpoint { job: 1, pass: 0 },
            JournalRecord::AreaDeleted {
                name: "w.RP_0#t1".into(),
            },
            JournalRecord::Checkpoint { job: 1, pass: 1 },
            JournalRecord::JobSubmitted {
                job: 2,
                line: "name=b objects=200".into(),
            },
            JournalRecord::JobCompleted {
                job: 1,
                pairs: 100,
                checksum: 42,
                ok: true,
            },
        ]
    }

    #[test]
    fn fold_tracks_areas_jobs_and_checkpoints() {
        let st = ReplayState::from_records(&recs());
        assert_eq!(st.live_areas.len(), 1);
        assert_eq!(st.live_areas["R_0"], (0, 4096));
        assert_eq!(st.jobs[&1].last_pass, Some(1));
        assert_eq!(st.jobs[&1].completed, Some((100, 42, true)));
        assert_eq!(st.jobs[&2].last_pass, None);
        assert_eq!(st.pending_jobs().len(), 1);
        assert_eq!(st.pending_jobs()[0].0, 2);
        assert_eq!(st.completed_jobs().len(), 1);
        assert_eq!(st.max_job_id(), Some(2));
    }

    #[test]
    fn every_prefix_is_consistent() {
        // The consistent-prefix property replay relies on: folding any
        // prefix never yields a state with a deleted-but-live area or a
        // completed-but-unknown job.
        let all = recs();
        for cut in 0..=all.len() {
            let st = ReplayState::from_records(&all[..cut]);
            for (id, j) in st.completed_jobs() {
                assert!(!j.line.is_empty(), "job {id} completed without submission");
            }
            // Monotone: prefix state's live areas are a subset of what
            // some full-history pass produced at that point (trivially
            // true by construction; assert the fold is total instead).
            assert!(st.live_areas.len() <= 2);
        }
    }

    #[test]
    fn dispatch_and_node_loss_fold_idempotently() {
        let recs = vec![
            JournalRecord::JobSubmitted {
                job: 1,
                line: "name=a objects=100".into(),
            },
            JournalRecord::JobSubmitted {
                job: 2,
                line: "name=b objects=200".into(),
            },
            JournalRecord::JobDispatched {
                job: 1,
                node: "n0".into(),
            },
            JournalRecord::JobDispatched {
                job: 2,
                node: "n1".into(),
            },
            // Re-dispatch after a re-queue: last writer wins.
            JournalRecord::JobDispatched {
                job: 1,
                node: "n1".into(),
            },
            JournalRecord::NodeLost { node: "n1".into() },
        ];
        let st = ReplayState::from_records(&recs);
        assert_eq!(st.jobs[&1].dispatched, None);
        assert_eq!(st.jobs[&2].dispatched, None);
        assert_eq!(st.pending_jobs().len(), 2);
        // Replaying the loss again converges to the same state.
        let mut twice = recs.clone();
        twice.push(JournalRecord::NodeLost { node: "n1".into() });
        let st2 = ReplayState::from_records(&twice);
        assert_eq!(st.jobs, st2.jobs);
        // A completion after a lost dispatch still lands (the node got
        // the result out before the coordinator declared it dead).
        let mut done = recs;
        done.push(JournalRecord::JobCompleted {
            job: 2,
            pairs: 9,
            checksum: 1,
            ok: true,
        });
        let st3 = ReplayState::from_records(&done);
        assert_eq!(st3.pending_jobs().len(), 1);
        assert_eq!(st3.jobs[&2].completed, Some((9, 1, true)));
    }

    #[test]
    fn checkpoints_after_completion_are_ignored() {
        let st = ReplayState::from_records(&[
            JournalRecord::JobCompleted {
                job: 5,
                pairs: 1,
                checksum: 2,
                ok: true,
            },
            JournalRecord::Checkpoint { job: 5, pass: 2 },
        ]);
        assert_eq!(st.jobs[&5].last_pass, None);
        assert_eq!(st.completed_jobs().len(), 1);
    }

    #[test]
    fn gc_deletes_exactly_the_unvouched_files() {
        let env = mmjoin_vmsim::SimEnv::new(mmjoin_vmsim::SimConfig::waterloo96(2)).unwrap();
        let p = mmjoin_env::ProcId(0);
        env.create_file(p, "wal", DiskId(0), 8192).unwrap();
        env.create_file(p, "R_0", DiskId(0), 4096).unwrap();
        env.create_file(p, "w.RP_1#t2", DiskId(1), 4096).unwrap();
        env.create_file(p, "RS_0", DiskId(0), 4096).unwrap();
        let st = ReplayState::from_records(&[JournalRecord::AreaCreated {
            name: "R_0".into(),
            disk: 0,
            bytes: 4096,
        }]);
        let protect = BTreeSet::from(["wal".to_string()]);
        let deleted = gc_orphans(&env, p, &st, &protect).unwrap();
        assert_eq!(deleted, vec!["RS_0".to_string(), "w.RP_1#t2".to_string()]);
        let mut left = env.list_files();
        left.sort();
        assert_eq!(left, vec!["R_0".to_string(), "wal".to_string()]);
    }
}
