//! Journal record vocabulary and its checksummed binary encoding.
//!
//! Every record is framed as
//!
//! ```text
//! [len: u32 LE] [type: u8] [payload ...] [crc: u32 LE]
//! ```
//!
//! where `len` counts the type byte plus the payload (not the frame
//! fields), and `crc` is the CRC32 of exactly those `len` bytes. A
//! record is only accepted if the frame is complete *and* the checksum
//! matches; anything else — a torn tail, a flipped bit, trailing zeroes
//! from a pre-sized journal file — terminates the scan. Decoding is
//! total: no input can panic it.
//!
//! Strings are encoded as `u32 LE` length + UTF-8 bytes; integers are
//! little-endian fixed width. The encoding is deliberately
//! byte-deterministic so the encode/decode proptest can assert bitwise
//! round-trips.

use crate::crc::crc32;

/// Record type tags (the `type` byte).
const T_AREA_CREATED: u8 = 1;
const T_AREA_DELETED: u8 = 2;
const T_JOB_SUBMITTED: u8 = 3;
const T_CHECKPOINT: u8 = 4;
const T_JOB_COMPLETED: u8 = 5;
const T_JOB_DISPATCHED: u8 = 6;
const T_NODE_LOST: u8 = 7;
const T_STREAM_OPENED: u8 = 8;
const T_BATCH_SUBMITTED: u8 = 9;
const T_BATCH_COMPLETED: u8 = 10;

/// One durable journal record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalRecord {
    /// A storage area (temporary or otherwise) was created.
    AreaCreated {
        /// Env file name.
        name: String,
        /// Disk holding the area.
        disk: u32,
        /// Logical size in bytes.
        bytes: u64,
    },
    /// A storage area was deleted.
    AreaDeleted {
        /// Env file name.
        name: String,
    },
    /// A job was admitted into the service with this id; `line` is the
    /// job request re-encoded in the job-file grammar, so replay can
    /// re-submit it verbatim.
    JobSubmitted {
        /// Service job id.
        job: u64,
        /// `key=value` job line reproducing the request.
        line: String,
    },
    /// A pass boundary completed for a job (the paper's staged per-disk
    /// passes are the natural checkpoint points).
    Checkpoint {
        /// Service job id.
        job: u64,
        /// Completed pass (0 scan, 1 staggered phases, 2 local join).
        pass: u32,
    },
    /// A job finished; its result is durable in this record, so a
    /// resumed service reports it without re-running the join.
    JobCompleted {
        /// Service job id.
        job: u64,
        /// Joined pairs produced.
        pairs: u64,
        /// Order-independent join checksum.
        checksum: u64,
        /// Whether the result verified against the workload oracle.
        ok: bool,
    },
    /// The cluster coordinator sent a job to a worker node. Dispatch is
    /// at-least-once, so this record can repeat for one job (each
    /// re-queue re-dispatches); the last one wins in replay.
    JobDispatched {
        /// Cluster job id.
        job: u64,
        /// Node the job was sent to.
        node: String,
    },
    /// The coordinator declared a worker node dead. Jobs dispatched to
    /// it and not completed revert to pending in replay.
    NodeLost {
        /// Node name.
        node: String,
    },
    /// A streaming session opened against a resident relation; `line`
    /// is the `resident=` header re-encoded in the stream grammar, so
    /// replay can rebuild the identical resident index.
    StreamOpened {
        /// `key=value` header line reproducing the resident spec.
        line: String,
    },
    /// A stream operation (batch / append / delete) was accepted with
    /// this sequence number; `line` is the op re-encoded in the stream
    /// grammar. Mutations replay by re-applying the line; batches
    /// without a matching completion re-execute.
    BatchSubmitted {
        /// Monotonic stream sequence number.
        batch: u64,
        /// `key=value` op line reproducing the operation.
        line: String,
    },
    /// A stream batch finished; its result is durable here, so a
    /// resumed stream re-reports it exactly once instead of re-probing.
    BatchCompleted {
        /// Monotonic stream sequence number.
        batch: u64,
        /// Joined pairs produced by the batch.
        pairs: u64,
        /// Order-independent join checksum contribution.
        checksum: u64,
        /// Rows whose target was not live at probe time.
        misses: u64,
    },
}

impl JournalRecord {
    /// Stable snake_case kind tag (mirrors trace-event naming).
    pub fn kind(&self) -> &'static str {
        match self {
            JournalRecord::AreaCreated { .. } => "area_created",
            JournalRecord::AreaDeleted { .. } => "area_deleted",
            JournalRecord::JobSubmitted { .. } => "job_submitted",
            JournalRecord::Checkpoint { .. } => "checkpoint",
            JournalRecord::JobCompleted { .. } => "job_completed",
            JournalRecord::JobDispatched { .. } => "job_dispatched",
            JournalRecord::NodeLost { .. } => "node_lost",
            JournalRecord::StreamOpened { .. } => "stream_opened",
            JournalRecord::BatchSubmitted { .. } => "batch_submitted",
            JournalRecord::BatchCompleted { .. } => "batch_completed",
        }
    }

    /// Encode into the framed, checksummed wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(32);
        match self {
            JournalRecord::AreaCreated { name, disk, bytes } => {
                body.push(T_AREA_CREATED);
                put_str(&mut body, name);
                body.extend_from_slice(&disk.to_le_bytes());
                body.extend_from_slice(&bytes.to_le_bytes());
            }
            JournalRecord::AreaDeleted { name } => {
                body.push(T_AREA_DELETED);
                put_str(&mut body, name);
            }
            JournalRecord::JobSubmitted { job, line } => {
                body.push(T_JOB_SUBMITTED);
                body.extend_from_slice(&job.to_le_bytes());
                put_str(&mut body, line);
            }
            JournalRecord::Checkpoint { job, pass } => {
                body.push(T_CHECKPOINT);
                body.extend_from_slice(&job.to_le_bytes());
                body.extend_from_slice(&pass.to_le_bytes());
            }
            JournalRecord::JobCompleted {
                job,
                pairs,
                checksum,
                ok,
            } => {
                body.push(T_JOB_COMPLETED);
                body.extend_from_slice(&job.to_le_bytes());
                body.extend_from_slice(&pairs.to_le_bytes());
                body.extend_from_slice(&checksum.to_le_bytes());
                body.push(*ok as u8);
            }
            JournalRecord::JobDispatched { job, node } => {
                body.push(T_JOB_DISPATCHED);
                body.extend_from_slice(&job.to_le_bytes());
                put_str(&mut body, node);
            }
            JournalRecord::NodeLost { node } => {
                body.push(T_NODE_LOST);
                put_str(&mut body, node);
            }
            JournalRecord::StreamOpened { line } => {
                body.push(T_STREAM_OPENED);
                put_str(&mut body, line);
            }
            JournalRecord::BatchSubmitted { batch, line } => {
                body.push(T_BATCH_SUBMITTED);
                body.extend_from_slice(&batch.to_le_bytes());
                put_str(&mut body, line);
            }
            JournalRecord::BatchCompleted {
                batch,
                pairs,
                checksum,
                misses,
            } => {
                body.push(T_BATCH_COMPLETED);
                body.extend_from_slice(&batch.to_le_bytes());
                body.extend_from_slice(&pairs.to_le_bytes());
                body.extend_from_slice(&checksum.to_le_bytes());
                body.extend_from_slice(&misses.to_le_bytes());
            }
        }
        let mut out = Vec::with_capacity(body.len() + 8);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out
    }

    /// Decode one record from the front of `buf`. Returns the record
    /// and the total frame bytes consumed, or `None` for anything that
    /// is not a complete, checksum-valid record.
    pub fn decode(buf: &[u8]) -> Option<(JournalRecord, usize)> {
        let len = u32::from_le_bytes(buf.get(0..4)?.try_into().ok()?) as usize;
        // A zero body cannot hold a type byte; this also rejects the
        // zero-filled unused tail of a pre-sized journal file.
        if len == 0 {
            return None;
        }
        let body = buf.get(4..4 + len)?;
        let crc = u32::from_le_bytes(buf.get(4 + len..8 + len)?.try_into().ok()?);
        if crc32(body) != crc {
            return None;
        }
        let mut cur = Cursor { buf: body, pos: 0 };
        let rec = match cur.u8()? {
            T_AREA_CREATED => JournalRecord::AreaCreated {
                name: cur.string()?,
                disk: cur.u32()?,
                bytes: cur.u64()?,
            },
            T_AREA_DELETED => JournalRecord::AreaDeleted {
                name: cur.string()?,
            },
            T_JOB_SUBMITTED => JournalRecord::JobSubmitted {
                job: cur.u64()?,
                line: cur.string()?,
            },
            T_CHECKPOINT => JournalRecord::Checkpoint {
                job: cur.u64()?,
                pass: cur.u32()?,
            },
            T_JOB_COMPLETED => JournalRecord::JobCompleted {
                job: cur.u64()?,
                pairs: cur.u64()?,
                checksum: cur.u64()?,
                ok: cur.u8()? != 0,
            },
            T_JOB_DISPATCHED => JournalRecord::JobDispatched {
                job: cur.u64()?,
                node: cur.string()?,
            },
            T_NODE_LOST => JournalRecord::NodeLost {
                node: cur.string()?,
            },
            T_STREAM_OPENED => JournalRecord::StreamOpened {
                line: cur.string()?,
            },
            T_BATCH_SUBMITTED => JournalRecord::BatchSubmitted {
                batch: cur.u64()?,
                line: cur.string()?,
            },
            T_BATCH_COMPLETED => JournalRecord::BatchCompleted {
                batch: cur.u64()?,
                pairs: cur.u64()?,
                checksum: cur.u64()?,
                misses: cur.u64()?,
            },
            _ => return None,
        };
        // The payload must be exactly consumed: a valid checksum over a
        // malformed body (e.g. from a future record version) is not
        // accepted.
        if cur.pos != body.len() {
            return None;
        }
        Some((rec, 8 + len))
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        let s = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn string(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<JournalRecord> {
        vec![
            JournalRecord::AreaCreated {
                name: "w.RP_0#t3".into(),
                disk: 0,
                bytes: 65_536,
            },
            JournalRecord::AreaDeleted {
                name: "RS_2".into(),
            },
            JournalRecord::JobSubmitted {
                job: 7,
                line: "name=q1 objects=2000 d=2 seed=9".into(),
            },
            JournalRecord::Checkpoint { job: 7, pass: 1 },
            JournalRecord::JobCompleted {
                job: 7,
                pairs: 2000,
                checksum: 0xDEAD_BEEF_CAFE,
                ok: true,
            },
            JournalRecord::JobDispatched {
                job: 7,
                node: "node-1".into(),
            },
            JournalRecord::NodeLost {
                node: "node-1".into(),
            },
            JournalRecord::StreamOpened {
                line: "resident=s0 objects=4000 d=2 seed=5".into(),
            },
            JournalRecord::BatchSubmitted {
                batch: 12,
                line: "batch=b12 objects=256 seed=12".into(),
            },
            JournalRecord::BatchCompleted {
                batch: 12,
                pairs: 250,
                checksum: 0xFEED_F00D,
                misses: 6,
            },
        ]
    }

    #[test]
    fn encode_decode_round_trips() {
        for rec in samples() {
            let wire = rec.encode();
            let (back, used) = JournalRecord::decode(&wire).unwrap();
            assert_eq!(back, rec);
            assert_eq!(used, wire.len());
            // Re-encoding is bitwise identical.
            assert_eq!(back.encode(), wire);
        }
    }

    #[test]
    fn any_truncation_is_rejected() {
        for rec in samples() {
            let wire = rec.encode();
            for cut in 0..wire.len() {
                assert!(
                    JournalRecord::decode(&wire[..cut]).is_none(),
                    "{}: truncation to {cut} accepted",
                    rec.kind()
                );
            }
        }
    }

    #[test]
    fn any_single_bit_flip_is_rejected() {
        let rec = JournalRecord::JobSubmitted {
            job: 3,
            line: "objects=1000".into(),
        };
        let wire = rec.encode();
        for byte in 0..wire.len() {
            for bit in 0..8 {
                let mut bad = wire.clone();
                bad[byte] ^= 1 << bit;
                match JournalRecord::decode(&bad) {
                    None => {}
                    // A flip in the length prefix may still frame a
                    // valid-looking record only if the checksum agrees —
                    // which CRC32 makes impossible for a 1-bit change.
                    Some((got, _)) => assert_eq!(got, rec, "flip at {byte}.{bit} misdecoded"),
                }
            }
        }
    }

    #[test]
    fn zero_fill_terminates() {
        assert!(JournalRecord::decode(&[0u8; 64]).is_none());
        assert!(JournalRecord::decode(&[]).is_none());
    }
}
