//! # mmjoin-recovery — crash consistency for memory-mapped joins
//!
//! A memory-mapped store makes writes durable *lazily*: dirty pages
//! reach disk when the pager evicts them or when `msync` forces them.
//! A crash therefore leaves the store in an arbitrary page-granular
//! mixture of old and new bytes — the classic torn-write problem. This
//! crate provides the machinery the join service uses to survive that:
//!
//! * [`crc::crc32`] — the CRC32 (IEEE) checksum guarding every record;
//! * [`JournalRecord`] — the record vocabulary (area lifecycle, job
//!   admission, per-pass checkpoints, job completion) with a framed,
//!   checksummed, total-decode wire format;
//! * [`Journal`] — an append-only write-ahead log over one [`Env`]
//!   file, committing with the flush-before-commit ordering
//!   (data `sync` → header write → header `sync`);
//! * [`ReplayState`] / [`gc_orphans`] — folding a replayed record
//!   prefix into recovered state and deleting every storage area the
//!   journal does not vouch for.
//!
//! The paper's staged join structure is what makes coarse-grained
//! checkpointing natural: pass boundaries (pass 0 scan/partition,
//! pass 1 staggered phases, pass 2 local join) are the only points
//! where a join's temporary areas form a consistent cut, so those are
//! the points the journal records.
//!
//! [`Env`]: mmjoin_env::Env

pub mod crc;
pub mod journal;
pub mod record;
pub mod replay;

pub use crc::crc32;
pub use journal::{Journal, JournalStats, Replayed, DEFAULT_CAPACITY, HEADER_SIZE};
pub use record::JournalRecord;
pub use replay::{gc_orphans, BatchState, JobState, ReplayState};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::record::JournalRecord;
    use crate::replay::ReplayState;

    /// Deterministic name from a seed, exercising the characters real
    /// area names use (including the shard `#tag` suffix and empties).
    fn name_from(seed: u64) -> String {
        const STEMS: [&str; 6] = ["R", "RS", "w.RP", "w.SP", "out", ""];
        let stem = STEMS[(seed % 6) as usize];
        match (seed / 6) % 3 {
            0 => format!("{stem}_{}", seed % 10),
            1 => format!("{stem}_{}#t{}", seed % 10, seed % 4),
            _ => stem.to_string(),
        }
    }

    /// Arbitrary record, decoded from a flat tuple (the shim has no
    /// `prop_oneof!`/`any::<T>()`; a selector field plays that role).
    fn record_from((sel, a, b, c, flag): (u32, u64, u64, u64, bool)) -> JournalRecord {
        match sel {
            0 => JournalRecord::AreaCreated {
                name: name_from(a),
                disk: (b % 8) as u32,
                bytes: c,
            },
            1 => JournalRecord::AreaDeleted { name: name_from(a) },
            2 => JournalRecord::JobSubmitted {
                job: a,
                line: format!(
                    "name=j{} objects={} d={} seed={}",
                    a % 50,
                    b % 100_000,
                    b % 8,
                    c
                ),
            },
            3 => JournalRecord::Checkpoint {
                job: a,
                pass: (b % 4) as u32,
            },
            4 => JournalRecord::JobCompleted {
                job: a,
                pairs: b,
                checksum: c,
                ok: flag,
            },
            5 => JournalRecord::JobDispatched {
                job: a,
                node: format!("node-{}", b % 5),
            },
            6 => JournalRecord::NodeLost {
                node: format!("node-{}", a % 5),
            },
            7 => JournalRecord::StreamOpened {
                line: format!(
                    "resident=s{} objects={} d={} seed={}",
                    a % 9,
                    b % 100_000,
                    b % 8,
                    c
                ),
            },
            8 => JournalRecord::BatchSubmitted {
                batch: a,
                line: format!("batch=b{} objects={} seed={}", a % 50, b % 10_000, c),
            },
            _ => JournalRecord::BatchCompleted {
                batch: a,
                pairs: b,
                checksum: c,
                misses: b % 7,
            },
        }
    }

    fn arb_record() -> impl Strategy<Value = JournalRecord> {
        (
            0u32..10,
            0u64..u64::MAX,
            0u64..u64::MAX,
            0u64..u64::MAX,
            proptest::bool::ANY,
        )
            .prop_map(record_from)
    }

    proptest! {
        /// Satellite: journal encode/decode round-trips bitwise for
        /// arbitrary records.
        #[test]
        fn encode_decode_round_trips_bitwise(rec in arb_record()) {
            let wire = rec.encode();
            let (back, used) = JournalRecord::decode(&wire).expect("own encoding decodes");
            prop_assert_eq!(used, wire.len());
            prop_assert_eq!(&back, &rec);
            prop_assert_eq!(back.encode(), wire);
        }

        /// Satellite: any prefix-truncated journal image (a torn tail)
        /// replays to a consistent prefix state — exactly the records
        /// wholly before the cut, never a phantom or corrupted record.
        #[test]
        fn torn_tail_replays_to_consistent_prefix(
            recs in proptest::collection::vec(arb_record(), 1..8),
            cut_frac in 0.0f64..1.0,
        ) {
            let mut image = Vec::new();
            let mut ends = Vec::new();
            for rec in &recs {
                image.extend_from_slice(&rec.encode());
                ends.push(image.len());
            }
            let cut = ((image.len() as f64) * cut_frac) as usize;
            let torn = &image[..cut];

            // Scan exactly as Journal::open does.
            let mut got = Vec::new();
            let mut off = 0;
            while let Some((rec, used)) = JournalRecord::decode(&torn[off..]) {
                got.push(rec);
                off += used;
            }

            // The accepted records are precisely the whole ones.
            let whole = ends.iter().filter(|&&e| e <= cut).count();
            prop_assert_eq!(got.len(), whole);
            prop_assert_eq!(&got[..], &recs[..whole]);

            // And the fold over them is a state the full history passed
            // through (prefix-fold equality).
            let st = ReplayState::from_records(&got);
            let expect = ReplayState::from_records(&recs[..whole]);
            prop_assert_eq!(st.live_areas, expect.live_areas);
            prop_assert_eq!(st.jobs, expect.jobs);
        }
    }
}
