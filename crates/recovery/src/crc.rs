//! CRC32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the
//! checksum guarding every journal record and the journal header.
//!
//! Table-driven, built at compile time; no external dependencies. The
//! choice mirrors what real write-ahead logs ship (e.g. ext4's jbd2 and
//! PostgreSQL's WAL both checksum records) and is strong enough to
//! detect the failure modes the fault layer injects: torn tails (the
//! truncated record's CRC field is part of the missing suffix or covers
//! bytes that never landed) and single-bit corruption (CRC32 detects
//! all single-bit errors).

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"journal record payload".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}.{bit} undetected");
            }
        }
    }

    #[test]
    fn detects_truncation() {
        let data = b"0123456789abcdef";
        let full = crc32(data);
        for cut in 0..data.len() {
            assert_ne!(crc32(&data[..cut]), full, "truncation to {cut} undetected");
        }
    }
}
