//! The sharded service: the global budget partitioned across N shards,
//! each owning its own admission queue, worker pool, and counters.
//!
//! The paper's staggered-phase schedule removes disk contention *inside*
//! one join; the single-queue [`Service`](crate::Service) still funnels
//! every job through one lock, one queue, and one budget — a
//! single-resource bottleneck. [`ShardedService`] splits the service
//! itself, shared-nothing style:
//!
//! * the global budget is partitioned into per-shard slices (quotient
//!   split; remainders spread over the first shards), so the *sum of
//!   per-shard reservations can never exceed the global budget* — each
//!   shard enforces its own slice locally, without a global lock;
//! * a [`Placement`] policy picks the owning shard at submission time
//!   (round-robin, least-reserved-bytes, or planner-predicted backlog
//!   balance);
//! * each shard runs `cfg.workers` worker threads against its own queue
//!   under the configured [`AdmissionPolicy`](crate::AdmissionPolicy);
//! * an idle shard with free budget **steals** queued-but-unadmitted
//!   jobs from the sibling with the deepest queue (taking the most
//!   recently placed job first, so the victim's FIFO head is never
//!   overtaken), which corrects placements that turn out unbalanced.
//!
//! Stealing invariants: a job is only ever held by one shard (removal
//! from the victim's queue happens under the victim's lock; admission
//! on the thief under the thief's lock; the two are never held at
//! once), admission is re-checked against the thief's slice at admit
//! time, and a steal that loses its room re-queues the job on the thief
//! — never drops it.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Instant;

use mmjoin_env::TraceEvent;

use crate::admission::Candidate;
use crate::job::{JobId, JobRequest, JobResult};
use crate::placement::{Placement, ShardLoad};
use crate::recovery::{plan_resume, ResumeOutcome, ServiceJournal};
use crate::service::{run_job, JobHost, JoinService, Queued, ServeConfig};
use crate::stats::ServiceStats;

use mmjoin::choose;
use mmjoin_recovery::JournalRecord;
use std::sync::Arc;

/// One budget slice with its queue and counters.
struct Shard {
    /// This shard's slice of the global budget, in bytes.
    budget_bytes: u64,
    state: Mutex<ShardState>,
    /// Signalled when this shard's workers may be able to make progress
    /// (new local work, freed budget anywhere, shutdown).
    work: Condvar,
}

#[derive(Default)]
struct ShardState {
    pending: VecDeque<Queued>,
    /// Bytes reserved by running jobs.
    used_bytes: u64,
    /// Footprint bytes of queued (not yet admitted) jobs.
    queued_bytes: u64,
    /// Planner-predicted seconds of queued plus running jobs.
    backlog_seconds: f64,
    running: usize,
    stats: ServiceStats,
    shutdown: bool,
}

impl Shard {
    fn lock(&self) -> MutexGuard<'_, ShardState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn load(&self, id: u32) -> ShardLoad {
        let st = self.lock();
        ShardLoad {
            shard: id,
            budget_bytes: self.budget_bytes,
            reserved_bytes: st.used_bytes + st.queued_bytes,
            queued: st.pending.len(),
            backlog_seconds: st.backlog_seconds,
        }
    }

    /// Per-shard stats snapshot with budget fields filled in.
    fn stats_snapshot(&self) -> ServiceStats {
        let st = self.lock();
        let mut stats = st.stats.clone();
        stats.budget_bytes = self.budget_bytes;
        stats.budget_leak_bytes = if st.running == 0 { st.used_bytes } else { 0 };
        stats
    }
}

/// Submission and completion bookkeeping shared by every shard.
#[derive(Default)]
struct Global {
    next_id: JobId,
    placed: u64,
    finished: u64,
    rejected: u64,
    results: Vec<JobResult>,
    /// Startup replay counters (`--resume`), reported through the
    /// merged [`ServiceStats`].
    journal_replayed_records: u64,
    journal_torn_bytes: u64,
    journal_orphans_deleted: u64,
    journal_resumed_jobs: u64,
}

struct ShardedInner {
    cfg: ServeConfig,
    placement: Box<dyn Placement>,
    shards: Vec<Shard>,
    /// Write-ahead journal shared by every shard, when configured.
    journal: Option<Arc<ServiceJournal>>,
    global: Mutex<Global>,
    /// Signalled under `global` when a job completes (for `drain`).
    done: Condvar,
    /// Service start; lifecycle trace timestamps are seconds since it.
    origin: Instant,
}

impl ShardedInner {
    fn global_lock(&self) -> MutexGuard<'_, Global> {
        self.global.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn trace(&self, event: TraceEvent) {
        if self.cfg.trace.enabled() {
            self.cfg
                .trace
                .emit(self.origin.elapsed().as_secs_f64(), event);
        }
    }

    /// Wake every shard's workers: local admission and steal
    /// opportunities both span shards.
    fn kick_all(&self) {
        for s in &self.shards {
            s.work.notify_all();
        }
    }

    fn loads(&self) -> Vec<ShardLoad> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| s.load(i as u32))
            .collect()
    }
}

/// A shard's view of the execution core: degradations release bytes
/// back to the *owning shard's* slice, and every shard may then admit.
struct ShardHost<'a> {
    inner: &'a ShardedInner,
    shard: usize,
}

impl JobHost for ShardHost<'_> {
    fn cfg(&self) -> &ServeConfig {
        &self.inner.cfg
    }

    fn trace(&self, event: TraceEvent) {
        self.inner.trace(event);
    }

    fn release(&self, bytes: u64) {
        {
            let mut st = self.inner.shards[self.shard].lock();
            st.used_bytes -= bytes;
        }
        self.inner.kick_all();
    }

    fn journal(&self) -> Option<&Arc<ServiceJournal>> {
        self.inner.journal.as_ref()
    }
}

/// A running sharded join service. Dropping it shuts the workers down;
/// use [`ShardedService::finish`] to also collect results and stats.
pub struct ShardedService {
    inner: std::sync::Arc<ShardedInner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ShardedService {
    /// Start `shards` shards, each with a `cfg.budget_bytes / shards`
    /// slice of the global budget (remainder bytes spread over the
    /// first shards) and `cfg.workers` worker threads of its own.
    pub fn start(
        cfg: ServeConfig,
        shards: u32,
        placement: Box<dyn Placement>,
    ) -> Result<ShardedService, String> {
        let n = shards.max(1) as usize;
        let workers_per_shard = cfg.workers.max(1);
        let base = cfg.budget_bytes / n as u64;
        let rem = cfg.budget_bytes % n as u64;
        let shards: Vec<Shard> = (0..n)
            .map(|i| Shard {
                budget_bytes: base + u64::from((i as u64) < rem),
                state: Mutex::new(ShardState::default()),
                work: Condvar::new(),
            })
            .collect();
        let (journal, resume_plan) = match &cfg.journal_dir {
            Some(dir) => {
                let (j, plan) = ServiceJournal::open(dir, cfg.resume, cfg.trace.clone())?;
                (Some(j), plan)
            }
            None => (None, None),
        };
        let outcome = match resume_plan {
            Some(plan) => Some(plan_resume(&cfg, plan)?),
            None => None,
        };
        let inner = std::sync::Arc::new(ShardedInner {
            cfg,
            placement,
            shards,
            journal,
            global: Mutex::new(Global::default()),
            done: Condvar::new(),
            origin: Instant::now(),
        });
        if let Some(outcome) = outcome {
            apply_resume(&inner, outcome)?;
        }
        let mut handles = Vec::with_capacity(n * workers_per_shard);
        for shard in 0..n {
            for w in 0..workers_per_shard {
                let worker_inner = std::sync::Arc::clone(&inner);
                match std::thread::Builder::new()
                    .name(format!("mmjoin-shard-{shard}-{w}"))
                    .spawn(move || shard_worker(&worker_inner, shard))
                {
                    Ok(h) => handles.push(h),
                    Err(e) => {
                        let mut svc = ShardedService {
                            inner,
                            workers: handles,
                        };
                        svc.stop();
                        return Err(format!("cannot spawn shard {shard} worker {w}: {e}"));
                    }
                }
            }
        }
        Ok(ShardedService {
            inner,
            workers: handles,
        })
    }

    /// The configured global budget (the sum of every shard's slice).
    pub fn budget_bytes(&self) -> u64 {
        self.inner.cfg.budget_bytes
    }

    /// Per-shard budget slices, in shard order.
    pub fn shard_budgets(&self) -> Vec<u64> {
        self.inner.shards.iter().map(|s| s.budget_bytes).collect()
    }

    /// Drain, stop the workers, and return every result plus the merged
    /// counters.
    pub fn finish(mut self) -> (Vec<JobResult>, ServiceStats) {
        JoinService::drain(&self);
        self.stop();
        let results = std::mem::take(&mut self.inner.global_lock().results);
        let stats = JoinService::stats(&self);
        (results, stats)
    }

    fn stop(&mut self) {
        for s in &self.inner.shards {
            s.lock().shutdown = true;
        }
        self.inner.kick_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ShardedService {
    fn drop(&mut self) {
        self.stop();
    }
}

impl JoinService for ShardedService {
    /// Plan and place one job. Returns its id, or an error if no
    /// shard's budget slice could *ever* hold its footprint — the
    /// sharded analogue of the single-queue submit-time rejection
    /// (note it is stricter: the threshold is the largest slice, not
    /// the whole budget).
    fn submit(&self, mut req: JobRequest) -> Result<JobId, String> {
        // Capture the submitted form before auto-planning mutates the
        // grants (see the single-queue submit): the journal stores the
        // original `plan=auto` line; footprint, placement, and
        // admission all see the *chosen* grants.
        let original_line = req.to_line();
        let resolved = crate::plan::resolve_auto(&self.inner.cfg, &mut req)?;
        let footprint = req.footprint();
        let plan = match &resolved {
            Some(r) => r.auto.choice.clone(),
            None => choose(self.inner.cfg.machine()?, &req.planner_inputs()),
        };
        let cand = Candidate {
            footprint,
            predicted_seconds: plan.predicted_seconds(),
        };
        let loads = self.inner.loads();
        let Some(k) = self.inner.placement.place(&cand, &loads) else {
            let max = loads.iter().map(|l| l.budget_bytes).max().unwrap_or(0);
            self.inner.global_lock().rejected += 1;
            return Err(format!(
                "job footprint {footprint} B exceeds every shard's budget slice (largest {max} B)"
            ));
        };
        let id = {
            let mut g = self.inner.global_lock();
            g.next_id += 1;
            g.placed += 1;
            let id = g.next_id;
            // Journal-before-queue, under the id-assigning lock (see
            // the single-queue submit).
            if let Some(j) = &self.inner.journal {
                j.append_commit(&JournalRecord::JobSubmitted {
                    job: id,
                    line: original_line,
                });
            }
            id
        };
        {
            let mut st = self.inner.shards[k].lock();
            st.pending.push_back(Queued {
                id,
                req,
                plan,
                enqueued: Instant::now(),
            });
            st.queued_bytes += footprint;
            st.backlog_seconds += cand.predicted_seconds;
            st.stats.submitted += 1;
        }
        if let Some(r) = &resolved {
            for ev in r.trace_events(id) {
                self.inner.trace(ev);
            }
        }
        self.inner.trace(TraceEvent::JobSubmitted {
            job: id,
            footprint,
            shard: k as u32,
        });
        // Every shard wakes: the owner to admit, idle siblings to steal.
        self.inner.kick_all();
        Ok(id)
    }

    fn drain(&self) {
        let mut g = self.inner.global_lock();
        while g.finished < g.placed {
            g = self.inner.done.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn results(&self) -> Vec<JobResult> {
        self.inner.global_lock().results.clone()
    }

    /// Merged counters: per-shard snapshots folded with
    /// [`ServiceStats::merge`], plus the global rejection count.
    fn stats(&self) -> ServiceStats {
        let mut merged = ServiceStats::default();
        for s in &self.inner.shards {
            merged.merge(&s.stats_snapshot());
        }
        {
            let g = self.inner.global_lock();
            merged.rejected = g.rejected;
            merged.journal_replayed_records = g.journal_replayed_records;
            merged.journal_torn_bytes = g.journal_torn_bytes;
            merged.journal_orphans_deleted = g.journal_orphans_deleted;
            merged.journal_resumed_jobs = g.journal_resumed_jobs;
        }
        if let Some(j) = &self.inner.journal {
            let js = j.stats();
            merged.journal_appended_records = js.appended_records;
            merged.journal_commits = js.commits;
        }
        merged
    }

    fn shard_stats(&self) -> Vec<ServiceStats> {
        self.inner
            .shards
            .iter()
            .map(Shard::stats_snapshot)
            .collect()
    }

    fn shards(&self) -> u32 {
        self.inner.shards.len() as u32
    }
}

/// Install a replayed journal's outcome into a freshly-built sharded
/// service (before its workers start). Completed jobs are re-reported
/// through shard 0's counters; in-flight jobs are re-placed under their
/// original ids by the configured placement policy.
fn apply_resume(inner: &ShardedInner, outcome: ResumeOutcome) -> Result<(), String> {
    inner.trace(outcome.trace_event());
    {
        let mut g = inner.global_lock();
        g.next_id = g.next_id.max(outcome.next_id);
        g.journal_replayed_records = outcome.records;
        g.journal_torn_bytes = outcome.torn_bytes;
        g.journal_orphans_deleted = outcome.orphans_deleted;
        g.journal_resumed_jobs = outcome.pending.len() as u64;
    }
    let finish = |r: JobResult| {
        {
            let mut st = inner.shards[0].lock();
            st.stats.submitted += 1;
            st.stats.record(&r, None, None);
        }
        let mut g = inner.global_lock();
        g.placed += 1;
        g.finished += 1;
        g.results.push(r);
    };
    for r in outcome.finished {
        finish(r);
    }
    for (id, mut req) in outcome.pending {
        // Journaled `plan=auto` lines re-resolve to the identical plan
        // here: the sampler is seeded from the workload seed.
        let resolved = crate::plan::resolve_auto(&inner.cfg, &mut req)?;
        let footprint = req.footprint();
        let plan = match &resolved {
            Some(r) => r.auto.choice.clone(),
            None => choose(inner.cfg.machine()?, &req.planner_inputs()),
        };
        let cand = Candidate {
            footprint,
            predicted_seconds: plan.predicted_seconds(),
        };
        let Some(k) = inner.placement.place(&cand, &inner.loads()) else {
            // The journal came from a differently-shaped service and no
            // slice can ever hold this job: fail it visibly rather than
            // queue it forever (which would hang every drain).
            let mut r = resumed_failure(id, &req, &plan);
            r.error = Some(format!(
                "resumed job footprint {footprint} B exceeds every shard's budget slice"
            ));
            finish(r);
            continue;
        };
        inner.global_lock().placed += 1;
        {
            let mut st = inner.shards[k].lock();
            st.pending.push_back(Queued {
                id,
                req,
                plan,
                enqueued: Instant::now(),
            });
            st.queued_bytes += footprint;
            st.backlog_seconds += cand.predicted_seconds;
            st.stats.submitted += 1;
        }
        if let Some(r) = &resolved {
            for ev in r.trace_events(id) {
                inner.trace(ev);
            }
        }
        inner.trace(TraceEvent::JobSubmitted {
            job: id,
            footprint,
            shard: k as u32,
        });
    }
    inner.kick_all();
    Ok(())
}

/// A terminal result for a resumed job that could not be re-queued.
fn resumed_failure(id: JobId, req: &JobRequest, plan: &mmjoin::PlanChoice) -> JobResult {
    JobResult {
        id,
        shard: 0,
        name: req.name.clone(),
        alg: req.alg.unwrap_or_else(|| plan.algorithm.into()),
        predicted_seconds: plan.predicted_seconds(),
        pairs: 0,
        checksum: 0,
        verified: false,
        env_elapsed: 0.0,
        queue_wait: 0.0,
        exec_wall: 0.0,
        read_faults: 0,
        write_backs: 0,
        attempts: 0,
        retries: 0,
        faults_injected: 0,
        degraded: 0,
        released_bytes: 0,
        cleaned_files: 0,
        deadline_hit: false,
        panicked: false,
        resumed: true,
        error: None,
    }
}

/// Pop the best steal candidate: scan siblings in descending
/// queued-bytes order and take the *most recently placed* fitting job
/// from the deepest queue. Locks are only ever held one at a time.
fn steal(inner: &ShardedInner, me: usize, free_hint: u64) -> Option<(Queued, u32)> {
    let mut order: Vec<(u64, usize)> = inner
        .shards
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != me)
        .map(|(i, s)| (s.lock().queued_bytes, i))
        .filter(|&(qb, _)| qb > 0)
        .collect();
    order.sort_by_key(|&(queued_bytes, _)| std::cmp::Reverse(queued_bytes));
    for (_, v) in order {
        let mut st = inner.shards[v].lock();
        if let Some(pos) = st
            .pending
            .iter()
            .rposition(|q| q.req.footprint() <= free_hint)
        {
            let q = st.pending.remove(pos).expect("position exists under lock");
            st.queued_bytes -= q.req.footprint();
            st.backlog_seconds = (st.backlog_seconds - q.plan.predicted_seconds()).max(0.0);
            return Some((q, v as u32));
        }
    }
    None
}

fn shard_worker(inner: &ShardedInner, me: usize) {
    let shard = &inner.shards[me];
    loop {
        let mut st = shard.lock();
        // Find the next job: own queue first, then stealing.
        let (job, from) = loop {
            if st.shutdown {
                return;
            }
            let free = shard.budget_bytes - st.used_bytes;
            let candidates: Vec<Candidate> = st
                .pending
                .iter()
                .map(|q| Candidate {
                    footprint: q.req.footprint(),
                    predicted_seconds: q.plan.predicted_seconds(),
                })
                .collect();
            if let Some(q) = inner
                .cfg
                .policy
                .pick(&candidates, free)
                .and_then(|idx| st.pending.remove(idx))
            {
                st.queued_bytes -= q.req.footprint();
                break (q, me as u32);
            }
            // Steal only when the local queue cannot make progress at
            // all and this shard has room — an idle shard, not a greedy
            // one (at most one stolen job is ever re-queued locally, so
            // stealing cannot hoard a sibling's backlog).
            if st.pending.is_empty() && free > 0 {
                drop(st);
                if let Some((q, from)) = steal(inner, me, free) {
                    inner.trace(TraceEvent::JobStolen {
                        job: q.id,
                        from,
                        to: me as u32,
                    });
                    st = shard.lock();
                    let fp = q.req.footprint();
                    if fp <= shard.budget_bytes - st.used_bytes {
                        break (q, from);
                    }
                    // The room disappeared between the hint and now:
                    // keep the job runnable at this shard's queue head.
                    st.queued_bytes += fp;
                    st.backlog_seconds += q.plan.predicted_seconds();
                    st.pending.push_front(q);
                    continue;
                }
                st = shard.lock();
                // Re-check before sleeping: work may have arrived while
                // the lock was dropped for the steal scan.
                if !st.pending.is_empty() || st.shutdown {
                    continue;
                }
            }
            st = shard.work.wait(st).unwrap_or_else(|e| e.into_inner());
        };
        let footprint = job.req.footprint();
        let predicted = job.plan.predicted_seconds();
        let stolen = from != me as u32;
        st.used_bytes += footprint;
        st.running += 1;
        if stolen {
            // A stolen job joins this shard's backlog for the duration
            // of its run (it left the victim's at steal time).
            st.backlog_seconds += predicted;
        }
        st.stats.peak_budget_bytes = st.stats.peak_budget_bytes.max(st.used_bytes);
        let used = st.used_bytes;
        drop(st);
        inner.trace(TraceEvent::JobAdmitted {
            job: job.id,
            footprint,
            used,
            shard: me as u32,
        });

        let host = ShardHost { inner, shard: me };
        let (result, folded, passes) = run_job(&host, job, me as u32);

        // Journal the terminal result before it becomes visible in
        // memory: a crash after this commit re-reports, never re-runs.
        if let Some(j) = &inner.journal {
            j.append_commit(&JournalRecord::JobCompleted {
                job: result.id,
                pairs: result.pairs,
                checksum: result.checksum,
                ok: result.error.is_none() && result.verified,
            });
        }

        let mut st = shard.lock();
        debug_assert!(result.released_bytes <= footprint);
        // Terminal release: degradations already returned part of the
        // reservation mid-run; exactly the remainder is still held.
        st.used_bytes -= footprint - result.released_bytes;
        st.running -= 1;
        st.backlog_seconds = (st.backlog_seconds - predicted).max(0.0);
        if stolen {
            st.stats.stolen += 1;
        }
        st.stats.record(&result, folded.as_ref(), passes.as_ref());
        let ok = result.error.is_none() && result.verified;
        let degraded = result.degraded;
        let id = result.id;
        drop(st);
        inner.trace(TraceEvent::JobCompleted {
            job: id,
            ok,
            degraded,
        });
        {
            let mut g = inner.global_lock();
            g.finished += 1;
            g.results.push(result);
            inner.done.notify_all();
        }
        // Freed budget may admit or un-starve a queued job anywhere; a
        // finished job may complete a drain.
        inner.kick_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::PAGE;
    use crate::placement::PlacementKind;
    use mmjoin_env::{CollectingSink, TraceSink};
    use std::sync::Arc;

    fn tiny_job(seed: u64, mem_pages: u64) -> JobRequest {
        JobRequest::new(800, 32, 2, mem_pages, seed)
    }

    fn start(
        budget_pages: u64,
        workers: usize,
        shards: u32,
        kind: PlacementKind,
    ) -> ShardedService {
        ShardedService::start(
            ServeConfig::sim(budget_pages * PAGE, workers),
            shards,
            kind.build(),
        )
        .unwrap()
    }

    #[test]
    fn budget_splits_exactly_across_shards() {
        let svc = start(10, 1, 4, PlacementKind::RoundRobin);
        let budgets = svc.shard_budgets();
        assert_eq!(budgets.len(), 4);
        assert_eq!(budgets.iter().sum::<u64>(), 10 * PAGE);
        // Slices differ by at most one byte.
        let (min, max) = (budgets.iter().min(), budgets.iter().max());
        assert!(max.unwrap() - min.unwrap() <= 1);
    }

    #[test]
    fn oversized_for_every_slice_is_rejected() {
        // Global budget 32 pages over 4 shards ⇒ 8-page slices; a
        // 16-page footprint fits the old global budget but no slice.
        let svc = start(32, 1, 4, PlacementKind::LeastLoaded);
        let err = svc.submit(tiny_job(1, 8)).unwrap_err();
        assert!(err.contains("every shard's budget slice"), "{err}");
        let (results, stats) = svc.finish();
        assert!(results.is_empty());
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.submitted, 0);
    }

    #[test]
    fn batch_completes_under_every_placement() {
        for kind in [
            PlacementKind::RoundRobin,
            PlacementKind::LeastLoaded,
            PlacementKind::PredictedBalanced,
        ] {
            let svc = start(64, 1, 4, kind);
            for seed in 0..8 {
                svc.submit(tiny_job(seed, 4)).unwrap();
            }
            let (results, stats) = svc.finish();
            assert_eq!(results.len(), 8, "{}", kind.name());
            assert!(results.iter().all(|r| r.verified && r.error.is_none()));
            assert_eq!(stats.completed, 8);
            assert_eq!(stats.in_flight(), 0);
            assert_eq!(stats.budget_leak_bytes, 0);
            // Budget invariant: every shard's peak stayed within its
            // slice, so the summed reservation never exceeded the
            // global budget.
            assert!(stats.peak_budget_bytes <= stats.budget_bytes);
            assert_eq!(stats.budget_bytes, 64 * PAGE);
        }
    }

    /// A placement that pins everything to shard 0 — the pathological
    /// input work stealing exists to correct.
    struct PinFirst;

    impl Placement for PinFirst {
        fn name(&self) -> &str {
            "pin0"
        }

        fn place(&self, job: &Candidate, loads: &[ShardLoad]) -> Option<usize> {
            loads
                .first()
                .filter(|l| l.budget_bytes >= job.footprint)
                .map(|_| 0)
        }
    }

    #[test]
    fn idle_shard_steals_from_overloaded_sibling() {
        let sink = CollectingSink::new();
        let cfg = ServeConfig::sim(32 * PAGE, 1).with_trace(sink.clone() as Arc<dyn TraceSink>);
        let svc = ShardedService::start(cfg, 2, Box::new(PinFirst)).unwrap();
        for seed in 0..6 {
            svc.submit(tiny_job(seed, 4)).unwrap();
        }
        let (results, stats) = svc.finish();
        assert_eq!(results.len(), 6);
        assert!(results.iter().all(|r| r.verified));
        // Everything was *placed* on shard 0; shard 1 must have stolen
        // at least one queued job and run it.
        assert!(
            results.iter().any(|r| r.shard == 1),
            "shard 1 never ran anything: {:?}",
            results.iter().map(|r| r.shard).collect::<Vec<_>>()
        );
        assert!(stats.stolen >= 1, "no steals recorded: {stats:?}");
        let shard_stats = &stats; // merged
        assert_eq!(shard_stats.completed, 6);
        let events = sink.events();
        let stolen = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::JobStolen { .. }))
            .count();
        assert!(stolen >= 1, "no JobStolen trace events");
        // Every steal goes 0 → 1 here.
        for e in &events {
            if let TraceEvent::JobStolen { from, to, .. } = e {
                assert_eq!((*from, *to), (0, 1));
            }
        }
    }

    #[test]
    fn sharded_jobs_with_faults_retry_and_all_verify() {
        // Jobs run tagged (`#j<id>`), so a failing attempt's cleanup is
        // scoped to its own temporaries; with retries every job heals.
        let cfg = ServeConfig::sim(64 * PAGE, 2)
            .with_faults(mmjoin_env::FaultSpec::parse("seed=5;write:p=0.001:count=2").unwrap())
            .with_retries(6);
        let svc = ShardedService::start(cfg, 2, PlacementKind::LeastLoaded.build()).unwrap();
        for seed in 0..6 {
            JoinService::submit(&svc, tiny_job(seed, 4)).unwrap();
        }
        let (results, stats) = svc.finish();
        assert_eq!(results.len(), 6);
        assert!(
            results.iter().all(|r| r.verified && r.error.is_none()),
            "{:?}",
            results
                .iter()
                .filter(|r| !r.verified)
                .map(|r| (&r.name, &r.error))
                .collect::<Vec<_>>()
        );
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.in_flight(), 0);
    }

    #[test]
    fn sharded_resume_replays_and_requeues_across_shards() {
        let dir = std::env::temp_dir().join(format!("mmjoin-resume-shard-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = || ServeConfig::sim(64 * PAGE, 1).with_journal(dir.clone());
        // First life: two completions on a 2-shard service.
        let svc = ShardedService::start(cfg(), 2, PlacementKind::RoundRobin.build()).unwrap();
        svc.submit(tiny_job(1, 4)).unwrap();
        svc.submit(tiny_job(2, 4)).unwrap();
        let (mut first, _) = svc.finish();
        first.sort_by_key(|r| r.id);
        // An in-flight job at "crash" time.
        {
            let (j, _) =
                crate::recovery::ServiceJournal::open(&dir, true, mmjoin_env::null_sink()).unwrap();
            j.append_commit(&JournalRecord::JobSubmitted {
                job: 3,
                line: tiny_job(7, 4).to_line(),
            });
        }
        // Second life: resume on the sharded service.
        let svc = ShardedService::start(cfg().with_resume(), 2, PlacementKind::LeastLoaded.build())
            .unwrap();
        assert_eq!(JoinService::submit(&svc, tiny_job(9, 4)).unwrap(), 4);
        let (mut results, stats) = svc.finish();
        results.sort_by_key(|r| r.id);
        assert_eq!(results.len(), 4);
        for (r, f) in results[..2].iter().zip(&first) {
            assert!(r.resumed);
            assert_eq!((r.id, r.pairs, r.checksum), (f.id, f.pairs, f.checksum));
        }
        assert!(!results[2].resumed);
        assert!(results[2].verified, "{:?}", results[2].error);
        assert_eq!(stats.journal_resumed_jobs, 1);
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.in_flight(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn single_shard_matches_single_queue_results() {
        let jobs: Vec<JobRequest> = (0..5).map(|s| tiny_job(s, 4)).collect();
        let sharded = start(32, 2, 1, PlacementKind::PredictedBalanced);
        for req in jobs.clone() {
            sharded.submit(req).unwrap();
        }
        let (mut sr, _) = sharded.finish();
        let single = crate::Service::start(ServeConfig::sim(32 * PAGE, 2)).unwrap();
        for req in jobs {
            single.submit(req).unwrap();
        }
        let (mut qr, _) = single.finish();
        sr.sort_by_key(|r| r.id);
        qr.sort_by_key(|r| r.id);
        let key = |r: &JobResult| (r.id, r.pairs, r.checksum, r.verified);
        assert_eq!(
            sr.iter().map(key).collect::<Vec<_>>(),
            qr.iter().map(key).collect::<Vec<_>>()
        );
    }
}
