//! Service-side crash consistency: the write-ahead journal the serve
//! loop appends to, and the restart path that replays it.
//!
//! The journal lives in its own single-disk [`MmapEnv`] (so it is
//! durable across restarts and exercises the same `FileOps::sync`
//! contract the store does), guarded by one mutex — append order in the
//! file is the lock-acquisition order, which is all replay needs.
//!
//! What gets journaled, and when it commits:
//!
//! * `JobSubmitted` — at submission, committed immediately (a client
//!   that got an id back will find its job after a crash);
//! * `AreaCreated` / `AreaDeleted` — as the job's environment emits
//!   `MapSetup`/`MapTeardown` trace events, *uncommitted* (they ride
//!   the next commit: area records only matter if later records prove
//!   the job progressed);
//! * `Checkpoint` — when a pass boundary is crossed, committed (the
//!   paper's pass structure makes these the only consistent cuts);
//! * `JobCompleted` — after the job finishes, committed.
//!
//! On restart with `--resume`, the replayed record prefix is folded
//! into a [`ReplayState`]; completed jobs are re-reported from their
//! journaled results, in-flight jobs are re-submitted under their
//! original ids, and every leftover per-job store directory is
//! garbage-collected through `Env::list_files`/`delete_file` — a job
//! that re-runs starts from scratch, so nothing in its old directory
//! is worth keeping (and `MmapEnv::create_file` would refuse to
//! recreate areas over leftovers anyway).

use std::collections::BTreeSet;
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};

use mmjoin::choose;
use mmjoin_env::{MapOp, ProcId, TraceEvent, TraceSink};
use mmjoin_mmstore::{MmapEnv, MmapEnvConfig};
use mmjoin_recovery::{gc_orphans, Journal, JournalRecord, JournalStats, ReplayState};

use crate::job::{JobId, JobRequest, JobResult, PAGE};
use crate::service::{EnvKind, ServeConfig};

/// Journal file name inside the journal directory's disk 0.
const JOURNAL_FILE: &str = "serve.wal";

/// Journal capacity: generous for thousands of jobs' worth of records.
const JOURNAL_CAPACITY: u64 = 4 << 20;

/// The process identity journal operations are attributed to.
const JOURNAL_PROC: ProcId = ProcId(0);

/// What `Journal::open` replayed, before the service interprets it.
pub(crate) struct ResumePlan {
    /// Folded journal state.
    pub(crate) state: ReplayState,
    /// CRC-valid records adopted.
    pub(crate) records: u64,
    /// Committed bytes lost to a torn or corrupted tail.
    pub(crate) torn_bytes: u64,
}

/// The journal shared by every worker of a service. Append failures are
/// reported to stderr but never fail the job that triggered them: the
/// journal is a recovery aid, and a full journal must not take the
/// service down with it.
pub(crate) struct ServiceJournal {
    inner: Mutex<Journal<MmapEnv>>,
}

impl ServiceJournal {
    /// Open (resuming) or create (fresh) the journal under `dir`.
    ///
    /// A fresh start wipes `dir` first: the directory is dedicated to
    /// the journal, and stale records from an unrelated earlier run
    /// must not leak into this one's replay. Returns the journal plus,
    /// when resuming, the replayed plan.
    pub(crate) fn open(
        dir: &Path,
        resume: bool,
        sink: Arc<dyn TraceSink>,
    ) -> Result<(Arc<ServiceJournal>, Option<ResumePlan>), String> {
        let cfg = MmapEnvConfig {
            root: dir.to_path_buf(),
            num_disks: 1,
            page_size: PAGE,
        };
        if !resume {
            let _ = std::fs::remove_dir_all(dir);
            let env = MmapEnv::new(cfg).map_err(|e| format!("journal env: {e}"))?;
            env.set_trace_sink(sink);
            let journal = Journal::create(env, JOURNAL_FILE, JOURNAL_CAPACITY, JOURNAL_PROC)
                .map_err(|e| format!("journal create: {e}"))?;
            return Ok((
                Arc::new(ServiceJournal {
                    inner: Mutex::new(journal),
                }),
                None,
            ));
        }
        let (env, adopted) = MmapEnv::recover(cfg).map_err(|e| format!("journal env: {e}"))?;
        env.set_trace_sink(sink);
        if adopted.iter().any(|n| n == JOURNAL_FILE) {
            let (journal, replayed) = Journal::open(env, JOURNAL_FILE, JOURNAL_PROC)
                .map_err(|e| format!("journal open: {e}"))?;
            let plan = ResumePlan {
                records: replayed.records.len() as u64,
                torn_bytes: replayed.torn_bytes,
                state: ReplayState::from_records(&replayed.records),
            };
            Ok((
                Arc::new(ServiceJournal {
                    inner: Mutex::new(journal),
                }),
                Some(plan),
            ))
        } else {
            // --resume with no prior journal: first start, nothing to
            // replay.
            let journal = Journal::create(env, JOURNAL_FILE, JOURNAL_CAPACITY, JOURNAL_PROC)
                .map_err(|e| format!("journal create: {e}"))?;
            Ok((
                Arc::new(ServiceJournal {
                    inner: Mutex::new(journal),
                }),
                Some(ResumePlan {
                    state: ReplayState::default(),
                    records: 0,
                    torn_bytes: 0,
                }),
            ))
        }
    }

    fn lock(&self) -> MutexGuard<'_, Journal<MmapEnv>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Append without committing (the record rides the next commit).
    pub(crate) fn append(&self, rec: &JournalRecord) {
        if let Err(e) = self.lock().append(rec) {
            eprintln!("mmjoin-serve: journal append ({}) failed: {e}", rec.kind());
        }
    }

    /// Append and make durable (data sync → header write → header sync).
    pub(crate) fn append_commit(&self, rec: &JournalRecord) {
        if let Err(e) = self.lock().append_commit(rec) {
            eprintln!("mmjoin-serve: journal commit ({}) failed: {e}", rec.kind());
        }
    }

    /// Live journal counters.
    pub(crate) fn stats(&self) -> JournalStats {
        self.lock().stats()
    }
}

/// A trace tee installed on each job's environment when a journal is
/// configured: forwards every event to the real sink and turns the
/// storage-consistency-relevant ones into journal records.
///
/// Pass boundaries are detected from the environment's own `PassEnd`
/// stream: the join's stages are barrier-synchronized, so the first
/// `PassEnd` naming pass `p` proves every process finished pass `p-1`
/// — that is the durable cut the checkpoint records.
pub(crate) struct CheckpointSink {
    inner: Arc<dyn TraceSink>,
    journal: Arc<ServiceJournal>,
    job: JobId,
    /// Highest pass number seen in a `PassEnd`; passes below it are
    /// checkpointed. Never decreases, so a retried join restarting at
    /// pass 0 cannot re-checkpoint (replay's `max` fold would ignore
    /// duplicates anyway).
    max_pass: Mutex<u32>,
}

impl CheckpointSink {
    pub(crate) fn new(
        inner: Arc<dyn TraceSink>,
        journal: Arc<ServiceJournal>,
        job: JobId,
    ) -> CheckpointSink {
        CheckpointSink {
            inner,
            journal,
            job,
            max_pass: Mutex::new(0),
        }
    }

    /// Journal-scoped name for one of this job's storage areas. Jobs
    /// run in per-job directories, so raw area names (`R_0`, ...)
    /// collide across jobs; the prefix keeps the journal's live-area
    /// map per-job.
    fn area(&self, name: &str) -> String {
        format!("job{}/{name}", self.job)
    }
}

impl TraceSink for CheckpointSink {
    fn emit(&self, t: f64, event: TraceEvent) {
        match &event {
            TraceEvent::PassEnd { pass, .. } => {
                let mut max = self.max_pass.lock().unwrap_or_else(|e| e.into_inner());
                if *pass > *max {
                    for done in *max..*pass {
                        let rec = JournalRecord::Checkpoint {
                            job: self.job,
                            pass: done,
                        };
                        if done + 1 == *pass {
                            self.journal.append_commit(&rec);
                        } else {
                            self.journal.append(&rec);
                        }
                    }
                    *max = *pass;
                }
            }
            TraceEvent::MapSetup {
                op: MapOp::New,
                name,
                disk,
                bytes,
                ..
            } => {
                self.journal.append(&JournalRecord::AreaCreated {
                    name: self.area(name),
                    disk: *disk,
                    bytes: *bytes,
                });
            }
            TraceEvent::MapTeardown { name, .. } => {
                self.journal.append(&JournalRecord::AreaDeleted {
                    name: self.area(name),
                });
            }
            _ => {}
        }
        if self.inner.enabled() {
            self.inner.emit(t, event);
        }
    }

    fn enabled(&self) -> bool {
        // The journal needs the map/pass stream even when the real sink
        // discards everything.
        true
    }
}

/// Everything a restarted service must do with a replayed journal,
/// computed up front so both service flavors apply it the same way.
pub(crate) struct ResumeOutcome {
    /// Completed jobs re-reported from their journaled results.
    pub(crate) finished: Vec<JobResult>,
    /// In-flight jobs to re-submit, with their original ids.
    pub(crate) pending: Vec<(JobId, JobRequest)>,
    /// Highest id the journal has seen; id assignment continues above.
    pub(crate) next_id: JobId,
    /// Orphaned store areas deleted during garbage collection.
    pub(crate) orphans_deleted: u64,
    /// CRC-valid records replayed.
    pub(crate) records: u64,
    /// Committed bytes lost to a torn tail.
    pub(crate) torn_bytes: u64,
}

impl ResumeOutcome {
    /// The `RecoveryReplayed` lifecycle event describing this outcome.
    pub(crate) fn trace_event(&self) -> TraceEvent {
        TraceEvent::RecoveryReplayed {
            records: self.records,
            torn: self.torn_bytes,
            orphans_deleted: self.orphans_deleted,
            resumed_jobs: self.pending.len() as u64,
        }
    }
}

/// Interpret a replayed journal against the service configuration:
/// garbage-collect leftover per-job stores, synthesize results for
/// completed jobs, and list the in-flight jobs to re-run.
pub(crate) fn plan_resume(cfg: &ServeConfig, plan: ResumePlan) -> Result<ResumeOutcome, String> {
    let orphans_deleted = match &cfg.env {
        EnvKind::Mmap { root } => gc_job_stores(root)?,
        EnvKind::Sim => 0,
    };
    let mut finished = Vec::new();
    let mut pending = Vec::new();
    for (id, js) in &plan.state.jobs {
        let req = match JobRequest::parse_line(&js.line) {
            Ok(Some(req)) => req,
            Ok(None) | Err(_) => {
                // A torn tail can leave a completion without its
                // submission line only if the journal was tampered with
                // (completion commits after submission); treat an
                // unparseable line as unrecoverable rather than
                // guessing a workload.
                eprintln!(
                    "mmjoin-serve: journal job {id} has no usable submission line ({:?}); dropped",
                    js.line
                );
                continue;
            }
        };
        match js.completed {
            Some((pairs, checksum, ok)) => {
                let plan = choose(cfg.machine()?, &req.planner_inputs());
                finished.push(JobResult {
                    id: *id,
                    shard: 0,
                    name: req.name.clone(),
                    alg: req.alg.unwrap_or_else(|| plan.algorithm.into()),
                    predicted_seconds: plan.predicted_seconds(),
                    pairs,
                    checksum,
                    verified: ok,
                    env_elapsed: 0.0,
                    queue_wait: 0.0,
                    exec_wall: 0.0,
                    read_faults: 0,
                    write_backs: 0,
                    attempts: 0,
                    retries: 0,
                    faults_injected: 0,
                    degraded: 0,
                    released_bytes: 0,
                    cleaned_files: 0,
                    deadline_hit: false,
                    panicked: false,
                    resumed: true,
                    error: if ok {
                        None
                    } else {
                        Some("failed before restart (replayed from journal)".into())
                    },
                });
            }
            None => pending.push((*id, req)),
        }
    }
    Ok(ResumeOutcome {
        next_id: plan.state.max_job_id().unwrap_or(0),
        finished,
        pending,
        orphans_deleted,
        records: plan.records,
        torn_bytes: plan.torn_bytes,
    })
}

/// Delete every leftover per-job store under `root` through the
/// environment's own file table (`Env::list_files` → `delete_file`),
/// then drop the emptied directories. Returns the number of orphaned
/// areas deleted.
fn gc_job_stores(root: &Path) -> Result<u64, String> {
    let mut deleted = 0u64;
    let entries = match std::fs::read_dir(root) {
        Ok(entries) => entries,
        // No store directory yet (nothing ever ran): nothing to GC.
        Err(_) => return Ok(0),
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if !path.is_dir() || !name.starts_with("job") {
            continue;
        }
        // Disk fan-out of the dead store: one `disk{j}` directory per
        // disk it was created with.
        let disks = std::fs::read_dir(&path)
            .map(|it| {
                it.flatten()
                    .filter(|e| e.file_name().to_string_lossy().starts_with("disk"))
                    .count() as u32
            })
            .unwrap_or(0)
            .max(1);
        let (env, _) = MmapEnv::recover(MmapEnvConfig {
            root: path.clone(),
            num_disks: disks,
            page_size: PAGE,
        })
        .map_err(|e| format!("gc: cannot adopt {}: {e}", path.display()))?;
        // Nothing in a dead job's store is vouched for: completed jobs
        // tear their stores down on success, and re-run jobs rebuild
        // from scratch.
        let gone = gc_orphans(
            &env,
            JOURNAL_PROC,
            &ReplayState::default(),
            &BTreeSet::new(),
        )
        .map_err(|e| format!("gc: {}: {e}", path.display()))?;
        deleted += gone.len() as u64;
        let _ = std::fs::remove_dir_all(&path);
    }
    Ok(deleted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmjoin_env::{null_sink, Env};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mmjoin-serve-rec-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fresh_journal_then_resume_round_trips_records() {
        let dir = tmp("roundtrip");
        {
            let (j, plan) = ServiceJournal::open(&dir, false, null_sink()).unwrap();
            assert!(plan.is_none());
            j.append_commit(&JournalRecord::JobSubmitted {
                job: 1,
                line: "objects=800 d=2".into(),
            });
            j.append_commit(&JournalRecord::JobCompleted {
                job: 1,
                pairs: 7,
                checksum: 9,
                ok: true,
            });
            assert_eq!(j.stats().commits, 2);
        }
        let (_j, plan) = ServiceJournal::open(&dir, true, null_sink()).unwrap();
        let plan = plan.expect("resume sees the journal");
        assert_eq!(plan.records, 2);
        assert_eq!(plan.torn_bytes, 0);
        assert_eq!(plan.state.completed_jobs().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_start_wipes_a_prior_journal() {
        let dir = tmp("wipe");
        {
            let (j, _) = ServiceJournal::open(&dir, false, null_sink()).unwrap();
            j.append_commit(&JournalRecord::JobSubmitted {
                job: 1,
                line: "objects=800 d=2".into(),
            });
        }
        {
            let (_j, plan) = ServiceJournal::open(&dir, false, null_sink()).unwrap();
            assert!(plan.is_none());
        }
        let (_j, plan) = ServiceJournal::open(&dir, true, null_sink()).unwrap();
        assert_eq!(plan.unwrap().records, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_sink_journals_pass_boundaries_once() {
        let dir = tmp("ckpt");
        let (j, _) = ServiceJournal::open(&dir, false, null_sink()).unwrap();
        let sink = CheckpointSink::new(null_sink(), Arc::clone(&j), 3);
        let pass_end = |pass| TraceEvent::PassEnd {
            proc: 0,
            pass,
            phase: 0,
            disk: 0,
            area: "R".into(),
            bytes: 0,
            objects: 0,
        };
        sink.emit(0.0, pass_end(0));
        sink.emit(0.1, pass_end(0));
        sink.emit(0.2, pass_end(1));
        sink.emit(0.3, pass_end(1));
        // A retried attempt restarting at pass 0 must not re-checkpoint.
        sink.emit(0.4, pass_end(0));
        sink.emit(0.5, pass_end(2));
        drop(sink);
        drop(j);
        let (_j, plan) = ServiceJournal::open(&dir, true, null_sink()).unwrap();
        let plan = plan.unwrap();
        assert_eq!(plan.records, 2, "exactly two checkpoints journaled");
        assert_eq!(plan.state.jobs[&3].last_pass, Some(1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_removes_leftover_job_stores() {
        let root = tmp("gc");
        // A dead job store with two disks and two leftover areas.
        let env = MmapEnv::new(MmapEnvConfig {
            root: root.join("job7"),
            num_disks: 2,
            page_size: PAGE,
        })
        .unwrap();
        env.create_file(JOURNAL_PROC, "R_0", mmjoin_env::DiskId(0), 4096)
            .unwrap();
        env.create_file(JOURNAL_PROC, "RS_1", mmjoin_env::DiskId(1), 4096)
            .unwrap();
        drop(env);
        // A non-job directory must be left alone.
        std::fs::create_dir_all(root.join("keepme")).unwrap();
        let deleted = gc_job_stores(&root).unwrap();
        assert_eq!(deleted, 2);
        assert!(!root.join("job7").exists());
        assert!(root.join("keepme").exists());
        let _ = std::fs::remove_dir_all(&root);
    }
}
