//! Admission policy: which pending job, if any, may start now.
//!
//! The controller charges each job its `m_rproc × D` footprint against a
//! global memory budget — the paper's per-process budgets summed over
//! the D-fold parallelism — and only admits a job whose footprint fits
//! in what is currently free.

/// What the policy sees of one pending job.
#[derive(Clone, Copy, Debug)]
pub struct Candidate {
    /// `m_rproc × D` in bytes.
    pub footprint: u64,
    /// Planner-predicted seconds for the job's cheapest algorithm.
    pub predicted_seconds: f64,
}

/// How pending jobs are ordered for admission.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum AdmissionPolicy {
    /// Strict arrival order: the queue head is admitted when it fits and
    /// *blocks everything behind it* while it does not. Head-of-line
    /// blocking costs throughput but makes starvation impossible.
    #[default]
    Fifo,
    /// Shortest-predicted-job-first: among the pending jobs whose
    /// footprint fits the free budget, admit the one with the smallest
    /// planner-predicted time (`mmjoin::choose()`'s winner). Ties fall
    /// back to arrival order.
    ShortestPredicted,
}

impl AdmissionPolicy {
    /// Parse `fifo` | `spf`.
    pub fn from_name(s: &str) -> Option<AdmissionPolicy> {
        match s {
            "fifo" => Some(AdmissionPolicy::Fifo),
            "spf" => Some(AdmissionPolicy::ShortestPredicted),
            _ => None,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AdmissionPolicy::Fifo => "fifo",
            AdmissionPolicy::ShortestPredicted => "spf",
        }
    }

    /// Index into `pending` (arrival order) of the job to admit with
    /// `free` budget bytes, or `None` if nothing may start.
    pub fn pick(self, pending: &[Candidate], free: u64) -> Option<usize> {
        match self {
            AdmissionPolicy::Fifo => match pending.first() {
                Some(head) if head.footprint <= free => Some(0),
                _ => None,
            },
            AdmissionPolicy::ShortestPredicted => pending
                .iter()
                .enumerate()
                .filter(|(_, c)| c.footprint <= free)
                .min_by(|(_, a), (_, b)| a.predicted_seconds.total_cmp(&b.predicted_seconds))
                .map(|(i, _)| i),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(footprint: u64, predicted_seconds: f64) -> Candidate {
        Candidate {
            footprint,
            predicted_seconds,
        }
    }

    #[test]
    fn fifo_blocks_behind_an_oversized_head() {
        let pending = [cand(100, 1.0), cand(10, 9.0)];
        // The second job fits but FIFO refuses to overtake the head.
        assert_eq!(AdmissionPolicy::Fifo.pick(&pending, 50), None);
        assert_eq!(AdmissionPolicy::Fifo.pick(&pending, 100), Some(0));
    }

    #[test]
    fn spf_overtakes_and_prefers_short_jobs() {
        let pending = [cand(100, 1.0), cand(10, 9.0), cand(10, 2.0)];
        // Head doesn't fit; of the two that do, the predicted-shorter
        // third job wins even though it arrived last.
        assert_eq!(
            AdmissionPolicy::ShortestPredicted.pick(&pending, 50),
            Some(2)
        );
        // With room for everything, the globally shortest job wins.
        assert_eq!(
            AdmissionPolicy::ShortestPredicted.pick(&pending, 200),
            Some(0)
        );
    }

    #[test]
    fn spf_ties_fall_back_to_arrival_order() {
        let pending = [cand(10, 3.0), cand(10, 3.0)];
        assert_eq!(
            AdmissionPolicy::ShortestPredicted.pick(&pending, 100),
            Some(0)
        );
    }

    #[test]
    fn empty_queue_admits_nothing() {
        assert_eq!(AdmissionPolicy::Fifo.pick(&[], u64::MAX), None);
        assert_eq!(AdmissionPolicy::ShortestPredicted.pick(&[], u64::MAX), None);
    }

    #[test]
    fn names_round_trip() {
        for p in [AdmissionPolicy::Fifo, AdmissionPolicy::ShortestPredicted] {
            assert_eq!(AdmissionPolicy::from_name(p.name()), Some(p));
        }
        assert_eq!(AdmissionPolicy::from_name("lifo"), None);
    }
}
