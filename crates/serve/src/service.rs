//! The service proper: a worker pool behind a budget-gated job queue.
//!
//! Submission plans the job (`mmjoin::choose()` on planning-time
//! inputs), rejects it outright if its footprint can never fit, and
//! otherwise queues it. Workers admit jobs under the configured
//! [`AdmissionPolicy`], reserving `m_rproc × D` bytes of the global
//! budget for the duration of the run — the reservation never exceeds
//! the budget, by construction.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use mmjoin::{choose, join, verify, Algo, JoinOutput, JoinSpec, PlanChoice};
use mmjoin_env::machine::MachineParams;
use mmjoin_env::ProcStats;
use mmjoin_mmstore::{MmapEnv, MmapEnvConfig};
use mmjoin_relstore::build;
use mmjoin_vmsim::{calibrated_params, DiskParams, SimConfig, SimEnv};

use crate::admission::{AdmissionPolicy, Candidate};
use crate::job::{JobId, JobRequest, JobResult, PAGE};
use crate::stats::ServiceStats;

/// Which environment jobs execute on.
#[derive(Clone, Debug)]
pub enum EnvKind {
    /// The execution-driven simulator with the calibrated machine:
    /// deterministic, no disk needed.
    Sim,
    /// The real memory-mapped store; each job runs in its own
    /// subdirectory of `root`, removed after the job finishes.
    Mmap {
        /// Parent directory for per-job stores.
        root: PathBuf,
    },
}

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Global memory budget in bytes that concurrently-running jobs'
    /// `m_rproc × D` footprints must fit into.
    pub budget_bytes: u64,
    /// Worker threads (concurrent jobs ≤ workers).
    pub workers: usize,
    /// Admission ordering.
    pub policy: AdmissionPolicy,
    /// Execution environment.
    pub env: EnvKind,
}

impl ServeConfig {
    /// A simulator-backed service with the given budget and workers.
    pub fn sim(budget_bytes: u64, workers: usize) -> Self {
        ServeConfig {
            budget_bytes,
            workers,
            policy: AdmissionPolicy::Fifo,
            env: EnvKind::Sim,
        }
    }

    /// Same config with a different admission policy.
    pub fn with_policy(mut self, policy: AdmissionPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// The machine every served job is planned and simulated against:
/// calibrated once per process, like the bench harness does.
pub fn service_machine() -> &'static MachineParams {
    static MACHINE: OnceLock<MachineParams> = OnceLock::new();
    MACHINE.get_or_init(|| {
        calibrated_params(&DiskParams::waterloo96())
            .expect("calibration of the default disk cannot fail")
    })
}

struct Queued {
    id: JobId,
    req: JobRequest,
    plan: PlanChoice,
    enqueued: Instant,
}

#[derive(Default)]
struct State {
    pending: VecDeque<Queued>,
    used_bytes: u64,
    running: usize,
    next_id: JobId,
    results: Vec<JobResult>,
    stats: ServiceStats,
    shutdown: bool,
}

struct Shared {
    cfg: ServeConfig,
    state: Mutex<State>,
    /// Signalled when work may have become admissible (new job, budget
    /// released, shutdown).
    work: Condvar,
    /// Signalled when a job completes (for [`Service::drain`]).
    done: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A running join service. Dropping it shuts the workers down; use
/// [`Service::finish`] to also collect results and stats.
pub struct Service {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Service {
    /// Start a service with `cfg.workers` worker threads.
    pub fn start(cfg: ServeConfig) -> Service {
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            cfg,
            state: Mutex::new(State::default()),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mmjoin-serve-{i}"))
                    .spawn(move || worker_loop(&sh))
                    .expect("spawn worker")
            })
            .collect();
        Service {
            shared,
            workers: handles,
        }
    }

    /// The configured global budget in bytes.
    pub fn budget_bytes(&self) -> u64 {
        self.shared.cfg.budget_bytes
    }

    /// Plan and enqueue one job. Returns its id, or an error if the job
    /// could *never* run: a footprint above the whole budget would sit
    /// in the queue forever (and under FIFO starve everything behind
    /// it), so it is refused here instead.
    pub fn submit(&self, req: JobRequest) -> Result<JobId, String> {
        let footprint = req.footprint();
        let plan = choose(service_machine(), &req.planner_inputs());
        let mut st = self.shared.lock();
        if footprint > self.shared.cfg.budget_bytes {
            st.stats.rejected += 1;
            return Err(format!(
                "job footprint {footprint} B exceeds the global budget {} B",
                self.shared.cfg.budget_bytes
            ));
        }
        st.next_id += 1;
        let id = st.next_id;
        st.stats.submitted += 1;
        st.pending.push_back(Queued {
            id,
            req,
            plan,
            enqueued: Instant::now(),
        });
        drop(st);
        self.shared.work.notify_all();
        Ok(id)
    }

    /// Parse and submit every job line of `text` (see
    /// [`JobRequest::parse_line`]). Returns the accepted ids; a line
    /// that fails to parse or is rejected aborts with an error naming
    /// its line number.
    pub fn submit_script(&self, text: &str) -> Result<Vec<JobId>, String> {
        let mut ids = Vec::new();
        for (no, line) in text.lines().enumerate() {
            match JobRequest::parse_line(line) {
                Ok(None) => {}
                Ok(Some(req)) => match self.submit(req) {
                    Ok(id) => ids.push(id),
                    Err(e) => return Err(format!("line {}: {e}", no + 1)),
                },
                Err(e) => return Err(format!("line {}: {e}", no + 1)),
            }
        }
        Ok(ids)
    }

    /// Block until every submitted job has completed.
    pub fn drain(&self) {
        let mut st = self.shared.lock();
        while !st.pending.is_empty() || st.running > 0 {
            st = self.shared.done.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Results completed so far, in completion order.
    pub fn results(&self) -> Vec<JobResult> {
        self.shared.lock().results.clone()
    }

    /// Snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        let mut stats = self.shared.lock().stats.clone();
        stats.budget_bytes = self.shared.cfg.budget_bytes;
        stats
    }

    /// Drain, stop the workers, and return every result plus the final
    /// counters.
    pub fn finish(mut self) -> (Vec<JobResult>, ServiceStats) {
        self.drain();
        self.stop();
        let mut st = self.shared.lock();
        let results = std::mem::take(&mut st.results);
        let mut stats = st.stats.clone();
        stats.budget_bytes = self.shared.cfg.budget_bytes;
        drop(st);
        (results, stats)
    }

    fn stop(&mut self) {
        self.shared.lock().shutdown = true;
        self.shared.work.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.stop();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let mut st = shared.lock();
        let job = loop {
            if st.shutdown {
                return;
            }
            let free = shared.cfg.budget_bytes - st.used_bytes;
            let candidates: Vec<Candidate> = st
                .pending
                .iter()
                .map(|q| Candidate {
                    footprint: q.req.footprint(),
                    predicted_seconds: q.plan.predicted_seconds(),
                })
                .collect();
            if let Some(idx) = shared.cfg.policy.pick(&candidates, free) {
                break st.pending.remove(idx).expect("picked index is valid");
            }
            st = shared.work.wait(st).unwrap_or_else(|e| e.into_inner());
        };
        let footprint = job.req.footprint();
        st.used_bytes += footprint;
        st.stats.peak_budget_bytes = st.stats.peak_budget_bytes.max(st.used_bytes);
        st.running += 1;
        drop(st);

        let (result, folded) = run_job(shared, job);

        let mut st = shared.lock();
        st.used_bytes -= footprint;
        st.running -= 1;
        st.stats.record(&result, folded.as_ref());
        st.results.push(result);
        drop(st);
        // Freed budget may admit a queued job; a finished job may
        // complete a drain.
        shared.work.notify_all();
        shared.done.notify_all();
    }
}

/// Execute one admitted job and package the outcome. Never panics on
/// job failure — errors become `JobResult::error`.
fn run_job(shared: &Shared, job: Queued) -> (JobResult, Option<ProcStats>) {
    let queue_wait = job.enqueued.elapsed().as_secs_f64();
    let alg = job
        .req
        .alg
        .unwrap_or_else(|| Algo::from(job.plan.algorithm));
    let started = Instant::now();
    let outcome = execute(&shared.cfg.env, &job);
    let exec_wall = started.elapsed().as_secs_f64();
    let mut result = JobResult {
        id: job.id,
        name: job.req.name.clone(),
        alg,
        predicted_seconds: job.plan.predicted_seconds(),
        pairs: 0,
        checksum: 0,
        verified: false,
        env_elapsed: 0.0,
        queue_wait,
        exec_wall,
        read_faults: 0,
        write_backs: 0,
        error: None,
    };
    match outcome {
        Ok((out, verified)) => {
            result.pairs = out.pairs;
            result.checksum = out.checksum;
            result.verified = verified;
            result.env_elapsed = out.elapsed;
            let folded = out.stats.folded();
            result.read_faults = folded.fault_read_blocks;
            result.write_backs = folded.fault_write_blocks;
            if !verified {
                result.error = Some("join result failed oracle verification".into());
            }
            (result, Some(folded))
        }
        Err(e) => {
            result.error = Some(e);
            (result, None)
        }
    }
}

/// Build the environment and relations, run the join, verify.
fn execute(env: &EnvKind, job: &Queued) -> Result<(JoinOutput, bool), String> {
    let req = &job.req;
    let alg = req.alg.unwrap_or_else(|| Algo::from(job.plan.algorithm));
    let spec = JoinSpec::new(req.m_rproc, req.m_sproc).with_mode(req.mode);
    match env {
        EnvKind::Sim => {
            let mut cfg = SimConfig::waterloo96(req.workload.rel.d);
            cfg.machine = service_machine().clone();
            cfg.rproc_pages = (req.m_rproc / PAGE).max(1) as usize;
            cfg.sproc_pages = (req.m_sproc / PAGE).max(1) as usize;
            let env = SimEnv::new(cfg).map_err(|e| e.to_string())?;
            let rels = build(&env, &req.workload).map_err(|e| e.to_string())?;
            let out = join(&env, &rels, alg, &spec).map_err(|e| e.to_string())?;
            let verified = verify(&out, &rels).is_ok();
            Ok((out, verified))
        }
        EnvKind::Mmap { root } => {
            let job_root = root.join(format!("job{}", job.id));
            let env = MmapEnv::new(MmapEnvConfig {
                root: job_root.clone(),
                num_disks: req.workload.rel.d,
                page_size: PAGE,
            })
            .map_err(|e| e.to_string())?;
            let run = || -> Result<(JoinOutput, bool), String> {
                let rels = build(&env, &req.workload).map_err(|e| e.to_string())?;
                let out = join(&env, &rels, alg, &spec).map_err(|e| e.to_string())?;
                let verified = verify(&out, &rels).is_ok();
                Ok((out, verified))
            };
            let outcome = run();
            drop(env);
            let _ = std::fs::remove_dir_all(&job_root);
            outcome
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_job(seed: u64, mem_pages: u64) -> JobRequest {
        JobRequest::new(800, 32, 2, mem_pages, seed)
    }

    #[test]
    fn oversized_job_is_rejected_at_submit() {
        let svc = Service::start(ServeConfig::sim(8 * PAGE, 1));
        // footprint = 16 pages × 2 disks = 32 pages > 8-page budget.
        let err = svc.submit(tiny_job(1, 16)).unwrap_err();
        assert!(err.contains("exceeds the global budget"), "{err}");
        let (results, stats) = svc.finish();
        assert!(results.is_empty());
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.submitted, 0);
    }

    #[test]
    fn single_job_runs_and_verifies() {
        let svc = Service::start(ServeConfig::sim(64 * PAGE, 2));
        let id = svc.submit(tiny_job(7, 8)).unwrap();
        assert_eq!(id, 1);
        let (results, stats) = svc.finish();
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert!(r.error.is_none(), "{:?}", r.error);
        assert!(r.verified);
        assert!(r.pairs > 0);
        assert!(r.env_elapsed > 0.0);
        assert!(r.predicted_seconds > 0.0);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 0);
        assert!(stats.peak_budget_bytes <= stats.budget_bytes);
        assert_eq!(stats.peak_budget_bytes, 16 * PAGE);
    }

    #[test]
    fn budget_is_never_exceeded_under_contention() {
        // 8 jobs of 16 pages each against a 32-page budget: at most two
        // run at once even with four workers.
        let svc = Service::start(ServeConfig::sim(32 * PAGE, 4));
        for seed in 0..8 {
            svc.submit(tiny_job(seed, 8)).unwrap();
        }
        let (results, stats) = svc.finish();
        assert_eq!(results.len(), 8);
        assert!(results.iter().all(|r| r.verified));
        assert!(stats.peak_budget_bytes <= 32 * PAGE);
        assert_eq!(stats.completed, 8);
        assert_eq!(stats.in_flight(), 0);
    }

    #[test]
    fn submit_script_reports_bad_lines() {
        let svc = Service::start(ServeConfig::sim(256 * PAGE, 1));
        let err = svc
            .submit_script("# fine\nobjects=800 d=2\nalg=bogus\n")
            .unwrap_err();
        assert!(err.starts_with("line 3:"), "{err}");
    }
}
