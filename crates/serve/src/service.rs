//! The service proper: a worker pool behind a budget-gated job queue.
//!
//! Submission plans the job (`mmjoin::choose()` on planning-time
//! inputs), rejects it outright if its footprint can never fit, and
//! otherwise queues it. Workers admit jobs under the configured
//! [`AdmissionPolicy`], reserving `m_rproc × D` bytes of the global
//! budget for the duration of the run — the reservation never exceeds
//! the budget, by construction.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use mmjoin::{
    choose, join_with_retry_report, verify, Algo, JoinOutput, JoinSpec, PlanChoice, RetryPolicy,
    RetryReport,
};
use mmjoin_env::machine::MachineParams;
use mmjoin_env::{
    null_sink, EnvError, FaultSpec, FaultyEnv, Histogram, ProcStats, TraceEvent, TraceSink,
};
use mmjoin_mmstore::{MmapEnv, MmapEnvConfig};
use mmjoin_relstore::build;
use mmjoin_vmsim::{calibrated_params, DiskParams, SimConfig, SimEnv};

use crate::admission::{AdmissionPolicy, Candidate};
use crate::job::{JobId, JobRequest, JobResult, PAGE};
use crate::plan::resolve_auto;
use crate::recovery::{plan_resume, CheckpointSink, ResumeOutcome, ServiceJournal};
use crate::stats::ServiceStats;
use mmjoin_recovery::JournalRecord;

/// Which environment jobs execute on.
#[derive(Clone, Debug)]
pub enum EnvKind {
    /// The execution-driven simulator with the calibrated machine:
    /// deterministic, no disk needed.
    Sim,
    /// The real memory-mapped store; each job runs in its own
    /// subdirectory of `root`, removed after the job finishes.
    Mmap {
        /// Parent directory for per-job stores.
        root: PathBuf,
    },
}

/// Service configuration.
#[derive(Clone)]
pub struct ServeConfig {
    /// Global memory budget in bytes that concurrently-running jobs'
    /// `m_rproc × D` footprints must fit into.
    pub budget_bytes: u64,
    /// Worker threads (concurrent jobs ≤ workers).
    pub workers: usize,
    /// Admission ordering.
    pub policy: AdmissionPolicy,
    /// Execution environment.
    pub env: EnvKind,
    /// Fault injection applied to every job's environment (each job
    /// gets its own injector with this spec, so rule counters are
    /// per-job). Empty = passthrough.
    pub fault_spec: FaultSpec,
    /// Per-job retry budget: join attempts per plan, first try
    /// included. Transient failures within this budget are retried with
    /// bounded exponential backoff.
    pub retries: u32,
    /// Per-job wall-clock deadline, checked between attempts; `None`
    /// means unlimited.
    pub deadline: Option<Duration>,
    /// Structured trace sink. Job lifecycle events (submission,
    /// admission, degradation, completion) are emitted here with
    /// service wall-clock timestamps; the sink is also installed on
    /// every job's environment, so pass/map/fault events land in the
    /// same stream (with env-local timestamps).
    pub trace: Arc<dyn TraceSink>,
    /// The machine every job is planned and (in [`EnvKind::Sim`])
    /// executed against. `None` falls back to the process-wide
    /// [`service_machine`] calibrated from the simulated waterloo96
    /// disk; services built from a measured host profile install it
    /// here via [`ServeConfig::with_machine`].
    pub machine: Option<Arc<MachineParams>>,
    /// Directory holding the service's write-ahead journal. `None`
    /// disables journaling (and with it restart recovery).
    pub journal_dir: Option<PathBuf>,
    /// Replay an existing journal at startup instead of truncating it:
    /// completed jobs are re-reported from their journaled results,
    /// in-flight jobs re-run under their original ids, and leftover
    /// per-job stores are garbage-collected. No-op without
    /// `journal_dir`.
    pub resume: bool,
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("budget_bytes", &self.budget_bytes)
            .field("workers", &self.workers)
            .field("policy", &self.policy)
            .field("env", &self.env)
            .field("fault_spec", &self.fault_spec)
            .field("retries", &self.retries)
            .field("deadline", &self.deadline)
            .field("trace_enabled", &self.trace.enabled())
            .field("machine_override", &self.machine.is_some())
            .field("journal_dir", &self.journal_dir)
            .field("resume", &self.resume)
            .finish()
    }
}

/// How many times a job may halve its footprint on `DiskFull` before
/// giving up.
const MAX_DEGRADE: u32 = 3;

impl ServeConfig {
    /// A simulator-backed service with the given budget and workers.
    pub fn sim(budget_bytes: u64, workers: usize) -> Self {
        ServeConfig {
            budget_bytes,
            workers,
            policy: AdmissionPolicy::Fifo,
            env: EnvKind::Sim,
            fault_spec: FaultSpec::none(),
            retries: 3,
            deadline: None,
            trace: null_sink(),
            machine: None,
            journal_dir: None,
            resume: false,
        }
    }

    /// Same config with a different admission policy.
    pub fn with_policy(mut self, policy: AdmissionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Same config with fault injection.
    pub fn with_faults(mut self, spec: FaultSpec) -> Self {
        self.fault_spec = spec;
        self
    }

    /// Same config with a per-job retry budget.
    pub fn with_retries(mut self, attempts: u32) -> Self {
        self.retries = attempts.max(1);
        self
    }

    /// Same config with a per-job deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Same config with a structured trace sink.
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = sink;
        self
    }

    /// Same config planned and simulated against `machine` (a loaded
    /// host profile) instead of the process-wide calibrated default.
    pub fn with_machine(mut self, machine: Arc<MachineParams>) -> Self {
        self.machine = Some(machine);
        self
    }

    /// Same config with a write-ahead journal under `dir`.
    pub fn with_journal(mut self, dir: PathBuf) -> Self {
        self.journal_dir = Some(dir);
        self
    }

    /// Same config replaying the journal at startup (see
    /// [`ServeConfig::resume`]).
    pub fn with_resume(mut self) -> Self {
        self.resume = true;
        self
    }

    /// The machine in effect: the installed override, else the
    /// process-wide calibrated default.
    pub fn machine(&self) -> Result<&MachineParams, String> {
        match &self.machine {
            Some(m) => Ok(m),
            None => service_machine(),
        }
    }
}

/// The machine every served job is planned and simulated against:
/// calibrated once per process, like the bench harness does. The
/// calibration outcome (success or failure) is computed once and
/// replayed; it never panics.
pub fn service_machine() -> Result<&'static MachineParams, String> {
    static MACHINE: OnceLock<Result<MachineParams, String>> = OnceLock::new();
    MACHINE
        .get_or_init(|| {
            calibrated_params(&DiskParams::waterloo96())
                .map_err(|e| format!("machine calibration failed: {e}"))
        })
        .as_ref()
        .map_err(Clone::clone)
}

/// A planned job waiting for admission. Shared with the sharded
/// service, whose queues hold the same unit of work.
pub(crate) struct Queued {
    pub(crate) id: JobId,
    pub(crate) req: JobRequest,
    pub(crate) plan: PlanChoice,
    pub(crate) enqueued: Instant,
}

/// What the execution core ([`run_job`]) needs from whatever owns the
/// job: configuration, a trace clock, and a way to return degraded
/// reservations to the right budget pool mid-run. The single-queue
/// [`Service`] and each shard of the sharded service implement it.
pub(crate) trait JobHost: Sync {
    /// Service configuration (deadline, retries, faults, env, trace).
    fn cfg(&self) -> &ServeConfig;
    /// Emit a job lifecycle event at the service wall clock.
    fn trace(&self, event: TraceEvent);
    /// Return `bytes` of a running job's reservation to the budget pool
    /// mid-run (graceful degradation), waking admission waiters.
    fn release(&self, bytes: u64);
    /// The service's write-ahead journal, if one is configured.
    fn journal(&self) -> Option<&Arc<ServiceJournal>> {
        None
    }
}

/// The common surface of the single-queue [`Service`] and the sharded
/// `ShardedService`: submit jobs, wait for them, read results and
/// counters. Dropping an implementation shuts its workers down, so a
/// `drain` + `results` + `stats` sequence through this trait observes
/// the same final state `finish` would return.
pub trait JoinService: Send + Sync {
    /// Plan and enqueue one job; returns its id or a submit-time
    /// rejection.
    fn submit(&self, req: JobRequest) -> Result<JobId, String>;

    /// Block until every submitted job has completed.
    fn drain(&self);

    /// Results completed so far, in completion order.
    fn results(&self) -> Vec<JobResult>;

    /// Merged snapshot of the service counters.
    fn stats(&self) -> ServiceStats;

    /// Per-shard snapshots (a single-element vector on the single-queue
    /// service).
    fn shard_stats(&self) -> Vec<ServiceStats>;

    /// Number of shards (1 for the single-queue service).
    fn shards(&self) -> u32;

    /// Parse and submit every job line of `text` (see
    /// [`JobRequest::parse_line`]). Returns the accepted ids; a line
    /// that fails to parse or is rejected aborts with an error naming
    /// its line number.
    fn submit_script(&self, text: &str) -> Result<Vec<JobId>, String> {
        let mut ids = Vec::new();
        for (no, line) in text.lines().enumerate() {
            match JobRequest::parse_line(line) {
                Ok(None) => {}
                Ok(Some(req)) => match self.submit(req) {
                    Ok(id) => ids.push(id),
                    Err(e) => return Err(format!("line {}: {e}", no + 1)),
                },
                Err(e) => return Err(format!("line {}: {e}", no + 1)),
            }
        }
        Ok(ids)
    }
}

#[derive(Default)]
struct State {
    pending: VecDeque<Queued>,
    used_bytes: u64,
    running: usize,
    next_id: JobId,
    results: Vec<JobResult>,
    stats: ServiceStats,
    shutdown: bool,
}

struct Shared {
    cfg: ServeConfig,
    /// Write-ahead journal, when `cfg.journal_dir` is set.
    journal: Option<Arc<ServiceJournal>>,
    state: Mutex<State>,
    /// Signalled when work may have become admissible (new job, budget
    /// released, shutdown).
    work: Condvar,
    /// Signalled when a job completes (for [`Service::drain`]).
    done: Condvar,
    /// Service start; lifecycle trace timestamps are seconds since it.
    origin: Instant,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Overlay live journal counters onto a stats snapshot.
    fn fold_journal(&self, stats: &mut ServiceStats) {
        if let Some(j) = &self.journal {
            let js = j.stats();
            stats.journal_appended_records = js.appended_records;
            stats.journal_commits = js.commits;
        }
    }
}

/// Install a replayed journal's outcome into a freshly-built service
/// (before its workers start): completed jobs land in the results,
/// in-flight jobs re-enter the queue under their original ids, and id
/// assignment continues past everything the journal has seen.
fn apply_resume(shared: &Shared, outcome: ResumeOutcome) -> Result<(), String> {
    shared.trace(outcome.trace_event());
    let mut submitted_traces = Vec::with_capacity(outcome.pending.len());
    {
        let mut st = shared.lock();
        st.next_id = st.next_id.max(outcome.next_id);
        st.stats.journal_replayed_records = outcome.records;
        st.stats.journal_torn_bytes = outcome.torn_bytes;
        st.stats.journal_orphans_deleted = outcome.orphans_deleted;
        st.stats.journal_resumed_jobs = outcome.pending.len() as u64;
        for r in outcome.finished {
            st.stats.submitted += 1;
            st.stats.record(&r, None, None);
            st.results.push(r);
        }
        for (id, mut req) in outcome.pending {
            // Journaled `plan=auto` lines re-resolve to the identical
            // plan here: the sampler is seeded from the workload seed.
            let resolved = resolve_auto(&shared.cfg, &mut req)?;
            let plan = match &resolved {
                Some(r) => r.auto.choice.clone(),
                None => choose(shared.cfg.machine()?, &req.planner_inputs()),
            };
            submitted_traces.push((id, req.footprint(), resolved));
            st.stats.submitted += 1;
            st.pending.push_back(Queued {
                id,
                req,
                plan,
                enqueued: Instant::now(),
            });
        }
    }
    for (id, footprint, resolved) in submitted_traces {
        if let Some(r) = &resolved {
            for ev in r.trace_events(id) {
                shared.trace(ev);
            }
        }
        shared.trace(TraceEvent::JobSubmitted {
            job: id,
            footprint,
            shard: 0,
        });
    }
    shared.work.notify_all();
    Ok(())
}

impl JobHost for Shared {
    fn cfg(&self) -> &ServeConfig {
        &self.cfg
    }

    fn trace(&self, event: TraceEvent) {
        if self.cfg.trace.enabled() {
            self.cfg
                .trace
                .emit(self.origin.elapsed().as_secs_f64(), event);
        }
    }

    fn release(&self, bytes: u64) {
        {
            let mut st = self.lock();
            st.used_bytes -= bytes;
        }
        self.work.notify_all();
    }

    fn journal(&self) -> Option<&Arc<ServiceJournal>> {
        self.journal.as_ref()
    }
}

/// A running join service. Dropping it shuts the workers down; use
/// [`Service::finish`] to also collect results and stats.
pub struct Service {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Service {
    /// Start a service with `cfg.workers` worker threads. Fails if the
    /// OS refuses to spawn them (already-started workers are shut back
    /// down).
    pub fn start(cfg: ServeConfig) -> Result<Service, String> {
        let workers = cfg.workers.max(1);
        let (journal, resume_plan) = match &cfg.journal_dir {
            Some(dir) => {
                let (j, plan) = ServiceJournal::open(dir, cfg.resume, cfg.trace.clone())?;
                (Some(j), plan)
            }
            None => (None, None),
        };
        let outcome = match resume_plan {
            Some(plan) => Some(plan_resume(&cfg, plan)?),
            None => None,
        };
        let shared = Arc::new(Shared {
            cfg,
            journal,
            state: Mutex::new(State::default()),
            work: Condvar::new(),
            done: Condvar::new(),
            origin: Instant::now(),
        });
        if let Some(outcome) = outcome {
            apply_resume(&shared, outcome)?;
        }
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let sh = Arc::clone(&shared);
            match std::thread::Builder::new()
                .name(format!("mmjoin-serve-{i}"))
                .spawn(move || worker_loop(&sh))
            {
                Ok(h) => handles.push(h),
                Err(e) => {
                    let mut svc = Service {
                        shared,
                        workers: handles,
                    };
                    svc.stop();
                    return Err(format!("cannot spawn worker {i}: {e}"));
                }
            }
        }
        Ok(Service {
            shared,
            workers: handles,
        })
    }

    /// The configured global budget in bytes.
    pub fn budget_bytes(&self) -> u64 {
        self.shared.cfg.budget_bytes
    }

    /// Plan and enqueue one job. Returns its id, or an error if the job
    /// could *never* run: a footprint above the whole budget would sit
    /// in the queue forever (and under FIFO starve everything behind
    /// it), so it is refused here instead.
    pub fn submit(&self, mut req: JobRequest) -> Result<JobId, String> {
        // Capture the submitted form before auto-planning mutates the
        // grants: the journal must store the original `plan=auto` line
        // so a resumed service re-resolves it (deterministically, the
        // sampler is seeded) instead of re-trimming a trimmed grant.
        let original_line = req.to_line();
        let resolved = resolve_auto(&self.shared.cfg, &mut req)?;
        // Everything below budgets against the *chosen* grants.
        let footprint = req.footprint();
        let plan = match &resolved {
            Some(r) => r.auto.choice.clone(),
            None => choose(self.shared.cfg.machine()?, &req.planner_inputs()),
        };
        let mut st = self.shared.lock();
        if footprint > self.shared.cfg.budget_bytes {
            st.stats.rejected += 1;
            return Err(format!(
                "job footprint {footprint} B exceeds the global budget {} B",
                self.shared.cfg.budget_bytes
            ));
        }
        st.next_id += 1;
        let id = st.next_id;
        // Journal-before-queue, under the id-assigning lock: a client
        // that got an id back will find its job after a crash, and
        // journal order matches id order.
        if let Some(j) = &self.shared.journal {
            j.append_commit(&JournalRecord::JobSubmitted {
                job: id,
                line: original_line,
            });
        }
        st.stats.submitted += 1;
        st.pending.push_back(Queued {
            id,
            req,
            plan,
            enqueued: Instant::now(),
        });
        drop(st);
        if let Some(r) = &resolved {
            for ev in r.trace_events(id) {
                self.shared.trace(ev);
            }
        }
        self.shared.trace(TraceEvent::JobSubmitted {
            job: id,
            footprint,
            shard: 0,
        });
        self.shared.work.notify_all();
        Ok(id)
    }

    /// Block until every submitted job has completed.
    pub fn drain(&self) {
        let mut st = self.shared.lock();
        while !st.pending.is_empty() || st.running > 0 {
            st = self.shared.done.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Results completed so far, in completion order.
    pub fn results(&self) -> Vec<JobResult> {
        self.shared.lock().results.clone()
    }

    /// Snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        let st = self.shared.lock();
        let mut stats = st.stats.clone();
        stats.budget_bytes = self.shared.cfg.budget_bytes;
        stats.budget_leak_bytes = if st.running == 0 { st.used_bytes } else { 0 };
        drop(st);
        self.shared.fold_journal(&mut stats);
        stats
    }

    /// Drain, stop the workers, and return every result plus the final
    /// counters.
    pub fn finish(mut self) -> (Vec<JobResult>, ServiceStats) {
        self.drain();
        self.stop();
        let mut st = self.shared.lock();
        let results = std::mem::take(&mut st.results);
        let mut stats = st.stats.clone();
        stats.budget_bytes = self.shared.cfg.budget_bytes;
        // Every job has released its reservation; anything left is an
        // accounting leak.
        stats.budget_leak_bytes = st.used_bytes;
        drop(st);
        self.shared.fold_journal(&mut stats);
        (results, stats)
    }

    fn stop(&mut self) {
        self.shared.lock().shutdown = true;
        self.shared.work.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.stop();
    }
}

impl JoinService for Service {
    fn submit(&self, req: JobRequest) -> Result<JobId, String> {
        Service::submit(self, req)
    }

    fn drain(&self) {
        Service::drain(self)
    }

    fn results(&self) -> Vec<JobResult> {
        Service::results(self)
    }

    fn stats(&self) -> ServiceStats {
        Service::stats(self)
    }

    fn shard_stats(&self) -> Vec<ServiceStats> {
        vec![Service::stats(self)]
    }

    fn shards(&self) -> u32 {
        1
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let mut st = shared.lock();
        let job = loop {
            if st.shutdown {
                return;
            }
            let free = shared.cfg.budget_bytes - st.used_bytes;
            let candidates: Vec<Candidate> = st
                .pending
                .iter()
                .map(|q| Candidate {
                    footprint: q.req.footprint(),
                    predicted_seconds: q.plan.predicted_seconds(),
                })
                .collect();
            // `pick` indexes into `candidates`, which mirrors `pending`
            // one-to-one under the held lock; a miss means a policy bug,
            // handled by re-evaluating rather than crashing the worker.
            if let Some(q) = shared
                .cfg
                .policy
                .pick(&candidates, free)
                .and_then(|idx| st.pending.remove(idx))
            {
                break q;
            }
            st = shared.work.wait(st).unwrap_or_else(|e| e.into_inner());
        };
        let footprint = job.req.footprint();
        st.used_bytes += footprint;
        st.stats.peak_budget_bytes = st.stats.peak_budget_bytes.max(st.used_bytes);
        st.running += 1;
        let used = st.used_bytes;
        drop(st);
        shared.trace(TraceEvent::JobAdmitted {
            job: job.id,
            footprint,
            used,
            shard: 0,
        });

        let (result, folded, passes) = run_job(shared, job, 0);

        // Journal the terminal result (and any area records still
        // riding) before it becomes visible in memory: a crash after
        // this commit re-reports the job, never re-runs it.
        if let Some(j) = &shared.journal {
            j.append_commit(&JournalRecord::JobCompleted {
                job: result.id,
                pairs: result.pairs,
                checksum: result.checksum,
                ok: result.error.is_none() && result.verified,
            });
        }

        let mut st = shared.lock();
        // Terminal release — success, error, deadline, and panic paths
        // alike: degradations already returned part of the reservation
        // mid-run, so exactly the remainder is still held. Releasing
        // anything else here (e.g. the degraded job's *halved* footprint)
        // would leak budget on every degraded-then-failed job.
        debug_assert!(result.released_bytes <= footprint);
        st.used_bytes -= footprint - result.released_bytes;
        st.running -= 1;
        st.stats.record(&result, folded.as_ref(), passes.as_ref());
        let ok = result.error.is_none() && result.verified;
        shared.trace(TraceEvent::JobCompleted {
            job: result.id,
            ok,
            degraded: result.degraded,
        });
        st.results.push(result);
        drop(st);
        // Freed budget may admit a queued job; a finished job may
        // complete a drain.
        shared.work.notify_all();
        shared.done.notify_all();
    }
}

/// One plan-level execution: the join ran (possibly with internal
/// retries) or failed, plus what the recovery layer did along the way.
struct Attempt {
    result: Result<(JoinOutput, bool), EnvError>,
    report: RetryReport,
    faults: u64,
}

/// Execute one admitted job and package the outcome. Never panics —
/// worker panics are caught and become `JobResult::error` — and never
/// orphans temporary files: every plan-level attempt runs under
/// `join_with_retry`, which restores the env's file table on failure,
/// and per-job environments are torn down afterwards either way.
///
/// Failure handling, outermost first:
/// * **deadline** — checked between plan-level attempts (a running join
///   cannot be interrupted); exceeding it stops the job;
/// * **`DiskFull`** — non-transient: re-plan with halved `m_rproc`/
///   `m_sproc` (graceful degradation), up to [`MAX_DEGRADE`] times;
/// * **transient faults** — absorbed inside `join_with_retry` with
///   bounded exponential backoff and orphan cleanup.
pub(crate) fn run_job(
    host: &impl JobHost,
    job: Queued,
    exec_shard: u32,
) -> (JobResult, Option<ProcStats>, Option<Histogram>) {
    let queue_wait = job.enqueued.elapsed().as_secs_f64();
    let cfg = host.cfg();
    let started = Instant::now();
    let mut m_rproc = job.req.m_rproc;
    let mut m_sproc = job.req.m_sproc;
    let mut result = JobResult {
        id: job.id,
        shard: exec_shard,
        name: job.req.name.clone(),
        alg: job
            .req
            .alg
            .unwrap_or_else(|| Algo::from(job.plan.algorithm)),
        predicted_seconds: job.plan.predicted_seconds(),
        pairs: 0,
        checksum: 0,
        verified: false,
        env_elapsed: 0.0,
        queue_wait,
        exec_wall: 0.0,
        read_faults: 0,
        write_backs: 0,
        attempts: 0,
        retries: 0,
        faults_injected: 0,
        degraded: 0,
        released_bytes: 0,
        cleaned_files: 0,
        deadline_hit: false,
        panicked: false,
        resumed: false,
        error: None,
    };
    let outcome: Result<(JoinOutput, bool), String> = loop {
        if cfg.deadline.is_some_and(|d| started.elapsed() >= d) {
            result.deadline_hit = true;
            break Err(format!(
                "deadline exceeded after {} attempt(s)",
                result.attempts
            ));
        }
        // Re-plan under the (possibly degraded) budgets. Jobs that
        // pinned an algorithm keep it; `auto` jobs ask the planner what
        // is cheapest at this footprint.
        let alg = match plan_algorithm(host.cfg(), &job, m_rproc, m_sproc) {
            Ok(alg) => alg,
            Err(e) => break Err(e),
        };
        result.alg = alg;
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            execute(cfg, host.journal(), &job, alg, m_rproc, m_sproc)
        }));
        let attempt = match attempt {
            Ok(a) => a,
            Err(panic) => {
                result.panicked = true;
                result.attempts += 1;
                break Err(format!("worker panic isolated: {}", panic_message(&panic)));
            }
        };
        result.attempts += attempt.report.attempts;
        result.retries += attempt.report.transient_errors;
        result.cleaned_files += attempt.report.cleaned_files;
        result.faults_injected += attempt.faults;
        match attempt.result {
            Ok(ok) => break Ok(ok),
            Err(EnvError::DiskFull(_)) if result.degraded < MAX_DEGRADE && m_rproc / 2 >= PAGE => {
                // Graceful degradation: halve the footprint and re-plan
                // rather than failing the job. The halved reservation is
                // returned to the global budget immediately, so queued
                // jobs can be admitted while this one re-runs smaller.
                let d = job.req.workload.rel.d as u64;
                let freed = (m_rproc - m_rproc / 2) * d;
                m_rproc /= 2;
                m_sproc = (m_sproc / 2).max(PAGE);
                result.degraded += 1;
                result.released_bytes += freed;
                // Emit before releasing: a trace consumer must see the
                // cause (degradation) before its effect (another job's
                // admission into the freed room).
                host.trace(TraceEvent::JobDegraded {
                    job: job.id,
                    footprint: m_rproc * d,
                    released: freed,
                });
                host.release(freed);
            }
            Err(e) => break Err(e.to_string()),
        }
    };
    result.exec_wall = started.elapsed().as_secs_f64();
    match outcome {
        Ok((out, verified)) => {
            result.pairs = out.pairs;
            result.checksum = out.checksum;
            result.verified = verified;
            result.env_elapsed = out.elapsed;
            let folded = out.stats.folded();
            result.read_faults = folded.fault_read_blocks;
            result.write_backs = folded.fault_write_blocks;
            if !verified {
                result.error = Some("join result failed oracle verification".into());
            }
            (result, Some(folded), Some(out.pass_seconds))
        }
        Err(e) => {
            result.error = Some(e);
            (result, None, None)
        }
    }
}

/// The algorithm to run at the given (possibly degraded) budgets.
fn plan_algorithm(
    cfg: &ServeConfig,
    job: &Queued,
    m_rproc: u64,
    m_sproc: u64,
) -> Result<Algo, String> {
    if let Some(alg) = job.req.alg {
        return Ok(alg);
    }
    if m_rproc == job.req.m_rproc {
        return Ok(Algo::from(job.plan.algorithm));
    }
    let mut inputs = job.req.planner_inputs();
    inputs.m_rproc = m_rproc;
    inputs.m_sproc = m_sproc;
    Ok(Algo::from(choose(cfg.machine()?, &inputs).algorithm))
}

/// Best-effort text from a caught panic payload.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Build the environment and relations, run the join under the retry
/// layer, verify.
///
/// The workload is built on the *inner* environment: relations are the
/// service's input, assumed to exist — the fault domain is the join
/// itself (reads, writes, temp-file map setup), as in the paper's
/// model. The join then runs through the [`FaultyEnv`] wrapper.
fn execute(
    cfg: &ServeConfig,
    journal: Option<&Arc<ServiceJournal>>,
    job: &Queued,
    alg: Algo,
    m_rproc: u64,
    m_sproc: u64,
) -> Attempt {
    let req = &job.req;
    // Tag the job's temporary areas with its id so concurrent (or
    // interrupted) jobs sharing a store can never collide — and so the
    // retry layer's orphan cleanup can scope itself to this run.
    let spec = JoinSpec::new(m_rproc, m_sproc)
        .with_mode(req.mode)
        .with_tag(&format!("j{}", job.id));
    let policy = RetryPolicy::attempts(cfg.retries);
    // When journaling, tee the env's trace stream: pass boundaries
    // become durable checkpoints and map setup/teardown become area
    // lifecycle records.
    let sink: Arc<dyn TraceSink> = match journal {
        Some(j) => Arc::new(CheckpointSink::new(
            cfg.trace.clone(),
            Arc::clone(j),
            job.id,
        )),
        None => cfg.trace.clone(),
    };
    let fail = |e: EnvError| Attempt {
        result: Err(e),
        report: RetryReport::default(),
        faults: 0,
    };
    match &cfg.env {
        EnvKind::Sim => {
            let mut sim_cfg = SimConfig::waterloo96(req.workload.rel.d);
            sim_cfg.machine = match cfg.machine() {
                Ok(m) => m.clone(),
                Err(e) => return fail(EnvError::InvalidConfig(e)),
            };
            sim_cfg.rproc_pages = (m_rproc / PAGE).max(1) as usize;
            sim_cfg.sproc_pages = (m_sproc / PAGE).max(1) as usize;
            let env = match SimEnv::new(sim_cfg) {
                Ok(env) => {
                    env.set_trace_sink(sink);
                    FaultyEnv::new(env, cfg.fault_spec.clone())
                }
                Err(e) => return fail(e),
            };
            attempt_on(&env, req, alg, &spec, &policy)
        }
        EnvKind::Mmap { root } => {
            let job_root = root.join(format!("job{}", job.id));
            let env = match MmapEnv::new(MmapEnvConfig {
                root: job_root.clone(),
                num_disks: req.workload.rel.d,
                page_size: PAGE,
            }) {
                Ok(env) => {
                    env.set_trace_sink(sink);
                    FaultyEnv::new(env, cfg.fault_spec.clone())
                }
                Err(e) => return fail(e),
            };
            let attempt = attempt_on(&env, req, alg, &spec, &policy);
            drop(env);
            let _ = std::fs::remove_dir_all(&job_root);
            attempt
        }
    }
}

/// Build the relations on the wrapper's inner env, run the join through
/// the wrapper under the retry layer, and collect the fault counters.
fn attempt_on<E: mmjoin_env::Env>(
    env: &FaultyEnv<E>,
    req: &JobRequest,
    alg: Algo,
    spec: &JoinSpec,
    policy: &RetryPolicy,
) -> Attempt {
    let rels = match build(env.inner(), &req.workload) {
        Ok(rels) => rels,
        Err(e) => {
            return Attempt {
                result: Err(e),
                report: RetryReport::default(),
                faults: env.fault_stats().total(),
            }
        }
    };
    let (result, report) = join_with_retry_report(env, &rels, alg, spec, policy);
    Attempt {
        result: result.map(|out| {
            let verified = verify(&out, &rels).is_ok();
            (out, verified)
        }),
        report,
        faults: env.fault_stats().total(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_job(seed: u64, mem_pages: u64) -> JobRequest {
        JobRequest::new(800, 32, 2, mem_pages, seed)
    }

    #[test]
    fn oversized_job_is_rejected_at_submit() {
        let svc = Service::start(ServeConfig::sim(8 * PAGE, 1)).unwrap();
        // footprint = 16 pages × 2 disks = 32 pages > 8-page budget.
        let err = svc.submit(tiny_job(1, 16)).unwrap_err();
        assert!(err.contains("exceeds the global budget"), "{err}");
        let (results, stats) = svc.finish();
        assert!(results.is_empty());
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.submitted, 0);
    }

    #[test]
    fn admission_reserves_the_auto_chosen_grant_not_the_submitted_one() {
        let budget = 4 * 1024 * PAGE; // 16 MiB
        let svc = Service::start(ServeConfig::sim(budget, 1)).unwrap();
        // A grossly over-granted request: 4096 pages × 4 disks = 64 MiB
        // footprint, four times the global budget. Under the default
        // fixed plan, admission budgets the submitted grant and rejects.
        let mut req = JobRequest::new(8_000, 64, 4, 4_096, 7);
        let err = svc.submit(req.clone()).unwrap_err();
        assert!(err.contains("exceeds the global budget"), "{err}");
        // The same request under plan=auto is trimmed to the planner's
        // chosen grant *before* admission sees it, so it fits and runs.
        req.plan = crate::job::PlanMode::Auto;
        svc.submit(req).unwrap();
        let (results, stats) = svc.finish();
        assert_eq!(results.len(), 1);
        assert!(results[0].verified, "{:?}", results[0].error);
        assert_eq!(stats.rejected, 1);
        assert!(stats.peak_budget_bytes > 0);
        assert!(stats.peak_budget_bytes <= budget);
    }

    #[test]
    fn single_job_runs_and_verifies() {
        let svc = Service::start(ServeConfig::sim(64 * PAGE, 2)).unwrap();
        let id = svc.submit(tiny_job(7, 8)).unwrap();
        assert_eq!(id, 1);
        let (results, stats) = svc.finish();
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert!(r.error.is_none(), "{:?}", r.error);
        assert!(r.verified);
        assert!(r.pairs > 0);
        assert!(r.env_elapsed > 0.0);
        assert!(r.predicted_seconds > 0.0);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 0);
        assert!(stats.peak_budget_bytes <= stats.budget_bytes);
        assert_eq!(stats.peak_budget_bytes, 16 * PAGE);
    }

    #[test]
    fn budget_is_never_exceeded_under_contention() {
        // 8 jobs of 16 pages each against a 32-page budget: at most two
        // run at once even with four workers.
        let svc = Service::start(ServeConfig::sim(32 * PAGE, 4)).unwrap();
        for seed in 0..8 {
            svc.submit(tiny_job(seed, 8)).unwrap();
        }
        let (results, stats) = svc.finish();
        assert_eq!(results.len(), 8);
        assert!(results.iter().all(|r| r.verified));
        assert!(stats.peak_budget_bytes <= 32 * PAGE);
        assert_eq!(stats.completed, 8);
        assert_eq!(stats.in_flight(), 0);
    }

    #[test]
    fn resume_replays_completed_jobs_and_reruns_pending_ones() {
        let dir = std::env::temp_dir().join(format!("mmjoin-resume-single-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // First life: run two jobs to completion under a journal.
        let svc = Service::start(ServeConfig::sim(64 * PAGE, 1).with_journal(dir.clone())).unwrap();
        svc.submit(tiny_job(1, 8)).unwrap();
        svc.submit(tiny_job(2, 8)).unwrap();
        let (mut first, stats) = svc.finish();
        first.sort_by_key(|r| r.id);
        assert!(stats.journal_commits >= 4, "{stats:?}");
        // Area records ride later commits, so appends outnumber them.
        assert!(stats.journal_appended_records >= stats.journal_commits);
        // Simulate a job that was admitted but never finished before
        // the "crash": journal its submission with no completion.
        {
            let (j, _) = ServiceJournal::open(&dir, true, null_sink()).unwrap();
            j.append_commit(&JournalRecord::JobSubmitted {
                job: 3,
                line: tiny_job(5, 8).to_line(),
            });
        }
        // Second life: resume.
        let svc = Service::start(
            ServeConfig::sim(64 * PAGE, 1)
                .with_journal(dir.clone())
                .with_resume(),
        )
        .unwrap();
        // Id assignment continues past everything the journal saw.
        assert_eq!(svc.submit(tiny_job(9, 8)).unwrap(), 4);
        let (mut results, stats) = svc.finish();
        results.sort_by_key(|r| r.id);
        assert_eq!(results.len(), 4);
        // Jobs 1 and 2: re-reported from the journal, same outputs.
        for (r, f) in results[..2].iter().zip(&first) {
            assert!(r.resumed);
            assert_eq!((r.id, r.pairs, r.checksum), (f.id, f.pairs, f.checksum));
            assert!(r.verified);
        }
        // Job 3: re-run live from its journaled submission line.
        assert!(!results[2].resumed);
        assert_eq!(results[2].id, 3);
        assert!(results[2].verified, "{:?}", results[2].error);
        assert_eq!(stats.journal_resumed_jobs, 1);
        assert!(stats.journal_replayed_records >= 5);
        assert_eq!(stats.completed, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn submit_script_reports_bad_lines() {
        let svc = Service::start(ServeConfig::sim(256 * PAGE, 1)).unwrap();
        let err = svc
            .submit_script("# fine\nobjects=800 d=2\nalg=bogus\n")
            .unwrap_err();
        assert!(err.starts_with("line 3:"), "{err}");
    }
}
