//! # mmjoin-serve — a concurrent multi-query join service
//!
//! The paper sizes every join by its per-process memory budgets
//! (`M_Rproc_i`, `M_Sproc_i`) and runs one join at a time. A real
//! µDatabase-style installation faces the next problem up: many join
//! queries arriving concurrently, all drawing on one machine's memory.
//! This crate closes that gap with a small service:
//!
//! * a **job queue + admission controller** ([`Service`]) that holds
//!   pending requests and admits one only when its `m_rproc × D`
//!   footprint fits a configured global budget — FIFO by default, or
//!   shortest-predicted-job-first using the planner's
//!   ([`mmjoin::choose`]) predicted seconds as the priority key;
//! * an **executor pool** of worker threads running admitted jobs on
//!   either the execution-driven simulator or the real memory-mapped
//!   store, through the same `mmjoin::join` entry point the single-query
//!   tools use;
//! * a **service stats layer** ([`ServiceStats`]) folding per-job
//!   process counters into service-level totals, with a JSON snapshot.
//!
//! ```
//! use mmjoin_serve::{JobRequest, ServeConfig, Service, PAGE};
//!
//! // A 32-page global budget; jobs of 16 pages each ⇒ two at a time.
//! let svc = Service::start(ServeConfig::sim(32 * PAGE, 4)).unwrap();
//! for seed in 0..4 {
//!     svc.submit(JobRequest::new(800, 32, 2, 8, seed)).unwrap();
//! }
//! let (results, stats) = svc.finish();
//! assert_eq!(results.len(), 4);
//! assert!(results.iter().all(|r| r.verified));
//! assert!(stats.peak_budget_bytes <= stats.budget_bytes);
//! ```

pub mod admission;
pub mod job;
pub mod service;
pub mod stats;

pub use admission::{AdmissionPolicy, Candidate};
pub use job::{JobId, JobRequest, JobResult, PAGE};
pub use service::{service_machine, EnvKind, ServeConfig, Service};
pub use stats::{percentile, ServiceStats};
