//! # mmjoin-serve — a concurrent multi-query join service
//!
//! The paper sizes every join by its per-process memory budgets
//! (`M_Rproc_i`, `M_Sproc_i`) and runs one join at a time. A real
//! µDatabase-style installation faces the next problem up: many join
//! queries arriving concurrently, all drawing on one machine's memory.
//! This crate closes that gap with a small service:
//!
//! * a **job queue + admission controller** ([`Service`]) that holds
//!   pending requests and admits one only when its `m_rproc × D`
//!   footprint fits a configured global budget — FIFO by default, or
//!   shortest-predicted-job-first using the planner's
//!   ([`mmjoin::choose`]) predicted seconds as the priority key;
//! * an **executor pool** of worker threads running admitted jobs on
//!   either the execution-driven simulator or the real memory-mapped
//!   store, through the same `mmjoin::join` entry point the single-query
//!   tools use;
//! * a **service stats layer** ([`ServiceStats`]) folding per-job
//!   process counters into service-level totals, with a JSON snapshot;
//! * a **sharded service** ([`ShardedService`]) that partitions the
//!   global budget across N shards — each with its own queue, worker
//!   pool, and counters — with pluggable cross-shard [`Placement`]
//!   policies and work stealing between shards. Both services implement
//!   the [`JoinService`] trait, so callers can switch between them.
//!
//! ```
//! use mmjoin_serve::{JobRequest, ServeConfig, Service, PAGE};
//!
//! // A 32-page global budget; jobs of 16 pages each ⇒ two at a time.
//! let svc = Service::start(ServeConfig::sim(32 * PAGE, 4)).unwrap();
//! for seed in 0..4 {
//!     svc.submit(JobRequest::new(800, 32, 2, 8, seed)).unwrap();
//! }
//! let (results, stats) = svc.finish();
//! assert_eq!(results.len(), 4);
//! assert!(results.iter().all(|r| r.verified));
//! assert!(stats.peak_budget_bytes <= stats.budget_bytes);
//! ```
//!
//! The sharded service is a drop-in replacement behind [`JoinService`]:
//!
//! ```
//! use mmjoin_serve::{
//!     JobRequest, JoinService, PlacementKind, ServeConfig, ShardedService, PAGE,
//! };
//!
//! let svc = ShardedService::start(
//!     ServeConfig::sim(32 * PAGE, 2),
//!     4,
//!     PlacementKind::PredictedBalanced.build(),
//! )
//! .unwrap();
//! for seed in 0..4 {
//!     svc.submit(JobRequest::new(800, 32, 2, 4, seed)).unwrap();
//! }
//! let (results, stats) = svc.finish();
//! assert_eq!(results.len(), 4);
//! assert!(results.iter().all(|r| r.verified));
//! // Per-shard slices sum to the global budget, so the merged peak
//! // still respects it.
//! assert!(stats.peak_budget_bytes <= stats.budget_bytes);
//! ```

pub mod admission;
pub mod job;
pub mod placement;
mod plan;
mod recovery;
pub mod service;
pub mod shard;
pub mod stats;

pub use admission::{AdmissionPolicy, Candidate};
pub use job::{JobId, JobRequest, JobResult, PlanMode, PAGE};
pub use placement::{
    LeastLoaded, Placement, PlacementKind, PredictedBalanced, RoundRobin, ShardLoad,
};
pub use service::{service_machine, EnvKind, JoinService, ServeConfig, Service};
pub use shard::ShardedService;
pub use stats::{percentile, ServiceStats};
