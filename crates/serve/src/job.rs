//! Job descriptions: what a client submits, and what comes back.

use mmjoin::{Algo, ExecMode};
use mmjoin_model::JoinInputs;
use mmjoin_relstore::{PointerDist, RelConfig, WorkloadSpec, SPTR_SIZE};

/// Identifier assigned to a job at submission, in arrival order.
pub type JobId = u64;

/// Default page size used for budget arithmetic (the paper's 4 KB).
pub const PAGE: u64 = 4096;

/// How the job's plan (algorithm, memory grant, partitions) is chosen.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum PlanMode {
    /// Run with exactly the submitted configuration.
    #[default]
    Fixed,
    /// Sample the workload's pointer distribution at submit time and
    /// let [`mmjoin::choose_auto`] pick algorithm, `m_rproc`, and
    /// partition count; admission control then budgets against the
    /// *chosen* grant.
    Auto,
}

/// One join job as submitted by a client.
#[derive(Clone, Debug)]
pub struct JobRequest {
    /// Optional client label, echoed in the result.
    pub name: String,
    /// The relations to generate and join.
    pub workload: WorkloadSpec,
    /// `M_Rproc_i` in bytes.
    pub m_rproc: u64,
    /// `M_Sproc_i` in bytes.
    pub m_sproc: u64,
    /// Algorithm to run; `None` lets the planner pick the predicted
    /// cheapest.
    pub alg: Option<Algo>,
    /// Execution mode of the D Rprocs inside this job.
    pub mode: ExecMode,
    /// Whether the service may re-plan this job from sampled
    /// statistics (`plan=auto`) or must take it as-is (`plan=fixed`).
    pub plan: PlanMode,
}

impl JobRequest {
    /// A request with the given shape and defaults everywhere else
    /// (uniform pointers, planner-chosen algorithm, sequential Rprocs).
    pub fn new(objects: u64, obj_size: u32, d: u32, mem_pages: u64, seed: u64) -> Self {
        JobRequest {
            name: String::new(),
            workload: WorkloadSpec {
                rel: RelConfig {
                    r_size: obj_size,
                    s_size: obj_size,
                    d,
                    r_objects: objects,
                    s_objects: objects,
                },
                dist: PointerDist::Uniform,
                seed,
                prefix: String::new(),
            },
            m_rproc: mem_pages * PAGE,
            m_sproc: mem_pages * PAGE,
            alg: None,
            mode: ExecMode::Sequential,
            plan: PlanMode::Fixed,
        }
    }

    /// The memory this job pins while running: `m_rproc × D` — one
    /// R-process budget per partition, the quantity the admission
    /// controller charges against the global budget.
    pub fn footprint(&self) -> u64 {
        self.m_rproc * self.workload.rel.d as u64
    }

    /// Planner inputs derivable *before* the relations exist, using the
    /// workload's distribution-level skew estimate. This is what lets
    /// the admission controller rank jobs it has not yet built.
    pub fn planner_inputs(&self) -> JoinInputs {
        JoinInputs {
            r_objects: self.workload.rel.r_objects,
            s_objects: self.workload.rel.s_objects,
            r_size: self.workload.rel.r_size,
            s_size: self.workload.rel.s_size,
            sptr_size: SPTR_SIZE,
            d: self.workload.rel.d,
            skew: self.workload.estimated_skew(),
            m_rproc: self.m_rproc,
            m_sproc: self.m_sproc,
            g_buffer: PAGE,
        }
    }

    /// Parse one newline-delimited job line: whitespace-separated
    /// `key=value` tokens. Recognized keys: `name`, `alg` (an algorithm
    /// name or `auto`), `objects`, `obj-size`, `d`, `mem-pages`,
    /// `seed`, `dist` (`uniform` | `zipf:T` | `cross`), `mode`
    /// (`seq` | `threads` | `modern`), `plan` (`fixed` | `auto`).
    /// Blank lines and `#` comments yield `None`.
    pub fn parse_line(line: &str) -> Result<Option<JobRequest>, String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        let mut req = JobRequest::new(10_000, 128, 4, 64, 1);
        for tok in line.split_whitespace() {
            let (key, value) = tok
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got '{tok}'"))?;
            match key {
                "name" => req.name = value.to_string(),
                "alg" => {
                    req.alg = if value == "auto" {
                        None
                    } else {
                        Some(
                            Algo::from_name(value)
                                .ok_or_else(|| format!("unknown algorithm '{value}'"))?,
                        )
                    }
                }
                "objects" => {
                    let n = parse_num(key, value)?;
                    req.workload.rel.r_objects = n;
                    req.workload.rel.s_objects = n;
                }
                "obj-size" => {
                    let n = parse_num(key, value)? as u32;
                    req.workload.rel.r_size = n;
                    req.workload.rel.s_size = n;
                }
                "d" => req.workload.rel.d = parse_num(key, value)? as u32,
                "mem-pages" => {
                    let pages = parse_num(key, value)?;
                    req.m_rproc = pages * PAGE;
                    req.m_sproc = pages * PAGE;
                }
                "seed" => req.workload.seed = parse_num(key, value)?,
                "dist" => req.workload.dist = value.parse()?,
                "mode" => {
                    req.mode = match value {
                        "seq" => ExecMode::Sequential,
                        "threads" => ExecMode::Threaded,
                        "modern" => ExecMode::Modern,
                        other => {
                            return Err(format!("unknown mode '{other}' (seq | threads | modern)"))
                        }
                    }
                }
                "plan" => {
                    req.plan = match value {
                        "fixed" => PlanMode::Fixed,
                        "auto" => PlanMode::Auto,
                        other => return Err(format!("unknown plan '{other}' (fixed | auto)")),
                    }
                }
                other => return Err(format!("unknown job key '{other}'")),
            }
        }
        req.workload.rel.validate().map_err(|e| e.to_string())?;
        Ok(Some(req))
    }

    /// Re-encode this request in the job-file grammar accepted by
    /// [`JobRequest::parse_line`]. This is what the write-ahead journal
    /// stores at submission, so a restarted service can re-submit the
    /// job verbatim; `parse_line(to_line())` round-trips every
    /// parse-reachable request.
    pub fn to_line(&self) -> String {
        let dist = match self.workload.dist {
            PointerDist::Uniform => "uniform".to_string(),
            PointerDist::Zipf { theta } => format!("zipf:{theta}"),
            PointerDist::CrossPartition => "cross".to_string(),
        };
        let mode = match self.mode {
            ExecMode::Sequential => "seq",
            ExecMode::Threaded => "threads",
            ExecMode::Modern => "modern",
        };
        let alg = self.alg.map_or("auto", |a| a.name());
        let name = if self.name.is_empty() {
            String::new()
        } else {
            format!("name={} ", self.name)
        };
        // `plan=fixed` is the default and is omitted so pre-existing
        // journals and fixtures round-trip byte-identically.
        let plan = if self.plan == PlanMode::Auto {
            " plan=auto"
        } else {
            ""
        };
        format!(
            "{name}alg={alg} objects={} obj-size={} d={} mem-pages={} seed={} dist={dist} mode={mode}{plan}",
            self.workload.rel.r_objects,
            self.workload.rel.r_size,
            self.workload.rel.d,
            self.m_rproc / PAGE,
            self.workload.seed,
        )
    }
}

fn parse_num(key: &str, value: &str) -> Result<u64, String> {
    value
        .parse()
        .map_err(|_| format!("{key}: cannot parse '{value}'"))
}

/// Everything the service reports about one finished job.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Submission-order id.
    pub id: JobId,
    /// Shard whose worker executed the job — 0 on the single-queue
    /// service; may differ from the shard the placement policy chose
    /// when the job was stolen by an idle sibling.
    pub shard: u32,
    /// Client label from the request.
    pub name: String,
    /// Algorithm that actually ran.
    pub alg: Algo,
    /// Planner-predicted seconds for the winning algorithm (the
    /// admission priority key under shortest-predicted-first).
    pub predicted_seconds: f64,
    /// Joined pairs produced.
    pub pairs: u64,
    /// Order-independent join checksum.
    pub checksum: u64,
    /// Whether pairs and checksum matched the workload oracle.
    pub verified: bool,
    /// Environment-reported elapsed seconds (virtual on `SimEnv`).
    pub env_elapsed: f64,
    /// Wall seconds spent queued before admission.
    pub queue_wait: f64,
    /// Wall seconds from admission to completion.
    pub exec_wall: f64,
    /// Read faults across the job's processes.
    pub read_faults: u64,
    /// Write-backs across the job's processes.
    pub write_backs: u64,
    /// Join attempts executed (1 = first try succeeded).
    pub attempts: u32,
    /// Transient errors absorbed by retrying.
    pub retries: u64,
    /// Faults the injection layer fired into this job.
    pub faults_injected: u64,
    /// Times the job was re-planned with a halved memory footprint
    /// after `DiskFull`.
    pub degraded: u32,
    /// Bytes of the job's original budget reservation returned to the
    /// global pool mid-run by degradations.
    pub released_bytes: u64,
    /// Orphaned temporary files deleted by recovery.
    pub cleaned_files: u64,
    /// The job stopped because it exceeded its wall-clock deadline.
    pub deadline_hit: bool,
    /// The job's executor panicked (isolated by `catch_unwind`).
    pub panicked: bool,
    /// The result was reconstructed from the write-ahead journal by a
    /// restarted service rather than executed in this process.
    pub resumed: bool,
    /// Failure message, if the job errored.
    pub error: Option<String>,
}

impl JobResult {
    /// Wall-clock latency a client observes: queue wait plus execution.
    pub fn latency(&self) -> f64 {
        self.queue_wait + self.exec_wall
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_line_roundtrip() {
        let req = JobRequest::parse_line(
            "name=q1 alg=grace objects=2000 obj-size=64 d=2 mem-pages=32 seed=9 dist=zipf:0.8 mode=threads",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.name, "q1");
        assert_eq!(req.alg, Some(Algo::Grace));
        assert_eq!(req.workload.rel.r_objects, 2000);
        assert_eq!(req.workload.rel.r_size, 64);
        assert_eq!(req.workload.rel.d, 2);
        assert_eq!(req.m_rproc, 32 * PAGE);
        assert_eq!(req.workload.seed, 9);
        assert!(matches!(
            req.workload.dist,
            PointerDist::Zipf { theta } if (theta - 0.8).abs() < 1e-12
        ));
        assert_eq!(req.mode, ExecMode::Threaded);
        assert_eq!(req.footprint(), 2 * 32 * PAGE);
    }

    #[test]
    fn to_line_round_trips_through_parse_line() {
        for line in [
            "alg=auto objects=2000 obj-size=64 d=2 mem-pages=32 seed=9 dist=uniform mode=seq",
            "name=q1 alg=grace objects=2000 obj-size=64 d=2 mem-pages=32 seed=9 dist=zipf:0.8 mode=threads",
            "name=x alg=hybrid-hash objects=400 obj-size=32 d=4 mem-pages=8 seed=3 dist=cross mode=seq",
            "name=m alg=sort-merge objects=800 obj-size=64 d=4 mem-pages=16 seed=5 dist=uniform mode=modern",
            "name=a alg=auto objects=2000 obj-size=64 d=2 mem-pages=32 seed=9 dist=cross mode=seq plan=auto",
        ] {
            let req = JobRequest::parse_line(line).unwrap().unwrap();
            let encoded = req.to_line();
            let back = JobRequest::parse_line(&encoded).unwrap().unwrap();
            assert_eq!(back.to_line(), encoded, "unstable encoding for {line}");
            assert_eq!(back.name, req.name);
            assert_eq!(back.alg, req.alg);
            assert_eq!(back.workload.rel, req.workload.rel);
            assert_eq!(back.workload.seed, req.workload.seed);
            assert_eq!(back.m_rproc, req.m_rproc);
            assert_eq!(back.mode, req.mode);
            assert_eq!(back.plan, req.plan);
        }
    }

    #[test]
    fn plan_key_parses_and_defaults_to_fixed() {
        let fixed = JobRequest::parse_line("alg=auto").unwrap().unwrap();
        assert_eq!(fixed.plan, PlanMode::Fixed);
        assert!(!fixed.to_line().contains("plan="), "default omitted");
        let auto = JobRequest::parse_line("alg=auto plan=auto")
            .unwrap()
            .unwrap();
        assert_eq!(auto.plan, PlanMode::Auto);
        assert!(auto.to_line().ends_with(" plan=auto"));
        assert!(JobRequest::parse_line("plan=maybe").is_err());
    }

    #[test]
    fn parse_line_skips_blanks_and_comments() {
        assert!(JobRequest::parse_line("").unwrap().is_none());
        assert!(JobRequest::parse_line("  # a comment").unwrap().is_none());
    }

    #[test]
    fn parse_line_rejects_bad_input() {
        assert!(JobRequest::parse_line("objects").is_err());
        assert!(JobRequest::parse_line("alg=quantum").is_err());
        assert!(JobRequest::parse_line("mode=fast").is_err());
        assert!(JobRequest::parse_line("frobnicate=1").is_err());
        // d must divide the object counts (RelConfig::validate).
        assert!(JobRequest::parse_line("objects=1001 d=4").is_err());
    }

    #[test]
    fn auto_algorithm_defers_to_planner() {
        let req = JobRequest::parse_line("alg=auto").unwrap().unwrap();
        assert_eq!(req.alg, None);
        let inputs = req.planner_inputs();
        assert_eq!(inputs.r_objects, 10_000);
        assert_eq!(inputs.skew, 1.0);
    }
}
