//! Service-level accounting: per-job [`crate::JobResult`]s folded into
//! counters a long-running service can report, plus a JSON snapshot for
//! machine consumption.

use mmjoin_env::{Histogram, ProcStats};

use crate::job::JobResult;

/// Aggregated counters over every job the service has seen.
#[derive(Clone, Debug, Default)]
pub struct ServiceStats {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs refused at submission (footprint exceeds the whole budget).
    pub rejected: u64,
    /// Jobs finished successfully with a verified result.
    pub completed: u64,
    /// Jobs that finished with an error or failed verification.
    pub failed: u64,
    /// Jobs this shard's workers stole from an overloaded sibling's
    /// queue and ran locally (always 0 on the single-queue service).
    pub stolen: u64,
    /// Global budget the service was configured with, in bytes.
    pub budget_bytes: u64,
    /// High-water mark of reserved budget, in bytes. Never exceeds
    /// `budget_bytes` — the admission invariant.
    pub peak_budget_bytes: u64,
    /// Total wall seconds jobs spent queued before admission.
    pub queue_wait_seconds: f64,
    /// Total wall seconds jobs spent executing after admission.
    pub exec_wall_seconds: f64,
    /// Total environment-reported elapsed seconds (virtual on `SimEnv`).
    pub env_elapsed_seconds: f64,
    /// Faults the injection layer fired across all jobs.
    pub faults_injected: u64,
    /// Transient errors absorbed by retrying, across all jobs.
    pub retries: u64,
    /// `DiskFull` degradations: times a job was re-planned with a
    /// halved memory footprint instead of failing.
    pub degraded: u64,
    /// Jobs stopped at their wall-clock deadline.
    pub deadline_exceeded: u64,
    /// Worker panics isolated by `catch_unwind`.
    pub panics: u64,
    /// Orphaned temporary files deleted by recovery.
    pub cleaned_files: u64,
    /// Reserved budget still outstanding at snapshot time with no job
    /// running — nonzero after a drain means an accounting leak.
    pub budget_leak_bytes: u64,
    /// Write-ahead journal records appended by this process (0 when
    /// journaling is disabled).
    pub journal_appended_records: u64,
    /// Journal commits (durable header flushes) performed.
    pub journal_commits: u64,
    /// CRC-valid records replayed at startup (`--resume`).
    pub journal_replayed_records: u64,
    /// Committed journal bytes lost to a torn or corrupted tail at
    /// startup.
    pub journal_torn_bytes: u64,
    /// Orphaned storage areas garbage-collected at startup.
    pub journal_orphans_deleted: u64,
    /// In-flight jobs re-submitted from the journal at startup.
    pub journal_resumed_jobs: u64,
    /// Streaming tier: probe micro-batches completed (`serve --stream`;
    /// 0 on the one-shot job service).
    pub stream_batches: u64,
    /// Streaming tier: `append=`/`delete=` maintenance ops applied.
    pub stream_mutations: u64,
    /// Streaming tier: probe rows that hit a tombstoned resident slot.
    pub stream_misses: u64,
    /// Streaming tier: times a submitter blocked on the queue bound.
    pub stream_backpressure: u64,
    /// Streaming tier: batches re-reported from the journal by
    /// `--resume` instead of re-executed.
    pub stream_resumed: u64,
    /// Every process counter of every job, folded into one set
    /// ([`mmjoin_env::EnvStats::folded`] summed across jobs).
    pub agg: ProcStats,
    /// Client-observed latency (queue wait + execution) per job.
    pub latency_hist: Histogram,
    /// Queue wait per job.
    pub queue_hist: Histogram,
    /// Execution wall time per job.
    pub exec_hist: Histogram,
    /// Per-pass (stage) durations across every job, merged from each
    /// job's `JoinOutput::pass_seconds`.
    pub pass_hist: Histogram,
    /// Streaming tier: client-observed per-batch latency.
    pub batch_hist: Histogram,
}

impl ServiceStats {
    /// Fold one finished job in. `folded` is the job's
    /// `EnvStats::folded()` when it ran far enough to have stats;
    /// `passes` its per-pass duration histogram, likewise.
    pub fn record(
        &mut self,
        result: &JobResult,
        folded: Option<&ProcStats>,
        passes: Option<&Histogram>,
    ) {
        if result.error.is_none() && result.verified {
            self.completed += 1;
        } else {
            self.failed += 1;
        }
        self.queue_wait_seconds += result.queue_wait;
        self.exec_wall_seconds += result.exec_wall;
        self.env_elapsed_seconds += result.env_elapsed;
        self.faults_injected += result.faults_injected;
        self.retries += result.retries;
        self.degraded += result.degraded as u64;
        self.cleaned_files += result.cleaned_files;
        if result.deadline_hit {
            self.deadline_exceeded += 1;
        }
        if result.panicked {
            self.panics += 1;
        }
        if let Some(p) = folded {
            self.agg.absorb(p);
        }
        self.latency_hist.record(result.latency());
        self.queue_hist.record(result.queue_wait);
        self.exec_hist.record(result.exec_wall);
        if let Some(h) = passes {
            self.pass_hist.merge(h);
        }
    }

    /// Jobs still queued or running.
    ///
    /// On a per-shard snapshot `submitted` counts jobs *placed* on the
    /// shard while completions land on the shard that *ran* the job, so
    /// stealing moves a job between shards mid-flight and a single
    /// shard's difference can be off (or negative, hence saturating).
    /// The merged stats' in-flight is exact: every placement and every
    /// completion is counted exactly once across shards.
    pub fn in_flight(&self) -> u64 {
        self.submitted.saturating_sub(self.completed + self.failed)
    }

    /// Fold another stats snapshot into this one: counters add,
    /// process counters absorb, histograms merge bucket-exactly (see
    /// `tests/hist_properties.rs` — merge is commutative and
    /// associative, so any grouping of per-shard snapshots yields the
    /// same merged result as folding every job into one snapshot).
    ///
    /// `budget_bytes` and `peak_budget_bytes` sum: shards hold disjoint
    /// partitions of the global budget, so the summed peak is an upper
    /// bound on the true global high-water mark and still never exceeds
    /// the summed budget. `stolen` is intentionally *not* merged into
    /// `submitted` — a stolen job was already counted submitted on the
    /// shard that placed it.
    pub fn merge(&mut self, other: &ServiceStats) {
        self.submitted += other.submitted;
        self.rejected += other.rejected;
        self.completed += other.completed;
        self.failed += other.failed;
        self.stolen += other.stolen;
        self.budget_bytes += other.budget_bytes;
        self.peak_budget_bytes += other.peak_budget_bytes;
        self.queue_wait_seconds += other.queue_wait_seconds;
        self.exec_wall_seconds += other.exec_wall_seconds;
        self.env_elapsed_seconds += other.env_elapsed_seconds;
        self.faults_injected += other.faults_injected;
        self.retries += other.retries;
        self.degraded += other.degraded;
        self.deadline_exceeded += other.deadline_exceeded;
        self.panics += other.panics;
        self.cleaned_files += other.cleaned_files;
        self.budget_leak_bytes += other.budget_leak_bytes;
        self.journal_appended_records += other.journal_appended_records;
        self.journal_commits += other.journal_commits;
        self.journal_replayed_records += other.journal_replayed_records;
        self.journal_torn_bytes += other.journal_torn_bytes;
        self.journal_orphans_deleted += other.journal_orphans_deleted;
        self.journal_resumed_jobs += other.journal_resumed_jobs;
        self.stream_batches += other.stream_batches;
        self.stream_mutations += other.stream_mutations;
        self.stream_misses += other.stream_misses;
        self.stream_backpressure += other.stream_backpressure;
        self.stream_resumed += other.stream_resumed;
        self.agg.absorb(&other.agg);
        self.latency_hist.merge(&other.latency_hist);
        self.queue_hist.merge(&other.queue_hist);
        self.exec_hist.merge(&other.exec_hist);
        self.pass_hist.merge(&other.pass_hist);
        self.batch_hist.merge(&other.batch_hist);
    }

    /// Snapshot as a JSON object (hand-rolled: every value is a number,
    /// so no escaping is needed).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"jobs\":{{\"submitted\":{},\"rejected\":{},\"completed\":{},",
                "\"failed\":{},\"stolen\":{},\"in_flight\":{}}},",
                "\"budget\":{{\"bytes\":{},\"peak_bytes\":{},\"leak_bytes\":{}}},",
                "\"seconds\":{{\"queue_wait\":{:.6},\"exec_wall\":{:.6},",
                "\"env_elapsed\":{:.6},\"io\":{:.6}}},",
                "\"faults\":{{\"read_blocks\":{},\"write_blocks\":{},\"page_hits\":{}}},",
                "\"recovery\":{{\"faults_injected\":{},\"retries\":{},\"degraded\":{},",
                "\"deadline_exceeded\":{},\"panics\":{},\"cleaned_files\":{}}},",
                "\"journal\":{{\"appended_records\":{},\"commits\":{},",
                "\"replayed_records\":{},\"torn_bytes\":{},\"orphans_deleted\":{},",
                "\"resumed_jobs\":{}}},",
                "\"stream\":{{\"batches\":{},\"mutations\":{},\"misses\":{},",
                "\"backpressure\":{},\"resumed\":{}}},",
                "\"latency\":{},\"queue\":{},\"exec\":{},\"pass\":{},\"batch\":{}}}"
            ),
            self.submitted,
            self.rejected,
            self.completed,
            self.failed,
            self.stolen,
            self.in_flight(),
            self.budget_bytes,
            self.peak_budget_bytes,
            self.budget_leak_bytes,
            self.queue_wait_seconds,
            self.exec_wall_seconds,
            self.env_elapsed_seconds,
            self.agg.io_time,
            self.agg.fault_read_blocks,
            self.agg.fault_write_blocks,
            self.agg.page_hits,
            self.faults_injected,
            self.retries,
            self.degraded,
            self.deadline_exceeded,
            self.panics,
            self.cleaned_files,
            self.journal_appended_records,
            self.journal_commits,
            self.journal_replayed_records,
            self.journal_torn_bytes,
            self.journal_orphans_deleted,
            self.journal_resumed_jobs,
            self.stream_batches,
            self.stream_mutations,
            self.stream_misses,
            self.stream_backpressure,
            self.stream_resumed,
            self.latency_hist.to_json(),
            self.queue_hist.to_json(),
            self.exec_hist.to_json(),
            self.pass_hist.to_json(),
            self.batch_hist.to_json(),
        )
    }
}

/// The `p`-th percentile (0–100) of a set of samples, by the
/// nearest-rank method. Returns 0.0 for an empty set.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmjoin::Algo;

    fn result(ok: bool) -> JobResult {
        JobResult {
            id: 1,
            shard: 0,
            name: String::new(),
            alg: Algo::Grace,
            predicted_seconds: 1.0,
            pairs: 10,
            checksum: 0xfeed,
            verified: ok,
            env_elapsed: 2.0,
            queue_wait: 0.5,
            exec_wall: 1.5,
            read_faults: 7,
            write_backs: 3,
            attempts: if ok { 1 } else { 3 },
            retries: if ok { 0 } else { 2 },
            faults_injected: if ok { 0 } else { 2 },
            degraded: 0,
            released_bytes: 0,
            cleaned_files: if ok { 0 } else { 4 },
            deadline_hit: false,
            panicked: false,
            resumed: false,
            error: if ok { None } else { Some("boom".into()) },
        }
    }

    #[test]
    fn record_splits_completed_and_failed() {
        let mut s = ServiceStats {
            submitted: 2,
            ..Default::default()
        };
        let p = ProcStats {
            fault_read_blocks: 7,
            ..Default::default()
        };
        s.record(&result(true), Some(&p), None);
        s.record(&result(false), None, None);
        assert_eq!(s.completed, 1);
        assert_eq!(s.failed, 1);
        assert_eq!(s.in_flight(), 0);
        assert_eq!(s.agg.fault_read_blocks, 7);
        assert!((s.queue_wait_seconds - 1.0).abs() < 1e-12);
        assert!((s.exec_wall_seconds - 3.0).abs() < 1e-12);
        assert_eq!(s.faults_injected, 2);
        assert_eq!(s.retries, 2);
        assert_eq!(s.cleaned_files, 4);
        assert_eq!(s.deadline_exceeded, 0);
        assert_eq!(s.panics, 0);
        // Both jobs land in the latency histograms either way.
        assert_eq!(s.latency_hist.count(), 2);
        assert_eq!(s.queue_hist.count(), 2);
        assert_eq!(s.exec_hist.count(), 2);
        assert!(s.pass_hist.is_empty());
        assert!((s.latency_hist.max() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn json_snapshot_is_well_formed() {
        let mut s = ServiceStats {
            submitted: 1,
            budget_bytes: 1024,
            peak_budget_bytes: 512,
            ..Default::default()
        };
        s.record(&result(true), None, None);
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"submitted\":1"));
        assert!(j.contains("\"completed\":1"));
        assert!(j.contains("\"peak_bytes\":512"));
        assert!(j.contains("\"leak_bytes\":0"));
        assert!(j.contains("\"recovery\":{\"faults_injected\":0"));
        assert!(j.contains("\"journal\":{\"appended_records\":0"));
        assert!(j.contains("\"stream\":{\"batches\":0"));
        for key in ["latency", "queue", "exec", "pass", "batch"] {
            assert!(j.contains(&format!("\"{key}\":{{\"count\":")), "{key}: {j}");
        }
        assert!(j.contains("\"p999\":"));
        // Balanced braces — cheap structural sanity without a parser.
        let open = j.matches('{').count();
        assert_eq!(open, j.matches('}').count());
        // Eight section objects plus five histogram objects.
        assert_eq!(open, 13);
    }

    #[test]
    fn merge_equals_single_fold() {
        // Folding jobs into two per-shard snapshots and merging must
        // give the same counters and bucket-exact histograms as folding
        // them all into one snapshot.
        let mut a = ServiceStats::default();
        let mut b = ServiceStats::default();
        let mut whole = ServiceStats::default();
        for i in 0..6u64 {
            let mut r = result(i % 3 != 0);
            r.queue_wait = 0.1 * (i + 1) as f64;
            r.exec_wall = 0.3 * (i + 1) as f64;
            let target = if i % 2 == 0 { &mut a } else { &mut b };
            target.submitted += 1;
            target.record(&r, None, None);
            whole.submitted += 1;
            whole.record(&r, None, None);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.submitted, whole.submitted);
        assert_eq!(merged.completed, whole.completed);
        assert_eq!(merged.failed, whole.failed);
        assert_eq!(merged.in_flight(), 0);
        assert_eq!(merged.latency_hist.buckets(), whole.latency_hist.buckets());
        assert_eq!(merged.queue_hist.buckets(), whole.queue_hist.buckets());
        assert_eq!(merged.exec_hist.buckets(), whole.exec_hist.buckets());
        assert_eq!(merged.latency_hist.count(), whole.latency_hist.count());
        assert_eq!(merged.latency_hist.min(), whole.latency_hist.min());
        assert_eq!(merged.latency_hist.max(), whole.latency_hist.max());
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 50.0), 50.0);
        assert_eq!(percentile(&xs, 95.0), 95.0);
        assert_eq!(percentile(&xs, 100.0), 100.0);
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 50.0), 2.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }
}
