//! Submit-time auto-planning (`plan=auto`): sample the workload's
//! pointer distribution, summarize it, and let the data-aware planner
//! re-shape the request *before* admission control sees it.
//!
//! The mutation happens before the footprint is computed, so the
//! admission controller budgets — and the worker reserves — the
//! *chosen* `m_rproc`, not the submitted one. Sampling is seeded from
//! the workload seed, so a resumed service re-resolves a journaled
//! `plan=auto` line to the identical plan.

use mmjoin::{choose_auto, AutoPlan, SampleSummary, HISTOGRAM_BUCKETS, SAMPLE_CAP};
use mmjoin_env::TraceEvent;
use mmjoin_relstore::sample_spec_pointers;

use crate::job::{JobId, JobRequest, PlanMode};
use crate::service::ServeConfig;

/// The provenance of a resolved `plan=auto` request: what was sampled
/// and what the planner chose from it.
pub(crate) struct ResolvedPlan {
    /// The full data-aware decision (algorithm ranking at the chosen
    /// grant, skew, partitions, provenance).
    pub(crate) auto: AutoPlan,
    /// Pointers sampled at submit time.
    pub(crate) sampled: u64,
    /// Pointer duplication factor of the sample.
    pub(crate) duplication: f64,
}

impl ResolvedPlan {
    /// The two lifecycle events narrating this plan, in emission order.
    pub(crate) fn trace_events(&self, job: JobId) -> [TraceEvent; 2] {
        [
            TraceEvent::PlanSampled {
                job,
                sampled: self.sampled,
                skew: self.auto.skew,
                duplication: self.duplication,
            },
            TraceEvent::PlanChosen {
                job,
                algorithm: self.auto.choice.algorithm.name().to_string(),
                m_rproc: self.auto.m_rproc,
                partitions: self.auto.partitions,
                skew: self.auto.skew,
                source: self.auto.source.name().to_string(),
            },
        ]
    }
}

/// Resolve a request's plan in place. `plan=fixed` requests pass
/// through untouched (`None`); `plan=auto` requests are sampled
/// ([`SAMPLE_CAP`] pointers drawn from the workload distribution,
/// bounded cost, deterministic per seed) and their memory grants
/// replaced by the planner's choice. The algorithm is *not* pinned:
/// the queued plan already ranks algorithms at the chosen grant, and
/// leaving `alg=auto` lets graceful degradation re-plan at a halved
/// footprint later.
pub(crate) fn resolve_auto(
    cfg: &ServeConfig,
    req: &mut JobRequest,
) -> Result<Option<ResolvedPlan>, String> {
    if req.plan != PlanMode::Auto {
        return Ok(None);
    }
    let rel = &req.workload.rel;
    let pointers = sample_spec_pointers(&req.workload, SAMPLE_CAP);
    let summary = SampleSummary::from_pointers(
        &pointers,
        rel.r_objects,
        rel.s_objects,
        rel.d,
        HISTOGRAM_BUCKETS,
    );
    let auto = choose_auto(cfg.machine()?, &req.planner_inputs(), Some(&summary));
    req.m_rproc = auto.m_rproc;
    req.m_sproc = auto.m_sproc;
    Ok(Some(ResolvedPlan {
        sampled: summary.sampled,
        duplication: summary.duplication,
        auto,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::PAGE;

    #[test]
    fn fixed_requests_pass_through() {
        let cfg = ServeConfig::sim(256 * PAGE, 1);
        let mut req = JobRequest::new(2_000, 64, 2, 32, 1);
        let before = req.m_rproc;
        assert!(resolve_auto(&cfg, &mut req).unwrap().is_none());
        assert_eq!(req.m_rproc, before);
    }

    #[test]
    fn auto_requests_are_resampled_deterministically() {
        let cfg = ServeConfig::sim(1 << 30, 1);
        let mut a = JobRequest::new(8_000, 64, 4, 4_096, 7);
        a.plan = PlanMode::Auto;
        let mut b = a.clone();
        let ra = resolve_auto(&cfg, &mut a).unwrap().unwrap();
        let rb = resolve_auto(&cfg, &mut b).unwrap().unwrap();
        assert_eq!(a.m_rproc, b.m_rproc);
        assert_eq!(ra.auto.skew.to_bits(), rb.auto.skew.to_bits());
        assert_eq!(ra.sampled, rb.sampled);
        // A grossly oversized grant is trimmed, so admission reserves
        // the chosen footprint, not the submitted one.
        assert!(a.m_rproc < 4_096 * PAGE, "grant {} not trimmed", a.m_rproc);
        let events = ra.trace_events(3);
        assert_eq!(events[0].tag(), "plan_sampled");
        assert_eq!(events[1].tag(), "plan_chosen");
    }
}
