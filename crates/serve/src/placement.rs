//! Cross-shard placement: which shard a submitted job should queue on.
//!
//! The sharded service splits the global budget into per-shard
//! partitions (DeWitt & Gray's shared-nothing argument applied to the
//! service itself). Placement decides, at submission time, which shard
//! owns a job; work stealing later corrects placements that turn out
//! unbalanced. The three stock policies trade information for balance
//! quality:
//!
//! * [`RoundRobin`] uses no load information at all;
//! * [`LeastLoaded`] balances *memory*: the shard with the fewest
//!   reserved bytes (queued + running footprints) wins;
//! * [`PredictedBalanced`] balances *time*: the shard with the smallest
//!   planner-predicted backlog in seconds wins — the same cost model
//!   ([`mmjoin::choose`]) the admission controller already ranks jobs
//!   with.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::admission::Candidate;

/// What a placement policy sees of one shard at submission time.
#[derive(Clone, Copy, Debug)]
pub struct ShardLoad {
    /// Shard index.
    pub shard: u32,
    /// The shard's budget partition in bytes.
    pub budget_bytes: u64,
    /// Footprint bytes reserved by running jobs plus footprint bytes of
    /// queued jobs — the shard's total memory commitment.
    pub reserved_bytes: u64,
    /// Jobs queued but not yet admitted.
    pub queued: usize,
    /// Planner-predicted seconds of work queued plus running.
    pub backlog_seconds: f64,
}

/// A cross-shard placement policy. Implementations must be cheap: one
/// call per submission, under no lock.
pub trait Placement: Send + Sync {
    /// Display name (used in reports and JSON).
    fn name(&self) -> &str;

    /// The shard `job` should queue on, as an index into `loads`, or
    /// `None` when no shard's budget partition can ever hold the job's
    /// footprint (the sharded equivalent of the single-queue service's
    /// submit-time rejection).
    fn place(&self, job: &Candidate, loads: &[ShardLoad]) -> Option<usize>;
}

/// Indices of the shards whose budget partition can hold `job` at all.
fn eligible<'a>(job: &'a Candidate, loads: &'a [ShardLoad]) -> impl Iterator<Item = usize> + 'a {
    loads
        .iter()
        .enumerate()
        .filter(move |(_, l)| l.budget_bytes >= job.footprint)
        .map(|(i, _)| i)
}

/// Rotate through the shards in submission order, skipping shards whose
/// budget partition cannot hold the job.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: AtomicUsize,
}

impl Placement for RoundRobin {
    fn name(&self) -> &str {
        "rr"
    }

    fn place(&self, job: &Candidate, loads: &[ShardLoad]) -> Option<usize> {
        if loads.is_empty() {
            return None;
        }
        let start = self.next.fetch_add(1, Ordering::Relaxed);
        (0..loads.len())
            .map(|k| (start + k) % loads.len())
            .find(|&i| loads[i].budget_bytes >= job.footprint)
    }
}

/// The eligible shard with the fewest reserved bytes (queued + running
/// footprints). Ties fall to the lowest shard index.
#[derive(Debug, Default)]
pub struct LeastLoaded;

impl Placement for LeastLoaded {
    fn name(&self) -> &str {
        "load"
    }

    fn place(&self, job: &Candidate, loads: &[ShardLoad]) -> Option<usize> {
        eligible(job, loads).min_by_key(|&i| (loads[i].reserved_bytes, i))
    }
}

/// The eligible shard with the smallest planner-predicted backlog in
/// seconds. Ties fall back to reserved bytes, then to the lowest index —
/// so with an empty service it degenerates to lowest-index placement,
/// and under uniform predictions to [`LeastLoaded`].
#[derive(Debug, Default)]
pub struct PredictedBalanced;

impl Placement for PredictedBalanced {
    fn name(&self) -> &str {
        "pred"
    }

    fn place(&self, job: &Candidate, loads: &[ShardLoad]) -> Option<usize> {
        eligible(job, loads).min_by(|&a, &b| {
            loads[a]
                .backlog_seconds
                .total_cmp(&loads[b].backlog_seconds)
                .then(loads[a].reserved_bytes.cmp(&loads[b].reserved_bytes))
                .then(a.cmp(&b))
        })
    }
}

/// Nameable stock policies, for CLI parsing.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum PlacementKind {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`LeastLoaded`].
    LeastLoaded,
    /// [`PredictedBalanced`] — the default: it folds the planner's cost
    /// model into placement for free.
    #[default]
    PredictedBalanced,
}

impl PlacementKind {
    /// Parse `rr` | `load` | `pred`.
    pub fn from_name(s: &str) -> Option<PlacementKind> {
        match s {
            "rr" => Some(PlacementKind::RoundRobin),
            "load" => Some(PlacementKind::LeastLoaded),
            "pred" => Some(PlacementKind::PredictedBalanced),
            _ => None,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PlacementKind::RoundRobin => "rr",
            PlacementKind::LeastLoaded => "load",
            PlacementKind::PredictedBalanced => "pred",
        }
    }

    /// Instantiate the policy.
    pub fn build(self) -> Box<dyn Placement> {
        match self {
            PlacementKind::RoundRobin => Box::new(RoundRobin::default()),
            PlacementKind::LeastLoaded => Box::new(LeastLoaded),
            PlacementKind::PredictedBalanced => Box::new(PredictedBalanced),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(footprint: u64, predicted_seconds: f64) -> Candidate {
        Candidate {
            footprint,
            predicted_seconds,
        }
    }

    fn load(shard: u32, budget: u64, reserved: u64, backlog: f64) -> ShardLoad {
        ShardLoad {
            shard,
            budget_bytes: budget,
            reserved_bytes: reserved,
            queued: 0,
            backlog_seconds: backlog,
        }
    }

    #[test]
    fn round_robin_rotates_and_skips_undersized_shards() {
        let rr = RoundRobin::default();
        let loads = [
            load(0, 100, 0, 0.0),
            load(1, 10, 0, 0.0),
            load(2, 100, 0, 0.0),
        ];
        let j = job(50, 1.0);
        let picks: Vec<usize> = (0..6).map(|_| rr.place(&j, &loads).unwrap()).collect();
        // Shard 1 (budget 10 < 50) is never picked; both eligible
        // shards keep getting work as the cursor rotates.
        assert!(picks.iter().all(|&i| i == 0 || i == 2), "{picks:?}");
        assert!(picks.contains(&0) && picks.contains(&2), "{picks:?}");
    }

    #[test]
    fn least_loaded_minimizes_reserved_bytes() {
        let loads = [
            load(0, 100, 80, 1.0),
            load(1, 100, 20, 9.0),
            load(2, 100, 50, 0.5),
        ];
        assert_eq!(LeastLoaded.place(&job(60, 1.0), &loads), Some(1));
        // Ties break to the lowest index.
        let even = [load(0, 100, 30, 0.0), load(1, 100, 30, 0.0)];
        assert_eq!(LeastLoaded.place(&job(10, 1.0), &even), Some(0));
    }

    #[test]
    fn predicted_balanced_minimizes_backlog_seconds() {
        let loads = [
            load(0, 100, 10, 5.0),
            load(1, 100, 90, 1.0),
            load(2, 100, 40, 3.0),
        ];
        // Shard 1 has the least predicted backlog despite the most
        // reserved bytes.
        assert_eq!(PredictedBalanced.place(&job(10, 1.0), &loads), Some(1));
        // Backlog ties fall back to reserved bytes.
        let tied = [load(0, 100, 50, 2.0), load(1, 100, 10, 2.0)];
        assert_eq!(PredictedBalanced.place(&job(10, 1.0), &tied), Some(1));
    }

    #[test]
    fn oversized_jobs_place_nowhere() {
        let loads = [load(0, 32, 0, 0.0), load(1, 32, 0, 0.0)];
        let j = job(64, 1.0);
        assert_eq!(RoundRobin::default().place(&j, &loads), None);
        assert_eq!(LeastLoaded.place(&j, &loads), None);
        assert_eq!(PredictedBalanced.place(&j, &loads), None);
        assert_eq!(RoundRobin::default().place(&j, &[]), None);
    }

    #[test]
    fn kinds_round_trip_and_build() {
        for kind in [
            PlacementKind::RoundRobin,
            PlacementKind::LeastLoaded,
            PlacementKind::PredictedBalanced,
        ] {
            assert_eq!(PlacementKind::from_name(kind.name()), Some(kind));
            assert_eq!(kind.build().name(), kind.name());
        }
        assert_eq!(PlacementKind::from_name("random"), None);
    }
}
