//! Cluster chaos acceptance test with real processes: a coordinator
//! driving two `mmjoin serve --node` workers must survive one of them
//! being SIGKILLed mid-run — every job re-queues onto the survivor and
//! the final output set (pairs + checksums) equals an uninterrupted
//! single-node reference run, with zero lost and zero duplicated
//! completions.

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const JOBS: &str = "\
name=a objects=800 obj-size=32 d=2 mem-pages=8 seed=1
name=b objects=700 obj-size=32 d=2 mem-pages=8 seed=2
name=c objects=600 obj-size=32 d=2 mem-pages=8 seed=3 dist=zipf:0.8
name=d objects=800 obj-size=32 d=2 mem-pages=8 seed=4
name=e objects=700 obj-size=32 d=2 mem-pages=8 seed=5
name=f objects=600 obj-size=32 d=2 mem-pages=8 seed=6
";

fn mmjoin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mmjoin"))
}

/// Kill the child on drop so a panicking assertion never strands a
/// listening node process.
struct Reaped(Child);

impl Drop for Reaped {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Start one worker node and return it with the address parsed from
/// its "listening on" banner. The returned reader keeps the child's
/// stdout pipe open — dropping it early would turn the node's own
/// shutdown banner into a fatal broken pipe.
fn spawn_node(fault_spec: &str) -> (Reaped, String, BufReader<std::process::ChildStdout>) {
    let mut child = mmjoin()
        .args([
            "serve",
            "--node",
            "--listen",
            "127.0.0.1:0",
            "--budget-pages",
            "64",
            "--workers",
            "2",
            "--fault-spec",
            fault_spec,
        ])
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    let mut banner = String::new();
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    reader.read_line(&mut banner).unwrap();
    let addr = banner
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split(' ').next())
        .unwrap_or_else(|| panic!("no address in banner: {banner:?}"))
        .to_string();
    (Reaped(child), addr, reader)
}

/// The comparable per-job outcome set, exactly as chaos_restart.rs
/// builds it: everything up to the `resumed` key — (id, name, alg,
/// pairs, checksum, ok) — which both `serve` and `coordinator` emit in
/// the same order.
fn outcome_set(path: &Path) -> BTreeSet<String> {
    let text = std::fs::read_to_string(path).unwrap();
    text.split("},{")
        .map(|chunk| {
            let trimmed = chunk.trim_matches(|c| "[]{}\n".contains(c));
            let stop = trimmed.find(",\"resumed\"").unwrap_or(trimmed.len());
            trimmed[..stop].to_string()
        })
        .collect()
}

fn stat_field(path: &Path, key: &str) -> u64 {
    let text = std::fs::read_to_string(path).unwrap();
    let pat = format!("\"{key}\":");
    let at = text
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {text}"));
    text[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

#[test]
fn sigkilled_node_requeues_to_the_reference_output_set() {
    let dir = std::env::temp_dir().join(format!("mmjoin-cluster-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let jobs = dir.join("jobs.txt");
    std::fs::write(&jobs, JOBS).unwrap();

    // Reference: the same script through one uninterrupted local serve.
    let ref_json = dir.join("ref.json");
    let status = mmjoin()
        .args(["serve", "--workers", "2", "--budget-pages", "64"])
        .arg("--jobs")
        .arg(&jobs)
        .arg("--results-json")
        .arg(&ref_json)
        .stdout(Stdio::null())
        .status()
        .unwrap();
    assert!(status.success(), "reference serve failed");
    let reference = outcome_set(&ref_json);
    assert_eq!(reference.len(), 6);

    // The victim's fault injector stretches each of its jobs by
    // ~400 ms, so the two it claims are still in flight when the
    // SIGKILL lands; the survivor's are stretched only ~25 ms.
    let (victim, victim_addr, _victim_out) = spawn_node("delay:ms=2:count=200");
    let (_survivor, survivor_addr, _survivor_out) = spawn_node("delay:ms=1:count=25");

    let out_json = dir.join("out.json");
    let stats_json = dir.join("stats.json");
    let coordinator = mmjoin()
        .arg("coordinator")
        .args(["--nodes", &format!("{victim_addr},{survivor_addr}")])
        .args(["--heartbeat-ms", "30", "--timeout-ms", "300"])
        .arg("--jobs")
        .arg(&jobs)
        .arg("--results-json")
        .arg(&out_json)
        .arg("--stats-json")
        .arg(&stats_json)
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();

    // SIGKILL the victim while its first claims are mid-join.
    std::thread::sleep(Duration::from_millis(200));
    {
        let mut victim = victim;
        victim.0.kill().unwrap();
        victim.0.wait().unwrap();
    }

    let output = coordinator.wait_with_output().unwrap();
    assert!(
        output.status.success(),
        "coordinator failed:\n{}",
        String::from_utf8_lossy(&output.stdout)
    );

    // Zero lost, zero duplicated: the exact reference output set.
    assert_eq!(outcome_set(&out_json), reference);
    assert_eq!(stat_field(&stats_json, "node_losses"), 1);
    assert!(
        stat_field(&stats_json, "requeued") >= 1,
        "the victim's in-flight jobs must have been re-queued"
    );
    assert_eq!(stat_field(&stats_json, "failed"), 0);
    assert_eq!(stat_field(&stats_json, "budget_leak_bytes"), 0);

    let _ = std::fs::remove_dir_all(&dir);
}
