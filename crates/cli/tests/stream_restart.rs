//! Kill -9 a journaled `serve --stream` mid-run, `--resume` it, and
//! check exactly-once delivery: the union of re-reported and
//! re-executed ops equals — as a set of (identity, outcome) tuples —
//! what one uninterrupted run produces. No lost batch, no double
//! batch, identical pairs/checksums/live counts.

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

const HEADER: &str = "resident=hot objects=1024 obj-size=64 d=2 mem-pages=64 seed=21\n";

/// The full op script: batches interleaved with maintenance (deletes
/// free slots; the append reuses them). 12 ops total.
fn script() -> String {
    let mut s = String::from(HEADER);
    for i in 0..5 {
        s.push_str(&format!("batch=b{i} objects=128 seed={}\n", 100 + i));
    }
    s.push_str("delete=64 seed=200\n");
    s.push_str("append=32 seed=201\n");
    for i in 5..10 {
        s.push_str(&format!("batch=b{i} objects=128 seed={}\n", 100 + i));
    }
    s
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmjoin-stream-rst-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Reduce a `--results-json` array to its deterministic identity: the
/// fields before the timing block, plus the live count. Timings and
/// the `resumed` marker legitimately differ between runs.
fn outcome_set(json: &str) -> BTreeSet<String> {
    let body = json.trim().trim_matches(|c| c == '[' || c == ']');
    body.split("},{")
        .map(|o| {
            let o = o.trim_matches(|c| c == '{' || c == '}');
            let head = o.split(",\"predicted_seconds\"").next().unwrap();
            let live = o
                .split("\"live_after\":")
                .nth(1)
                .map(|t| t.trim_end_matches(|c: char| !c.is_ascii_digit()))
                .unwrap_or("");
            format!("{head} live={live}")
        })
        .collect()
}

fn run_to_completion(jobs: &Path, journal: Option<&Path>, results: &Path) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_mmjoin"));
    cmd.args(["serve", "--stream", "--jobs"])
        .arg(jobs)
        .arg("--results-json")
        .arg(results);
    if let Some(dir) = journal {
        cmd.arg("--journal").arg(dir);
    }
    let out = cmd.output().expect("run stream");
    assert!(
        out.status.success(),
        "stream failed:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn kill9_then_resume_is_exactly_once() {
    let dir = tmp("wal");
    let jobs = dir.join("jobs.txt");
    std::fs::write(&jobs, script()).expect("write jobs");
    // The resume run's script is the header alone: the journal already
    // holds every accepted op, and re-submitting the originals would
    // be the duplicate delivery this test exists to rule out.
    let header_only = dir.join("header.txt");
    std::fs::write(&header_only, HEADER).expect("write header");

    // Uninterrupted reference.
    let ref_json = dir.join("reference.json");
    run_to_completion(&jobs, None, &ref_json);
    let reference = outcome_set(&std::fs::read_to_string(&ref_json).expect("read reference"));
    assert_eq!(reference.len(), 12, "reference covers every op");

    // Crash run: journaled, SIGKILLed after at least 3 acknowledged
    // completions (each `done` line prints only after its journal
    // commit, so the kill provably lands with work still pending or
    // just barely finished — both must resume to the same answer).
    let wal = dir.join("journal");
    let mut child = Command::new(env!("CARGO_BIN_EXE_mmjoin"))
        .args(["serve", "--stream", "--jobs"])
        .arg(&jobs)
        .arg("--journal")
        .arg(&wal)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn crash run");
    let mut lines = BufReader::new(child.stdout.take().expect("stdout"));
    let mut seen = 0;
    let mut line = String::new();
    while seen < 3 {
        line.clear();
        if lines.read_line(&mut line).expect("read stdout") == 0 {
            break; // the run won the race and finished; still fine
        }
        if line.starts_with("done seq=") {
            seen += 1;
        }
    }
    assert!(seen >= 3, "crash run died before 3 completions");
    child.kill().expect("SIGKILL");
    let _ = child.wait();

    // Resume: replays completions from the journal, re-executes the
    // torn suffix, and reports the union.
    let resumed_json = dir.join("resumed.json");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_mmjoin"));
    cmd.args(["serve", "--stream", "--resume", "--jobs"])
        .arg(&header_only)
        .arg("--journal")
        .arg(&wal)
        .arg("--results-json")
        .arg(&resumed_json);
    let out = cmd.output().expect("resume");
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(out.status.success(), "resume failed:\n{stdout}");
    let resumed_text = std::fs::read_to_string(&resumed_json).expect("read resumed");
    let resumed = outcome_set(&resumed_text);
    assert_eq!(resumed.len(), 12, "resume reports every op exactly once");
    assert_eq!(resumed, reference, "resumed outcomes match uninterrupted");
    assert!(
        resumed_text.contains("\"resumed\":true"),
        "at least one op was re-reported from the journal"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
