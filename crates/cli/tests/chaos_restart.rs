//! Chaos acceptance test for the crash-consistent serve path: a serve
//! killed mid-join (`crash:hard=1`, the in-process equivalent of
//! `kill -9`) must, after `--resume`, replay its write-ahead journal,
//! garbage-collect every orphaned area, and emit the exact same join
//! output set as an uninterrupted run — no lost jobs, no duplicates.

use std::collections::BTreeSet;
use std::path::Path;
use std::process::Command;

const JOBS: &str = "\
name=a alg=grace objects=800 obj-size=32 d=2 mem-pages=8 seed=1 dist=uniform mode=seq
name=b alg=sort-merge objects=800 obj-size=32 d=2 mem-pages=8 seed=2 dist=uniform mode=seq
name=c objects=800 obj-size=32 d=2 mem-pages=8 seed=3 dist=zipf:0.8 mode=seq
";

fn mmjoin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mmjoin"))
}

/// Parse a --results-json array into the comparable per-job outcome
/// set: (id, name, alg, pairs, checksum, ok). `resumed` is excluded —
/// it legitimately differs between the reference and restarted runs.
fn outcome_set(path: &Path) -> BTreeSet<String> {
    let text = std::fs::read_to_string(path).unwrap();
    text.split("},{")
        .map(|chunk| {
            let trimmed = chunk.trim_matches(|c| "[]{}\n".contains(c));
            let stop = trimmed.find(",\"resumed\"").unwrap_or(trimmed.len());
            trimmed[..stop].to_string()
        })
        .collect()
}

fn leftover_job_stores(root: &Path) -> Vec<String> {
    let Ok(entries) = std::fs::read_dir(root) else {
        return Vec::new();
    };
    entries
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("job"))
        .collect()
}

#[test]
fn killed_serve_resumes_to_the_reference_output_set() {
    let dir = std::env::temp_dir().join(format!("mmjoin-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let jobs = dir.join("jobs.txt");
    std::fs::write(&jobs, JOBS).unwrap();

    // Reference: the same script, journaled but never interrupted.
    let ref_json = dir.join("ref.json");
    let status = mmjoin()
        .args(["serve", "--env", "mmap", "--workers", "1"])
        .arg("--journal")
        .arg(dir.join("ref"))
        .arg("--jobs")
        .arg(&jobs)
        .arg("--results-json")
        .arg(&ref_json)
        .status()
        .unwrap();
    assert!(status.success(), "reference serve failed");
    let reference = outcome_set(&ref_json);
    assert_eq!(reference.len(), 3);

    // Chaos: identical script, fresh journal, hard crash mid-join.
    let crash_dir = dir.join("crash");
    let output = mmjoin()
        .args(["serve", "--env", "mmap", "--workers", "1"])
        .arg("--journal")
        .arg(&crash_dir)
        .arg("--jobs")
        .arg(&jobs)
        // The delay rule throttles the worker's first ops so all three
        // admissions commit to the journal before the abort fires.
        .args(["--fault-spec", "delay:ms=5:count=60;crash:hard=1:after=200"])
        .output()
        .unwrap();
    assert!(
        !output.status.success(),
        "crash run should have aborted, got: {}",
        String::from_utf8_lossy(&output.stdout)
    );
    assert!(
        !leftover_job_stores(&crash_dir.join("store")).is_empty(),
        "the abort should strand at least one job store"
    );

    // Restart: no --jobs at all — the journal alone drives recovery.
    let out_json = dir.join("out.json");
    let output = mmjoin()
        .args(["serve", "--env", "mmap", "--workers", "1", "--resume"])
        .arg("--journal")
        .arg(&crash_dir)
        .arg("--results-json")
        .arg(&out_json)
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "resume failed: {}\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("resumed 3 job(s)"), "{stdout}");

    // Exact same output set — every job, no loss, no duplicates — and
    // zero orphaned areas under the recovered store root.
    assert_eq!(outcome_set(&out_json), reference);
    assert_eq!(
        leftover_job_stores(&crash_dir.join("store")),
        Vec::<String>::new()
    );

    let _ = std::fs::remove_dir_all(&dir);
}
