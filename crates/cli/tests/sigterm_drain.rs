//! `serve --stream` graceful shutdown: a SIGTERM delivered while the
//! stream is live (stdin still open, ops in flight) must stop intake,
//! drain every accepted op, print the results, and exit 0.

use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Command, Stdio};

const HEADER: &str = "resident=drain objects=512 obj-size=64 d=2 mem-pages=64 seed=11\n";

#[test]
fn sigterm_drains_accepted_ops_and_exits_cleanly() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mmjoin"))
        .args(["serve", "--stream"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve --stream");
    let mut stdin = child.stdin.take().expect("stdin");
    let stdout = child.stdout.take().expect("stdout");
    let mut lines = BufReader::new(stdout);

    stdin.write_all(HEADER.as_bytes()).expect("write header");
    for i in 0..4 {
        stdin
            .write_all(format!("batch=b{i} objects=64 seed={i}\n").as_bytes())
            .expect("write op");
    }
    stdin.flush().expect("flush");

    // Wait until the stream has acknowledged some completions so the
    // signal provably arrives while the session is up and running.
    let mut seen = 0;
    let mut line = String::new();
    while seen < 2 {
        line.clear();
        assert_ne!(
            lines.read_line(&mut line).expect("read stdout"),
            0,
            "stream exited before completing any ops"
        );
        if line.starts_with("done seq=") {
            seen += 1;
        }
    }

    // stdin stays OPEN: without the signal the stream would block
    // waiting for more ops. SIGTERM alone must get it to exit.
    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("run kill");
    assert!(status.success(), "kill -TERM failed");

    let mut rest = String::new();
    lines.read_to_string(&mut rest).expect("drain stdout");
    let out = child.wait().expect("wait");
    assert!(out.success(), "stream exited with {out:?}\n{rest}");
    assert!(
        rest.contains("SIGTERM: stopping intake"),
        "missing SIGTERM notice:\n{rest}"
    );
    assert!(
        rest.contains("drained cleanly after SIGTERM: 4 op(s) completed, 0 failed"),
        "missing drain summary (all 4 accepted ops must complete):\n{rest}"
    );
    drop(stdin);
}
