//! `mmjoin` — command-line driver for the reproduction.
//!
//! ```text
//! mmjoin join  [--alg A] [--objects N] [--d D] [--mem-pages P] [--seed S]
//!              [--dist uniform|zipf:T|cross] [--env sim|mmap]
//!              [--threads | --modern] [--machine-profile FILE]
//! mmjoin plan  [--objects N] [--d D] [--mem-pages P] [--skew X] [--explain A]
//!              [--machine-profile FILE]
//! mmjoin serve [--jobs FILE] [--budget-pages N] [--workers N] [--policy fifo|spf]
//!              [--shards N] [--placement rr|load|pred] [--modern]
//!              [--machine-profile FILE]
//! mmjoin serve --node [--listen ADDR] [--node-name NAME] [--budget-pages N]
//!              [--workers N] [--machine-profile FILE]
//! mmjoin coordinator --nodes A:P,B:P [--jobs FILE] [--heartbeat-ms MS]
//!              [--timeout-ms MS] [--max-requeues N] [--journal DIR] [--resume]
//! mmjoin calibrate      [--out FILE] [--device PATH] [--quick] [--sim]
//! mmjoin validate-model [--machine-profile FILE] [--objects N] [--d D]
//!                       [--mem-pages P]
//! mmjoin help
//! ```
//!
//! `join` runs one parallel pointer-based join and verifies it against
//! the workload oracle; `plan` queries the analytical model the way a
//! query optimizer would; `serve` runs many jobs concurrently under the
//! admission-controlled service (`serve --node` exposes that service
//! over TCP as one worker node of a cluster); `coordinator` dispatches
//! a job script across `--nodes` worker processes with heartbeats,
//! dead-node re-queue, and an optional crash-recovery journal;
//! `calibrate` measures the paper's §3
//! machine parameters on this host and persists them as a versioned
//! JSON machine profile (or, with `--sim`, prints the simulated drive's
//! `dttr`/`dttw` curves); `validate-model` runs the paper's three
//! algorithms on the real memory-mapped store and prints per-pass
//! measured-vs-predicted times, then re-runs every algorithm under the
//! modern kernels to record their unmodelled constant-factor win.
//! Every planning/simulating command accepts `--machine-profile FILE`
//! to use a calibrated profile in place of the built-in waterloo96
//! preset; `join --modern` / `serve --modern` select the
//! cache-conscious kernel path with bitwise-identical join output.

use std::process::ExitCode;

use mmjoin::{
    choose, choose_auto, explain, join_with_retry, verify, Algo, ExecMode, JoinSpec, RetryPolicy,
    SampleSummary, HISTOGRAM_BUCKETS, SAMPLE_CAP,
};
use mmjoin_calibrate::{calibrate_host, CalibrateOptions, MachineProfile};
use mmjoin_env::machine::MachineParams;
use mmjoin_env::{FaultSpec, FaultyEnv, JsonlSink, TraceSink};
use mmjoin_relstore::{
    build, sample_relation, sample_spec_pointers, PointerDist, RelConfig, WorkloadSpec,
};
use mmjoin_vmsim::{
    calibrated_params, measure_dtt, CalibrationSpec, DiskParams, SimConfig, SimEnv,
};

/// Minimal `--key value` / `--flag` parser (keeps the dependency set to
/// the workspace crates).
#[derive(Debug)]
struct Args {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Args, String> {
        let mut pairs: Vec<(String, String)> = Vec::new();
        let mut flags: Vec<String> = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            let name = a
                .strip_prefix("--")
                .ok_or_else(|| format!("expected an option, got '{a}'"))?;
            if pairs.iter().any(|(k, _)| k == name) || flags.iter().any(|f| f == name) {
                return Err(format!("--{name} given more than once"));
            }
            if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                pairs.push((name.to_string(), argv[i + 1].clone()));
                i += 2;
            } else {
                flags.push(name.to_string());
                i += 1;
            }
        }
        Ok(Args { pairs, flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse '{v}'")),
        }
    }

    fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

fn parse_alg(s: &str) -> Result<Algo, String> {
    Algo::ALL
        .into_iter()
        .find(|a| a.name() == s)
        .ok_or_else(|| {
            let names: Vec<&str> = Algo::ALL.iter().map(|a| a.name()).collect();
            format!("unknown algorithm '{s}' (one of: {})", names.join(", "))
        })
}

fn parse_dist(s: &str) -> Result<PointerDist, String> {
    s.parse()
}

fn workload_from(args: &Args) -> Result<WorkloadSpec, String> {
    let objects: u64 = args.get_or("objects", 40_000)?;
    let d: u32 = args.get_or("d", 4)?;
    let obj_size: u32 = args.get_or("obj-size", 128)?;
    let seed: u64 = args.get_or("seed", 1996)?;
    let dist = parse_dist(args.get("dist").unwrap_or("uniform"))?;
    Ok(WorkloadSpec {
        rel: RelConfig {
            r_size: obj_size,
            s_size: obj_size,
            d,
            r_objects: objects,
            s_objects: objects,
        },
        dist,
        seed,
        prefix: String::new(),
    })
}

/// The default machine when no profile is supplied: the waterloo96
/// preset with its `dtt` curves re-measured from the simulated drive —
/// the single place the preset is named, so every command degrades to
/// the same machine.
fn default_machine() -> Result<MachineParams, String> {
    calibrated_params(&DiskParams::waterloo96()).map_err(|e| e.to_string())
}

/// The machine a command should plan/simulate against: the profile
/// named by `--machine-profile`, else [`default_machine`].
fn machine_from(args: &Args) -> Result<MachineParams, String> {
    match args.get("machine-profile") {
        None => default_machine(),
        Some(path) => {
            let profile = MachineProfile::load(std::path::Path::new(path))
                .map_err(|e| format!("--machine-profile: {e}"))?;
            let p = &profile.provenance;
            eprintln!(
                "machine profile: {path} (host {}, device {}, direct_io {}, reps {}{})",
                p.host,
                p.device,
                p.direct_io,
                p.reps,
                if p.quick { ", quick" } else { "" }
            );
            Ok(profile.machine)
        }
    }
}

/// The pointer budget requested with `--sample`: bare `--sample` means
/// the planner's default cap, `--sample N` draws exactly `N`, absent
/// means no sampling.
fn sample_cap_from(args: &Args) -> Result<Option<usize>, String> {
    if args.flag("sample") {
        return Ok(Some(SAMPLE_CAP));
    }
    match args.get("sample") {
        None => Ok(None),
        Some(v) => {
            let cap: usize = v
                .parse()
                .map_err(|_| format!("--sample: cannot parse '{v}'"))?;
            if cap == 0 {
                return Err("--sample: must draw at least one pointer".to_string());
            }
            Ok(Some(cap))
        }
    }
}

/// Sample `cap` pointers from the workload's distribution and fold
/// them into the planner's histogram summary — the same path `serve`
/// takes for `plan=auto` job lines.
fn summarize_spec(w: &WorkloadSpec, cap: usize) -> SampleSummary {
    let pointers = sample_spec_pointers(w, cap);
    SampleSummary::from_pointers(
        &pointers,
        w.rel.r_objects,
        w.rel.s_objects,
        w.rel.d,
        HISTOGRAM_BUCKETS,
    )
}

/// Open the JSONL trace sink requested with `--trace`, if any.
fn trace_sink_from(args: &Args) -> Result<Option<std::sync::Arc<JsonlSink>>, String> {
    match args.get("trace") {
        None => Ok(None),
        Some(path) => JsonlSink::create(path)
            .map(|s| Some(std::sync::Arc::new(s)))
            .map_err(|e| format!("--trace: cannot create '{path}': {e}")),
    }
}

fn cmd_join(args: &Args) -> Result<(), String> {
    let w = workload_from(args)?;
    let mut pages: u64 = args.get_or("mem-pages", 160)?;
    let mode = match (args.flag("threads"), args.flag("modern")) {
        (true, true) => return Err("--threads and --modern are mutually exclusive".to_string()),
        (_, true) => ExecMode::Modern,
        (true, _) => ExecMode::Threaded,
        _ => ExecMode::Sequential,
    };
    let machine = machine_from(args)?;
    // `--auto` hands algorithm and memory grant to the data-aware
    // planner: sample the workload's pointers, estimate skew from the
    // histogram, and take the plan — exactly what a `plan=auto` job
    // line gets under serve.
    let (alg, auto_plan) = if args.flag("auto") {
        if args.get("alg").is_some() {
            return Err("--alg and --auto are mutually exclusive".to_string());
        }
        let inputs = mmjoin_model::JoinInputs {
            r_objects: w.rel.r_objects,
            s_objects: w.rel.s_objects,
            r_size: w.rel.r_size,
            s_size: w.rel.s_size,
            sptr_size: mmjoin_relstore::SPTR_SIZE,
            d: w.rel.d,
            skew: 1.0,
            m_rproc: pages * 4096,
            m_sproc: pages * 4096,
            g_buffer: 4096,
        };
        let summary = summarize_spec(&w, sample_cap_from(args)?.unwrap_or(SAMPLE_CAP));
        let auto = choose_auto(&machine, &inputs, Some(&summary));
        pages = (auto.m_rproc / 4096).max(1);
        (Algo::from(auto.choice.algorithm), Some(auto))
    } else {
        (parse_alg(args.get("alg").unwrap_or("grace"))?, None)
    };
    let fault_spec = FaultSpec::parse(args.get("fault-spec").unwrap_or(""))
        .map_err(|e| format!("--fault-spec: {e}"))?;
    let retries: u32 = args.get_or("retries", 3)?;
    let policy = RetryPolicy::attempts(retries);
    let spec = JoinSpec::new(pages * 4096, pages * 4096).with_mode(mode);
    let env_kind = args.get("env").unwrap_or("sim");
    let sink = trace_sink_from(args)?;

    // The workload is built on the inner env (setup is not in the fault
    // domain); the join runs through the injecting wrapper.
    let (out, report, faults) = match env_kind {
        "sim" => {
            let mut cfg = SimConfig::waterloo96(w.rel.d);
            cfg.machine = machine;
            cfg.rproc_pages = pages as usize;
            cfg.sproc_pages = pages as usize;
            let env = SimEnv::new(cfg).map_err(|e| e.to_string())?;
            let env = FaultyEnv::new(env, fault_spec.clone());
            let rels = build(env.inner(), &w).map_err(|e| e.to_string())?;
            if let Some(s) = &sink {
                // Attach after the workload build so the trace covers
                // the join itself, not relation generation.
                env.inner().set_trace_sink(s.clone());
            }
            let (out, report) =
                join_with_retry(&env, &rels, alg, &spec, &policy).map_err(|e| e.to_string())?;
            verify(&out, &rels).map_err(|e| format!("verification failed: {e}"))?;
            println!("environment: simulator (virtual 1996-like machine)");
            (out, report, env.fault_stats())
        }
        "mmap" => {
            let root = std::env::temp_dir().join(format!("mmjoin-cli-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&root);
            let env = mmjoin_mmstore::MmapEnv::new(mmjoin_mmstore::MmapEnvConfig {
                root: root.clone(),
                num_disks: w.rel.d,
                page_size: 4096,
            })
            .map_err(|e| e.to_string())?;
            let env = FaultyEnv::new(env, fault_spec.clone());
            let rels = build(env.inner(), &w).map_err(|e| e.to_string())?;
            if let Some(s) = &sink {
                env.inner().set_trace_sink(s.clone());
            }
            let (out, report) =
                join_with_retry(&env, &rels, alg, &spec, &policy).map_err(|e| e.to_string())?;
            verify(&out, &rels).map_err(|e| format!("verification failed: {e}"))?;
            let _ = std::fs::remove_dir_all(&root);
            println!("environment: real memory-mapped store ({})", root.display());
            (out, report, env.fault_stats())
        }
        other => return Err(format!("unknown env '{other}' (sim | mmap)")),
    };

    if !fault_spec.is_empty() {
        println!(
            "faults:      {} injected; {} attempt(s), {} transient error(s) \
             retried, {} orphan file(s) cleaned",
            faults.total(),
            report.attempts,
            report.transient_errors,
            report.cleaned_files
        );
    }
    println!("algorithm:   {}", alg.name());
    if let Some(auto) = &auto_plan {
        println!(
            "auto plan:   {} — predicted {:.1} s",
            auto.describe(),
            auto.predicted_seconds()
        );
    }
    println!(
        "workload:    |R| = |S| = {} x {} B over D = {}",
        w.rel.r_objects, w.rel.r_size, w.rel.d
    );
    println!("memory:      {pages} pages/process");
    println!("result:      {} pairs, checksum verified", out.pairs);
    println!("elapsed:     {:.3} s", out.elapsed);
    println!(
        "page faults: {} reads, {} write-backs",
        out.stats.total_read_faults(),
        out.stats.total_write_backs()
    );
    for (name, t) in &out.stage_times {
        println!("  stage {name:<16} done at {t:>9.3} s");
    }
    if let Some(s) = &sink {
        s.flush()
            .map_err(|e| format!("--trace: flush failed: {e}"))?;
        println!(
            "trace:       {} (structured JSONL events)",
            args.get("trace").unwrap_or("?")
        );
    }
    Ok(())
}

fn cmd_plan(args: &Args) -> Result<(), String> {
    let w = workload_from(args)?;
    let pages: u64 = args.get_or("mem-pages", 160)?;
    let skew: f64 = args.get_or("skew", 1.0)?;
    let machine = machine_from(args)?;
    // Plan from statistics alone — no data is generated.
    let inputs = mmjoin_model::JoinInputs {
        r_objects: w.rel.r_objects,
        s_objects: w.rel.s_objects,
        r_size: w.rel.r_size,
        s_size: w.rel.s_size,
        sptr_size: mmjoin_relstore::SPTR_SIZE,
        d: w.rel.d,
        skew,
        m_rproc: pages * 4096,
        m_sproc: pages * 4096,
        g_buffer: 4096,
    };
    let plan = choose(&machine, &inputs);
    println!(
        "plan for |R| = |S| = {} x {} B, D = {}, {} pages/proc, skew {skew}",
        w.rel.r_objects, w.rel.r_size, w.rel.d, pages
    );
    for (alg, t) in &plan.ranking {
        let marker = if *alg == plan.algorithm {
            "  <== pick"
        } else {
            ""
        };
        println!("  {:<14} {t:>10.1} s{marker}", alg.name());
    }
    if let Some(cap) = sample_cap_from(args)? {
        // The data-aware path: draw pointers, estimate skew from the
        // histogram, and re-rank at the planner's chosen grant.
        let summary = summarize_spec(&w, cap);
        let auto = choose_auto(&machine, &inputs, Some(&summary));
        println!();
        println!(
            "sampled {} of {} pointers: histogram skew {:.2} \
             (worst-case bound {:.1}), duplication {:.2}",
            summary.sampled,
            summary.population,
            summary.estimated_skew(),
            w.rel.d as f64,
            summary.duplication
        );
        println!("auto plan: {}", auto.describe());
        for (alg, t) in &auto.choice.ranking {
            let marker = if *alg == auto.choice.algorithm {
                "  <== pick"
            } else {
                ""
            };
            println!("  {:<14} {t:>10.1} s{marker}", alg.name());
        }
    }
    if let Some(name) = args.get("explain") {
        let alg = mmjoin_model::Algorithm::ALL
            .into_iter()
            .find(|a| a.name() == name)
            .ok_or_else(|| format!("unknown algorithm '{name}'"))?;
        println!("\nitemized prediction for {}:", alg.name());
        println!("{}", explain(&machine, &inputs, alg).table());
    }
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    if args.flag("stream") {
        // The streaming tier shares the serve front door but has its
        // own session machinery (resident S, micro-batch ops).
        return cmd_stream(args);
    }
    use mmjoin_serve::{
        AdmissionPolicy, EnvKind, JoinService, PlacementKind, ServeConfig, Service, ShardedService,
        PAGE,
    };

    let budget_pages: u64 = args.get_or("budget-pages", 256)?;
    let workers: usize = args.get_or("workers", 4)?;
    let shards: u32 = args.get_or("shards", 1)?;
    let placement = PlacementKind::from_name(args.get("placement").unwrap_or("pred"))
        .ok_or_else(|| "unknown placement (rr | load | pred)".to_string())?;
    let policy = AdmissionPolicy::from_name(args.get("policy").unwrap_or("fifo"))
        .ok_or_else(|| "unknown policy (fifo | spf)".to_string())?;
    let fault_spec = FaultSpec::parse(args.get("fault-spec").unwrap_or(""))
        .map_err(|e| format!("--fault-spec: {e}"))?;
    let retries: u32 = args.get_or("retries", 3)?;
    let deadline_ms: u64 = args.get_or("deadline-ms", 0)?;
    let journal_dir = args.get("journal").map(std::path::PathBuf::from);
    let resume = args.flag("resume");
    if resume && journal_dir.is_none() {
        return Err("--resume requires --journal DIR".to_string());
    }
    let env = match args.get("env").unwrap_or("sim") {
        "sim" => EnvKind::Sim,
        "mmap" => EnvKind::Mmap {
            root: match &journal_dir {
                // Pin the store next to the journal so a restarted serve
                // finds (and garbage-collects) the previous life's areas.
                Some(dir) => dir.join("store"),
                None => std::env::temp_dir().join(format!("mmjoin-serve-{}", std::process::id())),
            },
        },
        other => return Err(format!("unknown env '{other}' (sim | mmap)")),
    };

    // Job script: a file via --jobs, or stdin. A resumed serve may run
    // purely from the journal, so only fall back to stdin when fresh.
    // A cluster node takes jobs from its coordinator, never a script.
    let script = match args.get("jobs") {
        _ if args.flag("node") => String::new(),
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?
        }
        None if resume => String::new(),
        None => {
            use std::io::Read as _;
            let mut s = String::new();
            std::io::stdin()
                .read_to_string(&mut s)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            s
        }
    };

    // `serve --modern` makes the cache-conscious kernels the default:
    // every job line that does not pick a `mode=` itself runs modern.
    let script = if args.flag("modern") {
        script
            .lines()
            .map(|l| {
                let t = l.trim();
                if t.is_empty() || t.starts_with('#') || t.contains("mode=") {
                    l.to_string()
                } else {
                    format!("{l} mode=modern")
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
    } else {
        script
    };

    let sink = trace_sink_from(args)?;
    // Only an explicit profile becomes a config override; without one
    // the service keeps its own process-wide calibrated default.
    let machine = match args.get("machine-profile") {
        Some(_) => Some(std::sync::Arc::new(machine_from(args)?)),
        None => None,
    };
    let mut cfg = ServeConfig {
        budget_bytes: budget_pages * PAGE,
        workers,
        policy,
        env,
        fault_spec,
        retries: retries.max(1),
        deadline: None,
        trace: match &sink {
            Some(s) => s.clone() as std::sync::Arc<dyn TraceSink>,
            None => mmjoin_env::null_sink(),
        },
        machine,
        journal_dir,
        resume,
    };
    if deadline_ms > 0 {
        cfg.deadline = Some(std::time::Duration::from_millis(deadline_ms));
    }
    if args.flag("node") {
        if shards > 1 {
            return Err("--node wraps a single local service (drop --shards)".to_string());
        }
        let listen = args.get("listen").unwrap_or("127.0.0.1:0");
        let default_name = format!("node-{}", std::process::id());
        let name = args.get("node-name").unwrap_or(&default_name);
        let node = mmjoin_cluster::NodeServer::start(listen, name, cfg)?;
        // The chaos harness and CI smoke parse this line for the
        // resolved ephemeral port; keep its shape stable.
        println!(
            "node {} listening on {} (budget {budget_pages} pages, {workers} worker(s))",
            node.name(),
            node.local_addr()
        );
        node.wait();
        println!("node stopped");
        if let Some(s) = &sink {
            s.flush()
                .map_err(|e| format!("--trace: flush failed: {e}"))?;
        }
        return Ok(());
    }
    let svc: Box<dyn JoinService> = if shards > 1 {
        Box::new(ShardedService::start(cfg, shards, placement.build())?)
    } else {
        Box::new(Service::start(cfg)?)
    };
    let ids = svc.submit_script(&script)?;
    if shards > 1 {
        println!(
            "serving {} job(s): budget {budget_pages} pages over {shards} shard(s), \
             {workers} worker(s)/shard, policy {}, placement {}",
            ids.len(),
            policy.name(),
            placement.name()
        );
    } else {
        println!(
            "serving {} job(s): budget {budget_pages} pages, {workers} worker(s), policy {}",
            ids.len(),
            policy.name()
        );
    }
    svc.drain();
    let mut results = svc.results();
    let stats = svc.stats();
    results.sort_by_key(|r| r.id);
    println!(
        "{:>4} {:>5}  {:<12} {:<14} {:>10} {:>9} {:>9} {:>9}  status",
        "id", "shard", "name", "algorithm", "pairs", "pred(s)", "wait(s)", "exec(s)"
    );
    for r in &results {
        let mut status = match &r.error {
            None => "ok".to_string(),
            Some(e) => format!("FAILED: {e}"),
        };
        if r.resumed {
            status.push_str(" (resumed)");
        }
        println!(
            "{:>4} {:>5}  {:<12} {:<14} {:>10} {:>9.2} {:>9.3} {:>9.3}  {status}",
            r.id,
            r.shard,
            if r.name.is_empty() { "-" } else { &r.name },
            r.alg.name(),
            r.pairs,
            r.predicted_seconds,
            r.queue_wait,
            r.exec_wall
        );
    }
    println!(
        "completed {} / failed {} — peak budget {} of {} pages",
        stats.completed,
        stats.failed,
        stats.peak_budget_bytes / PAGE,
        budget_pages
    );
    if shards > 1 {
        for (i, s) in svc.shard_stats().iter().enumerate() {
            println!(
                "  shard {i}: {} done, {} stolen in, peak {} of {} pages",
                s.completed,
                s.stolen,
                s.peak_budget_bytes / PAGE,
                s.budget_bytes / PAGE
            );
        }
    }
    if stats.faults_injected > 0 {
        println!(
            "recovery: {} fault(s) injected, {} retried, {} degraded, \
             {} deadline(s) exceeded, {} orphan file(s) cleaned",
            stats.faults_injected,
            stats.retries,
            stats.degraded,
            stats.deadline_exceeded,
            stats.cleaned_files
        );
    }
    if stats.journal_appended_records + stats.journal_replayed_records > 0 {
        println!(
            "journal: {} record(s) appended in {} commit(s); replay saw {} record(s) \
             ({} torn byte(s)), deleted {} orphaned area(s), resumed {} job(s)",
            stats.journal_appended_records,
            stats.journal_commits,
            stats.journal_replayed_records,
            stats.journal_torn_bytes,
            stats.journal_orphans_deleted,
            stats.journal_resumed_jobs
        );
    }
    if let Some(path) = args.get("results-json") {
        let mut out = String::from("[");
        for (i, r) in results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":{},\"name\":{},\"alg\":{},\"pairs\":{},\"checksum\":{},\
                 \"ok\":{},\"resumed\":{}}}",
                r.id,
                json_str(&r.name),
                json_str(r.alg.name()),
                r.pairs,
                r.checksum,
                r.error.is_none() && r.verified,
                r.resumed
            ));
        }
        out.push_str("]\n");
        std::fs::write(path, out).map_err(|e| format!("cannot write '{path}': {e}"))?;
        println!("results written to {path}");
    }
    if let Some(path) = args.get("stats-json") {
        std::fs::write(path, stats.to_json()).map_err(|e| format!("cannot write '{path}': {e}"))?;
        println!("stats written to {path}");
    } else if args.flag("json") {
        println!("{}", stats.to_json());
    }
    if let Some(s) = &sink {
        s.flush()
            .map_err(|e| format!("--trace: flush failed: {e}"))?;
    }
    if stats.failed > 0 {
        return Err(format!("{} job(s) failed", stats.failed));
    }
    Ok(())
}

/// Set by the SIGTERM handler; polled by the stream intake loop.
static TERM_REQUESTED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn on_sigterm(_sig: libc::c_int) {
    // Only an atomic store: anything else is not async-signal-safe.
    TERM_REQUESTED.store(true, std::sync::atomic::Ordering::SeqCst);
}

/// Install the graceful-shutdown handler (stream mode only; everywhere
/// else SIGTERM keeps its default immediate-kill disposition).
fn install_sigterm() {
    unsafe {
        libc::signal(libc::SIGTERM, on_sigterm as *const () as libc::sighandler_t);
    }
}

fn term_requested() -> bool {
    TERM_REQUESTED.load(std::sync::atomic::Ordering::SeqCst)
}

/// Where a stream's script lines come from: a finite `--jobs` file, or
/// live stdin via a reader thread. Both stop yielding once SIGTERM is
/// requested — the channel indirection exists precisely so an idle
/// stream blocked "between lines" still notices the signal within one
/// poll interval instead of sitting in an uninterruptible read.
enum LineFeed {
    Fixed(std::vec::IntoIter<String>),
    Live(std::sync::mpsc::Receiver<String>),
}

impl LineFeed {
    fn next(&mut self) -> Option<String> {
        match self {
            LineFeed::Fixed(it) => {
                if term_requested() {
                    return None;
                }
                it.next()
            }
            LineFeed::Live(rx) => loop {
                if term_requested() {
                    return None;
                }
                match rx.recv_timeout(std::time::Duration::from_millis(50)) {
                    Ok(line) => return Some(line),
                    Err(std::sync::mpsc::RecvTimeoutError::Timeout) => continue,
                    Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return None,
                }
            },
        }
    }
}

/// `serve --stream`: the streaming join tier. The inner relation S is
/// loaded and indexed once (the *resident set*); an unbounded sequence
/// of R micro-batches probes it, with `append=` / `delete=` lines
/// maintaining S incrementally. The script's first meaningful line is
/// the `resident=` header; every following line is one op. With
/// `--jobs FILE` the script is finite; without it, ops stream in on
/// stdin until EOF or SIGTERM. SIGTERM stops intake and drains every
/// accepted op before exiting, so a supervisor's `kill -TERM` never
/// loses a batch the stream already acknowledged.
fn cmd_stream(args: &Args) -> Result<(), String> {
    use mmjoin_stream::{StreamConfig, StreamHeader};

    install_sigterm();
    let queue_bound: usize = args.get_or("queue-bound", 64)?;
    let journal_dir = args.get("journal").map(std::path::PathBuf::from);
    let resume = args.flag("resume");
    if resume && journal_dir.is_none() {
        return Err("--resume requires --journal DIR".to_string());
    }
    let machine = machine_from(args)?;
    let sink = trace_sink_from(args)?;

    let mut feed = match args.get("jobs") {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
            LineFeed::Fixed(
                text.lines()
                    .map(|l| l.to_string())
                    .collect::<Vec<_>>()
                    .into_iter(),
            )
        }
        None => {
            let (tx, rx) = std::sync::mpsc::channel();
            std::thread::spawn(move || {
                use std::io::BufRead as _;
                for line in std::io::stdin().lock().lines() {
                    let Ok(line) = line else { break };
                    if tx.send(line).is_err() {
                        break;
                    }
                }
            });
            LineFeed::Live(rx)
        }
    };

    // The first meaningful line is the resident= header. A resumed
    // stream may run purely from its journal: give it a header-only
    // script (resume refuses a mismatched header) and no ops.
    let mut header = loop {
        let Some(line) = feed.next() else {
            return Err("stream script ended before a 'resident=' header line".to_string());
        };
        match StreamHeader::parse_line(&line).map_err(|e| format!("header: {e}"))? {
            Some(h) => break h,
            None => continue,
        }
    };
    if args.flag("modern") {
        header.modern = true;
    }

    let cfg = StreamConfig {
        queue_bound,
        machine: machine.clone(),
        journal_dir: journal_dir.clone(),
        resume,
    };
    match args.get("env").unwrap_or("sim") {
        "sim" => {
            let mut sim = SimConfig::waterloo96(header.d);
            sim.machine = machine;
            sim.rproc_pages = header.mem_pages as usize;
            sim.sproc_pages = header.mem_pages as usize;
            let env = SimEnv::new(sim).map_err(|e| e.to_string())?;
            if let Some(s) = &sink {
                env.set_trace_sink(s.clone());
            }
            println!("environment: simulator (virtual 1996-like machine)");
            run_stream(std::sync::Arc::new(env), header, cfg, feed, args, &sink)
        }
        "mmap" => {
            let root = match &journal_dir {
                // Pin the store next to the journal so a restarted
                // stream recovers the previous life's segments.
                Some(dir) => dir.join("store"),
                None => std::env::temp_dir().join(format!("mmjoin-stream-{}", std::process::id())),
            };
            let mm_cfg = mmjoin_mmstore::MmapEnvConfig {
                root: root.clone(),
                num_disks: header.d,
                page_size: 4096,
            };
            let env = if resume {
                mmjoin_mmstore::MmapEnv::recover(mm_cfg)
                    .map_err(|e| e.to_string())?
                    .0
            } else {
                let _ = std::fs::remove_dir_all(&root);
                mmjoin_mmstore::MmapEnv::new(mm_cfg).map_err(|e| e.to_string())?
            };
            if let Some(s) = &sink {
                env.set_trace_sink(s.clone());
            }
            println!("environment: real memory-mapped store ({})", root.display());
            run_stream(std::sync::Arc::new(env), header, cfg, feed, args, &sink)
        }
        other => Err(format!("unknown env '{other}' (sim | mmap)")),
    }
}

/// Drive an open stream session: submit ops from `feed`, report each
/// completion on stdout as it lands, drain, and summarize.
fn run_stream<E: mmjoin_env::Env + 'static>(
    env: std::sync::Arc<E>,
    header: mmjoin_stream::StreamHeader,
    cfg: mmjoin_stream::StreamConfig,
    mut feed: LineFeed,
    args: &Args,
    sink: &Option<std::sync::Arc<JsonlSink>>,
) -> Result<(), String> {
    use mmjoin_stream::{StreamOp, StreamSession};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let budget_pages = header.mem_pages;
    let sess = Arc::new(StreamSession::open(env, header.clone(), cfg).map_err(|e| e.to_string())?);
    println!(
        "stream {}: |S| = {} x {} B resident over D = {} ({} index), \
         budget {budget_pages} pages, {} journaled op(s) re-reported",
        header.name,
        header.s_objects,
        header.s_size,
        header.d,
        if header.modern {
            "modern sorted-run"
        } else {
            "radix hash"
        },
        sess.results().len()
    );

    // Per-op progress lines go out as results land, not at the end: a
    // supervisor tailing stdout sees exactly which ops are durable
    // (the line prints only after the journal commit), which is what
    // the kill/resume smoke counts before delivering its SIGKILL.
    let done = Arc::new(AtomicBool::new(false));
    let reporter = {
        let sess = Arc::clone(&sess);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut printed = 0usize;
            loop {
                // Order matters: read the flag *before* the results so
                // the post-drain sweep cannot miss a late completion.
                let finishing = done.load(Ordering::SeqCst);
                let results = sess.results();
                for r in &results[printed..] {
                    println!(
                        "done seq={} kind={} name={} rows={} pairs={} misses={} ok={}{}",
                        r.seq,
                        r.kind,
                        if r.name.is_empty() { "-" } else { &r.name },
                        r.rows,
                        r.pairs,
                        r.misses,
                        r.ok,
                        if r.resumed { " resumed" } else { "" }
                    );
                }
                printed = results.len();
                if finishing {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        })
    };

    let mut intake_error = None;
    while let Some(line) = feed.next() {
        match StreamOp::parse_line(&line) {
            Ok(Some(op)) => {
                if let Err(e) = sess.submit(op) {
                    intake_error = Some(format!("submit: {e}"));
                    break;
                }
            }
            Ok(None) => {}
            Err(e) => {
                intake_error = Some(format!("op line {line:?}: {e}"));
                break;
            }
        }
    }
    let terminated = term_requested();
    if terminated {
        println!("SIGTERM: stopping intake, draining accepted op(s)");
    }
    sess.drain();
    done.store(true, Ordering::SeqCst);
    let _ = reporter.join();
    if let Some(e) = intake_error {
        return Err(e);
    }

    let results = sess.results();
    let stats = sess.stats();
    if terminated {
        println!(
            "drained cleanly after SIGTERM: {} op(s) completed, {} failed",
            stats.completed + stats.mutations,
            stats.failed
        );
    }
    println!(
        "{:>4} {:<10} {:<7} {:>8} {:>10} {:>8} {:>9} {:>9} {:>9}  status",
        "seq", "name", "kind", "rows", "pairs", "misses", "pred(s)", "wait(s)", "exec(s)"
    );
    for r in &results {
        let mut status = match &r.error {
            None => "ok".to_string(),
            Some(e) => format!("FAILED: {e}"),
        };
        if r.resumed {
            status.push_str(" (resumed)");
        }
        println!(
            "{:>4} {:<10} {:<7} {:>8} {:>10} {:>8} {:>9.2} {:>9.3} {:>9.3}  {status}",
            r.seq,
            if r.name.is_empty() { "-" } else { &r.name },
            r.kind,
            r.rows,
            r.pairs,
            r.misses,
            r.predicted_seconds,
            r.queue_wait,
            r.exec_wall
        );
    }
    println!(
        "completed {} batch(es) + {} mutation(s) / failed {} — resident {} live of {} \
         object(s), {} build(s), {} patched, {} backpressure stall(s)",
        stats.completed,
        stats.mutations,
        stats.failed,
        stats.live_objects,
        stats.resident_objects,
        stats.resident_builds,
        stats.patched_objects,
        stats.backpressure
    );
    if stats.journal_appended_records + stats.journal_replayed_records > 0 {
        println!(
            "journal: {} record(s) appended in {} commit(s); replay saw {} record(s) \
             ({} torn byte(s)), resumed {} op(s)",
            stats.journal_appended_records,
            stats.journal_commits,
            stats.journal_replayed_records,
            stats.journal_torn_bytes,
            stats.resumed_batches
        );
    }
    if let Some(path) = args.get("results-json") {
        let mut out = String::from("[");
        for (i, r) in results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&r.to_json());
        }
        out.push_str("]\n");
        std::fs::write(path, out).map_err(|e| format!("cannot write '{path}': {e}"))?;
        println!("results written to {path}");
    }
    if args.get("stats-json").is_some() || args.flag("json") {
        // Streaming runs report through the same ServiceStats JSON as
        // the batch service, so dashboards and the schema goldens see
        // one shape: the stream section carries the tier's counters.
        let svc = mmjoin_serve::ServiceStats {
            submitted: stats.submitted,
            completed: stats.completed + stats.mutations,
            failed: stats.failed,
            budget_bytes: header.budget_bytes(),
            peak_budget_bytes: header.budget_bytes(),
            queue_wait_seconds: results.iter().map(|r| r.queue_wait).sum(),
            exec_wall_seconds: stats.exec_seconds,
            env_elapsed_seconds: results.iter().map(|r| r.env_elapsed).sum(),
            journal_appended_records: stats.journal_appended_records,
            journal_commits: stats.journal_commits,
            journal_replayed_records: stats.journal_replayed_records,
            journal_torn_bytes: stats.journal_torn_bytes,
            journal_resumed_jobs: stats.resumed_batches,
            stream_batches: stats.completed,
            stream_mutations: stats.mutations,
            stream_misses: stats.misses,
            stream_backpressure: stats.backpressure,
            stream_resumed: stats.resumed_batches,
            latency_hist: stats.batch_hist.clone(),
            batch_hist: stats.batch_hist.clone(),
            queue_hist: stats.queue_hist.clone(),
            ..Default::default()
        };
        if let Some(path) = args.get("stats-json") {
            std::fs::write(path, svc.to_json())
                .map_err(|e| format!("cannot write '{path}': {e}"))?;
            println!("stats written to {path}");
        } else {
            println!("{}", svc.to_json());
        }
    }
    if let Some(s) = sink {
        s.flush()
            .map_err(|e| format!("--trace: flush failed: {e}"))?;
    }
    if stats.failed > 0 {
        return Err(format!("{} op(s) failed", stats.failed));
    }
    Ok(())
}

/// Quote `s` as a JSON string: escape backslash, quote, and control
/// characters; all other Unicode passes through verbatim. (`{:?}` is
/// not JSON — it renders non-ASCII as `\u{e9}`-style escapes, which
/// JSON parsers reject.)
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn cmd_coordinator(args: &Args) -> Result<(), String> {
    use mmjoin_cluster::{ClusterConfig, Coordinator};

    let nodes: Vec<String> = args
        .get("nodes")
        .ok_or("--nodes HOST:PORT[,HOST:PORT...] is required")?
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if nodes.is_empty() {
        return Err("--nodes lists no addresses".to_string());
    }
    let heartbeat_ms: u64 = args.get_or("heartbeat-ms", 100)?;
    let timeout_ms: u64 = args.get_or("timeout-ms", 1500)?;
    let max_requeues: u32 = args.get_or("max-requeues", 3)?;
    let journal_dir = args.get("journal").map(std::path::PathBuf::from);
    let resume = args.flag("resume");
    if resume && journal_dir.is_none() {
        return Err("--resume requires --journal DIR".to_string());
    }
    let sink = trace_sink_from(args)?;

    let mut cfg = ClusterConfig::new(nodes.clone())
        .with_heartbeat(std::time::Duration::from_millis(heartbeat_ms.max(1)))
        .with_timeout(std::time::Duration::from_millis(timeout_ms.max(1)))
        // N re-queues = N+1 dispatch attempts, mirroring the join
        // retry layer's attempt accounting.
        .with_retry(RetryPolicy::attempts(max_requeues + 1));
    if let Some(dir) = journal_dir {
        cfg = cfg.with_journal(dir);
    }
    if resume {
        cfg = cfg.with_resume();
    }
    if let Some(s) = &sink {
        cfg = cfg.with_trace(s.clone() as std::sync::Arc<dyn TraceSink>);
    }

    // Job script: a file via --jobs, or stdin; a resumed coordinator
    // may run purely from its journal.
    let script = match args.get("jobs") {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?
        }
        None if resume => String::new(),
        None => {
            use std::io::Read as _;
            let mut s = String::new();
            std::io::stdin()
                .read_to_string(&mut s)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            s
        }
    };

    let co = Coordinator::start(cfg)?;
    let ids = co.submit_script(&script)?;
    println!(
        "coordinating {} job(s) across {} node(s): {}",
        ids.len(),
        nodes.len(),
        nodes.join(", ")
    );
    let (mut results, stats) = co.finish();
    results.sort_by_key(|r| r.id);

    println!(
        "{:>4}  {:<12} {:<14} {:<14} {:>10} {:>8} {:>9}  status",
        "id", "name", "node", "algorithm", "pairs", "requeues", "exec(s)"
    );
    for r in &results {
        let mut status = match &r.error {
            None => "ok".to_string(),
            Some(e) => format!("FAILED: {e}"),
        };
        if r.resumed {
            status.push_str(" (resumed)");
        }
        println!(
            "{:>4}  {:<12} {:<14} {:<14} {:>10} {:>8} {:>9.3}  {status}",
            r.id,
            if r.name.is_empty() { "-" } else { &r.name },
            r.node,
            r.alg,
            r.pairs,
            r.requeues,
            r.latency
        );
    }
    println!(
        "completed {} / failed {} — {} requeue(s), {} node(s) joined, {} lost, \
         {} duplicate completion(s) dropped",
        stats.completed,
        stats.failed,
        stats.requeued,
        stats.node_joins,
        stats.node_losses,
        stats.duplicate_completions
    );
    if stats.resumed_reported > 0 {
        println!(
            "resumed {} job(s) from the journal ({} record(s) replayed)",
            stats.resumed_reported, stats.replayed_records
        );
    }
    if let Some(j) = &stats.journal {
        println!(
            "journal: {} record(s) appended in {} commit(s); replay saw {} record(s) \
             ({} torn byte(s))",
            j.appended_records, j.commits, j.replayed_records, j.torn_bytes
        );
    }

    if let Some(path) = args.get("results-json") {
        // Leading keys match serve's --results-json so outcome sets
        // from single-node and cluster runs compare directly.
        let mut out = String::from("[");
        for (i, r) in results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":{},\"name\":{},\"alg\":{},\"pairs\":{},\"checksum\":{},\
                 \"ok\":{},\"resumed\":{},\"node\":{},\"requeues\":{}}}",
                r.id,
                json_str(&r.name),
                json_str(&r.alg),
                r.pairs,
                r.checksum,
                r.ok,
                r.resumed,
                json_str(&r.node),
                r.requeues
            ));
        }
        out.push_str("]\n");
        std::fs::write(path, out).map_err(|e| format!("cannot write '{path}': {e}"))?;
        println!("results written to {path}");
    }
    if let Some(path) = args.get("stats-json") {
        std::fs::write(path, stats.to_json()).map_err(|e| format!("cannot write '{path}': {e}"))?;
        println!("stats written to {path}");
    } else if args.flag("json") {
        println!("{}", stats.to_json());
    }
    if let Some(s) = &sink {
        s.flush()
            .map_err(|e| format!("--trace: flush failed: {e}"))?;
    }
    if stats.failed > 0 {
        return Err(format!("{} job(s) failed", stats.failed));
    }
    Ok(())
}

fn cmd_calibrate(args: &Args) -> Result<(), String> {
    if args.flag("sim") {
        // The original behaviour: the paper's Fig. 1a procedure against
        // the *simulated* waterloo96 drive.
        let disk = DiskParams::waterloo96();
        println!("measuring dtt curves from the simulated drive (Fig. 1a procedure)");
        println!(
            "{:>12} {:>14} {:>14}",
            "band (blks)", "dttr (ms/blk)", "dttw (ms/blk)"
        );
        for s in measure_dtt(&disk, &CalibrationSpec::default()) {
            println!(
                "{:>12} {:>14.2} {:>14.2}",
                s.band,
                s.read * 1e3,
                s.write * 1e3
            );
        }
        return Ok(());
    }

    let sink = trace_sink_from(args)?;
    let mut opts = if args.flag("quick") {
        CalibrateOptions::quick()
    } else {
        CalibrateOptions::full()
    };
    opts.device = args.get("device").map(std::path::PathBuf::from);
    if let Some(s) = &sink {
        opts.trace = s.clone() as std::sync::Arc<dyn TraceSink>;
    }
    println!(
        "calibrating this host ({} probes, {} reps each){}",
        if opts.quick { "quick" } else { "full" },
        opts.spec.reps,
        match &opts.device {
            Some(d) => format!(", disk sweep on {}", d.display()),
            None => ", disk sweep on a temp scratch file".to_string(),
        }
    );
    let profile = calibrate_host(&opts).map_err(|e| e.to_string())?;

    let p = &profile.provenance;
    let m = &profile.machine;
    println!(
        "host {}  device {}  direct_io {}",
        p.host, p.device, p.direct_io
    );
    if !p.direct_io {
        println!("NOTE: O_DIRECT unavailable; dtt curves include the page cache");
    }
    println!(
        "{:>12} {:>14} {:>14}",
        "band (blks)", "dttr (ms/blk)", "dttw (ms/blk)"
    );
    for &(band, read) in m.dttr.points() {
        let write = m.dttw.eval(band);
        println!("{band:>12} {:>14.4} {:>14.4}", read * 1e3, write * 1e3);
    }
    println!(
        "map costs (s): new {:.6}+{:.2e}/blk  open {:.6}+{:.2e}/blk  delete {:.6}+{:.2e}/blk",
        m.map_cost.new_base,
        m.map_cost.new_per_block,
        m.map_cost.open_base,
        m.map_cost.open_per_block,
        m.map_cost.delete_base,
        m.map_cost.delete_per_block
    );
    println!(
        "fit residuals (s): new {:.2e}  open {:.2e}  delete {:.2e}",
        p.fit_residuals[0], p.fit_residuals[1], p.fit_residuals[2]
    );
    println!(
        "MT (ns/B): pp {:.3}  ps {:.3}  sp {:.3}  ss {:.3}",
        m.mt[0] * 1e9,
        m.mt[1] * 1e9,
        m.mt[2] * 1e9,
        m.mt[3] * 1e9
    );
    println!(
        "CPU (ns/op): map {:.1}  hash {:.1}  compare {:.1}  swap {:.1}  transfer {:.1}  fault {:.1}",
        m.cpu[0] * 1e9,
        m.cpu[1] * 1e9,
        m.cpu[2] * 1e9,
        m.cpu[3] * 1e9,
        m.cpu[4] * 1e9,
        m.cpu[5] * 1e9
    );
    println!("CS: {:.2} us", m.cs * 1e6);

    if let Some(path) = args.get("out") {
        profile
            .save(std::path::Path::new(path))
            .map_err(|e| format!("--out: {e}"))?;
        println!("profile written to {path}");
    }
    if let Some(s) = &sink {
        s.flush()
            .map_err(|e| format!("--trace: flush failed: {e}"))?;
    }
    Ok(())
}

/// One row of the validate-model comparison: a named group of passes
/// with its measured and predicted seconds.
struct PassRow {
    group: &'static str,
    measured: f64,
    predicted: f64,
}

/// Fold executed stage durations and model pass predictions into
/// comparable groups: `setup`, `pass0` (combined into `setup+pass0`
/// for synchronized nested loops), the `pass1` phase sweep, and the
/// algorithm's final local pass (sort+merge+join / bucket-join).
fn pass_rows(
    stage_durations: &[(String, f64)],
    breakdown: &mmjoin_model::CostBreakdown,
) -> Vec<PassRow> {
    let measured_group = |name: &str| -> &'static str {
        match name {
            "setup" => "setup",
            "pass0" => "pass0",
            "setup+pass0" => "setup+pass0",
            n if n.starts_with("phase") => "pass1",
            _ => "local",
        }
    };
    let predicted_group = |pass: &str, combined: bool| -> &'static str {
        match pass {
            "setup" if combined => "setup+pass0",
            "pass0" if combined => "setup+pass0",
            "setup" => "setup",
            "pass0" => "pass0",
            "pass1" => "pass1",
            _ => "local",
        }
    };
    let combined = stage_durations.iter().any(|(n, _)| n == "setup+pass0");
    let mut rows: Vec<PassRow> = Vec::new();
    let mut add = |group: &'static str, measured: f64, predicted: f64| {
        if let Some(row) = rows.iter_mut().find(|r| r.group == group) {
            row.measured += measured;
            row.predicted += predicted;
        } else {
            rows.push(PassRow {
                group,
                measured,
                predicted,
            });
        }
    };
    for (name, dur) in stage_durations {
        add(measured_group(name), *dur, 0.0);
    }
    for pass in breakdown.passes() {
        add(
            predicted_group(pass, combined),
            0.0,
            breakdown.total_pass(pass),
        );
    }
    rows
}

fn cmd_validate_model(args: &Args) -> Result<(), String> {
    use mmjoin_env::{Env as _, ProcId};

    let w = workload_from(args)?;
    let pages: u64 = args.get_or("mem-pages", 160)?;
    let machine = machine_from(args)?;

    let root = std::env::temp_dir().join(format!("mmjoin-validate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let env = mmjoin_mmstore::MmapEnv::new(mmjoin_mmstore::MmapEnvConfig {
        root: root.clone(),
        num_disks: w.rel.d,
        page_size: 4096,
    })
    .map_err(|e| e.to_string())?;
    let rels = build(&env, &w).map_err(|e| e.to_string())?;

    // Predictions below are priced with the histogram skew estimated
    // from the *stored* relation — the same sampler serve's `plan=auto`
    // uses, but reading real pages instead of the spec's distribution.
    let pointers = sample_relation(&env, &rels, SAMPLE_CAP).map_err(|e| e.to_string())?;
    let summary = SampleSummary::from_pointers(
        &pointers,
        w.rel.r_objects,
        w.rel.s_objects,
        w.rel.d,
        HISTOGRAM_BUCKETS,
    );
    let inputs = mmjoin_model::JoinInputs {
        r_objects: w.rel.r_objects,
        s_objects: w.rel.s_objects,
        r_size: w.rel.r_size,
        s_size: w.rel.s_size,
        sptr_size: mmjoin_relstore::SPTR_SIZE,
        d: w.rel.d,
        skew: summary.estimated_skew(),
        m_rproc: pages * 4096,
        m_sproc: pages * 4096,
        g_buffer: 4096,
    };

    println!(
        "model validation on the memory-mapped store: |R| = |S| = {} x {} B, \
         D = {}, {pages} pages/proc",
        w.rel.r_objects, w.rel.r_size, w.rel.d
    );
    println!(
        "sampled {} pointers from the store: histogram skew {:.2}, \
         duplication {:.2}",
        summary.sampled, inputs.skew, summary.duplication
    );
    println!(
        "{:<14} {:<12} {:>12} {:>12} {:>9}",
        "algorithm", "pass", "measured(s)", "predicted(s)", "ratio"
    );
    for (alg, model_alg) in [
        (Algo::NestedLoops, mmjoin_model::Algorithm::NestedLoops),
        (Algo::SortMerge, mmjoin_model::Algorithm::SortMerge),
        (Algo::Grace, mmjoin_model::Algorithm::Grace),
    ] {
        let mut spec =
            JoinSpec::new(pages * 4096, pages * 4096).with_tag(&format!("val-{}", alg.name()));
        // Synchronized phases give nested loops the same stage
        // boundaries the model prices.
        spec.sync_phases = true;
        let start = (0..w.rel.d).map(|i| env.now(ProcId(i))).fold(0.0, f64::max);
        let out = mmjoin::join(&env, &rels, alg, &spec).map_err(|e| e.to_string())?;
        verify(&out, &rels).map_err(|e| format!("{}: verification failed: {e}", alg.name()))?;

        // stage_times are cumulative max-over-procs boundary clocks;
        // successive differences are per-stage durations.
        let mut durations: Vec<(String, f64)> = Vec::new();
        let mut prev = start;
        for (name, t) in &out.stage_times {
            durations.push((name.clone(), (t - prev).max(0.0)));
            prev = *t;
        }
        let breakdown = explain(&machine, &inputs, model_alg);
        let mut measured_total = 0.0;
        let mut predicted_total = 0.0;
        for row in pass_rows(&durations, &breakdown) {
            measured_total += row.measured;
            predicted_total += row.predicted;
            let ratio = if row.predicted > 0.0 {
                format!("{:>9.3}", row.measured / row.predicted)
            } else {
                format!("{:>9}", "-")
            };
            println!(
                "{:<14} {:<12} {:>12.3} {:>12.3} {ratio}",
                alg.name(),
                row.group,
                row.measured,
                row.predicted
            );
        }
        let ratio = if predicted_total > 0.0 {
            format!("{:>9.3}", measured_total / predicted_total)
        } else {
            format!("{:>9}", "-")
        };
        println!(
            "{:<14} {:<12} {:>12.3} {:>12.3} {ratio}",
            alg.name(),
            "TOTAL",
            measured_total,
            predicted_total
        );
    }

    // The same comparison under --modern. The model prices the faithful
    // inner loops (with the modern exchange-batch size substituted via
    // `inputs_for`), so the ratio below is the honest record of the
    // kernels' unmodelled constant-factor win.
    println!();
    println!(
        "modern mode (cache-conscious kernels; ratio = kernel win the model \
         does not price):"
    );
    println!(
        "{:<14} {:>12} {:>12} {:>9}",
        "algorithm", "measured(s)", "predicted(s)", "ratio"
    );
    for (alg, model_alg) in [
        (Algo::NestedLoops, mmjoin_model::Algorithm::NestedLoops),
        (Algo::SortMerge, mmjoin_model::Algorithm::SortMerge),
        (Algo::Grace, mmjoin_model::Algorithm::Grace),
        (Algo::HybridHash, mmjoin_model::Algorithm::HybridHash),
    ] {
        let spec = JoinSpec::new(pages * 4096, pages * 4096)
            .with_mode(ExecMode::Modern)
            .with_tag(&format!("valm-{}", alg.name()));
        let start = (0..w.rel.d).map(|i| env.now(ProcId(i))).fold(0.0, f64::max);
        let out = mmjoin::join(&env, &rels, alg, &spec).map_err(|e| e.to_string())?;
        verify(&out, &rels).map_err(|e| format!("{}: verification failed: {e}", alg.name()))?;
        let measured = out
            .stage_times
            .last()
            .map(|(_, t)| (t - start).max(0.0))
            .unwrap_or(out.elapsed);
        let predicted = explain(&machine, &mmjoin::inputs_for(&rels, &spec), model_alg).total();
        let ratio = if predicted > 0.0 {
            format!("{:>9.3}", measured / predicted)
        } else {
            format!("{:>9}", "-")
        };
        println!(
            "{:<14} {:>12.3} {:>12.3} {ratio}",
            alg.name(),
            measured,
            predicted
        );
    }
    // What the skew term is worth: the uniform assumption, the
    // worst-case bound (every pointer of a partition landing on one
    // target partition, skew = D), and the histogram estimate the
    // tables above were priced with.
    println!();
    println!(
        "skew sensitivity (predicted total seconds; histogram = {:.2}, \
         worst-case bound = {:.1}):",
        inputs.skew, w.rel.d as f64
    );
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "algorithm", "uniform", "histogram", "worst-case"
    );
    for alg in mmjoin_model::Algorithm::ALL {
        let at = |skew: f64| {
            let mut i = inputs;
            i.skew = skew;
            explain(&machine, &i, alg).total()
        };
        println!(
            "{:<14} {:>12.3} {:>12.3} {:>12.3}",
            alg.name(),
            at(1.0),
            at(inputs.skew),
            at(w.rel.d as f64)
        );
    }
    drop(env);
    let _ = std::fs::remove_dir_all(&root);
    Ok(())
}

fn usage() {
    println!("mmjoin — parallel pointer-based joins in memory-mapped environments");
    println!();
    println!("usage:");
    println!("  mmjoin join      [--alg A | --auto] [--objects N] [--d D] [--obj-size B]");
    println!("                   [--mem-pages P] [--seed S] [--dist uniform|zipf:T|cross]");
    println!("                   [--env sim|mmap] [--threads | --modern]");
    println!("                   [--fault-spec SPEC] [--retries N] [--trace FILE.jsonl]");
    println!("                   [--machine-profile FILE]");
    println!("  mmjoin plan      [--objects N] [--d D] [--obj-size B] [--mem-pages P]");
    println!("                   [--skew X] [--sample [N]] [--explain A]");
    println!("                   [--machine-profile FILE]");
    println!("  mmjoin serve     [--jobs FILE] [--budget-pages N] [--workers N]");
    println!("                   [--policy fifo|spf] [--shards N] [--placement rr|load|pred]");
    println!("                   [--env sim|mmap] [--modern] [--json] [--stats-json FILE]");
    println!("                   [--fault-spec SPEC] [--retries N]");
    println!("                   [--deadline-ms MS] [--trace FILE.jsonl]");
    println!("                   [--machine-profile FILE]");
    println!("                   [--journal DIR] [--resume] [--results-json FILE]");
    println!("                   (reads job lines from stdin");
    println!("                   without --jobs; one job per line, key=value tokens:");
    println!("                   name alg objects obj-size d mem-pages seed dist");
    println!("                   mode=seq|threads|modern plan=auto|fixed)");
    println!("  mmjoin serve --stream [--jobs FILE] [--queue-bound N]");
    println!("                   [--env sim|mmap] [--modern] [--json] [--stats-json FILE]");
    println!("                   [--journal DIR] [--resume] [--results-json FILE]");
    println!("                   [--trace FILE.jsonl] [--machine-profile FILE]");
    println!("                   (script: first line 'resident=NAME objects=N");
    println!("                   obj-size=B d=D mem-pages=P seed=S [mode=modern]',");
    println!("                   then one op per line: batch=NAME objects=N seed=S,");
    println!("                   append=N seed=S, delete=N seed=S; stdin when no");
    println!("                   --jobs, until EOF or SIGTERM)");
    println!("  mmjoin serve --node [--listen ADDR] [--node-name NAME]");
    println!("                   [--budget-pages N] [--workers N] [--env sim|mmap]");
    println!("                   [--fault-spec SPEC] [--machine-profile FILE]");
    println!("                   [--trace FILE.jsonl]");
    println!("  mmjoin coordinator --nodes HOST:PORT[,HOST:PORT...] [--jobs FILE]");
    println!("                   [--heartbeat-ms MS] [--timeout-ms MS]");
    println!("                   [--max-requeues N] [--journal DIR] [--resume]");
    println!("                   [--results-json FILE] [--stats-json FILE] [--json]");
    println!("                   [--trace FILE.jsonl]");
    println!("  mmjoin calibrate [--out FILE] [--device PATH] [--quick] [--sim]");
    println!("                   [--trace FILE.jsonl]");
    println!("  mmjoin validate-model [--machine-profile FILE] [--objects N] [--d D]");
    println!("                   [--obj-size B] [--mem-pages P] [--seed S]");
    println!();
    println!("--shards N > 1 partitions the budget across N shards, each with");
    println!("  its own queue and N --workers threads; --placement picks the");
    println!("  shard per job (rr round-robin, load least-reserved-bytes, pred");
    println!("  planner-predicted backlog balance); idle shards steal queued jobs");
    println!();
    println!("calibrate measures this host (O_DIRECT disk band sweep, map setup");
    println!("  costs, memcpy rates, context switches, CPU micro-ops) and writes");
    println!("  a versioned JSON machine profile with --out; --quick shrinks the");
    println!("  sweeps to CI scale, --device aims the disk sweep at a file or");
    println!("  block device (contents overwritten!), --sim instead prints the");
    println!("  simulated drive's dtt curves (the old behaviour)");
    println!();
    println!("--machine-profile FILE makes join/plan/serve/validate-model use a");
    println!("  calibrated profile instead of the built-in waterloo96 preset");
    println!();
    println!("data-aware planning: plan --sample [N] draws N pointers (default");
    println!("  4096) from the workload's distribution, folds them into an");
    println!("  equi-depth histogram, and prints the auto plan (algorithm,");
    println!("  memory grant, partition count, skew provenance) next to the");
    println!("  fixed-statistics ranking; join --auto runs that plan; serve job");
    println!("  lines opt in per job with plan=auto (admission then budgets the");
    println!("  chosen grant, not the submitted one)");
    println!();
    println!("--modern routes joins through the cache-conscious kernel path:");
    println!("  radix-partitioned scans, pre-sorted run exchange with one");
    println!("  sequential merge-scan per owner, and batched pointer probes;");
    println!("  the join output is bitwise-identical to the faithful loops");
    println!("  (join --modern runs one join; serve --modern makes modern the");
    println!("  default mode for job lines that carry no mode= of their own)");
    println!();
    println!("serve --stream keeps the inner relation S resident: the header's");
    println!("  relation is loaded and indexed once (radix hash faithful, sorted");
    println!("  runs under --modern), then every batch= line probes it without");
    println!("  re-partitioning; append=/delete= patch S in place. Intake blocks");
    println!("  once --queue-bound ops are pending (backpressure). --journal");
    println!("  DIR logs every accepted op and its result; --resume re-reports");
    println!("  completed ops and re-runs the torn suffix exactly once (give");
    println!("  the resumed stream a header-only script). SIGTERM stops intake");
    println!("  and drains accepted ops before exiting");
    println!();
    println!("serve --node turns the service into one cluster worker: it listens");
    println!("  on --listen (default 127.0.0.1:0, the chosen port is printed),");
    println!("  registers its budget with the coordinator that connects, and runs");
    println!("  dispatched jobs until told to shut down; each node can carry its");
    println!("  own --machine-profile.  coordinator drives N such nodes: jobs are");
    println!("  dispatched to nodes with free budget, heartbeats every");
    println!("  --heartbeat-ms detect death after --timeout-ms of silence, a dead");
    println!("  node's jobs re-queue onto survivors (at most --max-requeues");
    println!("  times, with the retry layer's backoff), and --journal/--resume");
    println!("  give the coordinator the same crash-recovery story as serve:");
    println!("  finished jobs are re-reported, unfinished ones re-dispatched,");
    println!("  never double-run");
    println!();
    println!("--journal DIR gives serve a write-ahead journal (plus, under");
    println!("  --env mmap, a persistent store at DIR/store): job admission,");
    println!("  area lifecycle, and per-pass checkpoints are logged with CRCs");
    println!("  and flushed before commit; --resume reopens DIR after a crash,");
    println!("  replays the journal, deletes orphaned areas, re-reports");
    println!("  completed jobs, and re-runs unfinished ones; --results-json");
    println!("  FILE writes the per-job outcome array for comparing runs");
    println!();
    println!("fault specs: ';'-separated rules 'kind:key=val:...' with kinds");
    println!("  read write create open delete sfetch diskfull delay");
    println!("  torn_write bit_corrupt crash and keys p count after disk file");
    println!("  ms frac hard, plus 'seed=N' (e.g.");
    println!("  'seed=7;read:p=0.05:count=3;delay:ms=5'); empty = no faults;");
    println!("  torn_write persists a 'frac' prefix of one write, bit_corrupt");
    println!("  flips a byte, crash aborts the process (hard=1) or errors");
    println!();
    println!("--trace FILE.jsonl writes one structured trace event per line:");
    println!("  pass/phase boundaries, map setup/teardown, fault injections,");
    println!("  retries, and (under serve) job lifecycle events");
    let names: Vec<&str> = Algo::ALL.iter().map(|a| a.name()).collect();
    println!();
    println!("algorithms: {}", names.join(", "));
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        usage();
        return ExitCode::FAILURE;
    };
    let rest = match Args::parse(&argv[1..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "join" => cmd_join(&rest),
        "plan" => cmd_plan(&rest),
        "serve" => cmd_serve(&rest),
        "coordinator" => cmd_coordinator(&rest),
        "calibrate" => cmd_calibrate(&rest),
        "validate-model" => cmd_validate_model(&rest),
        "help" | "--help" | "-h" => {
            usage();
            Ok(())
        }
        other => Err(format!(
            "unknown command '{other}' \
             (join | plan | serve | coordinator | calibrate | validate-model | help)"
        )),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Args {
        let owned: Vec<String> = v.iter().map(|s| s.to_string()).collect();
        Args::parse(&owned).expect("parse")
    }

    #[test]
    fn parses_pairs_and_flags() {
        let a = args(&["--alg", "grace", "--threads", "--objects", "100"]);
        assert_eq!(a.get("alg"), Some("grace"));
        assert!(a.flag("threads"));
        assert_eq!(a.get_or("objects", 0u64).unwrap(), 100);
        assert_eq!(a.get_or("missing", 7u64).unwrap(), 7);
    }

    #[test]
    fn rejects_duplicate_options_naming_the_flag() {
        for argv in [
            vec!["--alg", "grace", "--alg", "naive"],
            vec!["--threads", "--threads"],
            vec!["--alg", "grace", "--alg"],
        ] {
            let owned: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
            let err = Args::parse(&owned).unwrap_err();
            assert!(err.contains("given more than once"), "{err}");
            let flag = argv[0].trim_start_matches('-');
            assert!(err.contains(flag), "error must name --{flag}: {err}");
        }
    }

    #[test]
    fn rejects_positional_and_bad_numbers() {
        let owned: Vec<String> = vec!["oops".into()];
        assert!(Args::parse(&owned).is_err());
        let a = args(&["--objects", "not-a-number"]);
        assert!(a.get_or("objects", 0u64).is_err());
    }

    #[test]
    fn parses_every_algorithm_name() {
        for alg in Algo::ALL {
            assert_eq!(parse_alg(alg.name()).unwrap(), alg);
        }
        assert!(parse_alg("quantum").is_err());
    }

    #[test]
    fn parses_distributions() {
        assert_eq!(parse_dist("uniform").unwrap(), PointerDist::Uniform);
        assert_eq!(parse_dist("cross").unwrap(), PointerDist::CrossPartition);
        match parse_dist("zipf:0.8").unwrap() {
            PointerDist::Zipf { theta } => assert!((theta - 0.8).abs() < 1e-12),
            other => panic!("{other:?}"),
        }
        assert!(parse_dist("zipf:x").is_err());
        assert!(parse_dist("normal").is_err());
    }

    #[test]
    fn sample_cap_is_flag_or_value() {
        assert_eq!(sample_cap_from(&args(&[])).unwrap(), None);
        assert_eq!(
            sample_cap_from(&args(&["--sample"])).unwrap(),
            Some(SAMPLE_CAP)
        );
        assert_eq!(
            sample_cap_from(&args(&["--sample", "128"])).unwrap(),
            Some(128)
        );
        assert!(sample_cap_from(&args(&["--sample", "0"])).is_err());
        assert!(sample_cap_from(&args(&["--sample", "lots"])).is_err());
    }

    #[test]
    fn join_rejects_alg_combined_with_auto() {
        let err = cmd_join(&args(&["--auto", "--alg", "grace"])).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn workload_defaults_are_valid() {
        let w = workload_from(&args(&[])).unwrap();
        w.rel.validate().unwrap();
        let w = workload_from(&args(&["--d", "2", "--objects", "1000"])).unwrap();
        assert_eq!(w.rel.d, 2);
        assert_eq!(w.rel.r_objects, 1000);
    }

    #[test]
    fn machine_from_without_profile_is_the_shared_default() {
        let m = machine_from(&args(&[])).unwrap();
        assert_eq!(m, default_machine().unwrap());
    }

    #[test]
    fn machine_from_rejects_missing_and_malformed_profiles() {
        let err = machine_from(&args(&["--machine-profile", "/no/such/profile.json"])).unwrap_err();
        assert!(err.contains("machine-profile"), "{err}");
        let path = std::env::temp_dir().join(format!("mmjoin-cli-bad-{}.json", std::process::id()));
        std::fs::write(&path, "{\"format\": \"bogus\"}").unwrap();
        let err = machine_from(&args(&["--machine-profile", path.to_str().unwrap()])).unwrap_err();
        std::fs::remove_file(&path).unwrap();
        assert!(err.contains("not a machine profile"), "{err}");
    }

    #[test]
    fn machine_from_round_trips_a_saved_profile() {
        let profile = MachineProfile {
            version: mmjoin_calibrate::PROFILE_VERSION,
            provenance: mmjoin_calibrate::Provenance {
                host: "cli-test".into(),
                device: "/dev/null".into(),
                created_unix: 0,
                direct_io: false,
                quick: true,
                reps: 1,
                warmup: 0,
                fit_residuals: [0.0; 3],
            },
            machine: MachineParams::waterloo96(),
        };
        let path =
            std::env::temp_dir().join(format!("mmjoin-cli-prof-{}.json", std::process::id()));
        profile.save(&path).unwrap();
        let m = machine_from(&args(&["--machine-profile", path.to_str().unwrap()])).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(m, profile.machine);
    }

    #[test]
    fn pass_rows_group_stages_against_model_passes() {
        let machine = MachineParams::waterloo96();
        let inputs = mmjoin_model::JoinInputs {
            r_objects: 10_000,
            s_objects: 10_000,
            r_size: 128,
            s_size: 128,
            sptr_size: 8,
            d: 4,
            skew: 1.0,
            m_rproc: 160 * 4096,
            m_sproc: 160 * 4096,
            g_buffer: 4096,
        };
        // Sort-merge stage layout: distinct setup/pass0, phases fold
        // into pass1, the trailing local pass collects the rest.
        let b = explain(&machine, &inputs, mmjoin_model::Algorithm::SortMerge);
        let stages = vec![
            ("setup".to_string(), 1.0),
            ("pass0".to_string(), 2.0),
            ("phase1".to_string(), 0.5),
            ("phase2".to_string(), 0.5),
            ("phase3".to_string(), 0.5),
            ("sort+merge+join".to_string(), 4.0),
        ];
        let rows = pass_rows(&stages, &b);
        let groups: Vec<&str> = rows.iter().map(|r| r.group).collect();
        assert_eq!(groups, vec!["setup", "pass0", "pass1", "local"]);
        let pass1 = rows.iter().find(|r| r.group == "pass1").unwrap();
        assert!((pass1.measured - 1.5).abs() < 1e-12);
        assert!((pass1.predicted - b.total_pass("pass1")).abs() < 1e-12);
        let total_pred: f64 = rows.iter().map(|r| r.predicted).sum();
        assert!((total_pred - b.total()).abs() < 1e-9);

        // Synchronized nested loops fold setup+pass0 into one stage on
        // both sides.
        let b = explain(&machine, &inputs, mmjoin_model::Algorithm::NestedLoops);
        let stages = vec![
            ("setup+pass0".to_string(), 3.0),
            ("phase1".to_string(), 1.0),
            ("phase2".to_string(), 1.0),
            ("phase3".to_string(), 1.0),
        ];
        let rows = pass_rows(&stages, &b);
        let combined = rows.iter().find(|r| r.group == "setup+pass0").unwrap();
        assert!((combined.predicted - b.total_pass("setup") - b.total_pass("pass0")).abs() < 1e-12);
        let total_pred: f64 = rows.iter().map(|r| r.predicted).sum();
        assert!((total_pred - b.total()).abs() < 1e-9);
    }
}
