//! Sequential object scan over a plain (non-chunked) file of fixed-size
//! objects.
//!
//! Reads go through [`FileOps::read_at`] one object at a time — exactly
//! the access pattern of a pointer walk over a mapped relation. No
//! user-space buffering: in a single-level store, data is consumed in
//! place, and whether a touch faults is the *pager's* decision, not a
//! copy layer's.

use mmjoin_env::{FileOps, ProcId, Result};

/// Cursor over `count` objects of `obj_size` bytes stored back-to-back
/// from `base` in `file`.
pub struct ObjScan<'a, F: FileOps> {
    file: &'a F,
    obj_size: u32,
    base: u64,
    count: u64,
    idx: u64,
}

impl<'a, F: FileOps> ObjScan<'a, F> {
    /// Scan `count` objects starting at byte `base`.
    pub fn new(file: &'a F, base: u64, obj_size: u32, count: u64) -> Self {
        ObjScan {
            file,
            obj_size,
            base,
            count,
            idx: 0,
        }
    }

    /// Read the next object into `buf`; `false` at end.
    pub fn next_into(&mut self, proc: ProcId, buf: &mut [u8]) -> Result<bool> {
        debug_assert_eq!(buf.len(), self.obj_size as usize);
        if self.idx >= self.count {
            return Ok(false);
        }
        self.file
            .read_at(proc, self.base + self.idx * self.obj_size as u64, buf)?;
        self.idx += 1;
        Ok(true)
    }

    /// Index of the object `next_into` will deliver next.
    pub fn position(&self) -> u64 {
        self.idx
    }

    /// Objects left to deliver.
    pub fn remaining(&self) -> u64 {
        self.count - self.idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmjoin_env::{DiskId, Env};
    use mmjoin_vmsim::{SimConfig, SimEnv};

    #[test]
    fn scans_all_objects_in_order() {
        let env = SimEnv::new(SimConfig::waterloo96(1)).unwrap();
        let p = ProcId(0);
        let f = env.create_file(p, "t", DiskId(0), 4096).unwrap();
        for i in 0..100u64 {
            f.write_at(p, i * 40, &i.to_le_bytes()).unwrap();
        }
        let mut scan = ObjScan::new(&f, 0, 40, 100);
        let mut buf = [0u8; 40];
        let mut expect = 0u64;
        while scan.next_into(p, &mut buf).unwrap() {
            assert_eq!(u64::from_le_bytes(buf[..8].try_into().unwrap()), expect);
            expect += 1;
        }
        assert_eq!(expect, 100);
        assert_eq!(scan.remaining(), 0);
    }

    #[test]
    fn respects_base_offset() {
        let env = SimEnv::new(SimConfig::waterloo96(1)).unwrap();
        let p = ProcId(0);
        let f = env.create_file(p, "t", DiskId(0), 4096).unwrap();
        f.write_at(p, 128, &7u64.to_le_bytes()).unwrap();
        let mut scan = ObjScan::new(&f, 128, 8, 1);
        let mut buf = [0u8; 8];
        assert!(scan.next_into(p, &mut buf).unwrap());
        assert_eq!(u64::from_le_bytes(buf), 7);
        assert!(!scan.next_into(p, &mut buf).unwrap());
    }
}
