//! Multi-stream chunked storage inside one mapped file.
//!
//! Pass 0/1 of every algorithm in the paper scatters R-objects into
//! sub-partitions whose sizes are data-dependent (`RP_{i,j}`, the
//! contributor regions of `RS_i`, Grace's `K` buckets). This type packs
//! any number of append-only *streams* into a single fixed-extent file
//! by handing out page-aligned chunks from a bump allocator — total
//! occupancy stays within a chunk of the packed size (the model's
//! `P_RP_i` etc.), any skew is absorbed, and the write pattern within
//! the area is "(mostly) random" exactly as §5.3 describes.
//!
//! The chunk directory is an in-memory shared structure: several
//! processes may append to different (or the same) streams concurrently,
//! as happens to `RS_i` during the staggered phases of pass 1.

use std::sync::Arc;

use mmjoin_env::{EnvError, FileOps, ProcId, Result};
use parking_lot::Mutex;

struct StreamDir {
    /// Byte offsets of this stream's chunks, in allocation order.
    chunks: Vec<u64>,
    /// Objects appended so far.
    count: u64,
}

struct ChunkDir {
    next_chunk_off: u64,
    streams: Vec<StreamDir>,
}

/// A fixed-extent file divided into append-only object streams.
///
/// Cheap to clone; clones share the directory and the underlying file.
pub struct ChunkedFile<F: FileOps> {
    file: F,
    obj_size: u32,
    chunk_bytes: u64,
    objs_per_chunk: u64,
    dir: Arc<Mutex<ChunkDir>>,
}

impl<F: FileOps + Clone> Clone for ChunkedFile<F> {
    fn clone(&self) -> Self {
        ChunkedFile {
            file: self.file.clone(),
            obj_size: self.obj_size,
            chunk_bytes: self.chunk_bytes,
            objs_per_chunk: self.objs_per_chunk,
            dir: self.dir.clone(),
        }
    }
}

/// File bytes needed to hold `objects` objects of `obj_size` bytes in a
/// chunked file of `streams` streams with `chunk_bytes` chunks,
/// including internal fragmentation (the unusable tail of each chunk
/// when `obj_size` does not divide it) and one partial chunk per stream.
pub fn chunked_capacity(objects: u64, obj_size: u32, streams: u32, chunk_bytes: u64) -> u64 {
    debug_assert!(obj_size > 0 && chunk_bytes >= obj_size as u64);
    let per_chunk = (chunk_bytes / obj_size as u64).max(1);
    (objects.div_ceil(per_chunk) + streams as u64) * chunk_bytes
}

impl<F: FileOps> ChunkedFile<F> {
    /// Lay `streams` append-only streams of `obj_size`-byte objects over
    /// `file`, allocating space in chunks of `chunk_bytes`.
    pub fn new(file: F, streams: u32, obj_size: u32, chunk_bytes: u64) -> Result<Self> {
        if obj_size == 0 || chunk_bytes < obj_size as u64 {
            return Err(EnvError::InvalidConfig(format!(
                "chunk of {chunk_bytes} bytes cannot hold objects of {obj_size}"
            )));
        }
        if streams == 0 {
            return Err(EnvError::InvalidConfig("need at least one stream".into()));
        }
        Ok(ChunkedFile {
            file,
            obj_size,
            chunk_bytes,
            objs_per_chunk: chunk_bytes / obj_size as u64,
            dir: Arc::new(Mutex::new(ChunkDir {
                next_chunk_off: 0,
                streams: (0..streams)
                    .map(|_| StreamDir {
                        chunks: Vec::new(),
                        count: 0,
                    })
                    .collect(),
            })),
        })
    }

    /// Object size in bytes.
    pub fn obj_size(&self) -> u32 {
        self.obj_size
    }

    /// Number of streams.
    pub fn num_streams(&self) -> u32 {
        self.dir.lock().streams.len() as u32
    }

    /// Objects appended to `stream` so far.
    pub fn stream_len(&self, stream: u32) -> u64 {
        self.dir.lock().streams[stream as usize].count
    }

    /// Total objects across all streams.
    pub fn total_objects(&self) -> u64 {
        self.dir.lock().streams.iter().map(|s| s.count).sum()
    }

    /// Bytes of the file's extent consumed by allocated chunks.
    pub fn allocated_bytes(&self) -> u64 {
        self.dir.lock().next_chunk_off
    }

    /// Reserve the slot for the next object of `stream` and return its
    /// byte offset, allocating a chunk if needed.
    fn reserve(&self, stream: u32) -> Result<u64> {
        let mut dir = self.dir.lock();
        let next_off = dir.next_chunk_off;
        let s = &mut dir.streams[stream as usize];
        let slot = s.count % self.objs_per_chunk;
        if slot == 0 {
            // Need a fresh chunk.
            if next_off + self.chunk_bytes > self.file.len() {
                return Err(EnvError::OutOfBounds {
                    file: "<chunked>".into(),
                    offset: next_off,
                    len: self.chunk_bytes,
                    size: self.file.len(),
                });
            }
            s.chunks.push(next_off);
            dir.next_chunk_off = next_off + self.chunk_bytes;
        }
        let s = &dir.streams[stream as usize];
        let chunk = *s.chunks.last().expect("chunk allocated above");
        let off = chunk + slot * self.obj_size as u64;
        dir.streams[stream as usize].count += 1;
        Ok(off)
    }

    /// Append one object to `stream` on behalf of `proc`.
    pub fn append(&self, proc: ProcId, stream: u32, obj: &[u8]) -> Result<()> {
        debug_assert_eq!(obj.len(), self.obj_size as usize);
        let off = self.reserve(stream)?;
        self.file.write_at(proc, off, obj)
    }

    /// Read object `idx` of `stream` into `buf`.
    pub fn read_obj(&self, proc: ProcId, stream: u32, idx: u64, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), self.obj_size as usize);
        let off = {
            let dir = self.dir.lock();
            let s = &dir.streams[stream as usize];
            if idx >= s.count {
                return Err(EnvError::OutOfBounds {
                    file: "<chunked>".into(),
                    offset: idx,
                    len: 1,
                    size: s.count,
                });
            }
            let chunk = s.chunks[(idx / self.objs_per_chunk) as usize];
            chunk + (idx % self.objs_per_chunk) * self.obj_size as u64
        };
        self.file.read_at(proc, off, buf)
    }

    /// Overwrite object `idx` of `stream` (used by in-place run
    /// sorting, which permutes objects within their slots).
    pub fn write_obj(&self, proc: ProcId, stream: u32, idx: u64, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), self.obj_size as usize);
        let off = {
            let dir = self.dir.lock();
            let s = &dir.streams[stream as usize];
            if idx >= s.count {
                return Err(EnvError::OutOfBounds {
                    file: "<chunked>".into(),
                    offset: idx,
                    len: 1,
                    size: s.count,
                });
            }
            let chunk = s.chunks[(idx / self.objs_per_chunk) as usize];
            chunk + (idx % self.objs_per_chunk) * self.obj_size as u64
        };
        self.file.write_at(proc, off, buf)
    }

    /// A cursor over `stream` for sequential consumption.
    pub fn stream_reader(&self, stream: u32) -> StreamReader<'_, F> {
        StreamReader {
            cf: self,
            stream,
            idx: 0,
        }
    }
}

/// Sequential cursor over one stream of a [`ChunkedFile`].
pub struct StreamReader<'a, F: FileOps> {
    cf: &'a ChunkedFile<F>,
    stream: u32,
    idx: u64,
}

impl<F: FileOps> StreamReader<'_, F> {
    /// Read the next object into `buf`; returns `false` at end of
    /// stream.
    pub fn next_into(&mut self, proc: ProcId, buf: &mut [u8]) -> Result<bool> {
        if self.idx >= self.cf.stream_len(self.stream) {
            return Ok(false);
        }
        self.cf.read_obj(proc, self.stream, self.idx, buf)?;
        self.idx += 1;
        Ok(true)
    }

    /// Objects remaining.
    pub fn remaining(&self) -> u64 {
        self.cf.stream_len(self.stream).saturating_sub(self.idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmjoin_env::DiskId;
    use mmjoin_env::Env;
    use mmjoin_vmsim::{SimConfig, SimEnv};

    const P: ProcId = ProcId(0);

    fn file(bytes: u64) -> (SimEnv, mmjoin_vmsim::SimFile) {
        let mut cfg = SimConfig::waterloo96(1);
        cfg.rproc_pages = 64;
        let env = SimEnv::new(cfg).unwrap();
        let f = env.create_file(P, "t", DiskId(0), bytes).unwrap();
        (env, f)
    }

    #[test]
    fn appends_route_to_their_streams() {
        let (_env, f) = file(64 * 4096);
        let cf = ChunkedFile::new(f, 3, 16, 4096).unwrap();
        for i in 0..100u64 {
            let stream = (i % 3) as u32;
            let mut obj = [0u8; 16];
            obj[..8].copy_from_slice(&i.to_le_bytes());
            cf.append(P, stream, &obj).unwrap();
        }
        assert_eq!(cf.stream_len(0), 34);
        assert_eq!(cf.stream_len(1), 33);
        assert_eq!(cf.stream_len(2), 33);
        assert_eq!(cf.total_objects(), 100);
        // Stream 1 must contain exactly the i % 3 == 1 values, in order.
        let mut r = cf.stream_reader(1);
        let mut buf = [0u8; 16];
        let mut expect = 1u64;
        while r.next_into(P, &mut buf).unwrap() {
            assert_eq!(u64::from_le_bytes(buf[..8].try_into().unwrap()), expect);
            expect += 3;
        }
        assert_eq!(expect, 100);
    }

    #[test]
    fn occupancy_stays_near_packed() {
        let (_env, f) = file(64 * 4096);
        let cf = ChunkedFile::new(f, 4, 128, 4096).unwrap();
        let n = 1000u64;
        for i in 0..n {
            cf.append(P, (i % 4) as u32, &[0u8; 128]).unwrap();
        }
        let packed = n * 128;
        // At most one partially-filled chunk per stream of overhead.
        assert!(cf.allocated_bytes() <= packed + 4 * 4096);
        assert!(cf.allocated_bytes() >= packed);
    }

    #[test]
    fn overflow_is_reported() {
        let (_env, f) = file(2 * 4096);
        let cf = ChunkedFile::new(f, 1, 128, 4096).unwrap();
        let per_chunk = 4096 / 128;
        for _ in 0..2 * per_chunk {
            cf.append(P, 0, &[1u8; 128]).unwrap();
        }
        assert!(matches!(
            cf.append(P, 0, &[1u8; 128]),
            Err(EnvError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn random_access_read_obj() {
        let (_env, f) = file(16 * 4096);
        let cf = ChunkedFile::new(f, 1, 32, 4096).unwrap();
        for i in 0..300u64 {
            let mut obj = [0u8; 32];
            obj[..8].copy_from_slice(&i.to_le_bytes());
            cf.append(P, 0, &obj).unwrap();
        }
        let mut buf = [0u8; 32];
        for &i in &[0u64, 127, 128, 255, 299] {
            cf.read_obj(P, 0, i, &mut buf).unwrap();
            assert_eq!(u64::from_le_bytes(buf[..8].try_into().unwrap()), i);
        }
        assert!(cf.read_obj(P, 0, 300, &mut buf).is_err());
    }

    #[test]
    fn rejects_degenerate_geometry() {
        let (_env, f) = file(4096);
        assert!(ChunkedFile::new(f.clone(), 0, 16, 4096).is_err());
        assert!(ChunkedFile::new(f.clone(), 1, 0, 4096).is_err());
        assert!(ChunkedFile::new(f, 1, 64, 32).is_err());
    }

    #[test]
    fn concurrent_writers_never_lose_or_corrupt_objects() {
        // Several threads appending to their own streams (and one shared
        // stream) — the reservation discipline must keep every object
        // intact, as in pass 1's concurrent RS writes.
        let (_env, f) = file(512 * 4096);
        let cf = std::sync::Arc::new(ChunkedFile::new(f, 5, 16, 4096).unwrap());
        let per_thread = 400u64;
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cf = cf.clone();
                scope.spawn(move || {
                    // One simulated proc slot exists per disk (plus its
                    // Sproc); all writers share slot 0 here — the test
                    // targets the chunk directory, not the pagers.
                    let proc = ProcId(0);
                    let _ = t;
                    for i in 0..per_thread {
                        let mut obj = [0u8; 16];
                        obj[..8].copy_from_slice(&(t * 1_000_000 + i).to_le_bytes());
                        // Own stream plus the shared stream 4.
                        cf.append(proc, t as u32, &obj).unwrap();
                        cf.append(proc, 4, &obj).unwrap();
                    }
                });
            }
        });
        // Own streams: exactly our values, in order.
        let mut buf = [0u8; 16];
        for t in 0..4u64 {
            assert_eq!(cf.stream_len(t as u32), per_thread);
            for i in 0..per_thread {
                cf.read_obj(P, t as u32, i, &mut buf).unwrap();
                let v = u64::from_le_bytes(buf[..8].try_into().unwrap());
                assert_eq!(v, t * 1_000_000 + i);
            }
        }
        // Shared stream: all values present exactly once, any order.
        assert_eq!(cf.stream_len(4), 4 * per_thread);
        let mut seen = std::collections::HashSet::new();
        for i in 0..4 * per_thread {
            cf.read_obj(P, 4, i, &mut buf).unwrap();
            let v = u64::from_le_bytes(buf[..8].try_into().unwrap());
            assert!(seen.insert(v), "duplicate {v}");
        }
    }

    #[test]
    fn clones_share_directory() {
        let (_env, f) = file(16 * 4096);
        let cf = ChunkedFile::new(f, 2, 64, 4096).unwrap();
        let cf2 = cf.clone();
        cf.append(P, 0, &[7u8; 64]).unwrap();
        cf2.append(P, 0, &[8u8; 64]).unwrap();
        assert_eq!(cf.stream_len(0), 2);
        let mut buf = [0u8; 64];
        cf.read_obj(P, 0, 1, &mut buf).unwrap();
        assert_eq!(buf[0], 8);
    }
}
