//! # mmjoin-relstore — relations, virtual pointers, workloads
//!
//! The storage vocabulary of the reproduction: fixed-size R/S object
//! layouts with a virtual-pointer join attribute ([`object`]), canonical
//! partition/temporary-area names ([`names`]), sequential object scans
//! ([`scan`]), multi-stream chunked files for the data-dependent
//! sub-partitions of pass 0/1 ([`chunk`]), and a deterministic workload
//! generator with an exact join-checksum oracle ([`workload`]).

pub mod chunk;
pub mod names;
pub mod object;
pub mod scan;
pub mod workload;

pub use chunk::{chunked_capacity, ChunkedFile, StreamReader};
pub use object::{
    encode_r, encode_s, pair_digest, r_key, r_sptr, s_key, RelConfig, MIN_R_SIZE, MIN_S_SIZE,
    SPTR_SIZE,
};
pub use scan::ObjScan;
pub use workload::{
    build, build_explicit, sample_relation, sample_spec_pointers, PointerDist, Relations,
    WorkloadSpec, Zipf,
};
