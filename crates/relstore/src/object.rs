//! Fixed-size object layouts for the two relations.
//!
//! The paper joins `R` with `S` where the join attribute of an R-object
//! is a virtual pointer to an S-object (§4). Objects are fixed-size
//! (`r` and `s` bytes; 128 each in the validation experiments, §8) and
//! are stored raw in mapped files — no serialization step, which is the
//! whole point of a single-level store. Field access goes through
//! explicit little-endian reads/writes of byte slices, so the layout is
//! identical in the simulator, in the real memory-mapped store, and on
//! disk.
//!
//! Layouts (offsets in bytes):
//!
//! ```text
//! R-object: [0..8) key  [8..16) sptr  [16..r) payload
//! S-object: [0..8) key  [8..s)  payload
//! ```

use mmjoin_env::{EnvError, Result, SPtr};

/// Minimum size of either object kind: room for the key and (for R) the
/// pointer.
pub const MIN_R_SIZE: u32 = 16;
/// Minimum S-object size.
pub const MIN_S_SIZE: u32 = 8;
/// Size of a stored virtual pointer (`sptr` in the paper's formulas).
pub const SPTR_SIZE: u32 = 8;

/// Byte offset of the key field in both object kinds.
const KEY_OFF: usize = 0;
/// Byte offset of the join pointer in an R-object.
const SPTR_OFF: usize = 8;

/// Sizes and partitioning of the two relations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RelConfig {
    /// `r`: size of one R-object in bytes (≥ 16).
    pub r_size: u32,
    /// `s`: size of one S-object in bytes (≥ 8).
    pub s_size: u32,
    /// `D`: number of partitions / disks.
    pub d: u32,
    /// Total R-objects, `|R|` (must divide evenly by `d`).
    pub r_objects: u64,
    /// Total S-objects, `|S|` (must divide evenly by `d`).
    pub s_objects: u64,
}

impl RelConfig {
    /// The paper's validation workload: |R| = |S| = 102 400 objects of
    /// 128 bytes over 4 partitions (§8).
    pub fn waterloo96() -> Self {
        RelConfig {
            r_size: 128,
            s_size: 128,
            d: 4,
            r_objects: 102_400,
            s_objects: 102_400,
        }
    }

    /// Validate invariants.
    pub fn validate(&self) -> Result<()> {
        if self.r_size < MIN_R_SIZE {
            return Err(EnvError::InvalidConfig(format!(
                "r_size {} < minimum {MIN_R_SIZE}",
                self.r_size
            )));
        }
        if self.s_size < MIN_S_SIZE {
            return Err(EnvError::InvalidConfig(format!(
                "s_size {} < minimum {MIN_S_SIZE}",
                self.s_size
            )));
        }
        if self.d == 0 {
            return Err(EnvError::InvalidConfig("d must be > 0".into()));
        }
        if !self.r_objects.is_multiple_of(self.d as u64)
            || !self.s_objects.is_multiple_of(self.d as u64)
        {
            return Err(EnvError::InvalidConfig(
                "object counts must divide evenly across partitions".into(),
            ));
        }
        if self.r_objects == 0 || self.s_objects == 0 {
            return Err(EnvError::InvalidConfig(
                "relations must be non-empty".into(),
            ));
        }
        Ok(())
    }

    /// `|R_i|`: R-objects per partition.
    pub fn r_per_part(&self) -> u64 {
        self.r_objects / self.d as u64
    }

    /// `|S_j|`: S-objects per partition.
    pub fn s_per_part(&self) -> u64 {
        self.s_objects / self.d as u64
    }

    /// Bytes of one R partition.
    pub fn r_part_bytes(&self) -> u64 {
        self.r_per_part() * self.r_size as u64
    }

    /// Bytes of one S partition — the `part_bytes` of the logical S
    /// address space.
    pub fn s_part_bytes(&self) -> u64 {
        self.s_per_part() * self.s_size as u64
    }

    /// The virtual pointer to S-object number `global_idx` (in storage
    /// order across all partitions).
    pub fn sptr_of(&self, global_idx: u64) -> SPtr {
        debug_assert!(global_idx < self.s_objects);
        let per = self.s_per_part();
        let part = (global_idx / per) as u32;
        let off = (global_idx % per) * self.s_size as u64;
        SPtr::new(part, off, self.s_part_bytes())
    }

    /// Inverse of [`RelConfig::sptr_of`].
    pub fn s_index_of(&self, ptr: SPtr) -> u64 {
        let pb = self.s_part_bytes();
        ptr.partition(pb) as u64 * self.s_per_part() + ptr.offset(pb) / self.s_size as u64
    }
}

/// Write an R-object into `buf` (which must be exactly `r_size` long).
pub fn encode_r(buf: &mut [u8], key: u64, sptr: SPtr) {
    buf[KEY_OFF..KEY_OFF + 8].copy_from_slice(&key.to_le_bytes());
    buf[SPTR_OFF..SPTR_OFF + 8].copy_from_slice(&sptr.0.to_le_bytes());
    // Deterministic payload so corruption is detectable.
    for (i, b) in buf[16..].iter_mut().enumerate() {
        *b = (key as u8).wrapping_add(i as u8);
    }
}

/// Key of an encoded R-object.
pub fn r_key(buf: &[u8]) -> u64 {
    u64::from_le_bytes(buf[KEY_OFF..KEY_OFF + 8].try_into().expect("8 bytes"))
}

/// Join pointer of an encoded R-object.
pub fn r_sptr(buf: &[u8]) -> SPtr {
    SPtr(u64::from_le_bytes(
        buf[SPTR_OFF..SPTR_OFF + 8].try_into().expect("8 bytes"),
    ))
}

/// Write an S-object into `buf` (exactly `s_size` long).
pub fn encode_s(buf: &mut [u8], key: u64) {
    buf[KEY_OFF..KEY_OFF + 8].copy_from_slice(&key.to_le_bytes());
    for (i, b) in buf[8..].iter_mut().enumerate() {
        *b = (key as u8).wrapping_mul(3).wrapping_add(i as u8);
    }
}

/// Key of an encoded S-object.
pub fn s_key(buf: &[u8]) -> u64 {
    u64::from_le_bytes(buf[KEY_OFF..KEY_OFF + 8].try_into().expect("8 bytes"))
}

/// Order-independent digest of one joined `(R.key, S.key)` pair.
///
/// The digests of all produced pairs are combined with wrapping
/// addition, so any algorithm producing the same *set* of pairs in any
/// order yields the same join checksum — the correctness oracle used by
/// every cross-environment and cross-algorithm test.
pub fn pair_digest(r_key: u64, s_key: u64) -> u64 {
    // splitmix64 finalizer over a combination that is not symmetric in
    // (r, s), so swapped pairs are distinguishable.
    let mut z = r_key
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(s_key.rotate_left(17))
        .wrapping_add(0xA076_1D64_78BD_642F); // keep (0, 0) off the fixed point

    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waterloo_config_is_valid() {
        RelConfig::waterloo96().validate().unwrap();
    }

    #[test]
    fn config_rejects_bad_shapes() {
        let mut c = RelConfig::waterloo96();
        c.r_size = 8;
        assert!(c.validate().is_err());
        let mut c = RelConfig::waterloo96();
        c.r_objects = 102_401;
        assert!(c.validate().is_err());
        let mut c = RelConfig::waterloo96();
        c.d = 0;
        assert!(c.validate().is_err());
        let mut c = RelConfig::waterloo96();
        c.s_objects = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn r_object_roundtrip() {
        let cfg = RelConfig::waterloo96();
        let mut buf = vec![0u8; cfg.r_size as usize];
        let ptr = cfg.sptr_of(77_777);
        encode_r(&mut buf, 42, ptr);
        assert_eq!(r_key(&buf), 42);
        assert_eq!(r_sptr(&buf), ptr);
    }

    #[test]
    fn s_object_roundtrip() {
        let mut buf = vec![0u8; 128];
        encode_s(&mut buf, 1234);
        assert_eq!(s_key(&buf), 1234);
    }

    #[test]
    fn sptr_of_inverts() {
        let cfg = RelConfig::waterloo96();
        for idx in [0u64, 1, 25_599, 25_600, 70_000, 102_399] {
            let ptr = cfg.sptr_of(idx);
            assert_eq!(cfg.s_index_of(ptr), idx);
        }
    }

    #[test]
    fn sptr_order_matches_index_order() {
        let cfg = RelConfig::waterloo96();
        let mut prev = cfg.sptr_of(0);
        for idx in 1..200u64 {
            let cur = cfg.sptr_of(idx * 500 % cfg.s_objects);
            // Only compare when index increases.
            if idx * 500 % cfg.s_objects > (idx - 1) * 500 % cfg.s_objects {
                let _ = prev; // ordering checked below instead
            }
            prev = cur;
        }
        // Direct check: monotone index → monotone pointer.
        let a = cfg.sptr_of(100);
        let b = cfg.sptr_of(101);
        let c = cfg.sptr_of(25_600); // first object of partition 1
        assert!(a < b && b < c);
    }

    #[test]
    fn pair_digest_is_asymmetric_and_spread() {
        assert_ne!(pair_digest(1, 2), pair_digest(2, 1));
        assert_ne!(pair_digest(0, 0), 0);
        // Distinct pairs produce distinct digests in a small sample.
        let mut seen = std::collections::HashSet::new();
        for r in 0..50u64 {
            for s in 0..50u64 {
                assert!(seen.insert(pair_digest(r, s)));
            }
        }
    }
}
