//! Canonical file names for relation partitions and the temporary areas
//! of the join algorithms, matching the paper's nomenclature.

/// `R_i`: partition `i` of the outer relation.
pub fn r_part(i: u32) -> String {
    format!("R_{i}")
}

/// `S_j`: partition `j` of the inner relation.
pub fn s_part(j: u32) -> String {
    format!("S_{j}")
}

/// `RP_i`: Rproc `i`'s temporary sub-partition area from pass 0.
pub fn rp(i: u32) -> String {
    format!("RP_{i}")
}

/// `RS_i`: the area on disk `i` collecting all R-objects that point into
/// `S_i` (sort-merge and Grace).
pub fn rs(i: u32) -> String {
    format!("RS_{i}")
}

/// `Merge_i`: sort-merge's alternate merge destination on disk `i`.
pub fn merge(i: u32) -> String {
    format!("Merge_{i}")
}

/// Unique run-scoped name, for experiments creating many relations in
/// one environment.
pub fn scoped(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}.{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct_per_partition() {
        assert_ne!(r_part(0), r_part(1));
        assert_ne!(r_part(0), s_part(0));
        assert_ne!(rp(2), rs(2));
        assert_eq!(scoped("", "R_0"), "R_0");
        assert_eq!(scoped("run1", "R_0"), "run1.R_0");
    }
}
