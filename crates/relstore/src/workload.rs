//! Workload generation: build the paper's relations inside any
//! environment, with a known-correct join oracle.
//!
//! `S` is laid out in storage order (S-object `k`'s key is `k`), and
//! each R-object's join attribute is a virtual pointer to one S-object,
//! drawn either uniformly (the paper's assumption — "we assume that the
//! join attributes are randomly distributed in R", §4, which makes skew
//! ≈ 1.0) or Zipf-distributed for the skew-sensitivity extension.
//!
//! Because the generator knows every pointer it draws, it can compute
//! the exact expected join checksum up front; every algorithm must
//! reproduce it, on every environment.

use mmjoin_env::{DiskId, Env, ProcId, Result, SCatalog};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::names;
use crate::object::{encode_r, encode_s, pair_digest, RelConfig};

/// Distribution of join pointers across S-objects.
#[derive(Clone, Debug, PartialEq)]
pub enum PointerDist {
    /// Uniform over all of `S` (paper default; skew ≈ 1).
    Uniform,
    /// Zipf with exponent `theta` over S-object ranks; rank 0 is the
    /// most popular object. `theta = 0` degenerates to uniform.
    Zipf {
        /// Skew exponent, typically in `(0, 1)`.
        theta: f64,
    },
    /// Every R-object in partition `i` points into S partition
    /// `(i + 1) mod D`: the worst case for the phase-staggering design,
    /// used in contention tests.
    CrossPartition,
}

impl std::str::FromStr for PointerDist {
    type Err = String;

    /// Parse the CLI/job-file syntax: `uniform`, `cross`, or `zipf:T`.
    fn from_str(s: &str) -> std::result::Result<PointerDist, String> {
        match s {
            "uniform" => Ok(PointerDist::Uniform),
            "cross" => Ok(PointerDist::CrossPartition),
            _ => {
                if let Some(theta) = s.strip_prefix("zipf:") {
                    let theta: f64 = theta
                        .parse()
                        .map_err(|_| format!("bad zipf parameter in '{s}'"))?;
                    Ok(PointerDist::Zipf { theta })
                } else {
                    Err(format!(
                        "unknown distribution '{s}' (uniform | zipf:T | cross)"
                    ))
                }
            }
        }
    }
}

/// Full workload description.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Relation shapes.
    pub rel: RelConfig,
    /// Pointer distribution.
    pub dist: PointerDist,
    /// RNG seed (generation is fully deterministic).
    pub seed: u64,
    /// Optional name prefix so several workloads can coexist in one
    /// environment.
    pub prefix: String,
}

impl WorkloadSpec {
    /// The paper's §8 validation workload.
    pub fn waterloo96(seed: u64) -> Self {
        WorkloadSpec {
            rel: RelConfig::waterloo96(),
            dist: PointerDist::Uniform,
            seed,
            prefix: String::new(),
        }
    }

    /// Planning-time estimate of the skew factor this spec will
    /// generate, available before any data exists (an admission
    /// controller must rank jobs it has not yet built). Exact for
    /// uniform and cross-partition pointers; for Zipf the busiest
    /// partition is approximated as the uniform share plus the most
    /// popular object's excess mass (integral approximation of the
    /// zeta normalizer).
    pub fn estimated_skew(&self) -> f64 {
        let d = self.rel.d as f64;
        match self.dist {
            PointerDist::Uniform => 1.0,
            PointerDist::CrossPartition => d,
            PointerDist::Zipf { theta } => {
                let n = self.rel.s_objects as f64;
                let zeta = if (theta - 1.0).abs() < 1e-9 {
                    n.ln() + 0.5772
                } else {
                    (n.powf(1.0 - theta) - 1.0) / (1.0 - theta) + 1.0
                };
                (1.0 + d / zeta.max(1.0)).min(d)
            }
        }
    }
}

/// Everything a join driver needs to know about generated relations.
#[derive(Clone, Debug)]
pub struct Relations {
    /// Relation shapes.
    pub rel: RelConfig,
    /// File names of `R_0..R_{D-1}`.
    pub r_files: Vec<String>,
    /// File names of `S_0..S_{D-1}`.
    pub s_files: Vec<String>,
    /// Catalog for [`Env::register_s`].
    pub catalog: SCatalog,
    /// Expected number of join pairs (= |R|, every pointer resolves).
    pub expected_pairs: u64,
    /// Expected order-independent join checksum.
    pub expected_checksum: u64,
    /// `|R_{i,j}|` counts: `sub_counts[i][j]` R-objects of partition `i`
    /// pointing into S partition `j`.
    pub sub_counts: Vec<Vec<u64>>,
    /// The paper's skew factor: `max_{i,j} |R_{i,j}| / (|R_i| / D)`.
    pub skew: f64,
    /// Name prefix used for the files.
    pub prefix: String,
}

impl Relations {
    /// `|R_{i,j}|` for this workload.
    pub fn sub_count(&self, i: u32, j: u32) -> u64 {
        self.sub_counts[i as usize][j as usize]
    }
}

/// Precomputed Zipf sampler over `0..n` (rank-ordered).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the sampler: O(n) zeta computation.
    pub fn new(n: u64, theta: f64) -> Self {
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draw one rank in `0..n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

/// Draw one S-object target for an R-object of partition `part`.
fn draw_one(
    rel: &RelConfig,
    dist: &PointerDist,
    part: u32,
    rng: &mut StdRng,
    zipf: Option<&Zipf>,
) -> u64 {
    match dist {
        PointerDist::Uniform => rng.random_range(0..rel.s_objects),
        PointerDist::Zipf { .. } => {
            // Scatter ranks over storage order so popularity is not
            // correlated with address (rank r -> object (r * PRIME) mod n).
            let rank = zipf.expect("zipf sampler").sample(rng);
            (rank.wrapping_mul(0x9E37_79B1)) % rel.s_objects
        }
        PointerDist::CrossPartition => {
            let target_part = (part + 1) % rel.d;
            let within = rng.random_range(0..rel.s_per_part());
            target_part as u64 * rel.s_per_part() + within
        }
    }
}

/// Choose the S-object targets for one R partition.
fn draw_targets(
    rel: &RelConfig,
    dist: &PointerDist,
    part: u32,
    rng: &mut StdRng,
    zipf: Option<&Zipf>,
) -> Vec<u64> {
    (0..rel.r_per_part())
        .map(|_| draw_one(rel, dist, part, rng, zipf))
        .collect()
}

/// Draw a bounded, deterministic sample of the pointers this spec's
/// distribution will generate — *before* any data exists. Returns
/// `(source R partition, target S-index)` pairs.
///
/// This is the submit-time sampling path: an admission controller must
/// plan jobs whose relations have not been built yet, and the relations
/// are generated from this very distribution, so drawing
/// `min(cap, |R|)` pointers from it (seeded off the workload seed, on a
/// stream distinct from the generator's) is an honest bounded-cost
/// sample of the data to come. Draws round-robin across R partitions so
/// partition-correlated distributions (cross-partition) are represented
/// exactly.
pub fn sample_spec_pointers(spec: &WorkloadSpec, cap: usize) -> Vec<(u32, u64)> {
    let rel = spec.rel;
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xA5A5_5A5A_0BAD_CAFE);
    let zipf = match spec.dist {
        PointerDist::Zipf { theta } => Some(Zipf::new(rel.s_objects, theta)),
        _ => None,
    };
    let n = (cap as u64).min(rel.r_objects);
    (0..n)
        .map(|k| {
            let part = (k % rel.d as u64) as u32;
            (
                part,
                draw_one(&rel, &spec.dist, part, &mut rng, zipf.as_ref()),
            )
        })
        .collect()
}

/// Sample the join pointers of *built* relations with a strided scan:
/// at most `cap` objects are read across all R partitions (`cap / D`
/// per partition, evenly strided), so the I/O cost is bounded
/// regardless of `|R|`. Returns `(source R partition, target S-index)`
/// pairs.
///
/// The reads go through the environment and therefore advance its
/// clocks and fault counters; callers measuring the join itself should
/// `env.reset_stats()` afterwards.
pub fn sample_relation<E: Env>(env: &E, rels: &Relations, cap: usize) -> Result<Vec<(u32, u64)>> {
    use crate::object::r_sptr;
    use mmjoin_env::FileOps as _;

    let rel = rels.rel;
    let proc = ProcId(0);
    let per = rel.r_per_part();
    let budget = ((cap as u64) / rel.d as u64).clamp(1, per);
    let stride = per.div_ceil(budget);
    let mut out = Vec::with_capacity((budget * rel.d as u64) as usize);
    let mut buf = vec![0u8; rel.r_size as usize];
    for i in 0..rel.d {
        let file = env.open_file(proc, &rels.r_files[i as usize])?;
        let mut k = 0u64;
        while k < per {
            file.read_at(proc, k * rel.r_size as u64, &mut buf)?;
            out.push((i, rel.s_index_of(r_sptr(&buf))));
            k += stride;
        }
    }
    Ok(out)
}

/// Generate the relations inside `env`, preload them (cost-free), reset
/// the environment's counters, and return the descriptor.
///
/// Layout order per disk `i` is `R_i` then `S_i`, matching the layout
/// diagrams in §5.3/§6.3 (temporary areas are created later, by the
/// join algorithms themselves, and land after these extents).
pub fn build<E: Env>(env: &E, spec: &WorkloadSpec) -> Result<Relations> {
    spec.rel.validate()?;
    let rel = spec.rel;
    let d = rel.d;
    let proc = ProcId(0);

    // Generate all pointer targets first so the checksum oracle and skew
    // are known before any I/O.
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let zipf = match spec.dist {
        PointerDist::Zipf { theta } => Some(Zipf::new(rel.s_objects, theta)),
        _ => None,
    };
    let targets: Vec<Vec<u64>> = (0..d)
        .map(|i| draw_targets(&rel, &spec.dist, i, &mut rng, zipf.as_ref()))
        .collect();

    let mut sub_counts = vec![vec![0u64; d as usize]; d as usize];
    let mut checksum = 0u64;
    for (i, parts) in targets.iter().enumerate() {
        for (k, &s_idx) in parts.iter().enumerate() {
            let r_key = i as u64 * rel.r_per_part() + k as u64;
            // S-object keys equal their storage index by construction.
            checksum = checksum.wrapping_add(pair_digest(r_key, s_idx));
            let j = (s_idx / rel.s_per_part()) as usize;
            sub_counts[i][j] += 1;
        }
    }
    let per = rel.r_per_part() as f64 / d as f64;
    let skew = sub_counts
        .iter()
        .flatten()
        .map(|&c| c as f64 / per)
        .fold(0.0, f64::max);

    // Materialize S then R on each disk.
    let mut r_files = Vec::with_capacity(d as usize);
    let mut s_files = Vec::with_capacity(d as usize);
    for i in 0..d {
        let r_name = names::scoped(&spec.prefix, &names::r_part(i));
        let s_name = names::scoped(&spec.prefix, &names::s_part(i));
        env.create_file(proc, &r_name, DiskId(i), rel.r_part_bytes())?;
        env.create_file(proc, &s_name, DiskId(i), rel.s_part_bytes())?;

        let mut s_data = vec![0u8; rel.s_part_bytes() as usize];
        for k in 0..rel.s_per_part() {
            let key = i as u64 * rel.s_per_part() + k;
            let off = (k * rel.s_size as u64) as usize;
            encode_s(&mut s_data[off..off + rel.s_size as usize], key);
        }
        env.preload(&s_name, 0, &s_data)?;

        let mut r_data = vec![0u8; rel.r_part_bytes() as usize];
        for (k, &s_idx) in targets[i as usize].iter().enumerate() {
            let key = i as u64 * rel.r_per_part() + k as u64;
            let off = k * rel.r_size as usize;
            encode_r(
                &mut r_data[off..off + rel.r_size as usize],
                key,
                rel.sptr_of(s_idx),
            );
        }
        env.preload(&r_name, 0, &r_data)?;

        r_files.push(r_name);
        s_files.push(s_name);
    }

    let catalog = SCatalog {
        part_files: s_files.clone(),
        part_bytes: rel.s_part_bytes(),
        s_obj_size: rel.s_size,
    };
    env.reset_stats();

    Ok(Relations {
        rel,
        r_files,
        s_files,
        catalog,
        expected_pairs: rel.r_objects,
        expected_checksum: checksum,
        sub_counts,
        skew,
        prefix: spec.prefix.clone(),
    })
}

/// Build relations from *explicit* content: a key for every S slot and
/// an explicit `(key, target S-index)` row list for R, partitioned in
/// order (`R_i` holds rows `i*|R|/D .. (i+1)*|R|/D`).
///
/// [`build`] assumes S-object `k`'s key is `k`; the streaming tier
/// breaks that assumption the moment an `append=` or `delete=` mutates
/// a slot, so its differential oracle needs a one-shot builder that
/// materializes the *final* mutated S image (tombstoned slots carry
/// sentinel keys no row targets) and prices the checksum with the real
/// per-slot keys.
pub fn build_explicit<E: Env>(
    env: &E,
    rel: RelConfig,
    prefix: &str,
    s_keys: &[u64],
    r_rows: &[(u64, u64)],
) -> Result<Relations> {
    rel.validate()?;
    if s_keys.len() as u64 != rel.s_objects {
        return Err(mmjoin_env::EnvError::InvalidConfig(format!(
            "build_explicit: {} S keys for {} slots",
            s_keys.len(),
            rel.s_objects
        )));
    }
    if r_rows.len() as u64 != rel.r_objects {
        return Err(mmjoin_env::EnvError::InvalidConfig(format!(
            "build_explicit: {} R rows for |R| = {}",
            r_rows.len(),
            rel.r_objects
        )));
    }
    let d = rel.d;
    let proc = ProcId(0);

    let mut sub_counts = vec![vec![0u64; d as usize]; d as usize];
    let mut checksum = 0u64;
    for (n, &(r_key, s_idx)) in r_rows.iter().enumerate() {
        if s_idx >= rel.s_objects {
            return Err(mmjoin_env::EnvError::InvalidConfig(format!(
                "build_explicit: row {n} targets S-index {s_idx} >= {}",
                rel.s_objects
            )));
        }
        checksum = checksum.wrapping_add(pair_digest(r_key, s_keys[s_idx as usize]));
        let i = n as u64 / rel.r_per_part();
        sub_counts[i as usize][(s_idx / rel.s_per_part()) as usize] += 1;
    }
    let per = rel.r_per_part() as f64 / d as f64;
    let skew = sub_counts
        .iter()
        .flatten()
        .map(|&c| c as f64 / per)
        .fold(0.0, f64::max);

    let mut r_files = Vec::with_capacity(d as usize);
    let mut s_files = Vec::with_capacity(d as usize);
    for i in 0..d {
        let r_name = names::scoped(prefix, &names::r_part(i));
        let s_name = names::scoped(prefix, &names::s_part(i));
        env.create_file(proc, &r_name, DiskId(i), rel.r_part_bytes())?;
        env.create_file(proc, &s_name, DiskId(i), rel.s_part_bytes())?;

        let mut s_data = vec![0u8; rel.s_part_bytes() as usize];
        for k in 0..rel.s_per_part() {
            let idx = (i as u64 * rel.s_per_part() + k) as usize;
            let off = (k * rel.s_size as u64) as usize;
            encode_s(&mut s_data[off..off + rel.s_size as usize], s_keys[idx]);
        }
        env.preload(&s_name, 0, &s_data)?;

        let mut r_data = vec![0u8; rel.r_part_bytes() as usize];
        let base = (i as u64 * rel.r_per_part()) as usize;
        for k in 0..rel.r_per_part() as usize {
            let (key, s_idx) = r_rows[base + k];
            let off = k * rel.r_size as usize;
            encode_r(
                &mut r_data[off..off + rel.r_size as usize],
                key,
                rel.sptr_of(s_idx),
            );
        }
        env.preload(&r_name, 0, &r_data)?;

        r_files.push(r_name);
        s_files.push(s_name);
    }

    let catalog = SCatalog {
        part_files: s_files.clone(),
        part_bytes: rel.s_part_bytes(),
        s_obj_size: rel.s_size,
    };
    env.reset_stats();

    Ok(Relations {
        rel,
        r_files,
        s_files,
        catalog,
        expected_pairs: rel.r_objects,
        expected_checksum: checksum,
        sub_counts,
        skew,
        prefix: prefix.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{r_key, r_sptr, s_key};
    use mmjoin_env::FileOps;
    use mmjoin_vmsim::{SimConfig, SimEnv};

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec {
            rel: RelConfig {
                r_size: 32,
                s_size: 32,
                d: 4,
                r_objects: 400,
                s_objects: 400,
            },
            dist: PointerDist::Uniform,
            seed: 7,
            prefix: String::new(),
        }
    }

    fn env() -> SimEnv {
        SimEnv::new(SimConfig::waterloo96(4)).unwrap()
    }

    #[test]
    fn build_is_deterministic() {
        let a = build(&env(), &small_spec()).unwrap();
        let b = build(&env(), &small_spec()).unwrap();
        assert_eq!(a.expected_checksum, b.expected_checksum);
        assert_eq!(a.sub_counts, b.sub_counts);
        let mut spec2 = small_spec();
        spec2.seed = 8;
        let c = build(&env(), &spec2).unwrap();
        assert_ne!(a.expected_checksum, c.expected_checksum);
    }

    #[test]
    fn stored_objects_decode_correctly() {
        let e = env();
        let rels = build(&e, &small_spec()).unwrap();
        let rel = rels.rel;
        let proc = ProcId(0);
        // Check one R partition object and the S-object it points to.
        let rf = e.open_file(proc, &rels.r_files[2]).unwrap();
        let mut rbuf = vec![0u8; rel.r_size as usize];
        rf.read_at(proc, 5 * rel.r_size as u64, &mut rbuf).unwrap();
        let key = r_key(&rbuf);
        assert_eq!(key, 2 * rel.r_per_part() + 5);
        let ptr = r_sptr(&rbuf);
        let s_idx = rel.s_index_of(ptr);
        assert!(s_idx < rel.s_objects);
        let j = ptr.partition(rel.s_part_bytes());
        let sf = e.open_file(proc, &rels.s_files[j as usize]).unwrap();
        let mut sbuf = vec![0u8; rel.s_size as usize];
        sf.read_at(proc, ptr.offset(rel.s_part_bytes()), &mut sbuf)
            .unwrap();
        assert_eq!(s_key(&sbuf), s_idx);
    }

    #[test]
    fn sub_counts_sum_to_partition_sizes() {
        let rels = build(&env(), &small_spec()).unwrap();
        for i in 0..4usize {
            let total: u64 = rels.sub_counts[i].iter().sum();
            assert_eq!(total, rels.rel.r_per_part());
        }
        assert!(rels.skew >= 1.0, "skew is a max over means");
    }

    #[test]
    fn uniform_skew_is_near_one() {
        let mut spec = small_spec();
        spec.rel.r_objects = 40_000;
        spec.rel.s_objects = 40_000;
        let rels = build(&env(), &spec).unwrap();
        assert!(
            rels.skew < 1.2,
            "uniform pointers should have low skew, got {}",
            rels.skew
        );
    }

    #[test]
    fn cross_partition_concentrates_pointers() {
        let mut spec = small_spec();
        spec.dist = PointerDist::CrossPartition;
        let rels = build(&env(), &spec).unwrap();
        for i in 0..4u32 {
            let j = (i + 1) % 4;
            assert_eq!(rels.sub_count(i, j), rels.rel.r_per_part());
            assert_eq!(rels.sub_count(i, i), 0);
        }
        assert_eq!(rels.skew, 4.0);
    }

    #[test]
    fn zipf_is_more_skewed_than_uniform_at_object_level() {
        let n = 10_000u64;
        let z = Zipf::new(n, 0.99);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // Rank 0 must dominate: with theta ~1 it receives ~ 1/ln(n) of
        // all draws.
        assert!(counts[0] > 1000, "rank 0 got {}", counts[0]);
        assert!(counts[0] > 50 * counts[n as usize / 2].max(1));
    }

    #[test]
    fn estimated_skew_matches_distribution_shape() {
        assert_eq!(small_spec().estimated_skew(), 1.0);
        let mut cross = small_spec();
        cross.dist = PointerDist::CrossPartition;
        assert_eq!(cross.estimated_skew(), 4.0);
        let mut z = small_spec();
        z.dist = PointerDist::Zipf { theta: 0.9 };
        let est = z.estimated_skew();
        assert!(est > 1.0 && est <= 4.0, "zipf estimate {est}");
        // Sharper skew, larger estimate.
        z.dist = PointerDist::Zipf { theta: 1.2 };
        assert!(z.estimated_skew() > est);
    }

    #[test]
    fn workload_reset_leaves_clean_stats() {
        let e = env();
        let _ = build(&e, &small_spec()).unwrap();
        let st = e.stats();
        assert_eq!(st.elapsed(), 0.0);
        assert_eq!(st.total_blocks(), 0);
    }

    #[test]
    fn spec_sample_is_deterministic_and_bounded() {
        let spec = small_spec();
        let a = sample_spec_pointers(&spec, 100);
        let b = sample_spec_pointers(&spec, 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert!(a.iter().all(|&(src, p)| src < 4 && p < spec.rel.s_objects));
        // Cap beyond |R| is clamped to |R|.
        assert_eq!(sample_spec_pointers(&spec, 10_000).len(), 400);
        let mut spec2 = small_spec();
        spec2.seed = 8;
        assert_ne!(sample_spec_pointers(&spec2, 100), a);
    }

    #[test]
    fn spec_sample_sees_cross_partition_concentration() {
        let mut spec = small_spec();
        spec.dist = PointerDist::CrossPartition;
        let sample = sample_spec_pointers(&spec, 200);
        // Round-robin draws across R partitions: every pointer drawn
        // from partition i lands in S partition (i+1) % 4, so the
        // global counts are flat while every source row concentrates.
        let per = spec.rel.s_per_part();
        let mut counts = [0u64; 4];
        for &(src, p) in &sample {
            assert_eq!(p / per, (src as u64 + 1) % 4);
            counts[(p / per) as usize] += 1;
        }
        assert_eq!(counts, [50, 50, 50, 50]);
    }

    #[test]
    fn relation_sample_matches_stored_pointers() {
        let e = env();
        let spec = small_spec();
        let rels = build(&e, &spec).unwrap();
        let sample = sample_relation(&e, &rels, 80).unwrap();
        // cap/d = 20 per partition, stride 5 over 100 objects.
        assert_eq!(sample.len(), 80);
        assert!(sample
            .iter()
            .all(|&(src, p)| src < 4 && p < spec.rel.s_objects));
        // Strided reads must see the very pointers the generator wrote:
        // re-derive the first sampled index from partition 0 directly.
        let rf = e.open_file(ProcId(0), &rels.r_files[0]).unwrap();
        let mut buf = vec![0u8; spec.rel.r_size as usize];
        rf.read_at(ProcId(0), 0, &mut buf).unwrap();
        assert_eq!(sample[0], (0, rels.rel.s_index_of(r_sptr(&buf))));
        e.reset_stats();
    }

    #[test]
    fn relation_sample_of_cross_partition_reports_full_skew() {
        let e = env();
        let mut spec = small_spec();
        spec.dist = PointerDist::CrossPartition;
        let rels = build(&e, &spec).unwrap();
        let sample = sample_relation(&e, &rels, 80).unwrap();
        let per = spec.rel.s_per_part();
        let mut counts = [0u64; 4];
        for &(src, p) in &sample {
            // Each R partition points only at its successor...
            assert_eq!(p / per, (src as u64 + 1) % 4);
            counts[(p / per) as usize] += 1;
        }
        // ...and the scan covers all four partitions evenly.
        assert_eq!(counts, [20, 20, 20, 20]);
    }

    #[test]
    fn build_explicit_matches_implicit_build_on_identity_keys() {
        // With identity S keys and build()'s own (key, target) rows,
        // the explicit builder must reproduce build()'s oracle exactly.
        let e = env();
        let spec = small_spec();
        let implicit = build(&e, &spec).unwrap();
        let rel = spec.rel;
        let s_keys: Vec<u64> = (0..rel.s_objects).collect();
        // sample_relation at full cap walks partitions in order with
        // stride 1, so row n has key n and build()'s target for it.
        let sample = sample_relation(&e, &implicit, usize::MAX).unwrap();
        let rows: Vec<(u64, u64)> = sample
            .iter()
            .enumerate()
            .map(|(n, &(_, s))| (n as u64, s))
            .collect();
        let e2 = env();
        let explicit = build_explicit(&e2, rel, "x", &s_keys, &rows).unwrap();
        assert_eq!(explicit.expected_checksum, implicit.expected_checksum);
        assert_eq!(explicit.expected_pairs, implicit.expected_pairs);
        assert_eq!(explicit.sub_counts, implicit.sub_counts);
    }

    #[test]
    fn build_explicit_prices_checksum_with_slot_keys() {
        let e = env();
        let rel = RelConfig {
            r_size: 32,
            s_size: 32,
            d: 2,
            r_objects: 4,
            s_objects: 4,
        };
        // Non-identity S keys: slot 2 carries key 900.
        let s_keys = vec![100u64, 101, 900, 103];
        let rows = vec![(7u64, 0u64), (8, 2), (9, 2), (10, 3)];
        let rels = build_explicit(&e, rel, "", &s_keys, &rows).unwrap();
        let want = pair_digest(7, 100)
            .wrapping_add(pair_digest(8, 900))
            .wrapping_add(pair_digest(9, 900))
            .wrapping_add(pair_digest(10, 103));
        assert_eq!(rels.expected_checksum, want);
        assert_eq!(rels.sub_counts, vec![vec![1, 1], vec![0, 2]]);
        // Stored S-objects really carry the explicit keys.
        let sf = e.open_file(ProcId(0), &rels.s_files[1]).unwrap();
        let mut buf = vec![0u8; 32];
        sf.read_at(ProcId(0), 0, &mut buf).unwrap();
        assert_eq!(s_key(&buf), 900);
    }

    #[test]
    fn build_explicit_rejects_shape_mismatches() {
        let e = env();
        let rel = small_spec().rel;
        let s_keys: Vec<u64> = (0..rel.s_objects).collect();
        let rows: Vec<(u64, u64)> = (0..rel.r_objects).map(|n| (n, 0)).collect();
        assert!(build_explicit(&e, rel, "", &s_keys[..10], &rows).is_err());
        assert!(build_explicit(&e, rel, "", &s_keys, &rows[..10]).is_err());
        let mut bad = rows.clone();
        bad[3].1 = rel.s_objects; // out of range
        assert!(build_explicit(&e, rel, "", &s_keys, &bad).is_err());
    }

    #[test]
    fn prefixed_workloads_coexist() {
        let e = env();
        let mut s1 = small_spec();
        s1.prefix = "a".into();
        let mut s2 = small_spec();
        s2.prefix = "b".into();
        let r1 = build(&e, &s1).unwrap();
        let r2 = build(&e, &s2).unwrap();
        assert_ne!(r1.r_files[0], r2.r_files[0]);
    }
}
