//! Sampled pointer statistics for data-aware planning.
//!
//! The paper's model prices skew with the *worst-case* bound
//! `skew = max |R_{i,j}| / (|R_i|/D)`; `results/skew.txt` shows that
//! bound over-predicting by 3–4× on pathological distributions. This
//! module replaces the assumption with observation: a bounded-cost
//! sample of R's join pointers (a seeded reservoir, or a strided file
//! scan — both feed `(source R partition, target S-index)` pairs) is
//! folded into a [`SampleSummary`] — the `D × D` source→target cell
//! counts, a duplication factor with a Chao1 distinct-target estimate,
//! and a small equi-depth histogram — from which the planner derives a
//! histogram-based skew estimate instead of the worst-case term, and
//! an effective `|S|` (the hot set repeated pointers actually touch)
//! instead of the full target space. The cell counts matter: a
//! cross-partition workload is perfectly flat *globally* (every S
//! partition receives `|R|/D` pointers) while every individual Rproc
//! still hammers a single remote partition, so skew only shows up in
//! the per-source rows.
//!
//! Everything here is deterministic for a fixed seed, and the summary
//! round-trips through its hand-rolled JSON encoding bitwise (floats
//! are printed with Rust's shortest-round-trip `Display`), so a plan's
//! provenance can be journaled and replayed exactly.

/// Default number of pointers a submit-time sample draws.
pub const SAMPLE_CAP: usize = 4096;

/// Default number of equi-depth histogram buckets.
pub const HISTOGRAM_BUCKETS: usize = 16;

/// A seeded reservoir sampler (Vitter's algorithm R) over a stream of
/// pointers (or any copyable item). Deterministic: the same seed and
/// stream always keep the same sample.
#[derive(Clone, Debug)]
pub struct Reservoir<T = u64> {
    cap: usize,
    seen: u64,
    items: Vec<T>,
    state: u64,
}

impl<T: Copy> Reservoir<T> {
    /// A reservoir keeping at most `cap` items.
    pub fn new(cap: usize, seed: u64) -> Self {
        Reservoir {
            cap: cap.max(1),
            seen: 0,
            items: Vec::with_capacity(cap.clamp(1, 1 << 20)),
            // splitmix64 of the seed so seed 0 still mixes.
            state: splitmix64(seed ^ 0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = splitmix64(self.state);
        self.state
    }

    /// Offer one stream element.
    pub fn push(&mut self, value: T) {
        self.seen += 1;
        if self.items.len() < self.cap {
            self.items.push(value);
            return;
        }
        // Replace a random slot with probability cap/seen.
        let j = self.next_u64() % self.seen;
        if (j as usize) < self.cap {
            let slot = j as usize;
            self.items[slot] = value;
        }
    }

    /// The current sample.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Stream elements offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A compact statistical summary of sampled join pointers: enough for
/// the planner to replace the worst-case skew bound with an observed
/// per-partition maximum, plus a duplication factor and an equi-depth
/// histogram for finer diagnostics.
#[derive(Clone, Debug, PartialEq)]
pub struct SampleSummary {
    /// `|R|`: the population the sample describes.
    pub population: u64,
    /// Pointers actually sampled.
    pub sampled: u64,
    /// `|S|`: the pointer target space.
    pub s_objects: u64,
    /// `D`: partitions.
    pub d: u32,
    /// Sampled pointers landing in each S partition (length `d`).
    pub part_counts: Vec<u64>,
    /// Row-major `d × d` source→target counts: `cells[i*d + j]` is the
    /// number of sampled pointers drawn from R partition `i` that land
    /// in S partition `j` — the sampled analogue of `|R_{i,j}|`.
    pub cells: Vec<u64>,
    /// Distinct S-indices in the sample.
    pub distinct: u64,
    /// Sampled S-indices seen exactly once (Chao1's `f1`).
    pub singletons: u64,
    /// Sampled S-indices seen exactly twice (Chao1's `f2`).
    pub doubletons: u64,
    /// `sampled / distinct` — the pointer duplication (correlation)
    /// factor; 1.0 means every sampled pointer hit a different object.
    pub duplication: f64,
    /// Equi-depth histogram: `bounds[b]` is the largest S-index in
    /// bucket `b` (ascending), `depths[b]` its sample count.
    pub bounds: Vec<u64>,
    /// Per-bucket sample counts (same length as `bounds`).
    pub depths: Vec<u64>,
}

impl SampleSummary {
    /// Fold raw sampled `(source R partition, target S-index)` pairs
    /// into a summary. `population` is the size of the stream the
    /// sample was drawn from (`|R|`).
    pub fn from_pointers(
        pointers: &[(u32, u64)],
        population: u64,
        s_objects: u64,
        d: u32,
        buckets: usize,
    ) -> SampleSummary {
        let d = d.max(1);
        let s_per_part = (s_objects / d as u64).max(1);
        let mut cells = vec![0u64; d as usize * d as usize];
        for &(src, idx) in pointers {
            let i = (src as usize).min(d as usize - 1);
            let j = ((idx / s_per_part) as usize).min(d as usize - 1);
            cells[i * d as usize + j] += 1;
        }
        let mut sorted: Vec<u64> = pointers.iter().map(|&(_, idx)| idx).collect();
        sorted.sort_unstable();

        let mut part_counts = vec![0u64; d as usize];
        let mut distinct = 0u64;
        let mut singletons = 0u64;
        let mut doubletons = 0u64;
        let mut run = 0u64;
        // Close out one run of equal targets: its length decides
        // whether the target was a singleton or a doubleton.
        fn close_run(run: u64, singletons: &mut u64, doubletons: &mut u64) {
            match run {
                1 => *singletons += 1,
                2 => *doubletons += 1,
                _ => {}
            }
        }
        for (k, &idx) in sorted.iter().enumerate() {
            let part = ((idx / s_per_part) as usize).min(d as usize - 1);
            part_counts[part] += 1;
            if k == 0 || sorted[k - 1] != idx {
                close_run(run, &mut singletons, &mut doubletons);
                distinct += 1;
                run = 1;
            } else {
                run += 1;
            }
        }
        close_run(run, &mut singletons, &mut doubletons);

        let buckets = buckets.max(1).min(sorted.len().max(1));
        let mut bounds = Vec::with_capacity(buckets);
        let mut depths = Vec::with_capacity(buckets);
        if !sorted.is_empty() {
            let n = sorted.len();
            let mut start = 0usize;
            for b in 0..buckets {
                let end = (n * (b + 1)) / buckets;
                if end <= start {
                    continue;
                }
                bounds.push(sorted[end - 1]);
                depths.push((end - start) as u64);
                start = end;
            }
        }

        let sampled = sorted.len() as u64;
        SampleSummary {
            population,
            sampled,
            s_objects,
            d,
            part_counts,
            cells,
            distinct,
            singletons,
            doubletons,
            duplication: if distinct > 0 {
                sampled as f64 / distinct as f64
            } else {
                1.0
            },
            bounds,
            depths,
        }
    }

    /// The histogram-derived skew factor: the observed analogue of the
    /// paper's `max |R_{i,j}| / (|R_i|/D)`, computed per source row —
    /// `max_i D × max_j cells[i][j] / Σ_j cells[i][j]` — and clamped to
    /// the factor's valid range `[1, D]`. Rows must be priced
    /// separately: a cross-partition workload is flat in the global
    /// per-S-partition counts yet maximally skewed in every row.
    pub fn estimated_skew(&self) -> f64 {
        if self.sampled == 0 {
            return 1.0;
        }
        let d = self.d as usize;
        let mut worst = 1.0f64;
        for row in self.cells.chunks(d) {
            let total: u64 = row.iter().sum();
            if total == 0 {
                continue;
            }
            let max = row.iter().copied().max().unwrap_or(0) as f64;
            worst = worst.max(self.d as f64 * max / total as f64);
        }
        worst.clamp(1.0, self.d as f64)
    }

    /// Chao1 estimate of the distinct S-objects the *full* pointer
    /// population touches: `distinct + f1(f1-1) / 2(f2+1)` (the
    /// bias-corrected form), clamped to `[distinct, s_objects]`. A
    /// uniform sample is nearly all singletons and the estimate
    /// recovers ~`|S|`; a hot-key sample has few singletons and the
    /// estimate collapses to the hot-set size — which is what decides
    /// whether repeated pointer fetches hit memory or disk.
    pub fn estimated_distinct(&self) -> u64 {
        if self.distinct == 0 {
            // No information: assume the whole target space is touched.
            return self.s_objects;
        }
        let f1 = self.singletons as f64;
        let f2 = self.doubletons as f64;
        let est = self.distinct as f64 + f1 * (f1 - 1.0) / (2.0 * (f2 + 1.0));
        (est.round() as u64).clamp(self.distinct, self.s_objects.max(self.distinct))
    }

    /// Encode as one flat JSON object. Floats use Rust's `Display`
    /// (shortest round-trip representation), so
    /// [`SampleSummary::from_json`] reconstructs them bitwise.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(256);
        let _ = write!(
            s,
            "{{\"population\":{},\"sampled\":{},\"s_objects\":{},\"d\":{},",
            self.population, self.sampled, self.s_objects, self.d
        );
        let _ = write!(s, "\"part_counts\":{},", encode_u64s(&self.part_counts));
        let _ = write!(s, "\"cells\":{},", encode_u64s(&self.cells));
        let _ = write!(
            s,
            "\"distinct\":{},\"singletons\":{},\"doubletons\":{},\"duplication\":{},",
            self.distinct, self.singletons, self.doubletons, self.duplication
        );
        let _ = write!(
            s,
            "\"bounds\":{},\"depths\":{}}}",
            encode_u64s(&self.bounds),
            encode_u64s(&self.depths)
        );
        s
    }

    /// Decode a summary produced by [`SampleSummary::to_json`].
    pub fn from_json(text: &str) -> Result<SampleSummary, String> {
        Ok(SampleSummary {
            population: field_u64(text, "population")?,
            sampled: field_u64(text, "sampled")?,
            s_objects: field_u64(text, "s_objects")?,
            d: field_u64(text, "d")? as u32,
            part_counts: field_u64s(text, "part_counts")?,
            cells: field_u64s(text, "cells")?,
            distinct: field_u64(text, "distinct")?,
            singletons: field_u64(text, "singletons")?,
            doubletons: field_u64(text, "doubletons")?,
            duplication: field_f64(text, "duplication")?,
            bounds: field_u64s(text, "bounds")?,
            depths: field_u64s(text, "depths")?,
        })
    }
}

fn encode_u64s(values: &[u64]) -> String {
    let mut s = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&v.to_string());
    }
    s.push(']');
    s
}

/// Locate `"key":` and return the raw value text that follows (up to
/// the enclosing `,` or `}` for scalars, the matching `]` for arrays).
fn field_raw<'a>(text: &'a str, key: &str) -> Result<&'a str, String> {
    let marker = format!("\"{key}\":");
    let at = text
        .find(&marker)
        .ok_or_else(|| format!("missing field '{key}'"))?;
    let rest = &text[at + marker.len()..];
    if let Some(stripped) = rest.strip_prefix('[') {
        let end = stripped
            .find(']')
            .ok_or_else(|| format!("unterminated array for '{key}'"))?;
        Ok(&stripped[..end])
    } else {
        let end = rest
            .find([',', '}'])
            .ok_or_else(|| format!("unterminated value for '{key}'"))?;
        Ok(&rest[..end])
    }
}

fn field_u64(text: &str, key: &str) -> Result<u64, String> {
    field_raw(text, key)?
        .trim()
        .parse()
        .map_err(|_| format!("bad integer for '{key}'"))
}

fn field_f64(text: &str, key: &str) -> Result<f64, String> {
    field_raw(text, key)?
        .trim()
        .parse()
        .map_err(|_| format!("bad float for '{key}'"))
}

fn field_u64s(text: &str, key: &str) -> Result<Vec<u64>, String> {
    let raw = field_raw(text, key)?.trim();
    if raw.is_empty() {
        return Ok(Vec::new());
    }
    raw.split(',')
        .map(|t| {
            t.trim()
                .parse()
                .map_err(|_| format!("bad integer in '{key}'"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn uniformish(n: u64, s_objects: u64, d: u32, seed: u64) -> Vec<(u32, u64)> {
        // A deterministic low-discrepancy stream over 0..s_objects,
        // drawn round-robin from the d source partitions.
        (0..n)
            .map(|k| {
                (
                    (k % d as u64) as u32,
                    splitmix64(seed.wrapping_add(k)) % s_objects,
                )
            })
            .collect()
    }

    #[test]
    fn reservoir_keeps_cap_and_is_deterministic() {
        let mut a = Reservoir::new(64, 7);
        let mut b = Reservoir::new(64, 7);
        for v in 0..10_000u64 {
            a.push(v);
            b.push(v);
        }
        assert_eq!(a.items().len(), 64);
        assert_eq!(a.seen(), 10_000);
        assert_eq!(a.items(), b.items(), "same seed, same sample");
        let mut c = Reservoir::new(64, 8);
        for v in 0..10_000u64 {
            c.push(v);
        }
        assert_ne!(a.items(), c.items(), "different seed, different sample");
    }

    #[test]
    fn reservoir_short_stream_keeps_everything() {
        let mut r = Reservoir::new(100, 1);
        for v in 0..10u64 {
            r.push(v);
        }
        assert_eq!(r.items(), (0..10).collect::<Vec<_>>().as_slice());
    }

    #[test]
    fn reservoir_sample_is_roughly_unbiased() {
        // Sample 1000 of 100k sequential values; the mean must land
        // near the stream mean (a grossly biased reservoir would skew
        // toward early or late elements).
        let mut r = Reservoir::new(1000, 42);
        for v in 0..100_000u64 {
            r.push(v);
        }
        let mean = r.items().iter().sum::<u64>() as f64 / r.items().len() as f64;
        assert!(
            (mean - 50_000.0).abs() < 5_000.0,
            "reservoir mean {mean} far from stream mean"
        );
    }

    #[test]
    fn summary_counts_partitions_and_distinct() {
        // 4 partitions of 100 S-objects; all pointers into partition 2.
        let ptrs: Vec<(u32, u64)> = (0..50u64)
            .map(|k| ((k % 4) as u32, 200 + (k % 10)))
            .collect();
        let s = SampleSummary::from_pointers(&ptrs, 1_000, 400, 4, 8);
        assert_eq!(s.part_counts, vec![0, 0, 50, 0]);
        assert_eq!(s.cells.iter().sum::<u64>(), 50);
        assert_eq!(s.distinct, 10);
        assert_eq!((s.singletons, s.doubletons), (0, 0), "every target seen 5x");
        assert_eq!(
            s.estimated_distinct(),
            10,
            "no singletons: hot set is closed"
        );
        assert!((s.duplication - 5.0).abs() < 1e-12);
        assert_eq!(s.estimated_skew(), 4.0, "fully concentrated = skew D");
        assert_eq!(s.depths.iter().sum::<u64>(), 50);
        assert!(s.bounds.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn cross_partition_skew_survives_flat_global_counts() {
        // Source partition i points only at S partition (i+1) % 4: the
        // global per-S-partition counts are perfectly even, but every
        // source row is fully concentrated — the paper's skew-D case.
        let ptrs: Vec<(u32, u64)> = (0..400u64)
            .map(|k| {
                let src = (k % 4) as u32;
                let tgt = (src + 1) % 4;
                (src, tgt as u64 * 100 + k % 100)
            })
            .collect();
        let s = SampleSummary::from_pointers(&ptrs, 4_000, 400, 4, 8);
        assert_eq!(s.part_counts, vec![100, 100, 100, 100], "globally flat");
        assert_eq!(s.estimated_skew(), 4.0, "but every row is concentrated");
    }

    #[test]
    fn chao1_separates_uniform_from_hot_targets() {
        // A mostly-singleton sample must extrapolate far beyond what it
        // saw; a hot-key sample (few targets, many repeats) must not.
        let uniform: Vec<(u32, u64)> = (0..4_000u64)
            .map(|k| ((k % 4) as u32, splitmix64(k) % 40_000))
            .collect();
        let u = SampleSummary::from_pointers(&uniform, 40_000, 40_000, 4, 8);
        assert!(
            u.estimated_distinct() > 20_000,
            "uniform sample must extrapolate: {} singletons {} doubletons {}",
            u.estimated_distinct(),
            u.singletons,
            u.doubletons
        );
        let hot: Vec<(u32, u64)> = (0..4_000u64).map(|k| ((k % 4) as u32, k % 64)).collect();
        let h = SampleSummary::from_pointers(&hot, 40_000, 40_000, 4, 8);
        assert_eq!(h.estimated_distinct(), 64, "closed hot set stays small");
    }

    #[test]
    fn summary_handles_empty_sample() {
        let s = SampleSummary::from_pointers(&[], 0, 400, 4, 8);
        assert_eq!(s.estimated_skew(), 1.0);
        assert_eq!(s.duplication, 1.0);
        assert_eq!(s.estimated_distinct(), 400, "no sample: assume full |S|");
        assert!(s.bounds.is_empty() && s.depths.is_empty());
        let back = SampleSummary::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn empty_relation_yields_neutral_statistics() {
        // An empty relation sampled through the reservoir: no items
        // offered, and the summary must fall back to the planner's
        // neutral assumptions rather than divide by zero.
        let r: Reservoir<(u32, u64)> = Reservoir::new(SAMPLE_CAP, 9);
        assert_eq!(r.seen(), 0);
        assert!(r.items().is_empty());
        let s = SampleSummary::from_pointers(r.items(), 40_000, 40_000, 4, 16);
        assert_eq!(s.sampled, 0);
        assert_eq!(s.estimated_skew(), 1.0, "no evidence: assume uniform");
        assert_eq!(s.estimated_distinct(), 40_000, "no evidence: full |S|");
        assert_eq!(s.duplication, 1.0);
        assert_eq!(s.part_counts, vec![0, 0, 0, 0]);
        assert!(s.cells.iter().all(|&c| c == 0));
        // And it still round-trips through JSON.
        assert_eq!(SampleSummary::from_json(&s.to_json()).unwrap(), s);
    }

    #[test]
    fn single_key_relation_collapses_to_one_target() {
        // Every pointer hits one S-object: the degenerate hot set.
        let ptrs: Vec<(u32, u64)> = (0..500u64).map(|k| ((k % 4) as u32, 123)).collect();
        let s = SampleSummary::from_pointers(&ptrs, 5_000, 400, 4, 8);
        assert_eq!(s.distinct, 1);
        assert_eq!((s.singletons, s.doubletons), (0, 0));
        assert_eq!(s.estimated_distinct(), 1, "closed single-key hot set");
        assert!((s.duplication - 500.0).abs() < 1e-12);
        assert_eq!(
            s.estimated_skew(),
            4.0,
            "one target means every row concentrates on its partition"
        );
        // The equi-depth histogram degenerates to buckets that all end
        // at the single key, never an empty or out-of-order bound.
        assert!(s.bounds.iter().all(|&b| b == 123));
        assert_eq!(s.depths.iter().sum::<u64>(), 500);
    }

    #[test]
    fn reservoir_behaves_exactly_at_the_cap_boundary() {
        // Stream length == cap: everything kept, in order, no
        // replacement randomness consumed.
        let mut at = Reservoir::new(SAMPLE_CAP, 3);
        for v in 0..SAMPLE_CAP as u64 {
            at.push(v);
        }
        assert_eq!(at.items().len(), SAMPLE_CAP);
        assert_eq!(at.items(), (0..SAMPLE_CAP as u64).collect::<Vec<_>>());
        // One more element: size stays pinned at cap and the sample is
        // still a permutation-free subset of the stream.
        let mut over = Reservoir::new(SAMPLE_CAP, 3);
        for v in 0..SAMPLE_CAP as u64 + 1 {
            over.push(v);
        }
        assert_eq!(over.items().len(), SAMPLE_CAP);
        assert_eq!(over.seen(), SAMPLE_CAP as u64 + 1);
        assert!(over.items().iter().all(|&v| v <= SAMPLE_CAP as u64));
        // The element at seen = cap+1 is accepted with probability
        // cap/(cap+1): across seeds, both accept and reject happen.
        let mut kept = 0;
        for seed in 0..32u64 {
            let mut r = Reservoir::new(4, seed);
            for v in 0..5u64 {
                r.push(v);
            }
            if r.items().contains(&4) {
                kept += 1;
            }
        }
        assert!(kept > 0 && kept < 32, "boundary element kept {kept}/32");
        // A cap of 0 is clamped to 1, never a zero-capacity panic.
        let mut tiny = Reservoir::new(0, 1);
        for v in 0..100u64 {
            tiny.push(v);
        }
        assert_eq!(tiny.items().len(), 1);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(SampleSummary::from_json("{}").is_err());
        assert!(SampleSummary::from_json("not json").is_err());
        let good = SampleSummary::from_pointers(&[(0, 1), (0, 2), (1, 3)], 3, 4, 2, 2).to_json();
        let broken = good.replace("\"distinct\"", "\"distime\"");
        assert!(SampleSummary::from_json(&broken).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn uniform_stream_sample_has_low_skew(
            seed in 0u64..1_000_000,
            d in 1u32..9,
        ) {
            // Issue acceptance: a sample of a uniform stream yields a
            // skew factor within ε of 1. With 4096 samples over d ≤ 8
            // partitions the busiest-partition fraction concentrates
            // tightly around 1/d.
            let s_objects = 8_000 * d as u64;
            let stream = uniformish(20_000, s_objects, d, seed);
            let mut res = Reservoir::new(SAMPLE_CAP, seed);
            for &v in &stream {
                res.push(v);
            }
            let sum = SampleSummary::from_pointers(
                res.items(), stream.len() as u64, s_objects, d, HISTOGRAM_BUCKETS,
            );
            let skew = sum.estimated_skew();
            // Each source row holds ~cap/d samples over d cells; the
            // busiest cell of a uniform row exceeds its mean by a few
            // binomial standard deviations, i.e. the estimate is
            // 1 + O(sqrt(d² / cap)). ε = 4·sqrt(d²/cap) covers the
            // worst row at d = 8 with margin.
            let eps = 4.0 * ((d as f64) * (d as f64) / SAMPLE_CAP as f64).sqrt();
            prop_assert!(
                skew <= 1.0 + eps,
                "uniform stream sampled skew {skew} > 1 + {eps} (d={d}, seed={seed})"
            );
        }

        #[test]
        fn summary_round_trips_through_json_bitwise(
            seed in 0u64..1_000_000,
            n in 1usize..3_000,
            d in 1u32..9,
        ) {
            let s_objects = 512 * d as u64;
            let ptrs = uniformish(n as u64, s_objects, d, seed);
            let sum = SampleSummary::from_pointers(
                &ptrs, n as u64, s_objects, d, HISTOGRAM_BUCKETS,
            );
            let back = SampleSummary::from_json(&sum.to_json())
                .expect("round trip parses");
            // PartialEq on f64 is bitwise here: Display prints the
            // shortest string that parses back to the same bits.
            prop_assert_eq!(&back, &sum);
            prop_assert_eq!(back.duplication.to_bits(), sum.duplication.to_bits());
        }

        #[test]
        fn estimated_skew_stays_in_range(
            seed in 0u64..1_000_000,
            n in 0usize..2_000,
            d in 1u32..9,
        ) {
            let s_objects = 100 * d as u64;
            let ptrs = uniformish(n as u64, s_objects, d, seed);
            let sum = SampleSummary::from_pointers(&ptrs, n as u64, s_objects, d, 8);
            let skew = sum.estimated_skew();
            prop_assert!((1.0..=d as f64).contains(&skew), "skew {skew} outside [1, {d}]");
        }
    }
}
