//! The `--modern` execution path: post-1996 cache-conscious kernels for
//! every join algorithm, selected with [`ExecMode::Modern`].
//!
//! The faithful modules (`nested_loops`, `sort_merge`, `grace`,
//! `hybrid`) reproduce the paper's 1996 inner loops: object-at-a-time
//! scans, per-tuple cost declarations, mutex-guarded chunked temp files,
//! and ~30-object shared-buffer exchanges. This module keeps the paper's
//! *schedule* — pass 0 scan/split, staggered pass-1 phases, a local
//! join pass, every disk owned by one proc per phase — but replaces the
//! inner loops wholesale:
//!
//! * **Bulk block scans**: `R_i` is read in [`BLOCK_BYTES`] chunks with
//!   one `read_at` per block instead of one per object.
//! * **Software-managed radix partitioning** (pass 0): per block, a
//!   histogram over owner partitions sizes the scatter targets, then a
//!   second sweep scatters fixed-width `(ptr, key)` pairs — no hash
//!   maps, no per-tuple allocation ([`TraceEvent::KernelRadix`]).
//! * **MPSM-style sort-merge** (Albutiu/Kemper/Neumann): each worker
//!   sorts its *private* runs, publishes them through shared slots, and
//!   the owning worker sequentially merge-scans the `D` remote runs
//!   ([`TraceEvent::KernelMerge`]) — the repartitioning pass ships
//!   sorted in-memory runs instead of chunked temp files.
//! * **Batched probes**: S-objects are fetched [`PROBE_BATCH`] pointers
//!   per `Sproc` exchange with a 16-byte `(key, ptr)` request record
//!   ([`PROBE_REQ_BYTES`]) instead of whole R-objects, in ascending
//!   pointer order so each `S` page is touched once while hot
//!   ([`TraceEvent::KernelProbe`]).
//! * **Reusable scratch arenas**: every worker owns an `Arena` of
//!   buffers reused across blocks and batches; arenas are constructed
//!   fresh per join attempt, so a retried join can never observe stale
//!   kernel state.
//!
//! Cost declarations are batched the same way: kernels tally
//! [`KernelOps`] while running and charge the environment once per
//! kernel invocation, pricing the *same* six `CpuOp`s and four
//! `MoveKind`s the analytical model knows.
//!
//! Output is bitwise-identical to the faithful modes: the same join
//! pair set and order-independent checksum (`tests/modern_equiv.rs`
//! proves it differentially across algorithms, environments, and skew).
//!
//! [`ExecMode::Modern`]: crate::ExecMode::Modern

use std::sync::Arc;

use mmjoin_env::{CpuOp, Env, FileOps, KernelOps, MoveKind, ProcId, Result, SPtr, TraceEvent};
use mmjoin_relstore::{s_key, Relations};

use crate::exec::{
    finish, phase_partner, run_stages, stage_summary, JoinAcc, JoinOutput, JoinSpec, SharedSlots,
};
use crate::{grace, hybrid, Algo};

/// Bytes read per bulk scan block (rounded down to whole R-objects).
pub const BLOCK_BYTES: u64 = 256 * 1024;

/// Pointers per batched `Sproc` exchange.
pub const PROBE_BATCH: usize = 2048;

/// R-side bytes accompanying each probe pointer: the 8-byte join key
/// plus the 8-byte pointer — not the whole R-object the faithful
/// batcher ships.
pub const PROBE_REQ_BYTES: u64 = 16;

/// A sorted (or to-be-sorted) private run of `(ptr, key)` pairs,
/// published through [`SharedSlots`] for its owning partition.
type Run = Arc<Vec<(u64, u64)>>;

/// A `(ptr, key)` pair list before it is frozen into a shared [`Run`].
type PairVec = Vec<(u64, u64)>;

/// Per-worker scratch: every buffer the kernels need, allocated once per
/// join attempt and reused across blocks, buckets, and batches.
struct Arena {
    /// Bulk scan buffer (one block of raw R-objects).
    block: Vec<u8>,
    /// Radix scatter targets: `(ptr, key)` pairs per owner partition.
    parts: Vec<Vec<(u64, u64)>>,
    /// Histogram scratch for the radix kernels.
    hist: Vec<u64>,
    /// Merged/concatenated pairs awaiting the probe kernel.
    gathered: Vec<(u64, u64)>,
    /// Pointer batch under construction for `s_fetch_batch`.
    ptrs: Vec<SPtr>,
    /// Fetched S-objects for the current batch.
    fetch: Vec<u8>,
    /// Batched cost declarations.
    ops: KernelOps,
}

impl Arena {
    fn new(d: u32) -> Self {
        Arena {
            block: Vec::new(),
            parts: (0..d).map(|_| Vec::new()).collect(),
            hist: vec![0; d as usize],
            gathered: Vec::new(),
            ptrs: Vec::with_capacity(PROBE_BATCH),
            fetch: Vec::new(),
            ops: KernelOps::new(),
        }
    }
}

/// Per-worker join state threaded through [`run_stages`].
struct MState {
    acc: JoinAcc,
    arena: Arena,
}

/// Fixed-width little-endian read; the compiler turns this into one
/// unaligned load.
#[inline]
fn le64(buf: &[u8], off: usize) -> u64 {
    let mut w = [0u8; 8];
    w.copy_from_slice(&buf[off..off + 8]);
    u64::from_le_bytes(w)
}

fn pass_start<E: Env>(env: &E, i: u32, pass: u32, phase: u32, disk: u32, area: String) {
    env.trace(
        ProcId::rproc(i),
        TraceEvent::PassStart {
            proc: i,
            pass,
            phase,
            disk,
            area,
        },
    );
}

#[allow(clippy::too_many_arguments)]
fn pass_end<E: Env>(
    env: &E,
    i: u32,
    pass: u32,
    phase: u32,
    disk: u32,
    area: String,
    objects: u64,
    r_size: u32,
) {
    env.trace(
        ProcId::rproc(i),
        TraceEvent::PassEnd {
            proc: i,
            pass,
            phase,
            disk,
            area,
            bytes: objects * r_size as u64,
            objects,
        },
    );
}

/// Pass-0 kernel: bulk-scan `R_i` block by block, radix-partitioning
/// `(ptr, key)` pairs by owner partition (histogram + scatter per
/// block). Returns the number of objects scanned.
fn scan_radix<E: Env>(env: &E, rels: &Relations, i: u32, arena: &mut Arena) -> Result<u64> {
    let proc = ProcId::rproc(i);
    let rf = env.open_file(proc, &rels.r_files[i as usize])?;
    let r_size = rels.rel.r_size as usize;
    let part_bytes = rels.rel.s_part_bytes();
    let n = rels.rel.r_per_part();
    let d = rels.rel.d as usize;

    let block_objs = (BLOCK_BYTES as usize / r_size).max(1);
    arena.block.resize(block_objs * r_size, 0);
    for p in arena.parts.iter_mut() {
        p.clear();
    }

    let mut done = 0u64;
    while done < n {
        let take = block_objs.min((n - done) as usize);
        let bytes = take * r_size;
        rf.read_at(proc, done * r_size as u64, &mut arena.block[..bytes])?;
        // Histogram sweep: size the scatter targets before touching them.
        arena.hist.iter_mut().for_each(|h| *h = 0);
        for k in 0..take {
            let ptr = SPtr(le64(&arena.block, k * r_size + 8));
            arena.hist[ptr.partition(part_bytes) as usize] += 1;
        }
        for (part, &count) in arena.parts.iter_mut().zip(arena.hist.iter()) {
            part.reserve(count as usize);
        }
        // Scatter sweep: fixed-width pairs, no per-tuple allocation.
        for k in 0..take {
            let base = k * r_size;
            let key = le64(&arena.block, base);
            let ptr = le64(&arena.block, base + 8);
            let owner = SPtr(ptr).partition(part_bytes) as usize;
            arena.parts[owner].push((ptr, key));
        }
        done += take as u64;
    }
    // Two sweeps of MAP(ptr), one radix placement, and a 16-byte
    // private move per pair — declared once for the whole scan.
    arena.ops.op(CpuOp::Map, 2 * n);
    arena.ops.op(CpuOp::Hash, n);
    arena.ops.moved(MoveKind::PP, 16 * n);
    arena.ops.charge(env, proc);
    env.trace(
        proc,
        TraceEvent::KernelRadix {
            proc: i,
            area: format!("R_{i}"),
            buckets: d as u32,
            objects: n,
        },
    );
    Ok(n)
}

/// Sort a run of `(ptr, key)` pairs in place (pointer order == `S`
/// storage order), declaring an `n·log n` comparison/swap estimate.
fn sort_pairs(run: &mut [(u64, u64)], ops: &mut KernelOps) {
    let n = run.len() as u64;
    run.sort_unstable();
    if n > 1 {
        let logn = (64 - (n - 1).leading_zeros()) as u64;
        ops.op(CpuOp::Compare, n * logn);
        ops.op(CpuOp::Swap, n * logn / 2);
    }
}

/// Sequential multi-way merge-scan of sorted runs (MPSM): a linear
/// min-pick over ≤ `D` cursors, output fully sorted by pointer.
fn merge_runs(runs: &[Run], out: &mut Vec<(u64, u64)>, ops: &mut KernelOps) {
    out.clear();
    let total: usize = runs.iter().map(|r| r.len()).sum();
    out.reserve(total);
    let mut cursors = vec![0usize; runs.len()];
    loop {
        let mut best: Option<usize> = None;
        for (r, run) in runs.iter().enumerate() {
            if cursors[r] < run.len() {
                best = match best {
                    Some(b) if runs[b][cursors[b]] <= run[cursors[r]] => Some(b),
                    _ => Some(r),
                };
            }
        }
        match best {
            Some(b) => {
                out.push(runs[b][cursors[b]]);
                cursors[b] += 1;
            }
            None => break,
        }
    }
    ops.op(CpuOp::Compare, total as u64 * runs.len().max(1) as u64);
    ops.op(CpuOp::HeapTransfer, total as u64);
}

/// Batched probe kernel: fetch S-objects [`PROBE_BATCH`] pointers at a
/// time and join each against its R key. `pairs` must all point into
/// partition `spart`.
fn probe<E: Env>(
    env: &E,
    i: u32,
    spart: u32,
    rels: &Relations,
    pairs: &[(u64, u64)],
    arena: &mut Arena,
    acc: &mut JoinAcc,
) -> Result<()> {
    if pairs.is_empty() {
        return Ok(());
    }
    let proc = ProcId::rproc(i);
    let s_size = rels.rel.s_size as usize;
    let mut batches = 0u64;
    for chunk in pairs.chunks(PROBE_BATCH) {
        arena.ptrs.clear();
        arena.ptrs.extend(chunk.iter().map(|&(p, _)| SPtr(p)));
        arena.fetch.clear();
        env.s_fetch_batch(proc, spart, &arena.ptrs, PROBE_REQ_BYTES, &mut arena.fetch)?;
        for (k, &(_, r_key)) in chunk.iter().enumerate() {
            acc.add(r_key, s_key(&arena.fetch[k * s_size..(k + 1) * s_size]));
        }
        batches += 1;
    }
    // The environment prices the exchange itself (context switches +
    // shared-buffer moves); the kernel adds only its key compares.
    arena.ops.op(CpuOp::Compare, pairs.len() as u64);
    arena.ops.charge(env, proc);
    env.trace(
        proc,
        TraceEvent::KernelProbe {
            proc: i,
            spart,
            batches,
            objects: pairs.len() as u64,
        },
    );
    Ok(())
}

/// Dispatch one modern-mode join.
pub fn run<E: Env>(env: &E, rels: &Relations, alg: Algo, spec: &JoinSpec) -> Result<JoinOutput> {
    match alg {
        Algo::NestedLoops | Algo::NaiveNestedLoops => run_nested(env, rels, spec),
        Algo::SortMerge => run_sort_merge(env, rels, spec),
        Algo::Grace => run_grace(env, rels, spec),
        Algo::HybridHash => run_hybrid(env, rels, spec),
    }
}

/// Modern nested loops: scan + radix, probe the home partition inside
/// the pass-0 window, then probe each partner partition in staggered
/// phase order. No repartitioning files — the radix output *is* the
/// probe input.
fn run_nested<E: Env>(env: &E, rels: &Relations, spec: &JoinSpec) -> Result<JoinOutput> {
    let d = rels.rel.d;
    let r_size = rels.rel.r_size;
    let (states, times) = run_stages(
        env,
        d,
        spec.mode,
        1,
        |_| MState {
            acc: JoinAcc::default(),
            arena: Arena::new(d),
        },
        |_stage, i, state: &mut MState| {
            let arena = &mut state.arena;
            pass_start(env, i, 0, 0, i, format!("R_{i}"));
            let n = scan_radix(env, rels, i, arena)?;
            let mut own = std::mem::take(&mut arena.parts[i as usize]);
            sort_pairs(&mut own, &mut arena.ops);
            probe(env, i, i, rels, &own, arena, &mut state.acc)?;
            pass_end(env, i, 0, 0, i, format!("R_{i}"), n, r_size);
            for t in 1..d {
                let j = phase_partner(i, t, d);
                let mut rn = std::mem::take(&mut arena.parts[j as usize]);
                pass_start(env, i, 1, t, j, format!("R({i},{j})"));
                sort_pairs(&mut rn, &mut arena.ops);
                probe(env, i, j, rels, &rn, arena, &mut state.acc)?;
                pass_end(
                    env,
                    i,
                    1,
                    t,
                    j,
                    format!("R({i},{j})"),
                    rn.len() as u64,
                    r_size,
                );
            }
            Ok(())
        },
    )?;
    let summary = stage_summary(&["join"], &times);
    Ok(finish(
        env,
        d,
        states.into_iter().map(|s| s.acc),
        summary,
        &times,
    ))
}

/// Modern sort-merge (MPSM): stage 0 scans, radix-partitions, sorts each
/// private run, and publishes it for its owner; stage 1 merge-scans the
/// `D` remote runs and probes `S_i` in one ascending stream.
fn run_sort_merge<E: Env>(env: &E, rels: &Relations, spec: &JoinSpec) -> Result<JoinOutput> {
    let d = rels.rel.d;
    let r_size = rels.rel.r_size;
    let slots: Arc<SharedSlots<Run>> = SharedSlots::new(d * d);
    let (states, times) = run_stages(
        env,
        d,
        spec.mode,
        2,
        |_| MState {
            acc: JoinAcc::default(),
            arena: Arena::new(d),
        },
        |stage, i, state: &mut MState| {
            let proc = ProcId::rproc(i);
            let arena = &mut state.arena;
            if stage == 0 {
                pass_start(env, i, 0, 0, i, format!("R_{i}"));
                let n = scan_radix(env, rels, i, arena)?;
                let mut own = std::mem::take(&mut arena.parts[i as usize]);
                sort_pairs(&mut own, &mut arena.ops);
                arena.ops.charge(env, proc);
                slots.publish(i * d + i, Arc::new(own));
                pass_end(env, i, 0, 0, i, format!("R_{i}"), n, r_size);
                for t in 1..d {
                    let j = phase_partner(i, t, d);
                    let mut rn = std::mem::take(&mut arena.parts[j as usize]);
                    pass_start(env, i, 1, t, j, format!("R({i},{j})"));
                    sort_pairs(&mut rn, &mut arena.ops);
                    let len = rn.len() as u64;
                    // Private→shared hand-off of the sorted run.
                    arena.ops.moved(MoveKind::PS, len * 16);
                    arena.ops.charge(env, proc);
                    slots.publish(i * d + j, Arc::new(rn));
                    pass_end(env, i, 1, t, j, format!("R({i},{j})"), len, r_size);
                }
                Ok(())
            } else {
                pass_start(env, i, 2, 0, i, format!("RS_{i}"));
                let runs: Vec<Run> = (0..d)
                    .map(|j| slots.try_get(j * d + i))
                    .collect::<Result<_>>()?;
                let total: u64 = runs.iter().map(|r| r.len() as u64).sum();
                let mut merged = std::mem::take(&mut arena.gathered);
                merge_runs(&runs, &mut merged, &mut arena.ops);
                arena.ops.moved(MoveKind::SP, total * 16);
                arena.ops.charge(env, proc);
                env.trace(
                    proc,
                    TraceEvent::KernelMerge {
                        proc: i,
                        area: format!("RS_{i}"),
                        runs: d,
                        objects: total,
                    },
                );
                probe(env, i, i, rels, &merged, arena, &mut state.acc)?;
                arena.gathered = merged;
                pass_end(env, i, 2, 0, i, format!("RS_{i}"), total, r_size);
                Ok(())
            }
        },
    )?;
    let summary = stage_summary(&["scan+sort", "merge+join"], &times);
    Ok(finish(
        env,
        d,
        states.into_iter().map(|s| s.acc),
        summary,
        &times,
    ))
}

/// Modern Grace: stage 0 publishes *unsorted* radix runs; stage 1
/// gathers them, radix-partitions into Grace's `K` range buckets
/// (second-level histogram + scatter), sorts each cache-sized bucket,
/// and probes the concatenation — fully ascending because the buckets
/// are range-partitioned.
fn run_grace<E: Env>(env: &E, rels: &Relations, spec: &JoinSpec) -> Result<JoinOutput> {
    let d = rels.rel.d;
    let r_size = rels.rel.r_size;
    let part_bytes = rels.rel.s_part_bytes();
    let k = grace::k_for(rels, spec).max(1);
    let hash = grace::RangeHash::new(part_bytes, k, 1);
    let slots: Arc<SharedSlots<Run>> = SharedSlots::new(d * d);
    let (states, times) = run_stages(
        env,
        d,
        spec.mode,
        2,
        |_| MState {
            acc: JoinAcc::default(),
            arena: Arena::new(d),
        },
        |stage, i, state: &mut MState| {
            let proc = ProcId::rproc(i);
            let arena = &mut state.arena;
            if stage == 0 {
                pass_start(env, i, 0, 0, i, format!("R_{i}"));
                let n = scan_radix(env, rels, i, arena)?;
                let own = std::mem::take(&mut arena.parts[i as usize]);
                slots.publish(i * d + i, Arc::new(own));
                pass_end(env, i, 0, 0, i, format!("R_{i}"), n, r_size);
                for t in 1..d {
                    let j = phase_partner(i, t, d);
                    let rn = std::mem::take(&mut arena.parts[j as usize]);
                    pass_start(env, i, 1, t, j, format!("R({i},{j})"));
                    let len = rn.len() as u64;
                    arena.ops.moved(MoveKind::PS, len * 16);
                    arena.ops.charge(env, proc);
                    slots.publish(i * d + j, Arc::new(rn));
                    pass_end(env, i, 1, t, j, format!("R({i},{j})"), len, r_size);
                }
                Ok(())
            } else {
                pass_start(env, i, 2, 0, i, format!("RS_{i}"));
                let runs: Vec<Run> = (0..d)
                    .map(|j| slots.try_get(j * d + i))
                    .collect::<Result<_>>()?;
                let total: u64 = runs.iter().map(|r| r.len() as u64).sum();
                // Second-level radix: histogram + scatter into K range
                // buckets (one per-stage allocation, reused per bucket).
                let mut hist = vec![0u64; k as usize];
                for run in &runs {
                    for &(p, _) in run.iter() {
                        hist[hash.bucket(SPtr(p)) as usize] += 1;
                    }
                }
                let mut buckets: Vec<Vec<(u64, u64)>> = hist
                    .iter()
                    .map(|&c| Vec::with_capacity(c as usize))
                    .collect();
                for run in &runs {
                    for &(p, key) in run.iter() {
                        buckets[hash.bucket(SPtr(p)) as usize].push((p, key));
                    }
                }
                arena.ops.op(CpuOp::Hash, 2 * total);
                arena.ops.moved(MoveKind::SP, total * 16);
                env.trace(
                    proc,
                    TraceEvent::KernelRadix {
                        proc: i,
                        area: format!("RS_{i}"),
                        buckets: k as u32,
                        objects: total,
                    },
                );
                let mut merged = std::mem::take(&mut arena.gathered);
                merged.clear();
                merged.reserve(total as usize);
                for bucket in buckets.iter_mut() {
                    sort_pairs(bucket, &mut arena.ops);
                    merged.extend_from_slice(bucket);
                }
                arena.ops.charge(env, proc);
                probe(env, i, i, rels, &merged, arena, &mut state.acc)?;
                arena.gathered = merged;
                pass_end(env, i, 2, 0, i, format!("RS_{i}"), total, r_size);
                Ok(())
            }
        },
    )?;
    let summary = stage_summary(&["scan+radix", "bucket-join"], &times);
    Ok(finish(
        env,
        d,
        states.into_iter().map(|s| s.acc),
        summary,
        &times,
    ))
}

/// Modern hybrid hash: bucket-0 (`f₀`-range) pairs are probed
/// immediately — home partition inside the pass-0 window, partner
/// partitions in staggered phase order — while spill pairs ship through
/// shared runs and take Grace's second-level radix in stage 1.
fn run_hybrid<E: Env>(env: &E, rels: &Relations, spec: &JoinSpec) -> Result<JoinOutput> {
    let d = rels.rel.d;
    let r_size = rels.rel.r_size;
    let part_bytes = rels.rel.s_part_bytes();
    let plan = hybrid::plan_for(rels, spec);
    let hash = hybrid::HybridHashFn::new(part_bytes, &plan);
    let slots: Arc<SharedSlots<Run>> = SharedSlots::new(d * d);
    let (states, times) = run_stages(
        env,
        d,
        spec.mode,
        2,
        |_| MState {
            acc: JoinAcc::default(),
            arena: Arena::new(d),
        },
        |stage, i, state: &mut MState| {
            let proc = ProcId::rproc(i);
            let arena = &mut state.arena;
            if stage == 0 {
                pass_start(env, i, 0, 0, i, format!("R_{i}"));
                let n = scan_radix(env, rels, i, arena)?;
                let own = std::mem::take(&mut arena.parts[i as usize]);
                let (mut f0, spill) = split_f0(&hash, own, &mut arena.ops);
                sort_pairs(&mut f0, &mut arena.ops);
                probe(env, i, i, rels, &f0, arena, &mut state.acc)?;
                slots.publish(i * d + i, Arc::new(spill));
                pass_end(env, i, 0, 0, i, format!("R_{i}"), n, r_size);
                for t in 1..d {
                    let j = phase_partner(i, t, d);
                    let rn = std::mem::take(&mut arena.parts[j as usize]);
                    pass_start(env, i, 1, t, j, format!("R({i},{j})"));
                    let len = rn.len() as u64;
                    let (mut f0, spill) = split_f0(&hash, rn, &mut arena.ops);
                    sort_pairs(&mut f0, &mut arena.ops);
                    probe(env, i, j, rels, &f0, arena, &mut state.acc)?;
                    arena.ops.moved(MoveKind::PS, spill.len() as u64 * 16);
                    arena.ops.charge(env, proc);
                    slots.publish(i * d + j, Arc::new(spill));
                    pass_end(env, i, 1, t, j, format!("R({i},{j})"), len, r_size);
                }
                Ok(())
            } else {
                pass_start(env, i, 2, 0, i, format!("RS_{i}"));
                let runs: Vec<Run> = (0..d)
                    .map(|j| slots.try_get(j * d + i))
                    .collect::<Result<_>>()?;
                let total: u64 = runs.iter().map(|r| r.len() as u64).sum();
                let k = plan.k.max(1) as usize;
                let mut hist = vec![0u64; k];
                for run in &runs {
                    for &(p, _) in run.iter() {
                        hist[hash.route(SPtr(p)).unwrap_or(0) as usize] += 1;
                    }
                }
                let mut buckets: Vec<Vec<(u64, u64)>> = hist
                    .iter()
                    .map(|&c| Vec::with_capacity(c as usize))
                    .collect();
                for run in &runs {
                    for &(p, key) in run.iter() {
                        buckets[hash.route(SPtr(p)).unwrap_or(0) as usize].push((p, key));
                    }
                }
                arena.ops.op(CpuOp::Hash, 2 * total);
                arena.ops.moved(MoveKind::SP, total * 16);
                env.trace(
                    proc,
                    TraceEvent::KernelRadix {
                        proc: i,
                        area: format!("RS_{i}"),
                        buckets: k as u32,
                        objects: total,
                    },
                );
                let mut merged = std::mem::take(&mut arena.gathered);
                merged.clear();
                merged.reserve(total as usize);
                for bucket in buckets.iter_mut() {
                    sort_pairs(bucket, &mut arena.ops);
                    merged.extend_from_slice(bucket);
                }
                arena.ops.charge(env, proc);
                probe(env, i, i, rels, &merged, arena, &mut state.acc)?;
                arena.gathered = merged;
                pass_end(env, i, 2, 0, i, format!("RS_{i}"), total, r_size);
                Ok(())
            }
        },
    )?;
    let summary = stage_summary(&["scan+f0-join", "spill-join"], &times);
    Ok(finish(
        env,
        d,
        states.into_iter().map(|s| s.acc),
        summary,
        &times,
    ))
}

/// Split a run into (bucket-0, spill) halves per the hybrid router.
fn split_f0(hash: &hybrid::HybridHashFn, run: PairVec, ops: &mut KernelOps) -> (PairVec, PairVec) {
    ops.op(CpuOp::Hash, run.len() as u64);
    run.into_iter()
        .partition(|&(p, _)| hash.route(SPtr(p)).is_none())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_runs_produces_sorted_union() {
        let runs: Vec<Run> = vec![
            Arc::new(vec![(1, 10), (5, 50), (9, 90)]),
            Arc::new(vec![(2, 20), (5, 51)]),
            Arc::new(vec![]),
            Arc::new(vec![(0, 0), (7, 70)]),
        ];
        let mut out = Vec::new();
        let mut ops = KernelOps::new();
        merge_runs(&runs, &mut out, &mut ops);
        assert_eq!(out.len(), 7);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
        assert!(out.contains(&(5, 50)) && out.contains(&(5, 51)));
        assert!(!ops.is_empty());
    }

    #[test]
    fn sort_pairs_charges_nothing_for_singletons() {
        let mut ops = KernelOps::new();
        sort_pairs(&mut [(3, 3)], &mut ops);
        assert!(ops.is_empty());
        let mut run = [(9u64, 1u64), (2, 2), (7, 3)];
        sort_pairs(&mut run, &mut ops);
        assert_eq!(run[0].0, 2);
        assert!(!ops.is_empty());
    }

    #[test]
    fn le64_reads_little_endian() {
        let mut buf = vec![0u8; 24];
        buf[8..16].copy_from_slice(&0xDEAD_BEEFu64.to_le_bytes());
        assert_eq!(le64(&buf, 8), 0xDEAD_BEEF);
        assert_eq!(le64(&buf, 0), 0);
    }
}
