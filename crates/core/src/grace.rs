//! Parallel pointer-based Grace join (paper §7).
//!
//! Re-partitioning (passes 0/1) works like sort-merge, but each R-object
//! is *hashed* into one of `K` buckets of its target `RS_j`. The hash is
//! a **range partition of the virtual pointer**, so "each hash bucket
//! contains monotonically increasing locations in S_i" (§7) — which is
//! what lets the per-bucket join passes read `S_i` (near-)sequentially
//! with no hashing of `S` at all.
//!
//! Pass `1+j` loads bucket `j` into an in-memory hash table of `TSIZE`
//! chains whose second-level hash is also range-based, then walks the
//! table in slot order: pointers come out ascending, common references
//! share a chain (so each S-object is fetched while its page is hot),
//! and the joins flow through the shared buffer.

use mmjoin_env::{CpuOp, DiskId, Env, EnvError, MoveKind, ProcId, Result, SPtr, TraceEvent};
use mmjoin_model::{choose_k, choose_tsize};
use mmjoin_relstore::{chunked_capacity, names, r_key, r_sptr, ChunkedFile, ObjScan, Relations};

use crate::exec::{
    finish, phase_partner, run_stages, stage_summary, JoinAcc, JoinOutput, JoinSpec, SBatcher,
    SharedSlots,
};

struct GraceState<E: Env> {
    acc: JoinAcc,
    rf: Option<E::File>,
    rp: Option<ChunkedFile<E::File>>,
    rs: Option<ChunkedFile<E::File>>,
}

/// The two-level range hash: bucket within the partition, then chain
/// within the bucket. Both preserve pointer (= storage) order.
#[derive(Clone, Copy, Debug)]
pub struct RangeHash {
    part_bytes: u64,
    k: u64,
    tsize: u64,
}

impl RangeHash {
    /// Build the hash for `k` buckets over partitions of `part_bytes`
    /// bytes, with `tsize`-slot tables.
    pub fn new(part_bytes: u64, k: u64, tsize: u64) -> Self {
        RangeHash {
            part_bytes,
            k,
            tsize,
        }
    }

    /// First-level hash: which bucket of `RS_j`.
    pub fn bucket(&self, ptr: SPtr) -> u32 {
        let off = ptr.offset(self.part_bytes) as u128;
        ((off * self.k as u128) / self.part_bytes as u128).min(self.k as u128 - 1) as u32
    }

    /// Second-level hash: which chain of the in-memory table.
    pub fn chain(&self, ptr: SPtr) -> u32 {
        let off = ptr.offset(self.part_bytes) as u128;
        let within = (off * self.k as u128) % self.part_bytes as u128;
        ((within * self.tsize as u128) / self.part_bytes as u128).min(self.tsize as u128 - 1) as u32
    }
}

/// `|RS_i|` estimate for bucket-area capacity.
fn rs_objects(rels: &Relations, i: u32) -> u64 {
    (0..rels.rel.d).map(|k| rels.sub_count(k, i)).sum()
}

/// The `K` the implementation (and the model) uses for this spec.
pub fn k_for(rels: &Relations, spec: &JoinSpec) -> u64 {
    let worst_rs = (0..rels.rel.d)
        .map(|i| rs_objects(rels, i))
        .max()
        .unwrap_or(1);
    choose_k(worst_rs, rels.rel.r_size, spec.m_rproc)
}

/// Execute the join (S catalog must be registered).
pub fn run<E: Env>(env: &E, rels: &Relations, spec: &JoinSpec) -> Result<JoinOutput> {
    let d = rels.rel.d;
    let page = env.page_size();
    let r_size = rels.rel.r_size;
    let k = k_for(rels, spec);
    let slots: std::sync::Arc<SharedSlots<ChunkedFile<E::File>>> = SharedSlots::new(d);

    // Stages: setup | pass0 | phase 1..d-1 | per-bucket join.
    let stages = 2 + (d as usize - 1) + 1;

    let (states, times) = run_stages(
        env,
        d,
        spec.mode,
        stages,
        |_| GraceState::<E> {
            acc: JoinAcc::default(),
            rf: None,
            rp: None,
            rs: None,
        },
        |stage, i, state: &mut GraceState<E>| {
            let proc = ProcId::rproc(i);
            match stage {
                0 => {
                    // ---- setup ----
                    state.rf = Some(env.open_file(proc, &rels.r_files[i as usize])?);
                    let _sf = env.open_file(proc, &rels.s_files[i as usize])?;
                    let rp_capacity = chunked_capacity(rels.rel.r_per_part(), r_size, d, page);
                    let rp_file = env.create_file(
                        proc,
                        &spec.temp_name(rels, &names::rp(i)),
                        DiskId(i),
                        rp_capacity,
                    )?;
                    state.rp = Some(ChunkedFile::new(rp_file, d, r_size, page)?);

                    let rs_capacity = chunked_capacity(rs_objects(rels, i), r_size, k as u32, page);
                    let rs_file = env.create_file(
                        proc,
                        &spec.temp_name(rels, &names::rs(i)),
                        DiskId(i),
                        rs_capacity,
                    )?;
                    let rs = ChunkedFile::new(rs_file, k as u32, r_size, page)?;
                    slots.publish(i, rs.clone());
                    state.rs = Some(rs);
                    Ok(())
                }
                1 => {
                    // ---- pass 0: split R_i, hashing R_(i,i) ----
                    let rf = state.rf.clone().ok_or_else(|| {
                        EnvError::InvalidConfig("grace: setup stage left no R file".into())
                    })?;
                    let part_bytes = rels.rel.s_part_bytes();
                    let hash = RangeHash::new(part_bytes, k, 1);
                    let rp = state.rp.clone().ok_or_else(|| {
                        EnvError::InvalidConfig("grace: setup stage left no RP area".into())
                    })?;
                    let rs = state.rs.clone().ok_or_else(|| {
                        EnvError::InvalidConfig("grace: setup stage left no RS area".into())
                    })?;
                    env.trace(
                        proc,
                        TraceEvent::PassStart {
                            proc: i,
                            pass: 0,
                            phase: 0,
                            disk: i,
                            area: format!("R_{i}"),
                        },
                    );
                    let ri_objects = rels.rel.r_per_part();
                    let mut scan = ObjScan::new(&rf, 0, r_size, ri_objects);
                    let mut obj = vec![0u8; r_size as usize];
                    while scan.next_into(proc, &mut obj)? {
                        env.cpu(proc, CpuOp::Map, 1);
                        let ptr = r_sptr(&obj);
                        let j = ptr.partition(part_bytes);
                        if j == i {
                            env.cpu(proc, CpuOp::Hash, 1);
                            rs.append(proc, hash.bucket(ptr), &obj)?;
                        } else {
                            rp.append(proc, j, &obj)?;
                        }
                        env.move_bytes(proc, MoveKind::PP, r_size as u64);
                    }
                    env.trace(
                        proc,
                        TraceEvent::PassEnd {
                            proc: i,
                            pass: 0,
                            phase: 0,
                            disk: i,
                            area: format!("R_{i}"),
                            bytes: ri_objects * r_size as u64,
                            objects: ri_objects,
                        },
                    );
                    Ok(())
                }
                s if s < stages - 1 => {
                    // ---- pass 1, staggered phase t ----
                    let t = (s - 1) as u32;
                    let j = phase_partner(i, t, d);
                    env.trace(
                        proc,
                        TraceEvent::PassStart {
                            proc: i,
                            pass: 1,
                            phase: t,
                            disk: j,
                            area: format!("R({i},{j})"),
                        },
                    );
                    let part_bytes = rels.rel.s_part_bytes();
                    let hash = RangeHash::new(part_bytes, k, 1);
                    let rp = state.rp.as_ref().ok_or_else(|| {
                        EnvError::InvalidConfig("grace: pass 0 left no RP area".into())
                    })?;
                    let rs_j = slots.try_get(j)?;
                    let mut reader = rp.stream_reader(j);
                    let mut obj = vec![0u8; r_size as usize];
                    let mut objects = 0u64;
                    while reader.next_into(proc, &mut obj)? {
                        env.cpu(proc, CpuOp::Hash, 1);
                        let ptr = r_sptr(&obj);
                        rs_j.append(proc, hash.bucket(ptr), &obj)?;
                        env.move_bytes(proc, MoveKind::PP, r_size as u64);
                        objects += 1;
                    }
                    env.trace(
                        proc,
                        TraceEvent::PassEnd {
                            proc: i,
                            pass: 1,
                            phase: t,
                            disk: j,
                            area: format!("R({i},{j})"),
                            bytes: objects * r_size as u64,
                            objects,
                        },
                    );
                    Ok(())
                }
                _ => bucket_join(env, rels, spec, i, k, state),
            }
        },
    )?;

    let mut names: Vec<String> = vec!["setup".into(), "pass0".into()];
    names.extend((1..d).map(|t| format!("phase{t}")));
    names.push("bucket-join".into());
    let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    let summary = stage_summary(&refs, &times);
    Ok(finish(
        env,
        d,
        states.into_iter().map(|s| s.acc),
        summary,
        &times,
    ))
}

/// Pass `1+j` for every bucket: build the `TSIZE`-chain table, walk it
/// in order, join through `Sproc_i`.
fn bucket_join<E: Env>(
    env: &E,
    rels: &Relations,
    spec: &JoinSpec,
    i: u32,
    k: u64,
    state: &mut GraceState<E>,
) -> Result<()> {
    let proc = ProcId::rproc(i);
    let rs = state
        .rs
        .take()
        .ok_or_else(|| EnvError::InvalidConfig("grace: setup stage left no RS area".into()))?;
    let part_bytes = rels.rel.s_part_bytes();
    env.trace(
        proc,
        TraceEvent::PassStart {
            proc: i,
            pass: 2,
            phase: 0,
            disk: i,
            area: format!("RS_{i}"),
        },
    );
    let mut batcher = SBatcher::new(env, proc, i, rels, spec.g_buffer);
    let mut obj = vec![0u8; rels.rel.r_size as usize];
    let mut objects = 0u64;
    // One chain table reused across every bucket: `clear()` keeps each
    // chain's capacity, so the steady state allocates nothing per
    // bucket (`choose_tsize` varies, so the table only ever grows).
    let mut table: Vec<Vec<(SPtr, u64)>> = Vec::new();
    for bucket in 0..k as u32 {
        let len = rs.stream_len(bucket);
        if len == 0 {
            continue;
        }
        objects += len;
        let tsize = choose_tsize(len);
        let hash = RangeHash::new(part_bytes, k, tsize);
        if table.len() < tsize as usize {
            table.resize_with(tsize as usize, Vec::new);
        }
        let mut reader = rs.stream_reader(bucket);
        while reader.next_into(proc, &mut obj)? {
            env.cpu(proc, CpuOp::Hash, 1);
            let ptr = r_sptr(&obj);
            table[hash.chain(ptr) as usize].push((ptr, r_key(&obj)));
        }
        // Process the table in order: slot ranges are disjoint and
        // ascending; sorting within a chain keeps common references
        // adjacent so each S-object is fetched while its page is hot.
        for chain in &mut table[..tsize as usize] {
            if chain.is_empty() {
                continue;
            }
            chain.sort_unstable_by_key(|&(ptr, _)| ptr);
            for &(ptr, r_key) in chain.iter() {
                batcher.add(r_key, ptr, &mut state.acc)?;
            }
            chain.clear();
        }
    }
    batcher.flush(&mut state.acc)?;
    env.trace(
        proc,
        TraceEvent::PassEnd {
            proc: i,
            pass: 2,
            phase: 0,
            disk: i,
            area: format!("RS_{i}"),
            bytes: objects * rels.rel.r_size as u64,
            objects,
        },
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_hash_buckets_are_monotone_in_pointer() {
        let h = RangeHash::new(1 << 20, 16, 64);
        let mut prev_bucket = 0;
        for step in 0..200u64 {
            let ptr = SPtr(step * ((1 << 20) / 200));
            let b = h.bucket(ptr);
            assert!(b >= prev_bucket, "bucket order broke at {ptr}");
            assert!(b < 16);
            prev_bucket = b;
        }
    }

    #[test]
    fn range_hash_chain_is_monotone_within_bucket() {
        let h = RangeHash::new(1 << 20, 16, 64);
        // Walk pointers inside bucket 3.
        let span = (1u64 << 20) / 16;
        let mut prev_chain = 0;
        for step in 0..100u64 {
            let ptr = SPtr(3 * span + step * span / 100);
            assert_eq!(h.bucket(ptr), 3);
            let c = h.chain(ptr);
            assert!(c >= prev_chain, "chain order broke at {ptr}");
            assert!(c < 64);
            prev_chain = c;
        }
    }

    #[test]
    fn range_hash_last_byte_stays_in_range() {
        let h = RangeHash::new(4096, 4, 8);
        let ptr = SPtr(4095);
        assert_eq!(h.bucket(ptr), 3);
        assert!(h.chain(ptr) < 8);
    }
}
