//! Self-healing join execution: bounded retry with orphan cleanup.
//!
//! The paper's algorithms assume every environment call succeeds. Under
//! an environment that can fail transiently (see `mmjoin_env::faults`),
//! a mid-pass failure leaves orphaned temporary areas behind — `RP_i`
//! from re-partitioning pass 0, `RS_i` from pass 1, `Merge_i` from the
//! sort-merge prologue — which both leak modelled disk space and make a
//! blind re-run fail with `AlreadyExists`.
//!
//! [`join_with_retry`] makes the whole join restartable:
//!
//! 1. snapshot the environment's file table ([`Env::list_files`]);
//! 2. run the join; on success return output + [`RetryReport`];
//! 3. on failure, delete every file created since the snapshot (the
//!    orphaned temporaries), so the file table is exactly what it was
//!    before the attempt — this is what makes the re-run idempotent;
//! 4. if the error [`is transient`](mmjoin_env::EnvError::is_transient)
//!    and attempts remain, back off exponentially (bounded) and retry
//!    from step 2; otherwise return the error (table already clean).
//!
//! Restartability holds at whole-join granularity, which subsumes
//! per-pass restart: each re-partitioning pass writes only files that
//! postdate the snapshot, so cleanup unwinds whichever pass was
//! interrupted and the next attempt re-runs it against the unchanged
//! input partitions.

use std::time::Duration;

use mmjoin_env::{Env, EnvError, ProcId, Result, TraceEvent};
use mmjoin_relstore::Relations;

use crate::exec::{JoinOutput, JoinSpec};
use crate::Algo;

/// Bounds on the retry loop.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` disables retry but keeps
    /// the orphan cleanup.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// Policy with `max_attempts` tries and default backoff.
    pub fn attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..RetryPolicy::default()
        }
    }

    /// Backoff before retry number `retry` (1-based), exponential and
    /// capped.
    pub fn backoff(&self, retry: u32) -> Duration {
        let factor = 1u32 << retry.saturating_sub(1).min(16);
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }
}

/// What the retry loop did, alongside the join output.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RetryReport {
    /// Attempts executed (1 = first try succeeded).
    pub attempts: u32,
    /// Transient errors absorbed by retrying.
    pub transient_errors: u64,
    /// Orphaned temporary files deleted across all failed attempts.
    pub cleaned_files: u64,
}

impl RetryReport {
    /// True if any retry happened.
    pub fn retried(&self) -> bool {
        self.attempts > 1
    }
}

/// Files present now but not in `before` — the temporaries a failed
/// attempt orphaned. `before` must be sorted (as [`Env::list_files`]
/// implementations return) or at least contain every pre-existing name.
pub fn new_files_since<E: Env>(env: &E, before: &[String]) -> Vec<String> {
    env.list_files()
        .into_iter()
        .filter(|name| !before.iter().any(|b| b == name))
        .collect()
}

/// Like [`new_files_since`], but scoped to one run's tag: when `tag` is
/// non-empty, only files carrying its `#tag` suffix are returned —
/// including shard-suffixed temporaries like `RP_3#tag`, whose suffix
/// position is the same because [`JoinSpec::temp_name`] appends the tag
/// *after* the shard index. A tagged run's cleanup must never delete a
/// concurrent sibling run's files just because they postdate its
/// snapshot.
pub fn new_files_since_tagged<E: Env>(env: &E, before: &[String], tag: &str) -> Vec<String> {
    let suffix = format!("#{tag}");
    new_files_since(env, before)
        .into_iter()
        .filter(|name| tag.is_empty() || name.ends_with(&suffix))
        .collect()
}

/// Delete every file in `orphans`, tolerating `NotFound` (another
/// process of the failed join may have deleted it) and retrying
/// transient delete failures a few times. Returns how many files were
/// actually deleted, or the first hard error.
fn clean_orphans<E: Env>(env: &E, orphans: &[String]) -> Result<u64> {
    let mut deleted = 0;
    for name in orphans {
        let mut last_err = None;
        for _ in 0..8 {
            match env.delete_file(ProcId(0), name) {
                Ok(()) => {
                    deleted += 1;
                    last_err = None;
                    break;
                }
                Err(EnvError::NotFound(_)) => {
                    last_err = None;
                    break;
                }
                Err(e) if e.is_transient() => last_err = Some(e),
                Err(e) => return Err(e),
            }
        }
        if let Some(e) = last_err {
            return Err(e);
        }
    }
    Ok(deleted)
}

/// Run [`crate::join`] with orphan cleanup and bounded-backoff retry of
/// transient failures (see the module docs for the restart semantics).
///
/// On `Err`, the environment's file table has already been restored to
/// its pre-join state — callers never see orphaned `RP_i`/`RS_i` files.
pub fn join_with_retry<E: Env>(
    env: &E,
    rels: &Relations,
    alg: Algo,
    spec: &JoinSpec,
    policy: &RetryPolicy,
) -> Result<(JoinOutput, RetryReport)> {
    let (result, report) = join_with_retry_report(env, rels, alg, spec, policy);
    result.map(|out| (out, report))
}

/// Like [`join_with_retry`], but the [`RetryReport`] is returned even
/// when the join ultimately fails — for callers (like a service) that
/// account retries and cleanups of failed jobs too.
pub fn join_with_retry_report<E: Env>(
    env: &E,
    rels: &Relations,
    alg: Algo,
    spec: &JoinSpec,
    policy: &RetryPolicy,
) -> (Result<JoinOutput>, RetryReport) {
    let before = env.list_files();
    let mut report = RetryReport::default();
    loop {
        report.attempts += 1;
        env.trace(
            ProcId(0),
            TraceEvent::RetryAttempt {
                attempt: report.attempts,
            },
        );
        match crate::join(env, rels, alg, spec) {
            Ok(out) => return (Ok(out), report),
            Err(e) => {
                let orphans = new_files_since_tagged(env, &before, &spec.tag);
                match clean_orphans(env, &orphans) {
                    Ok(n) => report.cleaned_files += n,
                    Err(cleanup_err) => return (Err(cleanup_err), report),
                }
                let retryable = e.is_transient() && report.attempts < policy.max_attempts;
                if !retryable {
                    return (Err(e), report);
                }
                report.transient_errors += 1;
                let backoff = policy.backoff(report.attempts);
                env.trace(
                    ProcId(0),
                    TraceEvent::RetryBackoff {
                        attempt: report.attempts,
                        millis: backoff.as_millis() as u64,
                    },
                );
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecMode;
    use mmjoin_env::{FaultSpec, FaultyEnv};
    use mmjoin_relstore::{build, PointerDist, RelConfig, WorkloadSpec};
    use mmjoin_vmsim::{SimConfig, SimEnv};

    fn workload(d: u32, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            rel: RelConfig {
                r_size: 32,
                s_size: 32,
                d,
                r_objects: 800,
                s_objects: 800,
            },
            dist: PointerDist::Uniform,
            seed,
            prefix: String::new(),
        }
    }

    fn sim(d: u32) -> SimEnv {
        let mut cfg = SimConfig::waterloo96(d);
        cfg.rproc_pages = 16;
        cfg.sproc_pages = 16;
        SimEnv::new(cfg).unwrap()
    }

    fn spec() -> JoinSpec {
        JoinSpec::new(16 * 4096, 16 * 4096).with_mode(ExecMode::Sequential)
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(9),
        };
        assert_eq!(p.backoff(1), Duration::from_millis(2));
        assert_eq!(p.backoff(2), Duration::from_millis(4));
        assert_eq!(p.backoff(3), Duration::from_millis(8));
        assert_eq!(p.backoff(4), Duration::from_millis(9));
        assert_eq!(p.backoff(60), Duration::from_millis(9));
    }

    #[test]
    fn clean_run_reports_single_attempt() {
        let env = sim(2);
        let rels = build(&env, &workload(2, 7)).unwrap();
        let (out, report) =
            join_with_retry(&env, &rels, Algo::Grace, &spec(), &RetryPolicy::default()).unwrap();
        crate::verify(&out, &rels).unwrap();
        assert_eq!(
            report,
            RetryReport {
                attempts: 1,
                transient_errors: 0,
                cleaned_files: 0
            }
        );
    }

    /// Files a fault-free run of `alg` leaves behind (a successful join
    /// keeps its scratch files; callers own the env's lifetime) — the
    /// reference for post-retry leak checks.
    fn reference_leftovers(alg: Algo, d: u32, seed: u64) -> Vec<String> {
        let env = sim(d);
        let rels = build(&env, &workload(d, seed)).unwrap();
        let before = env.list_files();
        let out = crate::join(&env, &rels, alg, &spec()).unwrap();
        crate::verify(&out, &rels).unwrap();
        new_files_since(&env, &before)
    }

    #[test]
    fn transient_write_faults_are_healed_by_retry() {
        // Exactly 2 write failures into the RP temporaries, then clean.
        let env = FaultyEnv::new(
            sim(2),
            FaultSpec::parse("seed=3;write:file=RP:count=2:after=5").unwrap(),
        );
        let rels = build(&env, &workload(2, 9)).unwrap();
        let before = env.list_files();
        let (out, report) =
            join_with_retry(&env, &rels, Algo::Grace, &spec(), &RetryPolicy::attempts(5)).unwrap();
        crate::verify(&out, &rels).unwrap();
        assert!(report.retried(), "{report:?}");
        assert!(report.transient_errors >= 1, "{report:?}");
        assert!(report.cleaned_files >= 1, "{report:?}");
        // Leak check: exactly the files a fault-free run leaves — no
        // orphans from the failed attempts.
        assert_eq!(
            new_files_since(&env, &before),
            reference_leftovers(Algo::Grace, 2, 9)
        );
        assert!(env.fault_stats().write_errors >= 1);
    }

    #[test]
    fn exhausted_budget_fails_but_leaves_no_orphans() {
        // More injected faults than the retry budget can absorb.
        let env = FaultyEnv::new(
            sim(2),
            FaultSpec::parse("seed=3;create:file=RP:count=100").unwrap(),
        );
        let rels = build(&env, &workload(2, 11)).unwrap();
        let before = env.list_files();
        let err = join_with_retry(&env, &rels, Algo::Grace, &spec(), &RetryPolicy::attempts(2))
            .unwrap_err();
        assert!(err.is_transient());
        assert_eq!(new_files_since(&env, &before), Vec::<String>::new());
    }

    #[test]
    fn non_transient_errors_do_not_retry() {
        let env = FaultyEnv::new(sim(2), FaultSpec::parse("diskfull:file=RP").unwrap());
        let rels = build(&env, &workload(2, 13)).unwrap();
        let before = env.list_files();
        let err = join_with_retry(&env, &rels, Algo::Grace, &spec(), &RetryPolicy::attempts(6))
            .unwrap_err();
        assert!(matches!(err, EnvError::DiskFull(_)), "{err}");
        assert_eq!(new_files_since(&env, &before), Vec::<String>::new());
        // Only the single DiskFull injection was available, so exactly
        // one attempt ran.
        assert_eq!(env.fault_stats().disk_full, 1);
    }

    #[test]
    fn tagged_cleanup_spares_sibling_runs_files() {
        use mmjoin_env::DiskId;
        // A failing tagged run shares its env with a sibling tagged run
        // whose file postdates the snapshot: cleanup must delete only
        // its own `#ja` temporaries, never the sibling's.
        let env = FaultyEnv::new(
            sim(2),
            FaultSpec::parse("seed=3;create:file=RP:count=100").unwrap(),
        );
        let rels = build(&env, &workload(2, 11)).unwrap();
        let before = env.list_files();
        env.inner()
            .create_file(ProcId(0), "RP_0#jb", DiskId(0), 4096)
            .unwrap();
        let err = join_with_retry(
            &env,
            &rels,
            Algo::Grace,
            &spec().with_tag("ja"),
            &RetryPolicy::attempts(2),
        )
        .unwrap_err();
        assert!(err.is_transient());
        // Exactly the sibling's file survived the failed run's cleanup.
        assert_eq!(new_files_since(&env, &before), vec!["RP_0#jb".to_string()]);
        assert!(new_files_since_tagged(&env, &before, "ja").is_empty());
    }

    #[test]
    fn every_algorithm_survives_scattered_transient_faults() {
        for alg in Algo::ALL {
            let env = FaultyEnv::new(
                sim(2),
                FaultSpec::parse("seed=17;read:p=0.002:count=2;write:p=0.002:count=2").unwrap(),
            );
            let rels = build(&env, &workload(2, 21)).unwrap();
            let before = env.list_files();
            let (out, _report) =
                join_with_retry(&env, &rels, alg, &spec(), &RetryPolicy::attempts(8))
                    .unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
            crate::verify(&out, &rels).unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
            assert_eq!(
                new_files_since(&env, &before),
                reference_leftovers(alg, 2, 21),
                "{}",
                alg.name()
            );
        }
    }
}
