//! Parallel pointer-based sort-merge (paper §6).
//!
//! Passes 0 and 1 re-partition exactly like nested loops, except objects
//! are *written* to the `RS` areas instead of joined: after pass 1,
//! `RS_i` holds every R-object (from all partitions) whose join pointer
//! lands in `S_i`. Because the join attribute is a virtual pointer, `S`
//! itself never needs sorting — sorting `RS_i` by pointer already yields
//! a sequential scan of `S_i` in the final pass (§4, §6.1).
//!
//! The local sort is a multi-way external merge sort: runs of `IRUN`
//! objects are heap-sorted in place via an array of pointers (Floyd
//! construction + drain), then groups of `NRUN` runs are merged with
//! delete-insert heaps, alternating between the `RS_i` and `Merge_i`
//! areas (swapped with `deleteMap`/`newMap`, as the paper charges). The
//! last merge joins directly against `S_i` through the shared buffer.
//!
//! Unlike nested loops, phases here are synchronized (§6.3), hence the
//! per-phase stages.

use mmjoin_env::{CpuOp, DiskId, Env, EnvError, MoveKind, ProcId, Result, SPtr, TraceEvent};
use mmjoin_model::{choose_irun, choose_nrun_abl, choose_nrun_last, merge_plan, MergePlan};
use mmjoin_relstore::{chunked_capacity, names, r_key, r_sptr, ChunkedFile, ObjScan, Relations};

use crate::exec::{
    finish, phase_partner, run_stages, stage_summary, JoinAcc, JoinOutput, JoinSpec, SBatcher,
    SharedSlots,
};
use crate::pheap::{heapsort, HeapEntry, MergeHeap};

struct SmState<E: Env> {
    acc: JoinAcc,
    rf: Option<E::File>,
    rp: Option<ChunkedFile<E::File>>,
    rs: Option<ChunkedFile<E::File>>,
}

/// `|RS_i|` for capacity purposes: every R-object pointing into `S_i`,
/// known exactly from the workload's sub-partition counts (the catalog
/// statistics a real system would keep).
fn rs_objects(rels: &Relations, i: u32) -> u64 {
    (0..rels.rel.d).map(|k| rels.sub_count(k, i)).sum()
}

/// Execute the join (S catalog must be registered).
pub fn run<E: Env>(env: &E, rels: &Relations, spec: &JoinSpec) -> Result<JoinOutput> {
    let d = rels.rel.d;
    let page = env.page_size();
    let r_size = rels.rel.r_size;
    let slots: std::sync::Arc<SharedSlots<ChunkedFile<E::File>>> = SharedSlots::new(d);

    // Stages: setup | pass0 | phase 1..d-1 | sort+merge+join.
    let stages = 2 + (d as usize - 1) + 1;

    let (states, times) = run_stages(
        env,
        d,
        spec.mode,
        stages,
        |_| SmState::<E> {
            acc: JoinAcc::default(),
            rf: None,
            rp: None,
            rs: None,
        },
        |stage, i, state: &mut SmState<E>| {
            let proc = ProcId::rproc(i);
            match stage {
                0 => {
                    // ---- setup: create/open every area, publish RS_i ----
                    state.rf = Some(env.open_file(proc, &rels.r_files[i as usize])?);
                    let _sf = env.open_file(proc, &rels.s_files[i as usize])?;
                    let rp_capacity = chunked_capacity(rels.rel.r_per_part(), r_size, d, page);
                    let rp_file = env.create_file(
                        proc,
                        &spec.temp_name(rels, &names::rp(i)),
                        DiskId(i),
                        rp_capacity,
                    )?;
                    state.rp = Some(ChunkedFile::new(rp_file, d, r_size, page)?);

                    let rs_capacity = chunked_capacity(rs_objects(rels, i), r_size, 1, page);
                    let rs_file = env.create_file(
                        proc,
                        &spec.temp_name(rels, &names::rs(i)),
                        DiskId(i),
                        rs_capacity,
                    )?;
                    let rs = ChunkedFile::new(rs_file, 1, r_size, page)?;
                    slots.publish(i, rs.clone());
                    state.rs = Some(rs);
                    // The alternate merge area (created now, charged as
                    // in the model's setup term).
                    let merge_file = env.create_file(
                        proc,
                        &spec.temp_name(rels, &names::merge(i)),
                        DiskId(i),
                        rs_capacity,
                    )?;
                    drop(merge_file);
                    Ok(())
                }
                1 => pass0(env, rels, spec, i, state),
                s if s < stages - 1 => {
                    let t = (s - 1) as u32;
                    phase(env, rels, i, t, state, &slots)
                }
                _ => local_sort_merge_join(env, rels, spec, i, state),
            }
        },
    )?;

    let mut names: Vec<String> = vec!["setup".into(), "pass0".into()];
    names.extend((1..d).map(|t| format!("phase{t}")));
    names.push("sort+merge+join".into());
    let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    let summary = stage_summary(&refs, &times);
    Ok(finish(
        env,
        d,
        states.into_iter().map(|s| s.acc),
        summary,
        &times,
    ))
}

fn pass0<E: Env>(
    env: &E,
    rels: &Relations,
    spec: &JoinSpec,
    i: u32,
    state: &mut SmState<E>,
) -> Result<()> {
    let proc = ProcId::rproc(i);
    let rf = state
        .rf
        .clone()
        .ok_or_else(|| EnvError::InvalidConfig("sort-merge: setup stage left no R file".into()))?;
    let r_size = rels.rel.r_size;
    let part_bytes = rels.rel.s_part_bytes();
    let rp = state
        .rp
        .clone()
        .ok_or_else(|| EnvError::InvalidConfig("sort-merge: setup stage left no RP area".into()))?;
    let rs = state
        .rs
        .clone()
        .ok_or_else(|| EnvError::InvalidConfig("sort-merge: setup stage left no RS area".into()))?;
    env.trace(
        proc,
        TraceEvent::PassStart {
            proc: i,
            pass: 0,
            phase: 0,
            disk: i,
            area: format!("R_{i}"),
        },
    );
    let ri_objects = rels.rel.r_per_part();
    let mut scan = ObjScan::new(&rf, 0, r_size, ri_objects);
    let mut obj = vec![0u8; r_size as usize];
    while scan.next_into(proc, &mut obj)? {
        env.cpu(proc, CpuOp::Map, 1);
        let ptr = r_sptr(&obj);
        let j = ptr.partition(part_bytes);
        if j == i {
            rs.append(proc, 0, &obj)?;
        } else {
            rp.append(proc, j, &obj)?;
        }
        env.move_bytes(proc, MoveKind::PP, r_size as u64);
    }
    env.trace(
        proc,
        TraceEvent::PassEnd {
            proc: i,
            pass: 0,
            phase: 0,
            disk: i,
            area: format!("R_{i}"),
            bytes: ri_objects * r_size as u64,
            objects: ri_objects,
        },
    );
    let _ = spec;
    Ok(())
}

fn phase<E: Env>(
    env: &E,
    rels: &Relations,
    i: u32,
    t: u32,
    state: &mut SmState<E>,
    slots: &SharedSlots<ChunkedFile<E::File>>,
) -> Result<()> {
    let proc = ProcId::rproc(i);
    let d = rels.rel.d;
    let j = phase_partner(i, t, d);
    env.trace(
        proc,
        TraceEvent::PassStart {
            proc: i,
            pass: 1,
            phase: t,
            disk: j,
            area: format!("R({i},{j})"),
        },
    );
    let rp = state
        .rp
        .as_ref()
        .ok_or_else(|| EnvError::InvalidConfig("sort-merge: pass 0 left no RP area".into()))?;
    let rs_j = slots.try_get(j)?;
    let mut reader = rp.stream_reader(j);
    let mut obj = vec![0u8; rels.rel.r_size as usize];
    let mut objects = 0u64;
    while reader.next_into(proc, &mut obj)? {
        rs_j.append(proc, 0, &obj)?;
        env.move_bytes(proc, MoveKind::PP, rels.rel.r_size as u64);
        objects += 1;
    }
    env.trace(
        proc,
        TraceEvent::PassEnd {
            proc: i,
            pass: 1,
            phase: t,
            disk: j,
            area: format!("R({i},{j})"),
            bytes: objects * rels.rel.r_size as u64,
            objects,
        },
    );
    Ok(())
}

fn local_sort_merge_join<E: Env>(
    env: &E,
    rels: &Relations,
    spec: &JoinSpec,
    i: u32,
    state: &mut SmState<E>,
) -> Result<()> {
    let proc = ProcId::rproc(i);
    let r_size = rels.rel.r_size as usize;
    let rs = state
        .rs
        .take()
        .ok_or_else(|| EnvError::InvalidConfig("sort-merge: setup stage left no RS area".into()))?;
    let n = rs.stream_len(0);
    env.trace(
        proc,
        TraceEvent::PassStart {
            proc: i,
            pass: 2,
            phase: 0,
            disk: i,
            area: format!("RS_{i}"),
        },
    );
    let pass_end = |objects: u64| TraceEvent::PassEnd {
        proc: i,
        pass: 2,
        phase: 0,
        disk: i,
        area: format!("RS_{i}"),
        bytes: objects * r_size as u64,
        objects,
    };
    let mut batcher = SBatcher::new(env, proc, i, rels, spec.g_buffer);
    if n == 0 {
        batcher.flush(&mut state.acc)?;
        env.trace(proc, pass_end(0));
        return Ok(());
    }

    // ---- run formation (pass 2) ----
    let irun = choose_irun(spec.m_rproc, rels.rel.r_size);
    let plan: MergePlan = merge_plan(
        n,
        irun,
        choose_nrun_abl(spec.m_rproc, env.page_size()),
        choose_nrun_last(spec.m_rproc, env.page_size()),
    )?;
    let mut buf = vec![0u8; r_size];
    let mut run_objs: Vec<u8> = Vec::with_capacity((irun as usize) * r_size);
    let mut entries: Vec<HeapEntry> = Vec::with_capacity(irun as usize);
    let mut start = 0u64;
    while start < n {
        let len = irun.min(n - start);
        run_objs.clear();
        entries.clear();
        for k in 0..len {
            rs.read_obj(proc, 0, start + k, &mut buf)?;
            entries.push((r_sptr(&buf), k as u32));
            run_objs.extend_from_slice(&buf);
        }
        let ops = heapsort(&mut entries);
        ops.charge(env, proc);
        // Write the objects back in sorted order ("sorted in place";
        // the OS ages the dirty pages out).
        for (k, &(_, idx)) in entries.iter().enumerate() {
            let src = &run_objs[idx as usize * r_size..(idx as usize + 1) * r_size];
            rs.write_obj(proc, 0, start + k as u64, src)?;
        }
        env.move_bytes(proc, MoveKind::PP, len * r_size as u64);
        start += len;
    }

    // ---- merging passes ----
    // Sources alternate between the RS and Merge areas; each swap
    // deletes and re-creates the emptied area (charged deleteMap/newMap,
    // with exact-fit extent reuse keeping the disk layout stable).
    let rs_name = spec.temp_name(rels, &names::rs(i));
    let merge_name = spec.temp_name(rels, &names::merge(i));
    let mut src = rs;
    let mut src_is_rs = true;
    let mut run_len = irun;
    let page = env.page_size();

    for _abl in 0..plan.npass - 1 {
        let (dst_name, src_name) = if src_is_rs {
            (&merge_name, &rs_name)
        } else {
            (&rs_name, &merge_name)
        };
        // Re-create the destination area fresh.
        let dst_capacity = chunked_capacity(n, rels.rel.r_size, 1, page);
        env.delete_file(proc, dst_name)?;
        let dst_file = env.create_file(proc, dst_name, DiskId(i), dst_capacity)?;
        let dst = ChunkedFile::new(dst_file, 1, rels.rel.r_size, page)?;

        merge_pass(
            env,
            proc,
            rels,
            &src,
            &dst,
            n,
            run_len,
            plan.nrun_abl,
            None,
            &mut state.acc,
        )?;

        src = dst;
        src_is_rs = !src_is_rs;
        run_len = run_len.saturating_mul(plan.nrun_abl);
        let _ = src_name;
    }

    // ---- last pass: merge + join against a sequential S_i scan ----
    merge_pass(
        env,
        proc,
        rels,
        &src,
        &src, // unused when joining
        n,
        run_len,
        u64::MAX, // merge every remaining run at once
        Some(&mut batcher),
        &mut state.acc,
    )?;
    env.trace(proc, pass_end(n));
    Ok(())
}

/// Merge consecutive groups of up to `fan_in` runs of `run_len` objects
/// from `src`. With `batcher` set this is the final pass: emit each
/// object to the Sproc batcher (ascending pointer order ⇒ sequential S
/// reads). Otherwise append merged runs to `dst`.
#[allow(clippy::too_many_arguments)]
fn merge_pass<E: Env>(
    env: &E,
    proc: ProcId,
    rels: &Relations,
    src: &ChunkedFile<E::File>,
    dst: &ChunkedFile<E::File>,
    n: u64,
    run_len: u64,
    fan_in: u64,
    mut batcher: Option<&mut SBatcher<'_, E>>,
    acc: &mut JoinAcc,
) -> Result<()> {
    let r_size = rels.rel.r_size as usize;
    let num_runs = n.div_ceil(run_len);
    let mut group_start_run = 0u64;
    // Per-run scratch reused across merge groups: cursor ranges and the
    // current object bytes grow to the widest fan-in once and are then
    // recycled — no per-group reallocation in the steady state.
    let mut cursors: Vec<(u64, u64)> = Vec::new();
    let mut current: Vec<Vec<u8>> = Vec::new();
    while group_start_run < num_runs {
        let group_runs = fan_in.min(num_runs - group_start_run);
        // Cursor state per run: next index and end index in the stream.
        cursors.clear();
        cursors.extend((0..group_runs).map(|g| {
            let run = group_start_run + g;
            let lo = run * run_len;
            let hi = ((run + 1) * run_len).min(n);
            (lo, hi)
        }));
        if current.len() < group_runs as usize {
            current.resize_with(group_runs as usize, || vec![0u8; r_size]);
        }
        let mut firsts: Vec<(SPtr, u32)> = Vec::with_capacity(group_runs as usize);
        for (g, cur) in cursors.iter_mut().enumerate() {
            if cur.0 < cur.1 {
                src.read_obj(proc, 0, cur.0, &mut current[g])?;
                cur.0 += 1;
                firsts.push((r_sptr(&current[g]), g as u32));
            }
        }
        let mut heap = MergeHeap::new(firsts);
        while let Some((_, g)) = heap.peek() {
            let gi = g as usize;
            let obj = &current[gi];
            if let Some(b) = batcher.as_deref_mut() {
                b.add(r_key(obj), r_sptr(obj), acc)?;
            } else {
                dst.append(proc, 0, obj)?;
                env.move_bytes(proc, MoveKind::PP, r_size as u64);
            }
            let (next, hi) = cursors[gi];
            if next < hi {
                src.read_obj(proc, 0, next, &mut current[gi])?;
                cursors[gi].0 += 1;
                heap.replace_min(r_sptr(&current[gi]));
            } else {
                heap.pop_min();
            }
        }
        heap.ops().charge(env, proc);
        group_start_run += group_runs;
    }
    if let Some(b) = batcher {
        b.flush(acc)?;
    }
    Ok(())
}

/// The merge schedule the implementation will use — for experiment
/// annotation; must agree with `mmjoin_model::sort_merge::plan_for`.
pub fn plan_for(page_size: u64, rels: &Relations, spec: &JoinSpec, i: u32) -> Result<MergePlan> {
    let n = rs_objects(rels, i);
    if n == 0 {
        return Err(EnvError::InvalidConfig("empty RS_i has no plan".into()));
    }
    merge_plan(
        n,
        choose_irun(spec.m_rproc, rels.rel.r_size),
        choose_nrun_abl(spec.m_rproc, page_size),
        choose_nrun_last(spec.m_rproc, page_size),
    )
}
