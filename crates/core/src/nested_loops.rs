//! Parallel pointer-based nested loops (paper §5).
//!
//! Pass 0: each `Rproc_i` scans `R_i` once. Objects whose join pointer
//! lands in `S_i` are joined immediately through `Sproc_i`'s shared
//! buffer; the rest are scattered into the `RP_{i,j}` sub-partitions of
//! a temporary area on the same disk — the sub-partitioning that
//! "(mostly) eliminates disk contention in the next pass".
//!
//! Pass 1: `D−1` staggered phases; in phase `t`, `Rproc_i` drains
//! `RP_{i, offset(i,t)}` against `S_{offset(i,t)}`, so each `S_j` is
//! wanted by exactly one Rproc per phase. Phases are unsynchronized by
//! default (§5.1 measured ≤0.5% difference); `JoinSpec::sync_phases`
//! inserts barriers for that ablation.

use mmjoin_env::{CpuOp, DiskId, Env, EnvError, MoveKind, ProcId, Result, TraceEvent};
use mmjoin_relstore::{chunked_capacity, names, r_key, r_sptr, ChunkedFile, ObjScan, Relations};

use crate::exec::{
    finish, phase_partner, run_stages, stage_summary, JoinAcc, JoinOutput, JoinSpec, SBatcher,
};

struct NlState<E: Env> {
    acc: JoinAcc,
    rp: Option<ChunkedFile<E::File>>,
}

/// Execute the join. The environment's S catalog must already be
/// registered (the public `join()` entry point does this).
pub fn run<E: Env>(env: &E, rels: &Relations, spec: &JoinSpec) -> Result<JoinOutput> {
    let d = rels.rel.d;
    let page = env.page_size();
    let sync = spec.sync_phases;
    // Stage layout: stage 0 = setup + pass 0 (+ all phases when
    // unsynchronized); stages 1..d-1 = individual phases when
    // synchronized.
    let stages = if sync { d as usize } else { 1 };

    let (states, times) = run_stages(
        env,
        d,
        spec.mode,
        stages,
        |_| NlState::<E> {
            acc: JoinAcc::default(),
            rp: None,
        },
        |stage, i, state: &mut NlState<E>| {
            let proc = ProcId::rproc(i);
            if stage == 0 {
                // ---- setup ----
                let rf = env.open_file(proc, &rels.r_files[i as usize])?;
                let _sf = env.open_file(proc, &rels.s_files[i as usize])?;
                let ri_objects = rels.rel.r_per_part();
                let r_size = rels.rel.r_size;
                let rp_capacity = chunked_capacity(ri_objects, r_size, d, page);
                let rp_file = env.create_file(
                    proc,
                    &spec.temp_name(rels, &names::rp(i)),
                    DiskId(i),
                    rp_capacity,
                )?;
                let rp = ChunkedFile::new(rp_file, d, r_size, page)?;

                // ---- pass 0 ----
                env.trace(
                    proc,
                    TraceEvent::PassStart {
                        proc: i,
                        pass: 0,
                        phase: 0,
                        disk: i,
                        area: format!("R_{i}"),
                    },
                );
                let part_bytes = rels.rel.s_part_bytes();
                let mut batcher = SBatcher::new(env, proc, i, rels, spec.g_buffer);
                let mut scan = ObjScan::new(&rf, 0, r_size, ri_objects);
                let mut obj = vec![0u8; r_size as usize];
                while scan.next_into(proc, &mut obj)? {
                    env.cpu(proc, CpuOp::Map, 1);
                    let ptr = r_sptr(&obj);
                    let j = ptr.partition(part_bytes);
                    if j == i {
                        // Immediate join of R_(i,i) (§5.1 optimization).
                        batcher.add(r_key(&obj), ptr, &mut state.acc)?;
                    } else {
                        rp.append(proc, j, &obj)?;
                        env.move_bytes(proc, MoveKind::PP, r_size as u64);
                    }
                }
                batcher.flush(&mut state.acc)?;
                state.rp = Some(rp);
                env.trace(
                    proc,
                    TraceEvent::PassEnd {
                        proc: i,
                        pass: 0,
                        phase: 0,
                        disk: i,
                        area: format!("R_{i}"),
                        bytes: ri_objects * r_size as u64,
                        objects: ri_objects,
                    },
                );

                if !sync {
                    // ---- pass 1, free-running phases ----
                    for t in 1..d {
                        run_phase(env, rels, spec, i, t, state)?;
                    }
                }
            } else {
                // ---- pass 1, synchronized phase `stage` ----
                run_phase(env, rels, spec, i, stage as u32, state)?;
            }
            Ok(())
        },
    )?;

    let names: Vec<String> = if sync {
        std::iter::once("setup+pass0".to_string())
            .chain((1..d).map(|t| format!("phase{t}")))
            .collect()
    } else {
        vec!["all".to_string()]
    };
    let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    let summary = stage_summary(&name_refs, &times);
    Ok(finish(
        env,
        d,
        states.into_iter().map(|s| s.acc),
        summary,
        &times,
    ))
}

fn run_phase<E: Env>(
    env: &E,
    rels: &Relations,
    spec: &JoinSpec,
    i: u32,
    t: u32,
    state: &mut NlState<E>,
) -> Result<()> {
    let d = rels.rel.d;
    let proc = ProcId::rproc(i);
    let j = phase_partner(i, t, d);
    env.trace(
        proc,
        TraceEvent::PassStart {
            proc: i,
            pass: 1,
            phase: t,
            disk: j,
            area: format!("R({i},{j})"),
        },
    );
    let rp = state
        .rp
        .as_ref()
        .ok_or_else(|| EnvError::InvalidConfig("nested-loops: pass 0 left no RP area".into()))?;
    let mut batcher = SBatcher::new(env, proc, j, rels, spec.g_buffer);
    let mut reader = rp.stream_reader(j);
    let mut obj = vec![0u8; rels.rel.r_size as usize];
    let mut objects = 0u64;
    while reader.next_into(proc, &mut obj)? {
        batcher.add(r_key(&obj), r_sptr(&obj), &mut state.acc)?;
        objects += 1;
    }
    batcher.flush(&mut state.acc)?;
    env.trace(
        proc,
        TraceEvent::PassEnd {
            proc: i,
            pass: 1,
            phase: t,
            disk: j,
            area: format!("R({i},{j})"),
            bytes: objects * rels.rel.r_size as u64,
            objects,
        },
    );
    Ok(())
}
