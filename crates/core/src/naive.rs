//! The naive parallel nested loops baseline (paper §5, opening):
//!
//! > "A naive parallel version may partition R and S so that the R_i
//! > partitions can perform the join in parallel, accessing different
//! > S_j partitions simultaneously. However, parallelism in this case is
//! > inhibited by contention when several R_i reference the same S_j."
//!
//! No re-partitioning pass, no phase staggering: each `Rproc_i` scans
//! `R_i` once and fires requests at whichever `Sproc` the pointer says,
//! so all `D` Rprocs hammer the same `S` partitions concurrently. Run it
//! under the simulator's queued-contention mode to watch the paper's
//! motivation materialize.

use mmjoin_env::{CpuOp, Env, ProcId, Result};
use mmjoin_relstore::{r_key, r_sptr, ObjScan, Relations};

use crate::exec::{finish, run_stages, stage_summary, JoinAcc, JoinOutput, JoinSpec, SBatcher};

/// Execute the baseline join (S catalog must be registered).
pub fn run<E: Env>(env: &E, rels: &Relations, spec: &JoinSpec) -> Result<JoinOutput> {
    let d = rels.rel.d;
    let (states, times) = run_stages(
        env,
        d,
        spec.mode,
        1,
        |_| JoinAcc::default(),
        |_, i, acc: &mut JoinAcc| {
            let proc = ProcId::rproc(i);
            let rf = env.open_file(proc, &rels.r_files[i as usize])?;
            let _sf = env.open_file(proc, &rels.s_files[i as usize])?;
            let part_bytes = rels.rel.s_part_bytes();
            // One batcher per target partition; a random pointer stream
            // flips between them constantly, so batches stay ragged and
            // every partition sees traffic from every Rproc — the
            // contention the two-pass algorithms exist to remove.
            let mut batchers: Vec<SBatcher<'_, E>> = (0..d)
                .map(|j| SBatcher::new(env, proc, j, rels, spec.g_buffer))
                .collect();
            let mut scan = ObjScan::new(&rf, 0, rels.rel.r_size, rels.rel.r_per_part());
            let mut obj = vec![0u8; rels.rel.r_size as usize];
            while scan.next_into(proc, &mut obj)? {
                env.cpu(proc, CpuOp::Map, 1);
                let ptr = r_sptr(&obj);
                let j = ptr.partition(part_bytes);
                batchers[j as usize].add(r_key(&obj), ptr, acc)?;
            }
            for b in &mut batchers {
                b.flush(acc)?;
            }
            Ok(())
        },
    )?;
    let summary = stage_summary(&["all"], &times);
    Ok(finish(env, d, states, summary, &times))
}
