//! Execution machinery shared by all join algorithms: the join
//! specification, result accounting, the shared-buffer batcher, and the
//! staged parallel driver.

use std::sync::{Arc, Barrier, Mutex};

use mmjoin_env::{Env, EnvError, EnvStats, Histogram, ProcId, Result, SPtr};
use mmjoin_relstore::{pair_digest, s_key, Relations};

/// How the `D` Rprocs execute.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum ExecMode {
    /// One OS thread per Rproc (the real parallel execution; virtual
    /// clocks still keep per-process time in the simulator).
    #[default]
    Threaded,
    /// Rprocs run one after another — fully deterministic; the natural
    /// mode for simulator experiments, whose clocks are per-process
    /// anyway.
    Sequential,
    /// The post-1996 raw-speed path (`crate::modern`): one OS thread per
    /// Rproc like [`ExecMode::Threaded`], but dispatched to the
    /// cache-conscious kernels — bulk block scans, software-managed
    /// radix partitioning, pre-sorted private runs with a multi-way
    /// merge-scan, and batched S probes over reusable scratch arenas.
    Modern,
}

/// Tunables of one join run.
#[derive(Clone, Debug)]
pub struct JoinSpec {
    /// `M_Rproc_i` in bytes — drives IRUN/NRUN/K choices (and should
    /// match the simulator's pager budget when running on `SimEnv`).
    pub m_rproc: u64,
    /// `M_Sproc_i` in bytes.
    pub m_sproc: u64,
    /// `G`: the shared request buffer size in bytes (§5.2 recommends one
    /// page).
    pub g_buffer: u64,
    /// Thread-per-proc or sequential execution.
    pub mode: ExecMode,
    /// Synchronize the staggered phases of pass 1 (the ≤0.5% ablation of
    /// §5.1). Only nested loops consults this.
    pub sync_phases: bool,
    /// Scope tag appended to temporary file names so several runs can
    /// share one environment.
    pub tag: String,
}

impl JoinSpec {
    /// A spec with the given memory budgets and paper-default `G` = one
    /// 4 KB page.
    pub fn new(m_rproc: u64, m_sproc: u64) -> Self {
        JoinSpec {
            m_rproc,
            m_sproc,
            g_buffer: 4096,
            mode: ExecMode::Threaded,
            sync_phases: false,
            tag: String::new(),
        }
    }

    /// Same spec with a different scope tag.
    pub fn with_tag(mut self, tag: &str) -> Self {
        self.tag = tag.to_string();
        self
    }

    /// Same spec with the given execution mode.
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Temporary-file name scoped to this run.
    pub fn temp_name(&self, rels: &Relations, base: &str) -> String {
        let scoped = mmjoin_relstore::names::scoped(&rels.prefix, base);
        if self.tag.is_empty() {
            scoped
        } else {
            format!("{scoped}#{}", self.tag)
        }
    }
}

/// Join-result accumulator: order-independent, so any production order
/// verifies against the workload oracle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JoinAcc {
    /// Pairs produced.
    pub pairs: u64,
    /// Wrapping sum of [`pair_digest`] over all pairs.
    pub checksum: u64,
}

impl JoinAcc {
    /// Record one joined pair.
    pub fn add(&mut self, r_key: u64, s_key: u64) {
        self.pairs += 1;
        self.checksum = self.checksum.wrapping_add(pair_digest(r_key, s_key));
    }

    /// Merge another accumulator in.
    pub fn merge(&mut self, other: JoinAcc) {
        self.pairs += other.pairs;
        self.checksum = self.checksum.wrapping_add(other.checksum);
    }
}

/// Everything a finished join reports.
#[derive(Clone, Debug)]
pub struct JoinOutput {
    /// Total joined pairs across all Rprocs.
    pub pairs: u64,
    /// Order-independent checksum (must equal the workload's
    /// `expected_checksum`).
    pub checksum: u64,
    /// Elapsed time: max over Rproc clocks (virtual seconds on the
    /// simulator, wall seconds on the real store).
    pub elapsed: f64,
    /// Full per-process counters.
    pub stats: EnvStats,
    /// Max-over-procs completion time of each stage boundary, in order.
    pub stage_times: Vec<(String, f64)>,
    /// Log-scale histogram of per-process stage durations (setup and
    /// every pass/phase contribute one sample per Rproc).
    pub pass_seconds: Histogram,
}

/// The request batcher implementing §5.1's shared buffer of size `G`:
/// `(R-object, sptr)` pairs accumulate until only room for the matching
/// S-objects remains, then one exchange with the owning `Sproc` fetches
/// and joins them.
pub struct SBatcher<'e, E: Env> {
    env: &'e E,
    proc: ProcId,
    spart: u32,
    cap: usize,
    req_bytes_each: u64,
    pending: Vec<(u64, SPtr)>,
    fetch_buf: Vec<u8>,
    s_size: usize,
}

impl<'e, E: Env> SBatcher<'e, E> {
    /// A batcher talking to `Sproc_{spart}`.
    pub fn new(env: &'e E, proc: ProcId, spart: u32, rels: &Relations, g_buffer: u64) -> Self {
        let r = rels.rel.r_size as u64;
        let s = rels.rel.s_size as u64;
        let sptr = mmjoin_relstore::SPTR_SIZE as u64;
        let cap = (g_buffer / (r + sptr + s)).max(1) as usize;
        SBatcher {
            env,
            proc,
            spart,
            cap,
            req_bytes_each: r + sptr,
            pending: Vec::with_capacity(cap),
            fetch_buf: Vec::new(),
            s_size: rels.rel.s_size as usize,
        }
    }

    /// Objects per exchange.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Queue one R-object (by key) and its join pointer; joins the whole
    /// batch into `acc` when the buffer fills.
    pub fn add(&mut self, r_key: u64, ptr: SPtr, acc: &mut JoinAcc) -> Result<()> {
        self.pending.push((r_key, ptr));
        if self.pending.len() >= self.cap {
            self.flush(acc)?;
        }
        Ok(())
    }

    /// Exchange any queued requests with the Sproc and join the results.
    pub fn flush(&mut self, acc: &mut JoinAcc) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.fetch_buf.clear();
        let ptrs: Vec<SPtr> = self.pending.iter().map(|&(_, p)| p).collect();
        self.env.s_fetch_batch(
            self.proc,
            self.spart,
            &ptrs,
            self.req_bytes_each,
            &mut self.fetch_buf,
        )?;
        for (k, (r_key, _)) in self.pending.iter().enumerate() {
            let obj = &self.fetch_buf[k * self.s_size..(k + 1) * self.s_size];
            acc.add(*r_key, s_key(obj));
        }
        self.pending.clear();
        Ok(())
    }
}

/// Run `stages` staged steps across `d` Rprocs with barriers at stage
/// boundaries. The closure receives `(stage, partition, state)` and runs
/// either on `d` scoped threads or sequentially.
///
/// On error, the failing proc records it and keeps meeting barriers (so
/// threaded peers cannot deadlock); the first error is returned.
pub fn run_stages<E, S, I, F>(
    env: &E,
    d: u32,
    mode: ExecMode,
    stages: usize,
    init: I,
    stage_fn: F,
) -> Result<(Vec<S>, Vec<Vec<f64>>)>
where
    E: Env,
    S: Send,
    I: Fn(u32) -> S + Sync,
    F: Fn(usize, u32, &mut S) -> Result<()> + Sync,
{
    match mode {
        ExecMode::Sequential => {
            let mut states: Vec<S> = (0..d).map(&init).collect();
            let mut times = vec![Vec::with_capacity(stages + 1); d as usize];
            for (i, t) in times.iter_mut().enumerate() {
                t.push(env.now(ProcId(i as u32)));
            }
            for stage in 0..stages {
                for (i, state) in states.iter_mut().enumerate() {
                    stage_fn(stage, i as u32, state)?;
                    times[i].push(env.now(ProcId(i as u32)));
                }
            }
            Ok((states, times))
        }
        // Modern joins reuse the same thread-per-proc driver; the mode
        // difference lives in which kernels the algorithm dispatches to.
        ExecMode::Threaded | ExecMode::Modern => {
            let barrier = Barrier::new(d as usize);
            let failure: Mutex<Option<EnvError>> = Mutex::new(None);
            let mut out: Vec<Option<(S, Vec<f64>)>> = (0..d).map(|_| None).collect();
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for i in 0..d {
                    let init = &init;
                    let stage_fn = &stage_fn;
                    let barrier = &barrier;
                    let failure = &failure;
                    handles.push(scope.spawn(move || {
                        let mut state = init(i);
                        let mut times = Vec::with_capacity(stages + 1);
                        times.push(env.now(ProcId(i)));
                        let mut dead = false;
                        for stage in 0..stages {
                            if !dead && failure.lock().expect("lock").is_none() {
                                if let Err(e) = stage_fn(stage, i, &mut state) {
                                    *failure.lock().expect("lock") = Some(e);
                                    dead = true;
                                }
                            }
                            times.push(env.now(ProcId(i)));
                            barrier.wait();
                        }
                        (state, times)
                    }));
                }
                for (i, h) in handles.into_iter().enumerate() {
                    out[i] = Some(h.join().expect("rproc thread panicked"));
                }
            });
            if let Some(e) = failure.into_inner().expect("lock") {
                return Err(e);
            }
            let mut states = Vec::with_capacity(d as usize);
            let mut times = Vec::with_capacity(d as usize);
            for slot in out {
                let (s, t) = slot.expect("all threads joined");
                states.push(s);
                times.push(t);
            }
            Ok((states, times))
        }
    }
}

/// Fold per-proc stage completion times into max-over-procs boundaries.
/// `times[i][0]` is proc `i`'s start-of-run clock; entry `s + 1` is its
/// stage-`s` completion (the shape [`run_stages`] returns).
pub fn stage_summary(names: &[&str], times: &[Vec<f64>]) -> Vec<(String, f64)> {
    names
        .iter()
        .enumerate()
        .map(|(s, name)| {
            let t = times
                .iter()
                .map(|per_proc| per_proc.get(s + 1).copied().unwrap_or(0.0))
                .fold(0.0, f64::max);
            (name.to_string(), t)
        })
        .collect()
}

/// Fold per-proc stage boundary clocks into a log-scale histogram of
/// stage durations: one sample per `(proc, stage)` pair.
pub fn pass_histogram(times: &[Vec<f64>]) -> Histogram {
    let mut hist = Histogram::new();
    for per_proc in times {
        for w in per_proc.windows(2) {
            hist.record((w[1] - w[0]).max(0.0));
        }
    }
    hist
}

/// Assemble the final output once all procs finished. `times` is the
/// per-proc stage boundary clocks from [`run_stages`]; stage durations
/// derived from it feed the output's latency histogram.
pub fn finish<E: Env>(
    env: &E,
    d: u32,
    accs: impl IntoIterator<Item = JoinAcc>,
    stage_times: Vec<(String, f64)>,
    times: &[Vec<f64>],
) -> JoinOutput {
    let mut total = JoinAcc::default();
    for acc in accs {
        total.merge(acc);
    }
    let stats = env.stats();
    JoinOutput {
        pairs: total.pairs,
        checksum: total.checksum,
        elapsed: stats.elapsed_rprocs(d),
        stats,
        stage_times,
        pass_seconds: pass_histogram(times),
    }
}

/// The pass-1 phase partner: paper §5.1's `offset(i, t) = ((i + t − 1)
/// mod D) + 1` in 1-based indexing; 0-based it is `(i + t) mod D`.
/// During phase `t`, each `S_j` is wanted by exactly one Rproc.
pub fn phase_partner(i: u32, t: u32, d: u32) -> u32 {
    debug_assert!(t >= 1 && t < d);
    (i + t) % d
}

/// Shared slot registry: lets Rproc `i` publish a handle (e.g. the
/// chunked `RS_i`) during setup, and every proc retrieve it after the
/// setup barrier.
pub struct SharedSlots<T> {
    slots: Vec<Mutex<Option<T>>>,
}

impl<T: Clone> SharedSlots<T> {
    /// `d` empty slots.
    pub fn new(d: u32) -> Arc<Self> {
        Arc::new(SharedSlots {
            slots: (0..d).map(|_| Mutex::new(None)).collect(),
        })
    }

    /// Publish slot `i`.
    pub fn publish(&self, i: u32, value: T) {
        *self.slots[i as usize].lock().expect("slot lock") = Some(value);
    }

    /// Retrieve slot `i` (must have been published).
    pub fn get(&self, i: u32) -> T {
        self.slots[i as usize]
            .lock()
            .expect("slot lock")
            .clone()
            .expect("slot published before use")
    }

    /// Fallible retrieval: an unpublished (or poisoned) slot becomes an
    /// [`EnvError`] the staged driver can propagate instead of a panic
    /// that would take the whole Rproc thread down.
    pub fn try_get(&self, i: u32) -> Result<T> {
        self.slots
            .get(i as usize)
            .ok_or_else(|| EnvError::InvalidConfig(format!("no shared slot {i}")))?
            .lock()
            .map_err(|_| EnvError::InvalidConfig(format!("shared slot {i} poisoned")))?
            .clone()
            .ok_or_else(|| EnvError::InvalidConfig(format!("shared slot {i} not published")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_partner_covers_all_without_collision() {
        let d = 5;
        for t in 1..d {
            let partners: Vec<u32> = (0..d).map(|i| phase_partner(i, t, d)).collect();
            let mut sorted = partners.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..d).collect::<Vec<_>>(), "phase {t}");
            for (i, &j) in partners.iter().enumerate() {
                assert_ne!(i as u32, j, "a proc never phases with itself");
            }
        }
        // Across all phases, every proc meets every other partition
        // exactly once.
        for i in 0..d {
            let mut seen: Vec<u32> = (1..d).map(|t| phase_partner(i, t, d)).collect();
            seen.sort_unstable();
            let expect: Vec<u32> = (0..d).filter(|&j| j != i).collect();
            assert_eq!(seen, expect);
        }
    }

    #[test]
    fn join_acc_is_order_independent() {
        let mut a = JoinAcc::default();
        a.add(1, 10);
        a.add(2, 20);
        let mut b = JoinAcc::default();
        b.add(2, 20);
        b.add(1, 10);
        assert_eq!(a, b);
        let mut c = JoinAcc::default();
        c.merge(a);
        assert_eq!(c.pairs, 2);
    }

    #[test]
    fn stage_summary_takes_max() {
        let times = vec![vec![0.0, 1.0, 5.0], vec![0.5, 2.0, 3.0]];
        let s = stage_summary(&["a", "b"], &times);
        assert_eq!(s[0], ("a".to_string(), 2.0));
        assert_eq!(s[1], ("b".to_string(), 5.0));
        let h = pass_histogram(&times);
        // Four (proc, stage) durations: 1.0, 4.0, 1.5, 1.0.
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 4.0);
    }

    #[test]
    fn shared_slots_roundtrip() {
        let slots = SharedSlots::new(2);
        slots.publish(1, "x");
        assert_eq!(slots.get(1), "x");
    }

    use mmjoin_env::{DiskId, Env, EnvError, ProcId, SPtr};
    use mmjoin_vmsim::{SimConfig, SimEnv};

    fn env_with_s(d: u32) -> (SimEnv, mmjoin_relstore::Relations) {
        let mut cfg = SimConfig::waterloo96(d);
        cfg.rproc_pages = 16;
        cfg.sproc_pages = 16;
        let env = SimEnv::new(cfg).unwrap();
        let rels = mmjoin_relstore::build(
            &env,
            &mmjoin_relstore::WorkloadSpec {
                rel: mmjoin_relstore::RelConfig {
                    r_size: 64,
                    s_size: 64,
                    d,
                    r_objects: 200 * d as u64,
                    s_objects: 200 * d as u64,
                },
                dist: mmjoin_relstore::PointerDist::Uniform,
                seed: 4,
                prefix: String::new(),
            },
        )
        .unwrap();
        env.register_s(rels.catalog.clone()).unwrap();
        (env, rels)
    }

    #[test]
    fn sbatcher_flushes_exactly_at_capacity() {
        let (env, rels) = env_with_s(1);
        let proc = ProcId(0);
        let mut b = SBatcher::new(&env, proc, 0, &rels, 4096);
        let cap = b.capacity();
        // G = 4096, unit = 64 + 8 + 64 = 136 → 30 objects per exchange.
        assert_eq!(cap, 4096 / 136);
        let mut acc = JoinAcc::default();
        let pb = rels.rel.s_part_bytes();
        for k in 0..cap as u64 {
            b.add(k, SPtr::new(0, (k % 200) * 64, pb), &mut acc)
                .unwrap();
        }
        // Exactly one exchange happened, unprompted.
        assert_eq!(env.stats().procs[0].s_batches, 1);
        assert_eq!(acc.pairs, cap as u64);
        // Nothing pending: flush is a no-op.
        b.flush(&mut acc).unwrap();
        assert_eq!(env.stats().procs[0].s_batches, 1);
        // One more object needs one more exchange at flush time.
        b.add(7, SPtr::new(0, 0, pb), &mut acc).unwrap();
        b.flush(&mut acc).unwrap();
        assert_eq!(env.stats().procs[0].s_batches, 2);
        assert_eq!(acc.pairs, cap as u64 + 1);
    }

    #[test]
    fn sbatcher_joins_correct_s_keys() {
        let (env, rels) = env_with_s(1);
        let proc = ProcId(0);
        let mut b = SBatcher::new(&env, proc, 0, &rels, 4096);
        let mut acc = JoinAcc::default();
        let pb = rels.rel.s_part_bytes();
        // Point r_key 5 at S-object 17: digest must match the oracle's.
        b.add(5, SPtr::new(0, 17 * 64, pb), &mut acc).unwrap();
        b.flush(&mut acc).unwrap();
        assert_eq!(acc.pairs, 1);
        assert_eq!(acc.checksum, mmjoin_relstore::pair_digest(5, 17));
    }

    #[test]
    fn run_stages_sequential_stops_at_first_error() {
        let mut cfg = SimConfig::waterloo96(2);
        cfg.rproc_pages = 4;
        let env = SimEnv::new(cfg).unwrap();
        let calls = std::sync::atomic::AtomicU32::new(0);
        let r = run_stages(
            &env,
            2,
            ExecMode::Sequential,
            3,
            |_| 0u32,
            |stage, i, _state| {
                calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                if stage == 1 && i == 0 {
                    Err(EnvError::InvalidConfig("boom".into()))
                } else {
                    Ok(())
                }
            },
        );
        assert!(r.is_err());
        // Stage 0 ran for both procs, stage 1 only for proc 0.
        assert_eq!(calls.load(std::sync::atomic::Ordering::SeqCst), 3);
    }

    #[test]
    fn run_stages_threaded_propagates_error_without_deadlock() {
        let mut cfg = SimConfig::waterloo96(4);
        cfg.rproc_pages = 4;
        let env = SimEnv::new(cfg).unwrap();
        let r = run_stages(
            &env,
            4,
            ExecMode::Threaded,
            5,
            |_| (),
            |stage, i, _state| {
                if stage == 2 && i == 3 {
                    Err(EnvError::InvalidConfig("late failure".into()))
                } else {
                    Ok(())
                }
            },
        );
        match r {
            Err(EnvError::InvalidConfig(msg)) => assert_eq!(msg, "late failure"),
            other => panic!("expected the injected error, got {other:?}"),
        }
    }

    #[test]
    fn run_stages_threaded_runs_every_proc_per_stage() {
        let mut cfg = SimConfig::waterloo96(3);
        cfg.rproc_pages = 4;
        let env = SimEnv::new(cfg).unwrap();
        let (states, times) = run_stages(
            &env,
            3,
            ExecMode::Threaded,
            4,
            |i| vec![i],
            |stage, _i, state: &mut Vec<u32>| {
                state.push(stage as u32 + 100);
                Ok(())
            },
        )
        .unwrap();
        for (i, st) in states.iter().enumerate() {
            assert_eq!(st[0], i as u32, "states returned in proc order");
            assert_eq!(&st[1..], &[100, 101, 102, 103]);
        }
        assert_eq!(times.len(), 3);
        // Stage boundary clocks carry a leading start-of-run entry.
        assert!(times.iter().all(|t| t.len() == 5));
    }

    #[test]
    fn temp_names_scope_by_tag_and_prefix() {
        let (_env, mut rels) = env_with_s(1);
        let spec = JoinSpec::new(1, 1).with_tag("t1");
        assert_eq!(spec.temp_name(&rels, "RP_0"), "RP_0#t1");
        rels.prefix = "w".into();
        assert_eq!(spec.temp_name(&rels, "RP_0"), "w.RP_0#t1");
        let untagged = JoinSpec::new(1, 1);
        assert_eq!(untagged.temp_name(&rels, "RS_2"), "w.RS_2");
    }

    // Silence unused-import warnings in configurations where some
    // helpers are exercised only by a subset of tests.
    #[allow(unused)]
    fn _touch(_: DiskId) {}
}
