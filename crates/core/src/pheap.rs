//! Instrumented heaps of pointers to R-objects (paper §6.1).
//!
//! Sort-merge sorts each run by building a heap over an array of
//! *pointers* (here: `(sptr, index)` pairs) with Floyd's bottom-up
//! construction, then draining it; merging uses delete-insert on a heap
//! of one cursor per run. Every `compare`, `swap` and `transfer` is
//! counted so the execution-driven simulator charges exactly the
//! operations that actually happened — the quantities the model prices
//! with its measured per-operation times.

use mmjoin_env::{CpuOp, Env, ProcId, SPtr};

/// Heap operation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Element comparisons.
    pub compares: u64,
    /// Element swaps.
    pub swaps: u64,
    /// Moves of an element to or from the heap.
    pub transfers: u64,
}

impl OpCounts {
    /// Declare the counted operations to the environment.
    pub fn charge<E: Env>(&self, env: &E, proc: ProcId) {
        env.cpu(proc, CpuOp::Compare, self.compares);
        env.cpu(proc, CpuOp::Swap, self.swaps);
        env.cpu(proc, CpuOp::HeapTransfer, self.transfers);
    }

    /// Merge counts from a sub-phase.
    pub fn absorb(&mut self, other: OpCounts) {
        self.compares += other.compares;
        self.swaps += other.swaps;
        self.transfers += other.transfers;
    }
}

/// One sortable entry: the virtual-pointer key plus the object's index
/// in its run buffer.
pub type HeapEntry = (SPtr, u32);

/// In-place heapsort (Floyd construction + drain) over pointer entries,
/// ascending by `SPtr`. Returns the operation counts.
pub fn heapsort(entries: &mut [HeapEntry]) -> OpCounts {
    let mut ops = OpCounts::default();
    let n = entries.len();
    ops.transfers += n as u64; // load pointers into the heap array
    if n < 2 {
        return ops;
    }
    // Floyd: sift down every internal node, leaves upward.
    for root in (0..n / 2).rev() {
        sift_down(entries, root, n, &mut ops);
    }
    // Drain: move the max to the end, shrink, restore.
    for end in (1..n).rev() {
        entries.swap(0, end);
        ops.swaps += 1;
        ops.transfers += 1; // element leaves the heap
        sift_down(entries, 0, end, &mut ops);
    }
    ops
}

fn sift_down(a: &mut [HeapEntry], mut root: usize, len: usize, ops: &mut OpCounts) {
    loop {
        let left = 2 * root + 1;
        if left >= len {
            return;
        }
        let right = left + 1;
        let mut largest = left;
        if right < len {
            ops.compares += 1;
            if a[right].0 > a[left].0 {
                largest = right;
            }
        }
        ops.compares += 1;
        if a[largest].0 > a[root].0 {
            a.swap(root, largest);
            ops.swaps += 1;
            root = largest;
        } else {
            return;
        }
    }
}

/// A min-heap of run cursors supporting the delete-insert operation of
/// the merging passes (§6.1: "the heap always contains pointers to the
/// next unprocessed element from each sorted run").
pub struct MergeHeap {
    heap: Vec<(SPtr, u32)>, // (key, run index)
    ops: OpCounts,
}

impl MergeHeap {
    /// Build from each run's first key.
    pub fn new(first_keys: impl IntoIterator<Item = (SPtr, u32)>) -> Self {
        let mut h = MergeHeap {
            heap: first_keys.into_iter().collect(),
            ops: OpCounts::default(),
        };
        h.ops.transfers += h.heap.len() as u64;
        let n = h.heap.len();
        for root in (0..n / 2).rev() {
            h.sift_down_min(root, n);
        }
        h
    }

    /// Runs still live in the heap.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when every run is exhausted.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The smallest key and its run, without removing it.
    pub fn peek(&self) -> Option<(SPtr, u32)> {
        self.heap.first().copied()
    }

    /// Delete-insert: replace the minimum with `next_key` from the same
    /// run and restore heap order (one heap traversal, as in the paper's
    /// `g(h)` cost).
    pub fn replace_min(&mut self, next_key: SPtr) {
        debug_assert!(!self.heap.is_empty());
        let run = self.heap[0].1;
        self.heap[0] = (next_key, run);
        self.ops.transfers += 2; // element out + element in
        let n = self.heap.len();
        self.sift_down_min(0, n);
    }

    /// Remove the minimum entirely (its run is exhausted).
    pub fn pop_min(&mut self) -> Option<(SPtr, u32)> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("non-empty");
        self.ops.transfers += 1;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            let n = self.heap.len();
            self.sift_down_min(0, n);
        }
        Some(top)
    }

    fn sift_down_min(&mut self, mut root: usize, len: usize) {
        let a = &mut self.heap;
        loop {
            let left = 2 * root + 1;
            if left >= len {
                return;
            }
            let right = left + 1;
            let mut smallest = left;
            if right < len {
                self.ops.compares += 1;
                if a[right].0 < a[left].0 {
                    smallest = right;
                }
            }
            self.ops.compares += 1;
            if a[smallest].0 < a[root].0 {
                a.swap(root, smallest);
                self.ops.swaps += 1;
                root = smallest;
            } else {
                return;
            }
        }
    }

    /// Operation counts so far.
    pub fn ops(&self) -> OpCounts {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(v: u64) -> SPtr {
        SPtr(v)
    }

    #[test]
    fn heapsort_sorts_ascending() {
        let mut e: Vec<HeapEntry> = [5u64, 3, 9, 1, 7, 1, 0, 8]
            .iter()
            .enumerate()
            .map(|(i, &v)| (key(v), i as u32))
            .collect();
        let ops = heapsort(&mut e);
        let keys: Vec<u64> = e.iter().map(|(k, _)| k.0).collect();
        assert_eq!(keys, vec![0, 1, 1, 3, 5, 7, 8, 9]);
        assert!(ops.compares > 0 && ops.swaps > 0);
    }

    #[test]
    fn heapsort_handles_tiny_inputs() {
        let mut empty: Vec<HeapEntry> = vec![];
        assert_eq!(heapsort(&mut empty).compares, 0);
        let mut one = vec![(key(4), 0)];
        heapsort(&mut one);
        assert_eq!(one[0].0 .0, 4);
    }

    #[test]
    fn heapsort_op_counts_scale_n_log_n() {
        let n = 4096u64;
        let mut e: Vec<HeapEntry> = (0..n)
            .map(|i| (key(i.wrapping_mul(0x9E3779B9) % 100_000), i as u32))
            .collect();
        let ops = heapsort(&mut e);
        let nlogn = n as f64 * (n as f64).log2();
        let ratio = ops.compares as f64 / nlogn;
        assert!(
            (0.5..3.0).contains(&ratio),
            "compares {} vs n·log n {nlogn}: ratio {ratio}",
            ops.compares
        );
    }

    #[test]
    fn merge_heap_merges_sorted_runs() {
        let runs: Vec<Vec<u64>> = vec![vec![1, 4, 7], vec![2, 5, 8], vec![0, 3, 6, 9, 10]];
        let mut cursors = vec![0usize; runs.len()];
        let mut heap = MergeHeap::new(
            runs.iter()
                .enumerate()
                .map(|(r, run)| (key(run[0]), r as u32)),
        );
        cursors.fill(1);
        let mut out = Vec::new();
        while let Some((k, run)) = heap.peek() {
            out.push(k.0);
            let r = run as usize;
            if cursors[r] < runs[r].len() {
                heap.replace_min(key(runs[r][cursors[r]]));
                cursors[r] += 1;
            } else {
                heap.pop_min();
            }
        }
        assert_eq!(out, (0..=10).collect::<Vec<u64>>());
        assert!(heap.is_empty());
        assert!(heap.ops().compares > 0);
    }

    /// The model's `g(h)` (paper §6.3) prices one delete-insert on a
    /// heap of `h` runs. The instrumented MergeHeap must agree with it
    /// to within a small constant — this ties the analytical formula to
    /// the executable structure it describes.
    #[test]
    fn merge_heap_ops_track_the_g_formula() {
        use mmjoin_model::heapcost::{g_delete_insert, HeapWeights};
        let unit = HeapWeights {
            compare: 1.0,
            swap: 1.0,
            transfer: 0.0, // count only compare+swap work, like g(h)
        };
        for h in [4usize, 16, 64] {
            let run_len = 512usize;
            // h interleaved sorted runs.
            let runs: Vec<Vec<u64>> = (0..h)
                .map(|r| (0..run_len).map(|i| (i * h + r) as u64).collect())
                .collect();
            let mut cursors = vec![1usize; h];
            let mut heap = MergeHeap::new(
                runs.iter()
                    .enumerate()
                    .map(|(r, run)| (key(run[0]), r as u32)),
            );
            let mut emitted = 0u64;
            while let Some((_, run)) = heap.peek() {
                emitted += 1;
                let r = run as usize;
                if cursors[r] < runs[r].len() {
                    heap.replace_min(key(runs[r][cursors[r]]));
                    cursors[r] += 1;
                } else {
                    heap.pop_min();
                }
            }
            assert_eq!(emitted as usize, h * run_len);
            let measured_per_element =
                (heap.ops().compares + heap.ops().swaps) as f64 / emitted as f64;
            // g(h) with compare = swap = 1 gives (2·1 + 1)·per = 3·per;
            // we want the raw per-op count, so divide out the weights.
            let predicted_per_element = g_delete_insert(h as f64, &unit) / 3.0 * 3.0;
            let ratio = measured_per_element / predicted_per_element.max(1e-9);
            assert!(
                (0.4..2.5).contains(&ratio),
                "h={h}: measured {measured_per_element:.2} ops/element vs g(h) {predicted_per_element:.2} (ratio {ratio:.2})"
            );
        }
    }

    proptest::proptest! {
        #[test]
        fn heapsort_matches_std_sort(values in proptest::collection::vec(0u64..1_000_000, 0..500)) {
            let mut entries: Vec<HeapEntry> =
                values.iter().enumerate().map(|(i, &v)| (key(v), i as u32)).collect();
            heapsort(&mut entries);
            let mut expect = values.clone();
            expect.sort_unstable();
            let got: Vec<u64> = entries.iter().map(|(k, _)| k.0).collect();
            proptest::prop_assert_eq!(got, expect);
        }

        #[test]
        fn merge_heap_equals_flat_sort(
            runs in proptest::collection::vec(
                proptest::collection::vec(0u64..10_000, 1..50), 1..10)
        ) {
            let sorted_runs: Vec<Vec<u64>> = runs
                .iter()
                .map(|r| { let mut r = r.clone(); r.sort_unstable(); r })
                .collect();
            let mut cursors = vec![1usize; sorted_runs.len()];
            let mut heap = MergeHeap::new(
                sorted_runs.iter().enumerate().map(|(i, r)| (key(r[0]), i as u32)));
            let mut out = Vec::new();
            while let Some((k, run)) = heap.peek() {
                out.push(k.0);
                let r = run as usize;
                if cursors[r] < sorted_runs[r].len() {
                    heap.replace_min(key(sorted_runs[r][cursors[r]]));
                    cursors[r] += 1;
                } else {
                    heap.pop_min();
                }
            }
            let mut expect: Vec<u64> = runs.into_iter().flatten().collect();
            expect.sort_unstable();
            proptest::prop_assert_eq!(out, expect);
        }
    }
}
