//! # mmjoin — parallel pointer-based joins for memory-mapped environments
//!
//! A production-quality reproduction of *Buhr, Goel, Nishimura, Ragde:
//! "Parallel Pointer-Based Join Algorithms in Memory Mapped
//! Environments"* (ICDE 1996): three parallel join algorithms whose join
//! attribute is a **virtual pointer** into the inner relation, written
//! once against the [`mmjoin_env::Env`] abstraction and executable on
//!
//! * `mmjoin_vmsim::SimEnv` — an execution-driven simulator charging
//!   measured machine parameters (the paper's "Experiment" lines), and
//! * `mmjoin_mmstore::MmapEnv` — a real µDatabase-style memory-mapped
//!   store.
//!
//! The sibling crate `mmjoin-model` carries the paper's quantitative
//! analytical model; [`planner`] combines the two into the
//! query-optimizer use case the paper motivates.
//!
//! ## Quick start
//!
//! ```
//! use mmjoin::{join, Algo, ExecMode, JoinSpec};
//! use mmjoin_relstore::{build, RelConfig, PointerDist, WorkloadSpec};
//! use mmjoin_vmsim::{SimConfig, SimEnv};
//!
//! // A small machine: 2 disks, 64-page process budgets.
//! let mut cfg = SimConfig::waterloo96(2);
//! cfg.rproc_pages = 64;
//! cfg.sproc_pages = 64;
//! let env = SimEnv::new(cfg).unwrap();
//!
//! // A small workload: 2 000 × 2 000 objects of 64 bytes.
//! let spec = WorkloadSpec {
//!     rel: RelConfig { r_size: 64, s_size: 64, d: 2, r_objects: 2_000, s_objects: 2_000 },
//!     dist: PointerDist::Uniform,
//!     seed: 42,
//!     prefix: String::new(),
//! };
//! let rels = build(&env, &spec).unwrap();
//!
//! // Join with Grace; verify against the workload oracle.
//! let jspec = JoinSpec::new(64 * 4096, 64 * 4096).with_mode(ExecMode::Sequential);
//! let out = join(&env, &rels, Algo::Grace, &jspec).unwrap();
//! assert_eq!(out.pairs, rels.expected_pairs);
//! assert_eq!(out.checksum, rels.expected_checksum);
//! assert!(out.elapsed > 0.0); // simulated seconds
//! ```

pub mod exec;
pub mod grace;
pub mod hybrid;
pub mod modern;
pub mod naive;
pub mod nested_loops;
pub mod pheap;
pub mod planner;
pub mod retry;
pub mod sort_merge;
pub mod stats;

pub use exec::{
    finish, run_stages, stage_summary, ExecMode, JoinAcc, JoinOutput, JoinSpec, SBatcher,
    SharedSlots,
};
pub use planner::{
    choose, choose_auto, explain, inputs_for, probe_cost, AutoPlan, PlanChoice, SkewSource,
};
pub use retry::{
    join_with_retry, join_with_retry_report, new_files_since, new_files_since_tagged, RetryPolicy,
    RetryReport,
};
pub use stats::{Reservoir, SampleSummary, HISTOGRAM_BUCKETS, SAMPLE_CAP};

use mmjoin_env::{Env, Result};
use mmjoin_relstore::Relations;

/// An executable join algorithm: the paper's three, plus the naive
/// baseline its §5 argues against.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Algo {
    /// Parallel pointer-based nested loops (§5).
    NestedLoops,
    /// Parallel pointer-based sort-merge (§6).
    SortMerge,
    /// Parallel pointer-based Grace (§7).
    Grace,
    /// Parallel pointer-based hybrid hash (extension: Grace with a
    /// memory-resident first bucket).
    HybridHash,
    /// Naive parallel nested loops: no re-partitioning, no staggering.
    NaiveNestedLoops,
}

impl Algo {
    /// All executable algorithms.
    pub const ALL: [Algo; 5] = [
        Algo::NestedLoops,
        Algo::SortMerge,
        Algo::Grace,
        Algo::HybridHash,
        Algo::NaiveNestedLoops,
    ];

    /// Parse a display name back into an algorithm.
    pub fn from_name(s: &str) -> Option<Algo> {
        Algo::ALL.into_iter().find(|a| a.name() == s)
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Algo::NestedLoops => "nested-loops",
            Algo::SortMerge => "sort-merge",
            Algo::Grace => "grace",
            Algo::HybridHash => "hybrid-hash",
            Algo::NaiveNestedLoops => "naive",
        }
    }

    /// The analytical model's counterpart, if it has one.
    pub fn modelled(self) -> Option<mmjoin_model::Algorithm> {
        match self {
            Algo::NestedLoops => Some(mmjoin_model::Algorithm::NestedLoops),
            Algo::SortMerge => Some(mmjoin_model::Algorithm::SortMerge),
            Algo::Grace => Some(mmjoin_model::Algorithm::Grace),
            Algo::HybridHash => Some(mmjoin_model::Algorithm::HybridHash),
            Algo::NaiveNestedLoops => None,
        }
    }
}

impl From<mmjoin_model::Algorithm> for Algo {
    fn from(a: mmjoin_model::Algorithm) -> Self {
        match a {
            mmjoin_model::Algorithm::NestedLoops => Algo::NestedLoops,
            mmjoin_model::Algorithm::SortMerge => Algo::SortMerge,
            mmjoin_model::Algorithm::Grace => Algo::Grace,
            mmjoin_model::Algorithm::HybridHash => Algo::HybridHash,
        }
    }
}

/// Run one join end to end: registers the S catalog, executes the `D`
/// Rprocs, stops the Sproc service, and returns the verifiable output.
///
/// [`ExecMode::Modern`] routes every algorithm through the
/// cache-conscious kernels in [`modern`]; the faithful 1996 inner loops
/// run otherwise. Both produce the identical join pair set and
/// checksum.
pub fn join<E: Env>(env: &E, rels: &Relations, alg: Algo, spec: &JoinSpec) -> Result<JoinOutput> {
    env.register_s(rels.catalog.clone())?;
    let result = if spec.mode == ExecMode::Modern {
        modern::run(env, rels, alg, spec)
    } else {
        match alg {
            Algo::NestedLoops => nested_loops::run(env, rels, spec),
            Algo::SortMerge => sort_merge::run(env, rels, spec),
            Algo::Grace => grace::run(env, rels, spec),
            Algo::HybridHash => hybrid::run(env, rels, spec),
            Algo::NaiveNestedLoops => naive::run(env, rels, spec),
        }
    };
    env.shutdown_s();
    result
}

/// Convenience: check a join output against its workload oracle.
pub fn verify(out: &JoinOutput, rels: &Relations) -> Result<()> {
    if out.pairs != rels.expected_pairs {
        return Err(mmjoin_env::EnvError::InvalidConfig(format!(
            "join produced {} pairs, expected {}",
            out.pairs, rels.expected_pairs
        )));
    }
    if out.checksum != rels.expected_checksum {
        return Err(mmjoin_env::EnvError::InvalidConfig(format!(
            "join checksum {:#x} != expected {:#x}",
            out.checksum, rels.expected_checksum
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmjoin_relstore::{build, PointerDist, RelConfig, WorkloadSpec};
    use mmjoin_vmsim::{SimConfig, SimEnv};

    fn small_workload(d: u32, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            rel: RelConfig {
                r_size: 32,
                s_size: 32,
                d,
                r_objects: 1_200,
                s_objects: 1_200,
            },
            dist: PointerDist::Uniform,
            seed,
            prefix: String::new(),
        }
    }

    fn sim(d: u32, pages: usize) -> SimEnv {
        let mut cfg = SimConfig::waterloo96(d);
        cfg.rproc_pages = pages;
        cfg.sproc_pages = pages;
        SimEnv::new(cfg).unwrap()
    }

    #[test]
    fn all_algorithms_produce_the_oracle_join() {
        for alg in Algo::ALL {
            let env = sim(4, 16);
            let rels = build(&env, &small_workload(4, 9)).unwrap();
            let spec = JoinSpec::new(16 * 4096, 16 * 4096).with_mode(ExecMode::Sequential);
            let out = join(&env, &rels, alg, &spec).unwrap();
            verify(&out, &rels).unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
            assert!(out.elapsed > 0.0, "{}", alg.name());
        }
    }

    #[test]
    fn threaded_mode_matches_sequential_results() {
        for alg in [Algo::NestedLoops, Algo::SortMerge, Algo::Grace] {
            let env = sim(4, 16);
            let rels = build(&env, &small_workload(4, 11)).unwrap();
            let spec = JoinSpec::new(16 * 4096, 16 * 4096).with_mode(ExecMode::Threaded);
            let out = join(&env, &rels, alg, &spec).unwrap();
            verify(&out, &rels).unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
        }
    }

    #[test]
    fn sync_phases_still_correct() {
        let env = sim(4, 16);
        let rels = build(&env, &small_workload(4, 13)).unwrap();
        let mut spec = JoinSpec::new(16 * 4096, 16 * 4096).with_mode(ExecMode::Threaded);
        spec.sync_phases = true;
        let out = join(&env, &rels, Algo::NestedLoops, &spec).unwrap();
        verify(&out, &rels).unwrap();
    }

    #[test]
    fn tagged_runs_share_one_environment() {
        let env = sim(2, 16);
        let rels = build(&env, &small_workload(2, 5)).unwrap();
        for (t, alg) in [(1, Algo::Grace), (2, Algo::SortMerge)] {
            let spec = JoinSpec::new(16 * 4096, 16 * 4096)
                .with_mode(ExecMode::Sequential)
                .with_tag(&format!("run{t}"));
            let out = join(&env, &rels, alg, &spec).unwrap();
            verify(&out, &rels).unwrap();
        }
    }

    #[test]
    fn cross_partition_skew_survives_every_algorithm() {
        for alg in Algo::ALL {
            let env = sim(4, 16);
            let mut w = small_workload(4, 17);
            w.dist = PointerDist::CrossPartition;
            let rels = build(&env, &w).unwrap();
            assert_eq!(rels.skew, 4.0);
            let spec = JoinSpec::new(16 * 4096, 16 * 4096).with_mode(ExecMode::Sequential);
            let out = join(&env, &rels, alg, &spec).unwrap();
            verify(&out, &rels).unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
        }
    }

    #[test]
    fn tiny_memory_still_correct_if_slow() {
        // 4-page budgets: pathological paging, but the join must remain
        // exact.
        for alg in [Algo::SortMerge, Algo::Grace] {
            let env = sim(2, 4);
            let rels = build(&env, &small_workload(2, 23)).unwrap();
            let spec = JoinSpec::new(4 * 4096, 4 * 4096).with_mode(ExecMode::Sequential);
            let out = join(&env, &rels, alg, &spec).unwrap();
            verify(&out, &rels).unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
        }
    }

    #[test]
    fn d_equals_one_degenerates_gracefully() {
        for alg in Algo::ALL {
            let env = sim(1, 16);
            let mut w = small_workload(1, 3);
            w.rel.r_objects = 500;
            w.rel.s_objects = 500;
            let rels = build(&env, &w).unwrap();
            let spec = JoinSpec::new(16 * 4096, 16 * 4096).with_mode(ExecMode::Sequential);
            let out = join(&env, &rels, alg, &spec).unwrap();
            verify(&out, &rels).unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
        }
    }
}
